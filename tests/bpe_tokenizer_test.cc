#include "llmms/tokenizer/bpe_tokenizer.h"

#include <cstdio>
#include <gtest/gtest.h>

namespace llmms::tokenizer {
namespace {

std::vector<std::string> SmallCorpus() {
  return {
      "the quick brown fox jumps over the lazy dog",
      "the quick brown fox is quick and brown",
      "language models predict the next token in the sequence",
      "the token budget limits how many tokens a model may generate",
      "models are quick to generate tokens over the budget",
  };
}

TEST(BpeTokenizerTest, UntrainedEncodesBytes) {
  BpeTokenizer tok;
  EXPECT_FALSE(tok.trained());
  const auto ids = tok.Encode("ab");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 'a');
  EXPECT_EQ(ids[1], 'b');
}

TEST(BpeTokenizerTest, TrainingGrowsVocabulary) {
  BpeTokenizer tok;
  BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 300;
  ASSERT_TRUE(tok.Train(SmallCorpus(), opts).ok());
  EXPECT_TRUE(tok.trained());
  EXPECT_GT(tok.vocab_size(), 256);
  EXPECT_LE(tok.vocab_size(), 300);
}

TEST(BpeTokenizerTest, TrainingRejectsBadArguments) {
  BpeTokenizer tok;
  BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 100;  // below byte vocabulary
  EXPECT_TRUE(tok.Train(SmallCorpus(), opts).IsInvalidArgument());
  opts.vocab_size = 300;
  EXPECT_TRUE(tok.Train({}, opts).IsInvalidArgument());
}

TEST(BpeTokenizerTest, EncodeDecodeRoundTrip) {
  BpeTokenizer tok;
  BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 400;
  ASSERT_TRUE(tok.Train(SmallCorpus(), opts).ok());
  for (const std::string text :
       {"the quick brown fox", "models generate tokens",
        "completely unseen words xyzzy", "punctuation, and; symbols!"}) {
    EXPECT_EQ(tok.Decode(tok.Encode(text)), text) << text;
  }
}

TEST(BpeTokenizerTest, TrainingCompressesFrequentWords) {
  BpeTokenizer tok;
  BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 500;
  ASSERT_TRUE(tok.Train(SmallCorpus(), opts).ok());
  // "the" occurs many times; it should encode to far fewer tokens than
  // its byte length.
  EXPECT_LT(tok.CountTokens("the quick brown"), strlen("the quick brown"));
}

TEST(BpeTokenizerTest, CountTokensMatchesEncode) {
  BpeTokenizer tok;
  BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 300;
  ASSERT_TRUE(tok.Train(SmallCorpus(), opts).ok());
  const std::string text = "the lazy dog jumps";
  EXPECT_EQ(tok.CountTokens(text), tok.Encode(text).size());
}

TEST(BpeTokenizerTest, DecodeIgnoresOutOfRangeIds) {
  BpeTokenizer tok;
  EXPECT_EQ(tok.Decode({'h', 'i', 99999, -1}), "hi");
}

TEST(BpeTokenizerTest, EmptyInput) {
  BpeTokenizer tok;
  EXPECT_TRUE(tok.Encode("").empty());
  EXPECT_EQ(tok.Decode({}), "");
  EXPECT_EQ(tok.CountTokens(""), 0u);
}

TEST(BpeTokenizerTest, WhitespaceNormalizesToSingleSpaces) {
  BpeTokenizer tok;
  // Tabs/newlines act as word boundaries; decode restores single spaces.
  EXPECT_EQ(tok.Decode(tok.Encode("a\tb\nc")), "a b c");
}

TEST(BpeTokenizerTest, SaveLoadRoundTrip) {
  BpeTokenizer tok;
  BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 350;
  ASSERT_TRUE(tok.Train(SmallCorpus(), opts).ok());
  const std::string path = ::testing::TempDir() + "/bpe_tok.txt";
  ASSERT_TRUE(tok.Save(path).ok());
  auto loaded = BpeTokenizer::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vocab_size(), tok.vocab_size());
  const std::string text = "the quick brown fox jumps";
  EXPECT_EQ(loaded->Encode(text), tok.Encode(text));
  std::remove(path.c_str());
}

TEST(BpeTokenizerTest, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/bpe_bad.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("not-a-tokenizer\n", f);
    fclose(f);
  }
  EXPECT_FALSE(BpeTokenizer::Load(path).ok());
  EXPECT_FALSE(BpeTokenizer::Load("/nonexistent/path/tok.txt").ok());
  std::remove(path.c_str());
}

TEST(BpeTokenizerTest, DeterministicTraining) {
  BpeTokenizer a;
  BpeTokenizer b;
  BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 320;
  ASSERT_TRUE(a.Train(SmallCorpus(), opts).ok());
  ASSERT_TRUE(b.Train(SmallCorpus(), opts).ok());
  const std::string text = "the brown token budget";
  EXPECT_EQ(a.Encode(text), b.Encode(text));
  EXPECT_EQ(a.vocab_size(), b.vocab_size());
}

}  // namespace
}  // namespace llmms::tokenizer
