#include "llmms/core/mab.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace llmms::core {
namespace {

class MabTest : public ::testing::Test {
 protected:
  void SetUp() override { world_ = testutil::MakeWorld(6); }

  MabOrchestrator MakeOrchestrator(MabOrchestrator::Config config = {}) {
    return MabOrchestrator(world_.runtime.get(), world_.model_names,
                           world_.embedder, config);
  }

  testutil::World world_;
};

TEST_F(MabTest, ProducesAnswerWithinBudget) {
  MabOrchestrator::Config config;
  config.token_budget = 256;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
  EXPECT_LE(result->total_tokens, config.token_budget);
  EXPECT_GT(result->rounds, 0u);
}

TEST_F(MabTest, Deterministic) {
  auto orchestrator = MakeOrchestrator();
  auto a = orchestrator.Run(world_.dataset[1].question);
  auto b = orchestrator.Run(world_.dataset[1].question);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->best_model, b->best_model);
  EXPECT_EQ(a->answer, b->answer);
  EXPECT_EQ(a->total_tokens, b->total_tokens);
}

TEST_F(MabTest, ColdStartPullsEveryArmOnce) {
  MabOrchestrator::Config config;
  config.chunk_tokens = 4;
  auto orchestrator = MakeOrchestrator(config);
  std::vector<std::string> first_three;
  auto result = orchestrator.Run(
      world_.dataset[0].question, [&first_three](const OrchestratorEvent& e) {
        if (e.type == EventType::kChunk && first_three.size() < 3) {
          first_three.push_back(e.model);
        }
      });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(first_three.size(), 3u);
  // The first three pulls must touch three distinct arms (UCB1 cold start).
  EXPECT_NE(first_three[0], first_three[1]);
  EXPECT_NE(first_three[1], first_three[2]);
  EXPECT_NE(first_three[0], first_three[2]);
}

TEST_F(MabTest, EveryModelGetsTokens) {
  auto orchestrator = MakeOrchestrator();
  auto result = orchestrator.Run(world_.dataset[2].question);
  ASSERT_TRUE(result.ok());
  for (const auto& [name, outcome] : result->per_model) {
    EXPECT_GT(outcome.tokens, 0u) << name;
  }
}

TEST_F(MabTest, WinnerHasHighestReward) {
  auto orchestrator = MakeOrchestrator();
  auto result = orchestrator.Run(world_.dataset[3].question);
  ASSERT_TRUE(result.ok());
  const double winner = result->per_model[result->best_model].final_score;
  for (const auto& [name, outcome] : result->per_model) {
    EXPECT_LE(outcome.final_score, winner + 1e-9) << name;
  }
  EXPECT_EQ(result->answer, result->per_model[result->best_model].response);
}

TEST_F(MabTest, ExploitationConcentratesTokensOnWinner) {
  MabOrchestrator::Config config;
  config.token_budget = 512;
  config.chunk_tokens = 8;
  config.gamma0 = 0.05;  // strongly exploitative
  auto orchestrator = MakeOrchestrator(config);
  // Average over several questions: the winning arm should receive at least
  // as many tokens as the average arm.
  double winner_tokens = 0.0;
  double all_tokens = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < 6 && i < world_.dataset.size(); ++i) {
    auto result = orchestrator.Run(world_.dataset[i].question);
    ASSERT_TRUE(result.ok());
    winner_tokens +=
        static_cast<double>(result->per_model[result->best_model].tokens);
    all_tokens += static_cast<double>(result->total_tokens);
    ++n;
  }
  EXPECT_GT(winner_tokens / n, all_tokens / n / 3.0);
}

TEST_F(MabTest, GammaZeroIsPureExploitation) {
  MabOrchestrator::Config config;
  config.gamma0 = 0.0;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
}

TEST_F(MabTest, FixedGammaAlsoWorks) {
  MabOrchestrator::Config config;
  config.decay_gamma = false;
  config.gamma0 = 0.5;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
}

TEST_F(MabTest, StopsWhenAllArmsFinish) {
  MabOrchestrator::Config config;
  config.token_budget = 100000;  // effectively unlimited
  config.chunk_tokens = 64;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  // Far less than the budget: generation ended when the arms did.
  EXPECT_LT(result->total_tokens, 2000u);
  for (const auto& [name, outcome] : result->per_model) {
    (void)name;
    (void)outcome;
  }
}

TEST_F(MabTest, ValidatesConfiguration) {
  MabOrchestrator::Config config;
  config.token_budget = 0;
  auto orchestrator = MakeOrchestrator(config);
  EXPECT_TRUE(orchestrator.Run(world_.dataset[0].question)
                  .status()
                  .IsInvalidArgument());
  MabOrchestrator empty(world_.runtime.get(), {}, world_.embedder, {});
  EXPECT_TRUE(empty.Run("q").status().IsFailedPrecondition());
}

TEST_F(MabTest, EventsIncludeScoresPerPull) {
  auto orchestrator = MakeOrchestrator();
  size_t chunks = 0;
  size_t scores = 0;
  auto result = orchestrator.Run(world_.dataset[0].question,
                                 [&](const OrchestratorEvent& e) {
                                   chunks += e.type == EventType::kChunk;
                                   scores += e.type == EventType::kScore;
                                 });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(scores, 0u);
  // One score per pull (chunks may be fewer if a chunk was empty).
  EXPECT_GE(scores, chunks);
}

TEST_F(MabTest, NameIsStable) {
  auto orchestrator = MakeOrchestrator();
  EXPECT_EQ(orchestrator.name(), "llm-ms-mab");
}

}  // namespace
}  // namespace llmms::core
