// Concurrency: the platform serves several sessions at once (§3.4 parallel
// inference; §7.1 production hosting). These tests hammer the thread-safe
// surfaces from many threads; run under TSan for full effect.

#include <atomic>
#include <gtest/gtest.h>
#include <thread>

#include "llmms/app/service.h"
#include "llmms/common/rng.h"
#include "llmms/common/thread_pool.h"
#include "llmms/embedding/embedding_cache.h"
#include "llmms/llm/batch_scheduler.h"
#include "llmms/vectordb/sharded_collection.h"
#include "testutil.h"

namespace llmms {
namespace {

TEST(ConcurrencyTest, ParallelAsksAcrossSessions) {
  auto world = testutil::MakeWorld(4);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db, sessions);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      core::SearchEngine::QueryOptions options;
      options.algorithm =
          t % 2 == 0 ? core::Algorithm::kOua : core::Algorithm::kMab;
      for (int i = 0; i < 5; ++i) {
        const auto& item = world.dataset[(t * 5 + i) % world.dataset.size()];
        auto result =
            engine.Ask("session-" + std::to_string(t), item.question, options);
        if (!result.ok() || result->orchestration.answer.empty()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sessions->size(), 8u);
}

TEST(ConcurrencyTest, ParallelCollectionUpsertsAndQueries) {
  vectordb::Collection::Options opts;
  opts.dimension = 8;
  opts.index_kind = vectordb::IndexKind::kHnsw;
  vectordb::Collection collection("c", opts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 100; ++i) {
        vectordb::VectorRecord record;
        record.id = "t" + std::to_string(t) + "-" + std::to_string(i);
        record.vector.resize(8);
        for (auto& x : record.vector) x = static_cast<float>(rng.Normal());
        if (!collection.Upsert(std::move(record)).ok()) ++failures;
        if (i % 10 == 0) {
          vectordb::Vector query(8, 0.5f);
          if (!collection.Query(query, 3).ok()) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(collection.size(), 600u);
}

TEST(ConcurrencyTest, ParallelRegistryMutations) {
  auto world = testutil::MakeWorld(2);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        if (world.registry->List().size() > 10) ++failures;
        (void)world.registry->Contains("llama3:8b");
        auto model = world.registry->Get("mistral:7b");
        if (!model.ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, EmbeddingCacheUnderContention) {
  auto inner = std::make_shared<embedding::HashEmbedder>();
  embedding::EmbeddingCache cache(inner, 32);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 300; ++i) {
        const std::string text =
            "text " + std::to_string((t * 7 + i) % 50);
        const auto cached = cache.Embed(text);
        if (cached != inner->Embed(text)) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 32u);
}

TEST(ConcurrencyTest, ParallelSessionStoreAccess) {
  session::SessionStore store;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 100; ++i) {
        auto session = store.GetOrCreate("s" + std::to_string(i % 10));
        if (!session.ok()) {
          ++failures;
          continue;
        }
        (*session)->Append(session::Role::kUser,
                           "msg " + std::to_string(t * 100 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.size(), 10u);
}

TEST(ConcurrencyTest, ApiServiceParallelRequests) {
  auto world = testutil::MakeWorld(3);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db, sessions);
  app::ApiService service(&engine);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 3; ++i) {
        Json request = Json::MakeObject();
        request.Set("session", "api-" + std::to_string(t));
        request.Set("query",
                    world.dataset[(t + i) % world.dataset.size()].question);
        auto response = service.Handle("/api/query", request);
        if (!response["ok"].AsBool()) ++failures;
        auto health = service.Handle("/api/health", Json::MakeObject());
        if (!health["ok"].AsBool()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// N threads drive whole queries through ONE shared continuous-batching
// scheduler (DESIGN.md §13): every stream of every query competes for the
// same replica slots. All queries must complete, and the scheduler must
// come back to rest with no leaked admissions.
TEST(ConcurrencyTest, SharedSchedulerAcrossConcurrentQueries) {
  auto world = testutil::MakeWorld(4);
  llm::SchedulerConfig config;
  config.replicas_per_model = 2;
  world.runtime->EnableScheduler(config);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db, sessions);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      core::SearchEngine::QueryOptions options;
      options.algorithm =
          t % 2 == 0 ? core::Algorithm::kOua : core::Algorithm::kMab;
      options.token_budget = 256;
      for (int i = 0; i < 3; ++i) {
        const auto& item = world.dataset[(t * 3 + i) % world.dataset.size()];
        auto result = engine.Ask("batched-" + std::to_string(t),
                                 item.question, options);
        if (!result.ok() || result->orchestration.answer.empty()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = world.runtime->scheduler()->stats();
  EXPECT_EQ(stats.runnable, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.finished_total, stats.admitted_total);
  EXPECT_GT(stats.dispatches, 0u);
  EXPECT_GT(stats.total_service_tokens, 0u);
}

// Raw Admit/ExecuteChunk/Finish hammer: many threads, two replica classes,
// short random streams, some finished early and some abandoned — the
// retire-while-queued and preemption paths all race here. Gauges must
// return to zero.
TEST(ConcurrencyTest, SchedulerAdmitExecuteFinishHammer) {
  llm::SchedulerConfig config;
  config.replicas_per_model = 2;
  llm::BatchScheduler scheduler(config);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(0xBA7C4ull + t);
      for (int i = 0; i < 40; ++i) {
        llm::BatchScheduler::AdmitOptions options;
        options.model = (t + i) % 2 == 0 ? "alpha" : "beta";
        options.weight = 0.5 + static_cast<double>(rng.NextUint64() % 4);
        options.hedge = rng.NextUint64() % 8 == 0;
        options.tokens_per_second = 8.0;
        const auto id = scheduler.Admit(options);
        const size_t chunks = 1 + rng.NextUint64() % 3;
        for (size_t c = 0; c < chunks; ++c) {
          auto chunk = scheduler.ExecuteChunk(
              id, 8, [&](size_t) -> StatusOr<llm::Chunk> {
                llm::Chunk out;
                out.num_tokens = 8;
                out.done = c + 1 == chunks && rng.NextUint64() % 2 == 0;
                return out;
              });
          if (!chunk.ok()) {
            ++failures;
            break;
          }
          if (chunk->done) break;
        }
        // Abandoned or completed either way: Finish must be idempotent.
        scheduler.Finish(id);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.runnable, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.admitted_total, 8u * 40u);
  EXPECT_EQ(stats.finished_total, stats.admitted_total);
}

// Sharded vector search under one writer and many readers (DESIGN.md §15):
// each shard's shared/exclusive lock must give readers torn-free snapshots
// while the writer upserts, replaces, and deletes across all shards — and
// a record published before a reader's acquire must be visible to it
// (monotonic visibility). Quantization is on with a small train threshold
// so the quantizer trains mid-flight, racing the readers' query path.
TEST(ConcurrencyTest, ShardedCollectionReadersWithSingleWriter) {
  vectordb::ShardedCollection::Options opts;
  opts.collection.dimension = 8;
  opts.collection.index_kind = vectordb::IndexKind::kFlat;
  opts.collection.quantization.enabled = true;
  opts.collection.quantization.train_size = 64;
  opts.num_shards = 4;
  ThreadPool pool(2);
  opts.pool = &pool;
  vectordb::ShardedCollection collection("stress", opts);

  constexpr int kWrites = 600;
  constexpr int kDeleteLag = 64;
  std::atomic<int> published{0};
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  std::thread writer([&]() {
    for (int i = 1; i <= kWrites; ++i) {
      // A uniform vector: readers detect torn reads as mixed components.
      const float v = static_cast<float>(i % 97) + 1.0f;
      vectordb::VectorRecord record;
      record.id = "seq-" + std::to_string(i);
      record.vector = vectordb::Vector(8, v);
      if (!collection.Upsert(std::move(record)).ok()) ++failures;
      // The continuously replaced hot record exercises upsert-replace.
      vectordb::VectorRecord hot;
      hot.id = "hot";
      hot.vector = vectordb::Vector(8, v);
      if (!collection.Upsert(std::move(hot)).ok()) ++failures;
      published.store(i, std::memory_order_release);
      if (i > kDeleteLag) {
        const std::string victim = "seq-" + std::to_string(i - kDeleteLag);
        if (!collection.Delete(victim).ok()) ++failures;
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(static_cast<uint64_t>(t) + 100);
      while (!done.load(std::memory_order_acquire)) {
        // Monotonic visibility: a record published before our acquire must
        // be found — unless the writer has since lapped it with a delete
        // (it only deletes ids at least kDeleteLag behind the publish
        // cursor, so a miss with the cursor still close by is a real bug).
        const int p = published.load(std::memory_order_acquire);
        if (p > 0) {
          const std::string id = "seq-" + std::to_string(p);
          if (!collection.Contains(id) &&
              published.load(std::memory_order_acquire) - p < kDeleteLag) {
            ++failures;
          }
        }
        // Torn-read detector: every component of a uniform record must
        // match; a mixture means a reader saw a half-applied upsert.
        auto hot = collection.Get("hot");
        if (hot.ok()) {
          for (float x : hot->vector) {
            if (x != hot->vector[0]) ++failures;
          }
        }
        vectordb::Vector query(8);
        for (auto& x : query) x = static_cast<float>(rng.Normal());
        auto hits = collection.Query(query, 5);
        if (!hits.ok()) {
          ++failures;
        } else {
          for (size_t i = 1; i < hits->size(); ++i) {
            // The merged order stays a total order even mid-mutation.
            if ((*hits)[i - 1].score < (*hits)[i].score) ++failures;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  // hot + the last kDeleteLag seq records survive.
  EXPECT_EQ(collection.size(), static_cast<size_t>(kDeleteLag) + 1);
  EXPECT_TRUE(collection.Contains("seq-" + std::to_string(kWrites)));
  EXPECT_FALSE(collection.Contains("seq-1"));
}

}  // namespace
}  // namespace llmms
