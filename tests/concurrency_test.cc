// Concurrency: the platform serves several sessions at once (§3.4 parallel
// inference; §7.1 production hosting). These tests hammer the thread-safe
// surfaces from many threads; run under TSan for full effect.

#include <atomic>
#include <gtest/gtest.h>
#include <thread>

#include "llmms/app/service.h"
#include "llmms/common/rng.h"
#include "llmms/embedding/embedding_cache.h"
#include "llmms/llm/batch_scheduler.h"
#include "testutil.h"

namespace llmms {
namespace {

TEST(ConcurrencyTest, ParallelAsksAcrossSessions) {
  auto world = testutil::MakeWorld(4);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db, sessions);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      core::SearchEngine::QueryOptions options;
      options.algorithm =
          t % 2 == 0 ? core::Algorithm::kOua : core::Algorithm::kMab;
      for (int i = 0; i < 5; ++i) {
        const auto& item = world.dataset[(t * 5 + i) % world.dataset.size()];
        auto result =
            engine.Ask("session-" + std::to_string(t), item.question, options);
        if (!result.ok() || result->orchestration.answer.empty()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sessions->size(), 8u);
}

TEST(ConcurrencyTest, ParallelCollectionUpsertsAndQueries) {
  vectordb::Collection::Options opts;
  opts.dimension = 8;
  opts.index_kind = vectordb::IndexKind::kHnsw;
  vectordb::Collection collection("c", opts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 100; ++i) {
        vectordb::VectorRecord record;
        record.id = "t" + std::to_string(t) + "-" + std::to_string(i);
        record.vector.resize(8);
        for (auto& x : record.vector) x = static_cast<float>(rng.Normal());
        if (!collection.Upsert(std::move(record)).ok()) ++failures;
        if (i % 10 == 0) {
          vectordb::Vector query(8, 0.5f);
          if (!collection.Query(query, 3).ok()) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(collection.size(), 600u);
}

TEST(ConcurrencyTest, ParallelRegistryMutations) {
  auto world = testutil::MakeWorld(2);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        if (world.registry->List().size() > 10) ++failures;
        (void)world.registry->Contains("llama3:8b");
        auto model = world.registry->Get("mistral:7b");
        if (!model.ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, EmbeddingCacheUnderContention) {
  auto inner = std::make_shared<embedding::HashEmbedder>();
  embedding::EmbeddingCache cache(inner, 32);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 300; ++i) {
        const std::string text =
            "text " + std::to_string((t * 7 + i) % 50);
        const auto cached = cache.Embed(text);
        if (cached != inner->Embed(text)) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 32u);
}

TEST(ConcurrencyTest, ParallelSessionStoreAccess) {
  session::SessionStore store;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 100; ++i) {
        auto session = store.GetOrCreate("s" + std::to_string(i % 10));
        if (!session.ok()) {
          ++failures;
          continue;
        }
        (*session)->Append(session::Role::kUser,
                           "msg " + std::to_string(t * 100 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.size(), 10u);
}

TEST(ConcurrencyTest, ApiServiceParallelRequests) {
  auto world = testutil::MakeWorld(3);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db, sessions);
  app::ApiService service(&engine);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 3; ++i) {
        Json request = Json::MakeObject();
        request.Set("session", "api-" + std::to_string(t));
        request.Set("query",
                    world.dataset[(t + i) % world.dataset.size()].question);
        auto response = service.Handle("/api/query", request);
        if (!response["ok"].AsBool()) ++failures;
        auto health = service.Handle("/api/health", Json::MakeObject());
        if (!health["ok"].AsBool()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// N threads drive whole queries through ONE shared continuous-batching
// scheduler (DESIGN.md §13): every stream of every query competes for the
// same replica slots. All queries must complete, and the scheduler must
// come back to rest with no leaked admissions.
TEST(ConcurrencyTest, SharedSchedulerAcrossConcurrentQueries) {
  auto world = testutil::MakeWorld(4);
  llm::SchedulerConfig config;
  config.replicas_per_model = 2;
  world.runtime->EnableScheduler(config);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db, sessions);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      core::SearchEngine::QueryOptions options;
      options.algorithm =
          t % 2 == 0 ? core::Algorithm::kOua : core::Algorithm::kMab;
      options.token_budget = 256;
      for (int i = 0; i < 3; ++i) {
        const auto& item = world.dataset[(t * 3 + i) % world.dataset.size()];
        auto result = engine.Ask("batched-" + std::to_string(t),
                                 item.question, options);
        if (!result.ok() || result->orchestration.answer.empty()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = world.runtime->scheduler()->stats();
  EXPECT_EQ(stats.runnable, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.finished_total, stats.admitted_total);
  EXPECT_GT(stats.dispatches, 0u);
  EXPECT_GT(stats.total_service_tokens, 0u);
}

// Raw Admit/ExecuteChunk/Finish hammer: many threads, two replica classes,
// short random streams, some finished early and some abandoned — the
// retire-while-queued and preemption paths all race here. Gauges must
// return to zero.
TEST(ConcurrencyTest, SchedulerAdmitExecuteFinishHammer) {
  llm::SchedulerConfig config;
  config.replicas_per_model = 2;
  llm::BatchScheduler scheduler(config);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(0xBA7C4ull + t);
      for (int i = 0; i < 40; ++i) {
        llm::BatchScheduler::AdmitOptions options;
        options.model = (t + i) % 2 == 0 ? "alpha" : "beta";
        options.weight = 0.5 + static_cast<double>(rng.NextUint64() % 4);
        options.hedge = rng.NextUint64() % 8 == 0;
        options.tokens_per_second = 8.0;
        const auto id = scheduler.Admit(options);
        const size_t chunks = 1 + rng.NextUint64() % 3;
        for (size_t c = 0; c < chunks; ++c) {
          auto chunk = scheduler.ExecuteChunk(
              id, 8, [&](size_t) -> StatusOr<llm::Chunk> {
                llm::Chunk out;
                out.num_tokens = 8;
                out.done = c + 1 == chunks && rng.NextUint64() % 2 == 0;
                return out;
              });
          if (!chunk.ok()) {
            ++failures;
            break;
          }
          if (chunk->done) break;
        }
        // Abandoned or completed either way: Finish must be idempotent.
        scheduler.Finish(id);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.runnable, 0u);
  EXPECT_EQ(stats.waiting, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.admitted_total, 8u * 40u);
  EXPECT_EQ(stats.finished_total, stats.admitted_total);
}

}  // namespace
}  // namespace llmms
