#include <cstdio>
#include <gtest/gtest.h>

#include "llmms/llm/model_card.h"
#include "llmms/llm/synthetic_model.h"
#include "llmms/vectordb/durable_collection.h"
#include "testutil.h"

namespace llmms {
namespace {

// -------------------------------------------------- durable collections
vectordb::Collection::Options DcOptions() {
  vectordb::Collection::Options opts;
  opts.dimension = 3;
  opts.index_kind = vectordb::IndexKind::kFlat;
  return opts;
}

vectordb::VectorRecord DcRecord(const std::string& id, float x) {
  vectordb::VectorRecord record;
  record.id = id;
  record.vector = {x, 1.0f - x, 0.5f};
  record.document = "doc " + id;
  return record;
}

TEST(DurableCollectionTest, SurvivesReopen) {
  const std::string path = ::testing::TempDir() + "/durable_basic.wal";
  std::remove(path.c_str());
  {
    auto dc = vectordb::DurableCollection::Open("d", DcOptions(), path);
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE((*dc)->Upsert(DcRecord("a", 0.2f)).ok());
    ASSERT_TRUE((*dc)->Upsert(DcRecord("b", 0.7f)).ok());
    ASSERT_TRUE((*dc)->Delete("a").ok());
  }  // "crash": the object goes away; only the log remains
  vectordb::DurableCollection::OpenStats stats;
  auto reopened =
      vectordb::DurableCollection::Open("d", DcOptions(), path, &stats);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(stats.replayed_upserts, 2u);
  EXPECT_EQ(stats.replayed_deletes, 1u);
  EXPECT_FALSE(stats.recovered_torn_tail);
  EXPECT_EQ((*reopened)->size(), 1u);
  auto record = (*reopened)->Get("b");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->document, "doc b");
  std::remove(path.c_str());
}

TEST(DurableCollectionTest, RecoversFromTornTail) {
  const std::string path = ::testing::TempDir() + "/durable_torn.wal";
  std::remove(path.c_str());
  {
    auto dc = vectordb::DurableCollection::Open("d", DcOptions(), path);
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE((*dc)->Upsert(DcRecord("a", 0.2f)).ok());
    ASSERT_TRUE((*dc)->Upsert(DcRecord("b", 0.7f)).ok());
  }
  // Simulate a crash mid-append: chop off the last few bytes.
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    const long size = ftell(f);
    fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 5), 0);
  }
  vectordb::DurableCollection::OpenStats stats;
  auto recovered =
      vectordb::DurableCollection::Open("d", DcOptions(), path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(stats.recovered_torn_tail);
  EXPECT_EQ((*recovered)->size(), 1u);  // only "a" was fully durable
  // Writes continue cleanly after recovery, and a further reopen sees them.
  ASSERT_TRUE((*recovered)->Upsert(DcRecord("c", 0.9f)).ok());
  recovered->reset();
  auto again = vectordb::DurableCollection::Open("d", DcOptions(), path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->size(), 2u);
  std::remove(path.c_str());
}

TEST(DurableCollectionTest, CompactShrinksLog) {
  const std::string path = ::testing::TempDir() + "/durable_compact.wal";
  std::remove(path.c_str());
  auto dc = vectordb::DurableCollection::Open("d", DcOptions(), path);
  ASSERT_TRUE(dc.ok());
  // Churn: repeated updates of the same key bloat the log.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*dc)->Upsert(DcRecord("hot", 0.01f * i)).ok());
  }
  auto file_size = [&]() {
    FILE* f = fopen(path.c_str(), "rb");
    fseek(f, 0, SEEK_END);
    const long size = ftell(f);
    fclose(f);
    return size;
  };
  const long before = file_size();
  ASSERT_TRUE((*dc)->Compact().ok());
  const long after = file_size();
  EXPECT_LT(after, before / 10);
  EXPECT_EQ((*dc)->size(), 1u);
  // Post-compaction writes and replay still work.
  ASSERT_TRUE((*dc)->Upsert(DcRecord("cold", 0.5f)).ok());
  dc->reset();
  auto reopened = vectordb::DurableCollection::Open("d", DcOptions(), path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 2u);
  std::remove(path.c_str());
}

TEST(DurableCollectionTest, QueriesPassThrough) {
  const std::string path = ::testing::TempDir() + "/durable_query.wal";
  std::remove(path.c_str());
  auto dc = vectordb::DurableCollection::Open("d", DcOptions(), path);
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE((*dc)->Upsert(DcRecord("x", 0.9f)).ok());
  auto hits = (*dc)->Query({0.9f, 0.1f, 0.5f}, 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, "x");
  std::remove(path.c_str());
}

// -------------------------------------------------------- model cards
TEST(ModelCardTest, JsonRoundTripPreservesProfile) {
  for (const auto& profile : llm::DefaultProfiles()) {
    auto parsed = llm::ProfileFromJson(llm::ProfileToJson(profile));
    ASSERT_TRUE(parsed.ok()) << profile.name;
    EXPECT_EQ(parsed->name, profile.name);
    EXPECT_EQ(parsed->family, profile.family);
    EXPECT_EQ(parsed->memory_mb, profile.memory_mb);
    EXPECT_DOUBLE_EQ(parsed->tokens_per_second, profile.tokens_per_second);
    EXPECT_EQ(parsed->context_window, profile.context_window);
    EXPECT_EQ(parsed->domain_competence, profile.domain_competence);
    EXPECT_DOUBLE_EQ(parsed->verbosity, profile.verbosity);
    EXPECT_EQ(parsed->seed, profile.seed);
  }
}

TEST(ModelCardTest, RejectsInvalidCards) {
  EXPECT_TRUE(llm::ProfileFromJson("not json").status().IsInvalidArgument());
  EXPECT_TRUE(
      llm::ProfileFromJson("{\"schema\":\"wrong\"}").status().IsInvalidArgument());
  EXPECT_TRUE(llm::ProfileFromJson(
                  R"({"schema":"llmms-model-card-v1","name":""})")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(llm::ProfileFromJson(
                  R"({"schema":"llmms-model-card-v1","name":"x",
                      "tokens_per_second":0})")
                  .status()
                  .IsInvalidArgument());
}

TEST(ModelCardTest, FileRoundTripAndRegistryIntegration) {
  auto world = testutil::MakeWorld(2);
  const std::string path = ::testing::TempDir() + "/custom_model.json";

  // Author a new model as a card on disk, then load and register it — the
  // plug-and-play flow of §3.6.
  llm::ModelProfile custom = llm::DefaultProfiles()[0];
  custom.name = "custom:13b";
  custom.memory_mb = 9000;
  ASSERT_TRUE(llm::SaveModelCard(custom, path).ok());

  auto loaded = llm::LoadModelCard(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(world.registry
                  ->Register(std::make_shared<llm::SyntheticModel>(
                      *loaded, world.knowledge))
                  .ok());
  ASSERT_TRUE(world.runtime->LoadModel("custom:13b").ok());
  llm::GenerationRequest request;
  request.prompt = world.dataset[0].question;
  auto result = world.runtime->Generate("custom:13b", request);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->text.empty());
  std::remove(path.c_str());
}

TEST(ModelCardTest, WriteDefaultCards) {
  const std::string dir = ::testing::TempDir();
  auto paths = llm::WriteDefaultModelCards(dir);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 3u);
  for (const auto& path : *paths) {
    auto card = llm::LoadModelCard(path);
    EXPECT_TRUE(card.ok()) << path;
    std::remove(path.c_str());
  }
  EXPECT_FALSE(llm::LoadModelCard("/nonexistent/card.json").ok());
}

}  // namespace
}  // namespace llmms
