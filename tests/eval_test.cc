#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>
#include <unordered_set>

#include "llmms/eval/metrics.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/eval/report.h"
#include "testutil.h"

namespace llmms::eval {
namespace {

TEST(QaDatasetTest, GeneratesRequestedCounts) {
  DatasetOptions options;
  options.questions_per_domain = 5;
  const auto items = GenerateDataset(options);
  EXPECT_EQ(items.size(), 5u * llm::CanonicalDomains().size());
}

TEST(QaDatasetTest, DomainFilterRestricts) {
  DatasetOptions options;
  options.questions_per_domain = 3;
  options.domains = {"math", "logic"};
  const auto items = GenerateDataset(options);
  EXPECT_EQ(items.size(), 6u);
  for (const auto& item : items) {
    EXPECT_TRUE(item.domain == "math" || item.domain == "logic");
  }
}

TEST(QaDatasetTest, ItemsWellFormed) {
  DatasetOptions options;
  options.questions_per_domain = 10;
  for (const auto& item : GenerateDataset(options)) {
    EXPECT_FALSE(item.id.empty());
    EXPECT_FALSE(item.question.empty());
    EXPECT_FALSE(item.golden.empty());
    EXPECT_GE(item.correct.size(), 2u) << item.id;
    EXPECT_GE(item.incorrect.size(), 3u) << item.id;
    for (const auto& wrong : item.incorrect) {
      EXPECT_NE(wrong, item.golden) << item.id;
    }
  }
}

TEST(QaDatasetTest, QuestionsAreUnique) {
  DatasetOptions options;
  options.questions_per_domain = 30;
  const auto items = GenerateDataset(options);
  std::unordered_set<std::string> questions;
  for (const auto& item : items) questions.insert(item.question);
  // Allow a tiny number of collisions from the pseudo-word generator.
  EXPECT_GE(questions.size(), items.size() - 2);
}

TEST(QaDatasetTest, DeterministicForSeed) {
  DatasetOptions options;
  options.questions_per_domain = 5;
  const auto a = GenerateDataset(options);
  const auto b = GenerateDataset(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].question, b[i].question);
    EXPECT_EQ(a[i].golden, b[i].golden);
  }
  options.seed = 999;
  const auto c = GenerateDataset(options);
  EXPECT_NE(a[0].question, c[0].question);
}

TEST(QaDatasetTest, JsonlRoundTrip) {
  DatasetOptions options;
  options.questions_per_domain = 3;
  const auto items = GenerateDataset(options);
  const std::string path = ::testing::TempDir() + "/dataset.jsonl";
  ASSERT_TRUE(SaveDatasetJsonl(items, path).ok());
  auto loaded = LoadDatasetJsonl(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, items[i].id);
    EXPECT_EQ((*loaded)[i].question, items[i].question);
    EXPECT_EQ((*loaded)[i].golden, items[i].golden);
    EXPECT_EQ((*loaded)[i].correct, items[i].correct);
    EXPECT_EQ((*loaded)[i].incorrect, items[i].incorrect);
  }
  std::remove(path.c_str());
}

TEST(QaDatasetTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/bad.jsonl";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("this is not json\n", f);
    fclose(f);
  }
  EXPECT_FALSE(LoadDatasetJsonl(path).ok());
  EXPECT_FALSE(LoadDatasetJsonl("/nonexistent.jsonl").ok());
  std::remove(path.c_str());
}

TEST(MetricsTest, ScoreResponseRewardsTruthfulAnswer) {
  auto world = testutil::MakeWorld(2);
  const auto& item = world.dataset[0];
  const auto good = ScoreResponse(*world.embedder, item, item.golden);
  const auto bad = ScoreResponse(*world.embedder, item, item.incorrect[0]);
  EXPECT_GT(good.reward, bad.reward);
  EXPECT_GT(good.f1, bad.f1);
  EXPECT_TRUE(good.correct);
  EXPECT_FALSE(bad.correct);
  EXPECT_EQ(good.question_id, item.id);
  EXPECT_EQ(good.domain, item.domain);
}

TEST(MetricsTest, IsCorrectComparesAgainstBothSets) {
  auto world = testutil::MakeWorld(2);
  const auto& item = world.dataset[0];
  EXPECT_TRUE(IsCorrect(item, item.correct[0]));
  EXPECT_FALSE(IsCorrect(item, item.incorrect[1]));
  EXPECT_FALSE(IsCorrect(item, ""));
}

TEST(MetricsTest, AggregateAveragesPerQuestionValues) {
  std::vector<QuestionMetrics> metrics(2);
  metrics[0].reward = 1.0;
  metrics[0].f1 = 0.5;
  metrics[0].correct = true;
  metrics[0].total_tokens = 100;
  metrics[0].answer_tokens = 40;
  metrics[1].reward = 0.0;
  metrics[1].f1 = 0.1;
  metrics[1].correct = false;
  metrics[1].total_tokens = 300;
  metrics[1].answer_tokens = 80;
  const auto agg = Aggregate("test", metrics);
  EXPECT_EQ(agg.num_questions, 2u);
  EXPECT_DOUBLE_EQ(agg.mean_reward, 0.5);
  EXPECT_DOUBLE_EQ(agg.mean_f1, 0.3);
  EXPECT_DOUBLE_EQ(agg.accuracy, 0.5);
  EXPECT_DOUBLE_EQ(agg.mean_total_tokens, 200.0);
  EXPECT_DOUBLE_EQ(agg.mean_answer_tokens, 60.0);
  EXPECT_DOUBLE_EQ(agg.mean_reward_per_total_token, (1.0 / 100.0 + 0.0) / 2.0);
  EXPECT_DOUBLE_EQ(agg.mean_reward_per_answer_token, (1.0 / 40.0 + 0.0) / 2.0);
}

TEST(MetricsTest, AggregateComputesDispersion) {
  std::vector<QuestionMetrics> metrics(4);
  metrics[0].reward = 1.0;
  metrics[1].reward = 3.0;
  metrics[2].reward = 5.0;
  metrics[3].reward = 7.0;
  const auto agg = Aggregate("disp", metrics);
  EXPECT_DOUBLE_EQ(agg.mean_reward, 4.0);
  // Sample stddev of {1,3,5,7} = sqrt(20/3).
  EXPECT_NEAR(agg.reward_stddev, std::sqrt(20.0 / 3.0), 1e-12);
  EXPECT_NEAR(agg.reward_sem, agg.reward_stddev / 2.0, 1e-12);
  // Single observation: no dispersion defined.
  const auto one = Aggregate("one", {metrics[0]});
  EXPECT_DOUBLE_EQ(one.reward_stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.reward_sem, 0.0);
}

TEST(MetricsTest, AggregateEmptyIsZeroes) {
  const auto agg = Aggregate("empty", {});
  EXPECT_EQ(agg.num_questions, 0u);
  EXPECT_DOUBLE_EQ(agg.mean_reward, 0.0);
}

TEST(MetricsTest, AggregateByDomainSplits) {
  std::vector<QuestionMetrics> metrics(3);
  metrics[0].domain = "math";
  metrics[0].reward = 1.0;
  metrics[1].domain = "math";
  metrics[1].reward = 0.0;
  metrics[2].domain = "logic";
  metrics[2].reward = 0.8;
  const auto by_domain = AggregateByDomain("s", metrics);
  ASSERT_EQ(by_domain.size(), 2u);
  EXPECT_EQ(by_domain[0].first, "logic");
  EXPECT_DOUBLE_EQ(by_domain[0].second.mean_reward, 0.8);
  EXPECT_EQ(by_domain[1].first, "math");
  EXPECT_DOUBLE_EQ(by_domain[1].second.mean_reward, 0.5);
}

TEST(ReportTest, TablesContainEveryStrategy) {
  StrategyAggregate row;
  row.strategy = "llm-ms-oua";
  row.num_questions = 10;
  row.mean_reward = 0.42;
  row.mean_f1 = 0.31;
  std::ostringstream text;
  PrintAggregateTable(text, {row});
  EXPECT_NE(text.str().find("llm-ms-oua"), std::string::npos);
  EXPECT_NE(text.str().find("0.42"), std::string::npos);

  std::ostringstream series;
  PrintMetricSeries(series, "Figure 8.1", "reward", {row});
  EXPECT_NE(series.str().find("Figure 8.1"), std::string::npos);
  EXPECT_NE(series.str().find("0.4200"), std::string::npos);

  std::ostringstream markdown;
  PrintMarkdownTable(markdown, {row});
  EXPECT_NE(markdown.str().find("| llm-ms-oua |"), std::string::npos);
}

}  // namespace
}  // namespace llmms::eval
