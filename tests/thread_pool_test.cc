#include "llmms/common/thread_pool.h"

#include <atomic>
#include <gtest/gtest.h>

namespace llmms {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto future = pool.Submit([]() { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter]() { ++counter; });
    }
  }  // destructor must run all queued tasks before joining
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TasksCanReturnValuesOfDifferentTypes) {
  ThreadPool pool(2);
  auto s = pool.Submit([]() { return std::string("hi"); });
  auto d = pool.Submit([]() { return 2.5; });
  EXPECT_EQ(s.get(), "hi");
  EXPECT_DOUBLE_EQ(d.get(), 2.5);
}

}  // namespace
}  // namespace llmms
