#include "llmms/core/search_engine.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace llmms::core {
namespace {

class SearchEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = testutil::MakeWorld(6);
    db_ = std::make_shared<vectordb::VectorDatabase>();
    sessions_ = std::make_shared<session::SessionStore>();
    engine_ = std::make_unique<SearchEngine>(world_.runtime.get(),
                                             world_.embedder, db_, sessions_);
  }

  testutil::World world_;
  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::shared_ptr<session::SessionStore> sessions_;
  std::unique_ptr<SearchEngine> engine_;
};

TEST_F(SearchEngineTest, AskAnswersWithDefaultOua) {
  SearchEngine::QueryOptions options;
  auto result = engine_->Ask("s1", world_.dataset[0].question, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->orchestration.answer.empty());
  EXPECT_FALSE(result->orchestration.best_model.empty());
  EXPECT_NE(result->prompt.find(world_.dataset[0].question),
            std::string::npos);
}

TEST_F(SearchEngineTest, RejectsEmptyQuery) {
  EXPECT_TRUE(
      engine_->Ask("s1", "", {}).status().IsInvalidArgument());
}

TEST_F(SearchEngineTest, AllAlgorithmsWork) {
  for (auto algorithm : {Algorithm::kOua, Algorithm::kMab, Algorithm::kHybrid,
                         Algorithm::kSingle}) {
    SearchEngine::QueryOptions options;
    options.algorithm = algorithm;
    auto result = engine_->Ask("s-algo", world_.dataset[1].question, options);
    ASSERT_TRUE(result.ok()) << AlgorithmToString(algorithm);
    EXPECT_FALSE(result->orchestration.answer.empty());
  }
}

TEST_F(SearchEngineTest, SingleAlgorithmUsesRequestedModel) {
  SearchEngine::QueryOptions options;
  options.algorithm = Algorithm::kSingle;
  options.single_model = "qwen2:7b";
  auto result = engine_->Ask("s1", world_.dataset[0].question, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->orchestration.best_model, "qwen2:7b");
}

TEST_F(SearchEngineTest, UploadFeedsRetrievalIntoPrompt) {
  const auto& item = world_.dataset[0];
  ASSERT_TRUE(engine_
                  ->Upload("s-rag", "notes",
                           "Background fact. " + item.golden +
                               " More background noise.")
                  .ok());
  SearchEngine::QueryOptions options;
  auto result = engine_->Ask("s-rag", item.question, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->retrieved_chunks, 0u);
  EXPECT_NE(result->prompt.find("Use the following context"),
            std::string::npos);
}

TEST_F(SearchEngineTest, RagCanBeDisabled) {
  const auto& item = world_.dataset[0];
  ASSERT_TRUE(engine_->Upload("s-norag", "notes", item.golden).ok());
  SearchEngine::QueryOptions options;
  options.use_rag = false;
  auto result = engine_->Ask("s-norag", item.question, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->retrieved_chunks, 0u);
  EXPECT_EQ(result->prompt.find("Use the following context"),
            std::string::npos);
}

TEST_F(SearchEngineTest, SessionHistoryCarriesIntoNextPrompt) {
  SearchEngine::QueryOptions options;
  auto first = engine_->Ask("s-hist", world_.dataset[0].question, options);
  ASSERT_TRUE(first.ok());
  auto second = engine_->Ask("s-hist", world_.dataset[1].question, options);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->prompt.find("Conversation so far"), std::string::npos);
  // The first question must be referenced in the second prompt's history.
  auto session = sessions_->Get("s-hist");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->message_count(), 4u);  // 2 turns x (user + assistant)
}

TEST_F(SearchEngineTest, HistoryCanBeDisabled) {
  SearchEngine::QueryOptions options;
  options.use_history = false;
  ASSERT_TRUE(engine_->Ask("s-nohist", world_.dataset[0].question, options).ok());
  auto second = engine_->Ask("s-nohist", world_.dataset[1].question, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->prompt.find("Conversation so far"), std::string::npos);
}

TEST_F(SearchEngineTest, EndSessionDropsStateAndCollection) {
  ASSERT_TRUE(engine_->Upload("s-end", "doc", "Some text to chunk.").ok());
  ASSERT_TRUE(engine_->Ask("s-end", world_.dataset[0].question, {}).ok());
  ASSERT_TRUE(engine_->EndSession("s-end").ok());
  EXPECT_TRUE(sessions_->Get("s-end").status().IsNotFound());
  EXPECT_TRUE(db_->GetCollection("session-s-end").status().IsNotFound());
}

TEST_F(SearchEngineTest, StreamCallbackReceivesFinalEvent) {
  bool saw_final = false;
  SearchEngine::QueryOptions options;
  auto result = engine_->Ask("s-stream", world_.dataset[0].question, options,
                             [&saw_final](const OrchestratorEvent& e) {
                               saw_final =
                                   saw_final || e.type == EventType::kFinal;
                             });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(saw_final);
}

TEST_F(SearchEngineTest, ExplicitModelSubsetHonored) {
  SearchEngine::QueryOptions options;
  options.models = {"mistral:7b", "qwen2:7b"};
  auto result = engine_->Ask("s-subset", world_.dataset[0].question, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->orchestration.per_model.size(), 2u);
  EXPECT_EQ(result->orchestration.per_model.count("llama3:8b"), 0u);
}

TEST_F(SearchEngineTest, MemoryGraphRecallsRelatedExchanges) {
  SearchEngine::QueryOptions options;
  options.use_memory_graph = true;
  options.use_history = false;  // isolate the memory-graph contribution
  // First exchange populates the graph.
  auto first = engine_->Ask("s-mem", world_.dataset[0].question, options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->recalled_memories, 0u);
  // A re-ask of the same question must recall the earlier exchange and
  // inject it into the prompt.
  auto second = engine_->Ask("s-mem", world_.dataset[0].question, options);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->recalled_memories, 1u);
  EXPECT_NE(second->prompt.find("Related earlier exchange"),
            std::string::npos);
}

TEST_F(SearchEngineTest, MemoryGraphOffByDefault) {
  ASSERT_TRUE(engine_->Ask("s-nomem", world_.dataset[0].question, {}).ok());
  auto second = engine_->Ask("s-nomem", world_.dataset[0].question, {});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->recalled_memories, 0u);
  EXPECT_EQ(second->prompt.find("Related earlier exchange"),
            std::string::npos);
}

TEST_F(SearchEngineTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmToString(Algorithm::kOua), "oua");
  EXPECT_STREQ(AlgorithmToString(Algorithm::kMab), "mab");
  EXPECT_STREQ(AlgorithmToString(Algorithm::kHybrid), "hybrid");
  EXPECT_STREQ(AlgorithmToString(Algorithm::kSingle), "single");
}

}  // namespace
}  // namespace llmms::core
