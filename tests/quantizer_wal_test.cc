#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>

#include "llmms/common/rng.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/quantizer.h"
#include "llmms/vectordb/wal.h"

namespace llmms::vectordb {
namespace {

std::vector<Vector> RandomSample(Rng* rng, size_t n, size_t dim) {
  std::vector<Vector> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vector v(dim);
    for (auto& x : v) x = static_cast<float>(rng->Normal());
    out.push_back(std::move(v));
  }
  return out;
}

TEST(ScalarQuantizerTest, TrainValidatesInput) {
  ScalarQuantizer quantizer;
  EXPECT_TRUE(quantizer.Train({}).IsInvalidArgument());
  EXPECT_TRUE(quantizer.Train({Vector{}}).IsInvalidArgument());
  EXPECT_TRUE(
      quantizer.Train({Vector{1.0f, 2.0f}, Vector{1.0f}}).IsInvalidArgument());
  EXPECT_FALSE(quantizer.trained());
  EXPECT_TRUE(quantizer.Encode({1.0f}).status().IsFailedPrecondition());
  EXPECT_TRUE(quantizer.Decode({1}).status().IsFailedPrecondition());
}

TEST(ScalarQuantizerTest, RoundTripErrorWithinHalfBucket) {
  Rng rng(7);
  const auto sample = RandomSample(&rng, 200, 16);
  ScalarQuantizer quantizer;
  ASSERT_TRUE(quantizer.Train(sample).ok());
  for (const auto& v : sample) {
    auto codes = quantizer.Encode(v);
    ASSERT_TRUE(codes.ok());
    auto decoded = quantizer.Decode(*codes);
    ASSERT_TRUE(decoded.ok());
    for (size_t d = 0; d < v.size(); ++d) {
      EXPECT_LE(std::abs((*decoded)[d] - v[d]),
                quantizer.MaxErrorFor(d) + 1e-6f);
    }
  }
}

TEST(ScalarQuantizerTest, OutOfRangeValuesClamp) {
  ScalarQuantizer quantizer;
  ASSERT_TRUE(quantizer.Train({Vector{0.0f}, Vector{1.0f}}).ok());
  auto low = quantizer.Encode({-100.0f});
  auto high = quantizer.Encode({100.0f});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ((*low)[0], 0);
  EXPECT_EQ((*high)[0], 255);
}

TEST(ScalarQuantizerTest, DegenerateDimensionHandled) {
  ScalarQuantizer quantizer;
  ASSERT_TRUE(quantizer.Train({Vector{5.0f}, Vector{5.0f}}).ok());
  auto codes = quantizer.Encode({5.0f});
  ASSERT_TRUE(codes.ok());
  auto decoded = quantizer.Decode(*codes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR((*decoded)[0], 5.0f, 1.0f);
}

TEST(QuantizedFlatIndexTest, NearlyMatchesExactIndex) {
  Rng rng(11);
  const size_t dim = 32;
  const auto corpus = RandomSample(&rng, 400, dim);
  ScalarQuantizer quantizer;
  ASSERT_TRUE(quantizer.Train(corpus).ok());

  FlatIndex exact(dim, DistanceMetric::kCosine);
  QuantizedFlatIndex quantized(quantizer, DistanceMetric::kCosine);
  for (const auto& v : corpus) {
    ASSERT_TRUE(exact.Add(v).ok());
    ASSERT_TRUE(quantized.Add(v).ok());
  }
  EXPECT_EQ(quantized.code_bytes(), 400u * dim);  // 1 byte per dim (4x less)

  size_t agreement = 0;
  size_t total = 0;
  for (int q = 0; q < 25; ++q) {
    Vector query(dim);
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    auto truth = exact.Search(query, 10);
    auto approx = quantized.Search(query, 10);
    ASSERT_TRUE(truth.ok());
    ASSERT_TRUE(approx.ok());
    std::set<SlotId> truth_slots;
    for (const auto& hit : *truth) truth_slots.insert(hit.slot);
    for (const auto& hit : *approx) agreement += truth_slots.count(hit.slot);
    total += truth->size();
  }
  EXPECT_GE(static_cast<double>(agreement) / static_cast<double>(total), 0.85);
}

TEST(QuantizedFlatIndexTest, RemoveAndGetVector) {
  ScalarQuantizer quantizer;
  ASSERT_TRUE(quantizer.Train({Vector{0.0f, 0.0f}, Vector{1.0f, 1.0f}}).ok());
  QuantizedFlatIndex index(quantizer, DistanceMetric::kL2);
  ASSERT_TRUE(index.Add({0.2f, 0.8f}).ok());
  ASSERT_TRUE(index.Add({0.9f, 0.1f}).ok());
  EXPECT_EQ(index.size(), 2u);
  const Vector* v = index.GetVector(0);
  ASSERT_NE(v, nullptr);
  EXPECT_NEAR((*v)[0], 0.2f, 0.01f);
  ASSERT_TRUE(index.Remove(0).ok());
  EXPECT_EQ(index.GetVector(0), nullptr);
  EXPECT_TRUE(index.Remove(9).IsNotFound());
  auto hits = index.Search({0.2f, 0.8f}, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].slot, 1u);
}

// ------------------------------------------------------------------- WAL
Collection::Options WalCollectionOptions() {
  Collection::Options opts;
  opts.dimension = 3;
  opts.index_kind = IndexKind::kFlat;
  return opts;
}

VectorRecord WalRecord(const std::string& id, float x) {
  VectorRecord record;
  record.id = id;
  record.vector = {x, 0.0f, 1.0f - x};
  record.metadata["origin"] = "wal";
  record.document = "doc " + id;
  return record;
}

TEST(WalTest, ReplayRebuildsCollection) {
  const std::string path = ::testing::TempDir() + "/wal_basic.log";
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("a", 0.1f)).ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("b", 0.5f)).ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("a", 0.9f)).ok());  // update
    ASSERT_TRUE((*wal)->AppendDelete("b").ok());
  }
  Collection collection("rebuilt", WalCollectionOptions());
  auto stats = WriteAheadLog::Replay(path, &collection);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->upserts, 3u);
  EXPECT_EQ(stats->deletes, 1u);
  EXPECT_FALSE(stats->torn_tail);
  EXPECT_EQ(collection.size(), 1u);
  auto record = collection.Get("a");
  ASSERT_TRUE(record.ok());
  EXPECT_NEAR(record->vector[0], 0.9f, 1e-6);
  EXPECT_EQ(record->metadata.at("origin"), "wal");
  std::remove(path.c_str());
}

TEST(WalTest, MissingLogIsEmptyReplay) {
  Collection collection("empty", WalCollectionOptions());
  auto stats = WriteAheadLog::Replay("/nonexistent/wal.log", &collection);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->upserts, 0u);
  EXPECT_EQ(collection.size(), 0u);
}

TEST(WalTest, TornTailToleratedAtEveryTruncationPoint) {
  const std::string path = ::testing::TempDir() + "/wal_torn.log";
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("a", 0.1f)).ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("b", 0.5f)).ok());
  }
  std::string bytes;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    fclose(f);
  }
  // Truncate at every byte offset: replay must never fail, and must apply
  // only fully intact records.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string torn = ::testing::TempDir() + "/wal_cut.log";
    {
      FILE* f = fopen(torn.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      fwrite(bytes.data(), 1, cut, f);
      fclose(f);
    }
    Collection collection("torn", WalCollectionOptions());
    auto stats = WriteAheadLog::Replay(torn, &collection);
    ASSERT_TRUE(stats.ok()) << "cut at " << cut;
    EXPECT_LE(stats->upserts, 2u);
    EXPECT_EQ(collection.size(), stats->upserts);
    if (cut < bytes.size()) {
      EXPECT_TRUE(stats->torn_tail || stats->upserts * 0 == 0);
    }
    std::remove(torn.c_str());
  }
  std::remove(path.c_str());
}

TEST(WalTest, CorruptChecksumStopsReplay) {
  const std::string path = ::testing::TempDir() + "/wal_corrupt.log";
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("a", 0.1f)).ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("b", 0.5f)).ok());
  }
  // Flip a byte inside the second record's payload.
  {
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, -3, SEEK_END);
    const int c = fgetc(f);
    fseek(f, -3, SEEK_END);
    fputc(c ^ 0xFF, f);
    fclose(f);
  }
  Collection collection("corrupt", WalCollectionOptions());
  auto stats = WriteAheadLog::Replay(path, &collection);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->upserts, 1u);  // only the intact first record applied
  EXPECT_TRUE(stats->torn_tail);
  std::remove(path.c_str());
}

TEST(WalTest, AppendValidatesIds) {
  const std::string path = ::testing::TempDir() + "/wal_valid.log";
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  VectorRecord empty;
  EXPECT_TRUE((*wal)->AppendUpsert(empty).IsInvalidArgument());
  EXPECT_TRUE((*wal)->AppendDelete("").IsInvalidArgument());
  EXPECT_FALSE(WriteAheadLog::Open("/nonexistent-dir/x.log").ok());
  std::remove(path.c_str());
}

TEST(WalTest, ReopenAppendsToExistingLog) {
  const std::string path = ::testing::TempDir() + "/wal_reopen.log";
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("a", 0.1f)).ok());
  }
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendUpsert(WalRecord("b", 0.2f)).ok());
  }
  Collection collection("reopen", WalCollectionOptions());
  auto stats = WriteAheadLog::Replay(path, &collection);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->upserts, 2u);
  EXPECT_EQ(collection.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace llmms::vectordb
