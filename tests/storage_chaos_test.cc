// Crash-at-every-syscall recovery harness for the storage plane
// (DESIGN.md §14). For each durable component — the WAL append path,
// DurableCollection compaction, VectorDatabase snapshots, and the
// StateStore — the sweep counts the I/O ops of a baseline run, then reruns
// the workload once per op index with FaultyFileSystem armed to kill the
// world exactly there, reopens through a clean filesystem (a process
// restart after a power cut), and asserts the recovery contract:
//
//   acked ⊆ recovered ⊆ attempted-prefix, record-atomically.
//
// Every write acknowledged under SyncPolicy::kEveryRecord survives; what
// was in flight is either fully present or fully absent (never torn into
// the visible state); and recovery never invents or resurrects records.
// Plus: seeded random-fault soaks, failpoint unit tests, and regression
// tests for the compaction-swap and stale-.compact bugs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/llm/model_card.h"
#include "llmms/llm/state_store.h"
#include "llmms/vectordb/database.h"
#include "llmms/vectordb/durable_collection.h"
#include "llmms/vectordb/wal.h"

namespace llmms {
namespace {

using vectordb::Collection;
using vectordb::DurableCollection;
using vectordb::VectorDatabase;
using vectordb::VectorRecord;
using vectordb::WriteAheadLog;

Collection::Options Dim3Options() {
  Collection::Options opts;
  opts.dimension = 3;
  opts.index_kind = vectordb::IndexKind::kFlat;
  return opts;
}

VectorRecord MakeRecord(const std::string& id, float x) {
  VectorRecord record;
  record.id = id;
  record.vector = {x, 2.0f * x, 1.0f - x};
  record.metadata["origin"] = "chaos";
  record.document = "doc " + id;
  return record;
}

WriteAheadLog::Options EveryRecord() {
  WriteAheadLog::Options opts;
  opts.sync_policy = WriteAheadLog::SyncPolicy::kEveryRecord;
  return opts;
}

// A fresh scratch directory per sweep iteration, so crash debris from one
// run can never leak into the next.
std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir =
      ::testing::TempDir() + "/storage_chaos_" + tag + "_" +
      std::to_string(counter++);
  std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

// ---------------------------------------------------------------------------
// FaultyFileSystem unit tests: each failpoint fires, is typed, and is
// deterministic for a fixed seed.
// ---------------------------------------------------------------------------

TEST(FaultyFileSystemTest, EnospcFailpointFiresWithTypedError) {
  RealFileSystem real;
  FsFaultConfig config;
  config.enospc_prob = 1.0;
  FaultyFileSystem faulty(&real, config);
  const std::string path = FreshDir("enospc") + "/f";
  auto file = faulty.OpenAppend(path);
  ASSERT_TRUE(file.ok());
  Status status = (*file)->Append("hello");
  ASSERT_TRUE(status.IsIOError());
  EXPECT_NE(status.message().find("ENOSPC"), std::string::npos);
  EXPECT_GE(faulty.op_counts().injected_faults, 1u);
}

TEST(FaultyFileSystemTest, ShortWriteLandsAPrefixThenFails) {
  RealFileSystem real;
  FsFaultConfig config;
  config.short_write_prob = 1.0;
  FaultyFileSystem faulty(&real, config);
  const std::string path = FreshDir("short") + "/f";
  auto file = faulty.OpenAppend(path);
  ASSERT_TRUE(file.ok());
  const std::string data(64, 'x');
  ASSERT_TRUE((*file)->Append(data).IsIOError());
  ASSERT_TRUE((*file)->Close().ok());
  auto on_disk = real.ReadFile(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_LT(on_disk->size(), data.size());  // a strict prefix landed
  EXPECT_EQ(*on_disk, data.substr(0, on_disk->size()));
}

TEST(FaultyFileSystemTest, SyncFailureIsTyped) {
  RealFileSystem real;
  FsFaultConfig config;
  config.sync_error_prob = 1.0;
  FaultyFileSystem faulty(&real, config);
  const std::string path = FreshDir("sync") + "/f";
  auto file = faulty.OpenAppend(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());
  EXPECT_TRUE((*file)->Sync().IsIOError());
}

TEST(FaultyFileSystemTest, LostRenameLeavesTargetUntouched) {
  RealFileSystem real;
  FsFaultConfig config;
  config.rename_error_prob = 1.0;
  FaultyFileSystem faulty(&real, config);
  const std::string dir = FreshDir("rename");
  ASSERT_TRUE(AtomicWriteFile(&real, dir + "/from", "new").ok());
  ASSERT_TRUE(AtomicWriteFile(&real, dir + "/to", "old").ok());
  EXPECT_TRUE(faulty.Rename(dir + "/from", dir + "/to").IsIOError());
  auto to = real.ReadFile(dir + "/to");
  ASSERT_TRUE(to.ok());
  EXPECT_EQ(*to, "old");
  EXPECT_TRUE(real.Exists(dir + "/from"));
}

TEST(FaultyFileSystemTest, ReadCorruptionFlipsExactlyOneBit) {
  RealFileSystem real;
  FsFaultConfig config;
  config.read_corrupt_prob = 1.0;
  FaultyFileSystem faulty(&real, config);
  const std::string dir = FreshDir("corrupt");
  const std::string data(128, 'a');
  ASSERT_TRUE(AtomicWriteFile(&real, dir + "/f", data).ok());
  auto read = faulty.ReadFile(dir + "/f");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), data.size());
  size_t differing_bits = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>((*read)[i] ^ data[i]);
    while (diff != 0) {
      differing_bits += diff & 1u;
      diff >>= 1u;
    }
  }
  EXPECT_EQ(differing_bits, 1u);
  EXPECT_EQ(faulty.op_counts().read_corruptions, 1u);
}

TEST(FaultyFileSystemTest, SameSeedSameFaults) {
  for (int round = 0; round < 2; ++round) {
    std::vector<bool> outcomes[2];
    for (int run = 0; run < 2; ++run) {
      RealFileSystem real;
      FsFaultConfig config;
      config.seed = 0xABCD;
      config.write_error_prob = 0.3;
      FaultyFileSystem faulty(&real, config);
      const std::string path = FreshDir("det") + "/f";
      auto file = faulty.OpenAppend(path);
      ASSERT_TRUE(file.ok());
      for (int i = 0; i < 32; ++i) {
        outcomes[run].push_back((*file)->Append("x").ok());
      }
    }
    EXPECT_EQ(outcomes[0], outcomes[1]);
  }
}

TEST(FaultyFileSystemTest, CrashPointHaltsTheWorld) {
  RealFileSystem real;
  FaultyFileSystem faulty(&real, {});
  faulty.ArmCrashPoint(2);
  const std::string dir = FreshDir("halt");
  auto f1 = faulty.OpenAppend(dir + "/a");  // op 0
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE((*f1)->Append("x").ok());  // op 1
  EXPECT_TRUE((*f1)->Append("y").IsIOError());  // op 2: the crash
  EXPECT_TRUE(faulty.crashed());
  EXPECT_TRUE(faulty.OpenAppend(dir + "/b").status().IsIOError());
  EXPECT_TRUE(faulty.ReadFile(dir + "/a").status().IsIOError());
}

TEST(FaultyFileSystemTest, CrashDropsUnsyncedSuffixAndUndoesRenames) {
  const std::string dir = FreshDir("undo");
  RealFileSystem real;
  ASSERT_TRUE(AtomicWriteFile(&real, dir + "/live", "old-contents").ok());

  FaultyFileSystem faulty(&real, {});
  faulty.ArmCrashPoint(1'000'000);  // arm tracking; crash far away
  {
    auto tmp = faulty.OpenTrunc(dir + "/live.tmp");
    ASSERT_TRUE(tmp.ok());
    ASSERT_TRUE((*tmp)->Append("new-contents").ok());
    ASSERT_TRUE((*tmp)->Sync().ok());
    ASSERT_TRUE((*tmp)->Close().ok());
  }
  ASSERT_TRUE(faulty.Rename(dir + "/live.tmp", dir + "/live").ok());
  // No SyncDir: the rename is not durable. Also leave unsynced bytes on a
  // second file.
  {
    auto scratch = faulty.OpenAppend(dir + "/scratch");
    ASSERT_TRUE(scratch.ok());
    ASSERT_TRUE((*scratch)->Append(std::string(100, 'z')).ok());
  }
  faulty.ArmCrashPoint(0);  // next op crashes
  EXPECT_TRUE(faulty.List(dir).status().IsIOError());

  // The un-dir-synced rename was undone and the clobbered contents restored.
  auto live = real.ReadFile(dir + "/live");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, "old-contents");
  // The scratch file's creation was never made durable with SyncDir, so the
  // crash either removed it outright or left a prefix of the unsynced bytes.
  auto scratch = real.ReadFile(dir + "/scratch");
  if (scratch.ok()) {
    EXPECT_LE(scratch->size(), 100u);
  } else {
    EXPECT_TRUE(scratch.status().IsNotFound());
  }
}

TEST(FsHelpersTest, DirnameOf) {
  EXPECT_EQ(DirnameOf("/a/b/c"), "/a/b");
  EXPECT_EQ(DirnameOf("/a"), "/");
  EXPECT_EQ(DirnameOf("rel/x"), "rel");
  EXPECT_EQ(DirnameOf("bare"), ".");
}

TEST(FsHelpersTest, AtomicWriteFileReplacesAndCleansTemp) {
  RealFileSystem real;
  const std::string dir = FreshDir("awf");
  ASSERT_TRUE(AtomicWriteFile(&real, dir + "/f", "v1").ok());
  ASSERT_TRUE(AtomicWriteFile(&real, dir + "/f", "v2").ok());
  auto contents = real.ReadFile(dir + "/f");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "v2");
  EXPECT_FALSE(real.Exists(dir + "/f.tmp"));
}

// ---------------------------------------------------------------------------
// The crash-point sweep harness.
// ---------------------------------------------------------------------------

// Runs `workload` against a FaultyFileSystem armed to crash at op `k`
// (k < 0 means never: the baseline). Returns the total op count.
template <typename Workload>
int64_t RunWithCrashAt(RealFileSystem* real, int64_t k, Workload&& workload) {
  FaultyFileSystem faulty(real, {});
  if (k >= 0) faulty.ArmCrashPoint(k);
  workload(&faulty);
  return faulty.op_count();
}

// --- WAL append sweep ------------------------------------------------------

struct MutationOp {
  bool is_delete = false;
  std::string id;
  float value = 0.0f;
};

// Applies `ops[0..count)` to a plain map: the expected logical state after a
// prefix of the mutation stream.
std::map<std::string, float> ExpectedState(const std::vector<MutationOp>& ops,
                                           size_t count) {
  std::map<std::string, float> state;
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].is_delete) {
      state.erase(ops[i].id);
    } else {
      state[ops[i].id] = ops[i].value;
    }
  }
  return state;
}

std::map<std::string, float> CollectionState(DurableCollection* dc) {
  std::map<std::string, float> state;
  for (const auto& id : dc->collection()->Ids()) {
    auto record = dc->Get(id);
    EXPECT_TRUE(record.ok());
    state[id] = record->vector[0];
  }
  return state;
}

// The headline invariant: after a crash at ANY op index and a reopen through
// a clean filesystem, the recovered state equals the state after some prefix
// of the attempted mutations, and that prefix covers at least every
// acknowledged one. Returns the recovered prefix length.
void CheckPrefixInvariant(const std::vector<MutationOp>& ops,
                          size_t acked_count,
                          const std::map<std::string, float>& recovered,
                          const std::string& context) {
  for (size_t j = acked_count; j <= ops.size(); ++j) {
    if (recovered == ExpectedState(ops, j)) return;  // a valid prefix ≥ acked
  }
  // Not a valid prefix at or past the acked count: either an acked write was
  // lost, an unacked one came back torn, or garbage appeared.
  FAIL() << context << ": recovered state is not a prefix >= " << acked_count
         << " acked mutations (recovered " << recovered.size() << " records)";
}

TEST(StorageChaosTest, WalAppendSurvivesCrashAtEveryIoOp) {
  const std::vector<MutationOp> ops = {
      {false, "a", 0.1f}, {false, "b", 0.2f}, {false, "c", 0.3f},
      {true, "b", 0.0f},  {false, "a", 0.9f}, {false, "d", 0.4f},
  };
  RealFileSystem real;

  // Runs the mutation stream against `fs`, stopping at the first failure
  // the way a real writer would; counts acknowledged mutations into *acked.
  auto workload = [&](FileSystem* fs, const std::string& wal, size_t* acked) {
    *acked = 0;
    auto dc = DurableCollection::Open("c", Dim3Options(), wal, nullptr, fs,
                                      EveryRecord());
    if (!dc.ok()) return;
    for (const auto& op : ops) {
      const Status status =
          op.is_delete ? (*dc)->Delete(op.id)
                       : (*dc)->Upsert(MakeRecord(op.id, op.value));
      if (!status.ok()) return;
      ++*acked;
    }
  };

  // Baseline: count the ops of a full run.
  const std::string base_dir = FreshDir("walsweep_base");
  size_t acked = 0;
  const int64_t total = RunWithCrashAt(&real, -1, [&](FileSystem* fs) {
    workload(fs, base_dir + "/c.wal", &acked);
  });
  ASSERT_EQ(acked, ops.size());
  ASSERT_GT(total, 5);

  // Kill the world at every op index; every run gets a fresh directory.
  for (int64_t k = 0; k < total; ++k) {
    const std::string dir = FreshDir("walsweep");
    const std::string wal = dir + "/c.wal";
    size_t acked_at_crash = 0;
    RunWithCrashAt(&real, k, [&](FileSystem* fs) {
      workload(fs, wal, &acked_at_crash);
    });

    // Reopen through a clean filesystem, exactly like a process restart.
    DurableCollection::OpenStats stats;
    auto reopened =
        DurableCollection::Open("c", Dim3Options(), wal, &stats, &real,
                                EveryRecord());
    ASSERT_TRUE(reopened.ok()) << "crash at op " << k << ": "
                               << reopened.status().ToString();
    CheckPrefixInvariant(ops, acked_at_crash, CollectionState(reopened->get()),
                         "crash at op " + std::to_string(k));
    // Recovery is sticky: a second reopen finds a clean log.
    DurableCollection::OpenStats again;
    auto twice = DurableCollection::Open("c", Dim3Options(), wal, &again,
                                         &real, EveryRecord());
    ASSERT_TRUE(twice.ok());
    EXPECT_FALSE(again.recovered_torn_tail) << "crash at op " << k;
    EXPECT_EQ(CollectionState(twice->get()),
              CollectionState(reopened->get()));
  }
}

// --- Compaction sweep ------------------------------------------------------

TEST(StorageChaosTest, CompactionSurvivesCrashAtEveryIoOp) {
  RealFileSystem real;
  const std::map<std::string, float> expected = {
      {"a", 0.9f}, {"b", 0.2f}, {"c", 0.3f}};

  auto seed = [&](const std::string& wal) {
    auto dc = DurableCollection::Open("c", Dim3Options(), wal, nullptr, &real,
                                      EveryRecord());
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE((*dc)->Upsert(MakeRecord("a", 0.1f)).ok());
    ASSERT_TRUE((*dc)->Upsert(MakeRecord("b", 0.2f)).ok());
    ASSERT_TRUE((*dc)->Upsert(MakeRecord("c", 0.3f)).ok());
    ASSERT_TRUE((*dc)->Upsert(MakeRecord("d", 0.4f)).ok());
    ASSERT_TRUE((*dc)->Upsert(MakeRecord("a", 0.9f)).ok());
    ASSERT_TRUE((*dc)->Delete("d").ok());
  };

  // Baseline op count of open+compact.
  const std::string base = FreshDir("compact_base") + "/c.wal";
  seed(base);
  const int64_t total = RunWithCrashAt(&real, -1, [&](FileSystem* fs) {
    auto dc = DurableCollection::Open("c", Dim3Options(), base, nullptr, fs,
                                      EveryRecord());
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE((*dc)->Compact().ok());
  });
  ASSERT_GT(total, 5);

  for (int64_t k = 0; k < total; ++k) {
    const std::string wal = FreshDir("compact") + "/c.wal";
    seed(wal);
    RunWithCrashAt(&real, k, [&](FileSystem* fs) {
      auto dc = DurableCollection::Open("c", Dim3Options(), wal, nullptr, fs,
                                        EveryRecord());
      if (!dc.ok()) return;
      (void)(*dc)->Compact();  // may fail: the world is dying
    });

    // Compaction must never change logical content, crash or no crash.
    auto reopened = DurableCollection::Open("c", Dim3Options(), wal, nullptr,
                                            &real, EveryRecord());
    ASSERT_TRUE(reopened.ok()) << "crash at op " << k << ": "
                               << reopened.status().ToString();
    EXPECT_EQ(CollectionState(reopened->get()), expected)
        << "crash at op " << k;
  }
}

// --- Snapshot (VectorDatabase::Save) sweep ---------------------------------

TEST(StorageChaosTest, SnapshotSaveIsOldOrNewAtEveryCrashPoint) {
  RealFileSystem real;

  // The "new" database the workload saves.
  VectorDatabase next;
  {
    auto collection = next.CreateCollection("fresh", Dim3Options());
    ASSERT_TRUE(collection.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*collection)
                      ->Upsert(MakeRecord("n" + std::to_string(i),
                                          0.1f * static_cast<float>(i)))
                      .ok());
    }
  }

  auto seed_old = [&](const std::string& path) {
    VectorDatabase old_db;
    auto collection = old_db.CreateCollection("old_marker", Dim3Options());
    ASSERT_TRUE(collection.ok());
    ASSERT_TRUE((*collection)->Upsert(MakeRecord("o", 0.5f)).ok());
    ASSERT_TRUE(old_db.Save(&real, path).ok());
  };

  const std::string base = FreshDir("snap_base") + "/db.bin";
  seed_old(base);
  const int64_t total = RunWithCrashAt(&real, -1, [&](FileSystem* fs) {
    ASSERT_TRUE(next.Save(fs, base).ok());
  });
  ASSERT_GT(total, 2);

  for (int64_t k = 0; k < total; ++k) {
    const std::string path = FreshDir("snap") + "/db.bin";
    seed_old(path);
    bool acked = false;
    RunWithCrashAt(&real, k, [&](FileSystem* fs) {
      acked = next.Save(fs, path).ok();
    });

    auto loaded = VectorDatabase::Load(&real, path);
    ASSERT_TRUE(loaded.ok()) << "crash at op " << k << ": "
                             << loaded.status().ToString();
    const bool is_new = (*loaded)->GetCollection("fresh").ok();
    const bool is_old = (*loaded)->GetCollection("old_marker").ok();
    EXPECT_TRUE(is_new != is_old) << "crash at op " << k;
    if (acked) {
      EXPECT_TRUE(is_new) << "acked save lost at op " << k;
    }
    if (is_new) {
      auto fresh = (*loaded)->GetCollection("fresh");
      EXPECT_EQ((*fresh)->size(), 3u) << "torn snapshot at op " << k;
    }
  }
}

// --- Sharded manifest sweep (DESIGN.md §15) --------------------------------

// Crash at every I/O op during a multi-shard mutation stream plus a full
// Checkpoint (per-shard compacted next-generation logs, directory sync,
// atomic manifest swap, old-generation removal). Reopening through a clean
// filesystem must always find a consistent shard set — the old manifest or
// the new one, state a prefix ≥ the acked mutations — and the orphan sweep
// must leave no shard file on disk that the live manifest does not name.
TEST(StorageChaosTest, ShardedManifestCheckpointSurvivesCrashAtEveryIoOp) {
  using vectordb::ShardedDurableCollection;
  RealFileSystem real;

  ShardedDurableCollection::Options opts;
  opts.collection = Dim3Options();
  opts.num_shards = 3;
  opts.wal = EveryRecord();

  const std::vector<MutationOp> seed_ops = {
      {false, "a", 0.1f}, {false, "b", 0.2f}, {false, "c", 0.3f},
      {false, "d", 0.4f}, {true, "d", 0.0f},
  };
  const std::vector<MutationOp> crash_ops = {
      {false, "x1", 0.6f}, {false, "x2", 0.7f},  // pre-checkpoint
      {false, "y1", 0.8f},                       // post-checkpoint
  };
  std::vector<MutationOp> all_ops = seed_ops;
  all_ops.insert(all_ops.end(), crash_ops.begin(), crash_ops.end());

  auto seed = [&](const std::string& dir) {
    auto db = ShardedDurableCollection::Open("c", dir, opts, nullptr, &real);
    ASSERT_TRUE(db.ok());
    for (const auto& op : seed_ops) {
      const Status status = op.is_delete
                                ? (*db)->Delete(op.id)
                                : (*db)->Upsert(MakeRecord(op.id, op.value));
      ASSERT_TRUE(status.ok());
    }
  };

  // Open, mutate, checkpoint mid-stream, mutate again; stop at the first
  // failure the way a real writer would. Counts acked mutations.
  auto workload = [&](FileSystem* fs, const std::string& dir, size_t* acked) {
    *acked = 0;
    auto db = ShardedDurableCollection::Open("c", dir, opts, nullptr, fs);
    if (!db.ok()) return;
    for (size_t i = 0; i < crash_ops.size(); ++i) {
      if (i == 2 && !(*db)->Checkpoint().ok()) return;
      const Status status =
          crash_ops[i].is_delete
              ? (*db)->Delete(crash_ops[i].id)
              : (*db)->Upsert(MakeRecord(crash_ops[i].id, crash_ops[i].value));
      if (!status.ok()) return;
      ++*acked;
    }
  };

  auto sharded_state = [](ShardedDurableCollection* db) {
    std::map<std::string, float> state;
    for (const auto& id : db->Ids()) {
      auto record = db->Get(id);
      EXPECT_TRUE(record.ok());
      state[id] = record->vector[0];
    }
    return state;
  };

  const std::string base_dir = FreshDir("manifest_base");
  seed(base_dir);
  size_t acked = 0;
  const int64_t total = RunWithCrashAt(&real, -1, [&](FileSystem* fs) {
    workload(fs, base_dir, &acked);
  });
  ASSERT_EQ(acked, crash_ops.size());
  ASSERT_GT(total, 10);

  for (int64_t k = 0; k < total; ++k) {
    const std::string dir = FreshDir("manifest");
    seed(dir);
    size_t acked_at_crash = 0;
    RunWithCrashAt(&real, k, [&](FileSystem* fs) {
      workload(fs, dir, &acked_at_crash);
    });

    // Reopen through a clean filesystem: a process restart after the cut.
    ShardedDurableCollection::OpenStats stats;
    auto reopened =
        ShardedDurableCollection::Open("c", dir, opts, &stats, &real);
    ASSERT_TRUE(reopened.ok()) << "crash at op " << k << ": "
                               << reopened.status().ToString();
    EXPECT_EQ(stats.num_shards, 3u) << "crash at op " << k;
    CheckPrefixInvariant(all_ops, seed_ops.size() + acked_at_crash,
                         sharded_state(reopened->get()),
                         "crash at op " + std::to_string(k));

    // No orphan shard files left live: everything named shard-* must
    // belong to the generation the recovered manifest committed.
    const std::string live_tag =
        ".g" + std::to_string((*reopened)->generation()) + ".wal";
    auto entries = real.List(dir);
    ASSERT_TRUE(entries.ok());
    size_t shard_files = 0;
    for (const auto& entry : *entries) {
      if (entry.rfind("shard-", 0) != 0) continue;
      ++shard_files;
      EXPECT_NE(entry.find(live_tag), std::string::npos)
          << "crash at op " << k << ": stale shard file " << entry;
    }
    EXPECT_EQ(shard_files, 3u) << "crash at op " << k;

    // Recovery is sticky: a second reopen sweeps nothing and agrees.
    ShardedDurableCollection::OpenStats again;
    auto twice = ShardedDurableCollection::Open("c", dir, opts, &again, &real);
    ASSERT_TRUE(twice.ok()) << "crash at op " << k;
    EXPECT_EQ(again.orphan_files_removed, 0u) << "crash at op " << k;
    EXPECT_EQ(again.torn_tails, 0u) << "crash at op " << k;
    EXPECT_EQ(sharded_state(twice->get()), sharded_state(reopened->get()))
        << "crash at op " << k;
  }
}

// --- StateStore sweep (incl. the tmp-write/rename crash-point matrix) ------

TEST(StorageChaosTest, StateStoreSaveKeepsOldStateReadableAtEveryCrashPoint) {
  RealFileSystem real;

  // Seed a state file holding a breaker for "alpha" via the public JSON
  // serialization.
  auto seed_state = [&](const std::string& path) {
    llm::CircuitBreaker::Snapshot snapshot;
    snapshot.state = llm::CircuitBreaker::State::kOpen;
    snapshot.total_failures = 7;
    Json breakers = Json::MakeObject();
    breakers.Set("alpha", llm::StateStore::BreakerToJson(snapshot));
    Json doc = Json::MakeObject();
    doc.Set("breakers", std::move(breakers));
    doc.Set("sketches", Json::MakeObject());
    ASSERT_TRUE(AtomicWriteFile(&real, path, doc.Dump(2)).ok());
  };

  const std::string base = FreshDir("state_base") + "/state.json";
  seed_state(base);
  const int64_t total = RunWithCrashAt(&real, -1, [&](FileSystem* fs) {
    llm::StateStore store(base, fs);
    ASSERT_TRUE(store.Load().ok());
    ASSERT_TRUE(store.SaveNow().ok());
  });
  ASSERT_GT(total, 3);

  for (int64_t k = 0; k < total; ++k) {
    const std::string path = FreshDir("state") + "/state.json";
    seed_state(path);
    RunWithCrashAt(&real, k, [&](FileSystem* fs) {
      llm::StateStore store(path, fs);
      if (!store.Load().ok()) return;
      (void)store.SaveNow();  // may fail: the world is dying
    });

    // The matrix invariant: at EVERY crash point — including between the
    // temp write and the rename — the state file parses cleanly and still
    // holds alpha's breaker (the store loaded it, so old and new contents
    // both carry it; a torn file would cold-start instead).
    llm::StateStore recovered(path, &real);
    ASSERT_TRUE(recovered.Load().ok()) << "crash at op " << k;
    EXPECT_TRUE(recovered.load_warning().empty())
        << "crash at op " << k << ": " << recovered.load_warning();
    EXPECT_TRUE(recovered.HasBreaker("alpha")) << "crash at op " << k;
  }
}

TEST(StorageChaosTest, StateStoreCrashBetweenTmpWriteAndRename) {
  // The specific matrix entry: the temp file is fully written and fsynced,
  // the rename never happens. The old state must be untouched and the stray
  // tmp must not shadow it.
  RealFileSystem real;
  const std::string dir = FreshDir("state_tmp");
  const std::string path = dir + "/state.json";
  ASSERT_TRUE(AtomicWriteFile(&real, path,
                              R"({"breakers":{},"sketches":{}})").ok());
  const std::string old_contents = *real.ReadFile(path);

  // SaveNow's op stream is OpenTrunc, Append, Sync, Rename, SyncDir; Load
  // costs one read before it. Crash on the Rename.
  FaultyFileSystem faulty(&real, {});
  llm::StateStore store(path, &faulty);
  ASSERT_TRUE(store.Load().ok());
  faulty.ArmCrashPoint(faulty.op_count() + 3);
  EXPECT_FALSE(store.SaveNow().ok());
  EXPECT_TRUE(faulty.crashed());

  auto after = real.ReadFile(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, old_contents);
  llm::StateStore recovered(path, &real);
  ASSERT_TRUE(recovered.Load().ok());
  EXPECT_TRUE(recovered.load_warning().empty());
}

// --- Model-card store ------------------------------------------------------

TEST(StorageChaosTest, ModelCardSaveIsOldOrNewAtEveryCrashPoint) {
  RealFileSystem real;
  auto profiles = llm::DefaultProfiles();
  ASSERT_GE(profiles.size(), 2u);
  llm::ModelProfile old_profile = profiles[0];
  llm::ModelProfile new_profile = profiles[1];
  new_profile.name = old_profile.name;  // same card, new contents

  const std::string base = FreshDir("card_base") + "/card.json";
  ASSERT_TRUE(llm::SaveModelCard(old_profile, base, &real).ok());
  const int64_t total = RunWithCrashAt(&real, -1, [&](FileSystem* fs) {
    ASSERT_TRUE(llm::SaveModelCard(new_profile, base, fs).ok());
  });

  for (int64_t k = 0; k < total; ++k) {
    const std::string path = FreshDir("card") + "/card.json";
    ASSERT_TRUE(llm::SaveModelCard(old_profile, path, &real).ok());
    RunWithCrashAt(&real, k, [&](FileSystem* fs) {
      (void)llm::SaveModelCard(new_profile, path, fs);
    });
    auto loaded = llm::LoadModelCard(path, &real);
    ASSERT_TRUE(loaded.ok()) << "crash at op " << k << ": "
                             << loaded.status().ToString();
    EXPECT_TRUE(loaded->family == old_profile.family ||
                loaded->family == new_profile.family)
        << "crash at op " << k;
  }
}

// ---------------------------------------------------------------------------
// Seeded random-fault soak: under probabilistic disk faults (no crash), an
// acked mutation must never be lost and the store must never serve garbage.
// ---------------------------------------------------------------------------

TEST(StorageChaosTest, RandomFaultSoakNeverLosesAckedWrites) {
  RealFileSystem real;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const std::string wal = FreshDir("soak") + "/c.wal";
    FsFaultConfig config;
    config.seed = seed;
    config.write_error_prob = 0.03;
    config.short_write_prob = 0.03;
    config.enospc_prob = 0.03;
    config.sync_error_prob = 0.03;
    FaultyFileSystem faulty(&real, config);

    std::vector<MutationOp> attempted;
    size_t acked = 0;
    {
      auto dc = DurableCollection::Open("c", Dim3Options(), wal, nullptr,
                                        &faulty, EveryRecord());
      if (!dc.ok()) continue;  // open itself hit a fault: nothing to check
      Rng rng(seed * 77);
      std::vector<std::string> live;  // delete targets must be live ids
      for (int i = 0; i < 40; ++i) {
        MutationOp op;
        op.is_delete = rng.Bernoulli(0.25) && !live.empty();
        if (op.is_delete) {
          const size_t pick = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
          op.id = live[pick];
        } else {
          op.id = "r" + std::to_string(i);
          op.value = static_cast<float>(i) * 0.01f;
        }
        attempted.push_back(op);
        const Status status =
            op.is_delete ? (*dc)->Delete(op.id)
                         : (*dc)->Upsert(MakeRecord(op.id, op.value));
        if (!status.ok()) break;  // poisoned WAL: a real writer stops too
        ++acked;
        if (op.is_delete) {
          live.erase(std::find(live.begin(), live.end(), op.id));
        } else {
          live.push_back(op.id);
        }
      }
    }

    auto reopened = DurableCollection::Open("c", Dim3Options(), wal, nullptr,
                                            &real, EveryRecord());
    ASSERT_TRUE(reopened.ok()) << "seed " << seed;
    CheckPrefixInvariant(attempted, acked, CollectionState(reopened->get()),
                         "soak seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Regression tests for the satellite bugs.
// ---------------------------------------------------------------------------

// DurableCollection::Compact() used to null wal_ before the swap; a failed
// rename then left the collection with a null journal and the next mutation
// dereferenced it. Now a pre-swap failure keeps the old journal fully live.
TEST(StorageChaosTest, FailedCompactionRenameKeepsJournalUsable) {
  RealFileSystem real;
  const std::string wal = FreshDir("compact_rename") + "/c.wal";
  FsFaultConfig config;
  config.rename_error_prob = 1.0;
  FaultyFileSystem faulty(&real, config);

  auto dc = DurableCollection::Open("c", Dim3Options(), wal, nullptr, &faulty,
                                    EveryRecord());
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE((*dc)->Upsert(MakeRecord("a", 0.1f)).ok());
  ASSERT_TRUE((*dc)->Compact().IsIOError());
  // The old journal is still live: mutations keep working (no null deref,
  // no FailedPrecondition) and survive a reopen.
  ASSERT_TRUE((*dc)->Upsert(MakeRecord("b", 0.2f)).ok());
  ASSERT_TRUE((*dc)->Delete("a").ok());

  auto reopened = DurableCollection::Open("c", Dim3Options(), wal, nullptr,
                                          &real, EveryRecord());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 1u);
  EXPECT_TRUE((*reopened)->Get("b").ok());
}

// DurableCollection::Open() used to append the torn-tail rewrite to a stale
// `.compact` leftover, resurrecting records deleted since that crash.
TEST(StorageChaosTest, TornTailRecoveryIgnoresStaleCompactLeftover) {
  RealFileSystem real;
  const std::string dir = FreshDir("zombie");
  const std::string wal = dir + "/c.wal";

  // A stale .compact from a "previous crash" holds a record that was long
  // since deleted.
  {
    auto stale = WriteAheadLog::Open(&real, wal + ".compact", EveryRecord());
    ASSERT_TRUE(stale.ok());
    ASSERT_TRUE((*stale)->AppendUpsert(MakeRecord("zombie", 0.66f)).ok());
  }
  // The live log: two records, then a crash tears the tail.
  {
    auto dc = DurableCollection::Open("c", Dim3Options(), wal, nullptr, &real,
                                      EveryRecord());
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE((*dc)->Upsert(MakeRecord("a", 0.1f)).ok());
    ASSERT_TRUE((*dc)->Upsert(MakeRecord("b", 0.2f)).ok());
  }
  auto size = real.FileSize(wal);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(real.Truncate(wal, *size - 3).ok());

  DurableCollection::OpenStats stats;
  auto recovered = DurableCollection::Open("c", Dim3Options(), wal, &stats,
                                           &real, EveryRecord());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(stats.recovered_torn_tail);
  EXPECT_TRUE((*recovered)->Get("zombie").status().IsNotFound())
      << "stale .compact leftover resurrected a deleted record";
  EXPECT_TRUE((*recovered)->Get("a").ok());
  EXPECT_EQ((*recovered)->size(), 1u);  // "b" was the torn record
}

// ---------------------------------------------------------------------------
// Sequence numbers: a lost middle record (an intact log with a gap) is
// detected as a sequence break, not silently replayed past.
// ---------------------------------------------------------------------------

TEST(StorageChaosTest, LostMiddleRecordIsDetectedAsSequenceBreak) {
  RealFileSystem real;
  const std::string dir = FreshDir("seqbreak");
  const std::string wal = dir + "/c.wal";
  {
    auto log = WriteAheadLog::Open(&real, wal, EveryRecord());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendUpsert(MakeRecord("r1", 0.1f)).ok());
    ASSERT_TRUE((*log)->AppendUpsert(MakeRecord("r2", 0.2f)).ok());
    ASSERT_TRUE((*log)->AppendUpsert(MakeRecord("r3", 0.3f)).ok());
    EXPECT_EQ((*log)->last_sequence(), 3u);
  }
  // Excise the middle frame: [u32 len][u32 crc][u64 seq][payload].
  auto contents = real.ReadFile(wal);
  ASSERT_TRUE(contents.ok());
  auto frame_size = [&](size_t pos) {
    uint32_t len = 0;
    memcpy(&len, contents->data() + pos, 4);
    return 16 + static_cast<size_t>(len);
  };
  const size_t first = frame_size(0);
  const size_t second = frame_size(first);
  std::string gapped = contents->substr(0, first) +
                       contents->substr(first + second);
  {
    auto out = real.OpenTrunc(wal);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append(gapped).ok());
  }

  Collection collection("gap", Dim3Options());
  auto stats = WriteAheadLog::Replay(&real, wal, &collection);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->sequence_break);
  EXPECT_EQ(stats->upserts, 1u);  // nothing past the gap is trusted
  EXPECT_EQ(collection.size(), 1u);

  // DurableCollection::Open repairs the log like a torn tail; the repaired
  // log replays cleanly.
  DurableCollection::OpenStats open_stats;
  auto repaired = DurableCollection::Open("gap", Dim3Options(), wal,
                                          &open_stats, &real, EveryRecord());
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(open_stats.sequence_break);
  DurableCollection::OpenStats clean;
  auto again = DurableCollection::Open("gap", Dim3Options(), wal, &clean,
                                       &real, EveryRecord());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(clean.sequence_break);
  EXPECT_FALSE(clean.recovered_torn_tail);
}

// Reopened logs continue the sequence run (no restart at 1, which a replay
// would flag as a break).
TEST(StorageChaosTest, ReopenContinuesSequenceRun) {
  RealFileSystem real;
  const std::string wal = FreshDir("seqrun") + "/c.wal";
  {
    auto log = WriteAheadLog::Open(&real, wal, EveryRecord());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendUpsert(MakeRecord("r1", 0.1f)).ok());
  }
  {
    auto log = WriteAheadLog::Open(&real, wal, EveryRecord());
    ASSERT_TRUE(log.ok());
    EXPECT_EQ((*log)->last_sequence(), 1u);
    ASSERT_TRUE((*log)->AppendUpsert(MakeRecord("r2", 0.2f)).ok());
    EXPECT_EQ((*log)->last_sequence(), 2u);
  }
  Collection collection("run", Dim3Options());
  auto stats = WriteAheadLog::Replay(&real, wal, &collection);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->sequence_break);
  EXPECT_EQ(stats->upserts, 2u);
  EXPECT_EQ(stats->last_sequence, 2u);
}

// A WAL poisons itself after an append failure instead of burying garbage
// mid-log: later appends fail with FailedPrecondition, and everything acked
// before the failure still replays.
TEST(StorageChaosTest, WalPoisonsItselfAfterAppendFailure) {
  RealFileSystem real;
  const std::string wal = FreshDir("poison") + "/c.wal";
  FsFaultConfig config;
  config.write_error_prob = 1.0;
  FaultyFileSystem faulty(&real, config);

  std::unique_ptr<WriteAheadLog> log;
  {
    // Build two good records through the real fs first.
    auto good = WriteAheadLog::Open(&real, wal, EveryRecord());
    ASSERT_TRUE(good.ok());
    ASSERT_TRUE((*good)->AppendUpsert(MakeRecord("r1", 0.1f)).ok());
    ASSERT_TRUE((*good)->AppendUpsert(MakeRecord("r2", 0.2f)).ok());
  }
  auto flaky = WriteAheadLog::Open(&faulty, wal, EveryRecord());
  ASSERT_TRUE(flaky.ok());
  EXPECT_TRUE((*flaky)->AppendUpsert(MakeRecord("r3", 0.3f)).IsIOError());
  EXPECT_TRUE((*flaky)
                  ->AppendUpsert(MakeRecord("r4", 0.4f))
                  .IsFailedPrecondition());  // poisoned, not retried into
  EXPECT_TRUE((*flaky)->Sync().IsFailedPrecondition());

  Collection collection("p", Dim3Options());
  auto stats = WriteAheadLog::Replay(&real, wal, &collection);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->upserts, 2u);
  EXPECT_FALSE(stats->sequence_break);
}

// LLMMS_IO_CHAOS wires a FaultyFileSystem under FileSystem::Default(); the
// plumbing (env parse + decorator) is what this exercises — the env var is
// read once at first use, so the default here is the real filesystem and
// the decorator is constructed directly.
TEST(StorageChaosTest, DefaultFileSystemIsUsableAndCountsOps) {
  FileSystem* fs = FileSystem::Default();
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs, FileSystem::Default());  // a process-wide singleton
  const std::string path = FreshDir("default") + "/f";
  const auto before = fs->op_counts();
  ASSERT_TRUE(AtomicWriteFile(fs, path, "x").ok());
  const auto after = fs->op_counts();
  EXPECT_GT(after.opens, before.opens);
  EXPECT_GT(after.syncs, before.syncs);
  EXPECT_GT(after.renames, before.renames);
}

}  // namespace
}  // namespace llmms
