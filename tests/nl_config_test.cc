#include "llmms/app/nl_config.h"

#include <gtest/gtest.h>

namespace llmms::app {
namespace {

std::vector<NlModelInfo> Models() {
  return {
      {"llama3:8b", 75.0},
      {"mistral:7b", 95.0},
      {"qwen2:7b", 85.0},
  };
}

core::SearchEngine::QueryOptions Base() {
  return core::SearchEngine::QueryOptions{};
}

TEST(NlConfigTest, EmptyInstructionChangesNothing) {
  auto result = ApplyNlConfig("", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied.empty());
  EXPECT_EQ(result->options.models.size(), 3u);
  EXPECT_EQ(result->options.token_budget, 2048u);
}

TEST(NlConfigTest, UnrecognizedTextIgnored) {
  auto result = ApplyNlConfig("please be excellent and kind", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->applied.empty());
}

TEST(NlConfigTest, SelectsBanditAlgorithm) {
  auto result = ApplyNlConfig("use the bandit algorithm", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.algorithm, core::Algorithm::kMab);
  ASSERT_EQ(result->applied.size(), 1u);
}

TEST(NlConfigTest, SelectsHybrid) {
  auto result = ApplyNlConfig("try the hybrid strategy", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.algorithm, core::Algorithm::kHybrid);
}

TEST(NlConfigTest, SelectsOua) {
  auto result =
      ApplyNlConfig("switch to the overperformers method", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.algorithm, core::Algorithm::kOua);
}

TEST(NlConfigTest, SetsTokenBudget) {
  auto result = ApplyNlConfig("budget 512 tokens please", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.token_budget, 512u);
}

TEST(NlConfigTest, ResponseLengthLimitMapsToBudget) {
  auto result =
      ApplyNlConfig("keep responses under 200 words", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.token_budget, 200u);
}

TEST(NlConfigTest, AvoidModelByFamilyName) {
  auto result = ApplyNlConfig("avoid using mistral", Base(), Models());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->options.models.size(), 2u);
  for (const auto& m : result->options.models) EXPECT_NE(m, "mistral:7b");
}

TEST(NlConfigTest, AvoidSlowModelsDropsSlowest) {
  auto result = ApplyNlConfig("avoid slow models", Base(), Models());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->options.models.size(), 2u);
  // llama3:8b is the slowest (75 tok/s).
  for (const auto& m : result->options.models) EXPECT_NE(m, "llama3:8b");
}

TEST(NlConfigTest, OnlyUseOneModel) {
  auto result = ApplyNlConfig("only use qwen2:7b", Base(), Models());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->options.models.size(), 1u);
  EXPECT_EQ(result->options.models[0], "qwen2:7b");
  EXPECT_EQ(result->options.algorithm, core::Algorithm::kSingle);
  EXPECT_EQ(result->options.single_model, "qwen2:7b");
}

TEST(NlConfigTest, PrioritizeMovesModelToFront) {
  auto result = ApplyNlConfig("prioritize our qwen2 model", Base(), Models());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->options.models.size(), 3u);
  EXPECT_EQ(result->options.models[0], "qwen2:7b");
}

TEST(NlConfigTest, ScoringEmphasisDirectives) {
  auto consensus =
      ApplyNlConfig("focus on consensus between models", Base(), Models());
  ASSERT_TRUE(consensus.ok());
  EXPECT_GT(consensus->options.weights.beta, consensus->options.weights.alpha);

  auto relevance =
      ApplyNlConfig("emphasize relevance to the question", Base(), Models());
  ASSERT_TRUE(relevance.ok());
  EXPECT_GT(relevance->options.weights.alpha, relevance->options.weights.beta);
}

TEST(NlConfigTest, TogglesRagAndHistory) {
  auto result = ApplyNlConfig(
      "ignore documents, and forget the conversation", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->options.use_rag);
  EXPECT_FALSE(result->options.use_history);
  EXPECT_EQ(result->applied.size(), 2u);
}

TEST(NlConfigTest, MultipleDirectivesCompose) {
  auto result = ApplyNlConfig(
      "use the bandit algorithm, avoid llama3, budget 1024 tokens", Base(),
      Models());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.algorithm, core::Algorithm::kMab);
  EXPECT_EQ(result->options.models.size(), 2u);
  EXPECT_EQ(result->options.token_budget, 1024u);
  EXPECT_EQ(result->applied.size(), 3u);
}

TEST(NlConfigTest, ExcludingEveryModelFails) {
  auto result = ApplyNlConfig(
      "avoid llama3, avoid mistral, avoid qwen2", Base(), Models());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(NlConfigTest, CaseInsensitive) {
  auto result = ApplyNlConfig("USE THE BANDIT Algorithm", Base(), Models());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->options.algorithm, core::Algorithm::kMab);
}

TEST(NlConfigTest, PreservesExplicitBasePool) {
  auto base = Base();
  base.models = {"mistral:7b", "qwen2:7b"};
  auto result = ApplyNlConfig("avoid qwen2", base, Models());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->options.models.size(), 1u);
  EXPECT_EQ(result->options.models[0], "mistral:7b");
}

}  // namespace
}  // namespace llmms::app
