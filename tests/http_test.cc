#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "llmms/app/http.h"
#include "llmms/app/http_server.h"
#include "llmms/app/sse.h"
#include "llmms/common/rng.h"
#include "testutil.h"

namespace llmms::app {
namespace {

// ------------------------------------------------------- message parsing
TEST(HttpParseTest, ParsesRequestWithBody) {
  const std::string raw =
      "POST /api/query?stream=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 13\r\n"
      "\r\n"
      "{\"a\": \"b\"}123";
  auto request = ParseHttpRequest(raw);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->path, "/api/query");
  EXPECT_EQ(request->query, "stream=1");
  EXPECT_EQ(request->headers.at("host"), "localhost");
  EXPECT_EQ(request->body.size(), 13u);
}

TEST(HttpParseTest, HeaderKeysLowercased) {
  auto request = ParseHttpRequest(
      "GET /x HTTP/1.1\r\nX-CUSTOM-Header:  spaced value \r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->headers.at("x-custom-header"), "spaced value");
}

TEST(HttpParseTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseHttpRequest("").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /x HTTP/1.1\r\n").ok());  // no blank line
  EXPECT_FALSE(ParseHttpRequest("NOT-HTTP\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /x JUNK/9\r\n\r\n").ok());
  EXPECT_FALSE(
      ParseHttpRequest("GET /x HTTP/1.1\r\nbadheaderline\r\n\r\n").ok());
  // Body shorter than declared.
  EXPECT_FALSE(
      ParseHttpRequest("POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
          .ok());
}

TEST(HttpParseTest, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 404;
  response.headers["content-type"] = "application/json";
  response.body = "{\"ok\":false}";
  auto parsed = ParseHttpResponse(SerializeHttpResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->body, response.body);
  EXPECT_EQ(parsed->headers.at("content-type"), "application/json");
}

TEST(HttpParseTest, ChunkedResponseDecoded) {
  const std::string raw =
      "HTTP/1.1 200 OK\r\n"
      "transfer-encoding: chunked\r\n"
      "\r\n"
      "5\r\nhello\r\n"
      "6\r\n world\r\n"
      "0\r\n\r\n";
  auto parsed = ParseHttpResponse(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body, "hello world");
}

TEST(HttpParseTest, TruncatedChunkRejected) {
  const std::string raw =
      "HTTP/1.1 200 OK\r\n"
      "transfer-encoding: chunked\r\n"
      "\r\n"
      "ff\r\nshort";
  EXPECT_FALSE(ParseHttpResponse(raw).ok());
}

TEST(HttpParseTest, ReasonPhrases) {
  EXPECT_STREQ(HttpReasonPhrase(200), "OK");
  EXPECT_STREQ(HttpReasonPhrase(404), "Not Found");
  EXPECT_STREQ(HttpReasonPhrase(418), "Unknown");
}

TEST(HttpParseTest, ResponseHeadOnly) {
  auto head = ParseHttpResponseHead(
      "HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\n"
      "transfer-encoding: chunked");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(head->headers.at("content-type"), "text/event-stream");
  EXPECT_TRUE(head->body.empty());
  EXPECT_FALSE(ParseHttpResponseHead("NOT-HTTP junk").ok());
}

// ------------------------------------------- incremental chunked decoder
TEST(ChunkedDecoderTest, DecodesWholeBodyAtOnce) {
  ChunkedDecoder decoder;
  std::string out;
  ASSERT_TRUE(
      decoder.Feed("5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n", &out).ok());
  EXPECT_EQ(out, "hello world");
  EXPECT_TRUE(decoder.done());
}

TEST(ChunkedDecoderTest, EveryByteBoundaryDecodesIdentically) {
  const std::string wire = "5\r\nhello\r\n6\r\n world\r\nb\r\n, streaming\r\n"
                           "0\r\n\r\n";
  for (size_t split = 0; split <= wire.size(); ++split) {
    ChunkedDecoder decoder;
    std::string out;
    ASSERT_TRUE(decoder.Feed(wire.substr(0, split), &out).ok()) << split;
    ASSERT_TRUE(decoder.Feed(wire.substr(split), &out).ok()) << split;
    EXPECT_EQ(out, "hello world, streaming") << split;
    EXPECT_TRUE(decoder.done()) << split;
  }
}

TEST(ChunkedDecoderTest, ByteAtATime) {
  const std::string wire = "3\r\nabc\r\n1f\r\n0123456789012345678901234567890"
                           "\r\n0\r\n\r\n";
  ChunkedDecoder decoder;
  std::string out;
  for (const char c : wire) {
    ASSERT_TRUE(decoder.Feed(std::string_view(&c, 1), &out).ok());
  }
  EXPECT_EQ(out, "abc0123456789012345678901234567890");
  EXPECT_TRUE(decoder.done());
}

TEST(ChunkedDecoderTest, PartialInputIsNotDoneYet) {
  ChunkedDecoder decoder;
  std::string out;
  ASSERT_TRUE(decoder.Feed("5\r\nhel", &out).ok());
  EXPECT_EQ(out, "hel");
  EXPECT_FALSE(decoder.done());
}

TEST(ChunkedDecoderTest, RejectsMalformedFraming) {
  {
    ChunkedDecoder decoder;
    std::string out;
    EXPECT_FALSE(decoder.Feed("zz\r\ndata\r\n", &out).ok());
    // Poisoned: further feeds keep failing.
    EXPECT_FALSE(decoder.Feed("5\r\nhello\r\n", &out).ok());
  }
  {
    ChunkedDecoder decoder;
    std::string out;
    // Chunk payload not followed by CRLF.
    EXPECT_FALSE(decoder.Feed("3\r\nabcXX", &out).ok());
  }
}

TEST(ChunkedDecoderTest, IgnoresTrailersAfterTerminalChunk) {
  ChunkedDecoder decoder;
  std::string out;
  ASSERT_TRUE(
      decoder.Feed("2\r\nok\r\n0\r\nx-trailer: 1\r\n\r\n", &out).ok());
  EXPECT_EQ(out, "ok");
  EXPECT_TRUE(decoder.done());
}

// --------------------------------------------- incremental SSE decoding
// The decoder must produce identical events no matter how the stream is
// sliced — the property the federation client depends on, since TCP can
// split an event anywhere, including inside a CRLF pair or the BOM.
TEST(SseDecoderTest, EveryByteBoundaryDecodesIdentically) {
  SseEvent a;
  a.event = "chunk";
  a.id = "0";
  a.data = "{\"text\":\"hello world\",\"tokens\":2}";
  SseEvent b;
  b.event = "done";
  b.data = "line one\nline two";
  const std::string wire = EncodeSse(a) + EncodeSse(b);

  const auto whole = DecodeSse(wire);
  ASSERT_EQ(whole.size(), 2u);
  for (size_t split = 0; split <= wire.size(); ++split) {
    SseDecoder decoder;
    auto events = decoder.Feed(wire.substr(0, split));
    for (auto& event : decoder.Feed(wire.substr(split))) {
      events.push_back(std::move(event));
    }
    ASSERT_EQ(events.size(), 2u) << "split at " << split;
    EXPECT_EQ(events[0].event, a.event) << split;
    EXPECT_EQ(events[0].id, a.id) << split;
    EXPECT_EQ(events[0].data, a.data) << split;
    EXPECT_EQ(events[1].event, b.event) << split;
    EXPECT_EQ(events[1].data, b.data) << split;
  }
}

TEST(SseDecoderTest, CrlfAndCrLineEndings) {
  for (const char* newline : {"\r\n", "\n", "\r"}) {
    SseDecoder decoder;
    const std::string wire = std::string("event: e") + newline +
                             "data: payload" + newline + newline;
    const auto events = decoder.Feed(wire);
    ASSERT_EQ(events.size(), 1u) << "newline: " << static_cast<int>(newline[0]);
    EXPECT_EQ(events[0].event, "e");
    EXPECT_EQ(events[0].data, "payload");
  }
}

TEST(SseDecoderTest, CrlfSplitAcrossFeedBoundary) {
  SseDecoder decoder;
  auto events = decoder.Feed("data: x\r");
  EXPECT_TRUE(events.empty());
  // The LF finishes the split CRLF; the CR then terminates the blank line
  // on its own (CR alone is a valid terminator), dispatching the event.
  events = decoder.Feed("\n\r");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].data, "x");
  // The trailing LF of that final CRLF must be swallowed, not re-dispatch.
  EXPECT_TRUE(decoder.Feed("\n").empty());
  EXPECT_FALSE(decoder.has_partial_event());
}

TEST(SseDecoderTest, StripsBomOnlyAtStreamStart) {
  SseDecoder decoder;
  // The BOM itself split across feeds.
  EXPECT_TRUE(decoder.Feed("\xEF").empty());
  EXPECT_TRUE(decoder.Feed("\xBB").empty());
  auto events = decoder.Feed("\xBF" "data: first\n\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].data, "first");
  // A BOM mid-stream is content, not a marker.
  events = decoder.Feed("data: \xEF\xBB\xBFsecond\n\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].data, "\xEF\xBB\xBFsecond");
}

TEST(SseDecoderTest, CommentsAndUnknownFieldsIgnored) {
  SseDecoder decoder;
  const auto events = decoder.Feed(
      ": keep-alive comment\nretry: 1000\nevent: e\ndata: d\n\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event, "e");
  EXPECT_EQ(events[0].data, "d");
}

TEST(SseDecoderTest, MissingTerminalBlankLineDropsTrailingEvent) {
  SseDecoder decoder;
  const auto events = decoder.Feed("data: complete\n\ndata: dangling\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].data, "complete");
  EXPECT_TRUE(decoder.has_partial_event());
}

TEST(SseDecoderTest, DataWithoutColonAndMultiDataJoin) {
  SseDecoder decoder;
  const auto events = decoder.Feed("data\ndata: two\n\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].data, "\ntwo");  // empty first data line joins with \n
}

TEST(SseDecoderTest, RoundTripPropertyAtRandomBoundaries) {
  Rng rng(0x55E1);
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz 0123456789{}[]\":,.\\/?-";
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string wire;
    std::vector<SseEvent> expected;
    const int num_events = static_cast<int>(rng.UniformInt(1, 4));
    for (int e = 0; e < num_events; ++e) {
      SseEvent event;
      event.event = "chunk";
      event.id = std::to_string(e);
      const int len = static_cast<int>(rng.UniformInt(0, 60));
      for (int i = 0; i < len; ++i) {
        event.data +=
            kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
      }
      wire += EncodeSse(event);
      expected.push_back(std::move(event));
    }
    SseDecoder decoder;
    std::vector<SseEvent> decoded;
    size_t pos = 0;
    while (pos < wire.size()) {
      const size_t take = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(wire.size() - pos)));
      for (auto& event :
           DecodeSseIncremental(std::string_view(wire).substr(pos, take),
                                &decoder)) {
        decoded.push_back(std::move(event));
      }
      pos += take;
    }
    ASSERT_EQ(decoded.size(), expected.size());
    for (size_t i = 0; i < decoded.size(); ++i) {
      EXPECT_EQ(decoded[i].event, expected[i].event);
      EXPECT_EQ(decoded[i].id, expected[i].id);
      EXPECT_EQ(decoded[i].data, expected[i].data);
    }
  }
}

// --------------------------------------------------- server integration
class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = testutil::MakeWorld(4);
    db_ = std::make_shared<vectordb::VectorDatabase>();
    sessions_ = std::make_shared<session::SessionStore>();
    engine_ = std::make_unique<core::SearchEngine>(
        world_.runtime.get(), world_.embedder, db_, sessions_);
    service_ = std::make_unique<ApiService>(engine_.get());
    server_ = std::make_unique<HttpServer>(service_.get());
    ASSERT_TRUE(server_->Start(0).ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  testutil::World world_;
  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::shared_ptr<session::SessionStore> sessions_;
  std::unique_ptr<core::SearchEngine> engine_;
  std::unique_ptr<ApiService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, HealthEndpointOverTheWire) {
  auto response =
      HttpFetch("127.0.0.1", server_->port(), "GET", "/api/health");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto body = Json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE((*body)["ok"].AsBool());
  EXPECT_EQ((*body)["status"].AsString(), "healthy");
}

TEST_F(HttpServerTest, QueryEndToEnd) {
  Json request = Json::MakeObject();
  request.Set("session", "wire");
  request.Set("query", world_.dataset[0].question);
  auto response = HttpFetch("127.0.0.1", server_->port(), "POST",
                            "/api/query", request.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto body = Json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE((*body)["ok"].AsBool());
  EXPECT_FALSE((*body)["answer"].AsString().empty());
}

TEST_F(HttpServerTest, StreamingQueryDeliversSseFrames) {
  Json request = Json::MakeObject();
  request.Set("session", "wire-sse");
  request.Set("query", world_.dataset[1].question);
  auto response = HttpFetch("127.0.0.1", server_->port(), "POST",
                            "/api/query?stream=1", request.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->headers.at("content-type"), "text/event-stream");

  const auto frames = DecodeSse(response->body);
  ASSERT_GT(frames.size(), 1u);
  EXPECT_EQ(frames.back().event, "result");
  auto result = Json::Parse(frames.back().data);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)["ok"].AsBool());
  // At least one orchestration frame with a chunk or score event.
  bool saw_orchestration = false;
  for (const auto& frame : frames) {
    saw_orchestration =
        saw_orchestration || frame.event == "orchestration";
  }
  EXPECT_TRUE(saw_orchestration);
}

TEST_F(HttpServerTest, ErrorsMapToHttpStatusCodes) {
  auto not_found =
      HttpFetch("127.0.0.1", server_->port(), "GET", "/api/nothing");
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found->status, 404);

  auto bad_json = HttpFetch("127.0.0.1", server_->port(), "POST",
                            "/api/query", "this is not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json->status, 400);

  auto bad_method =
      HttpFetch("127.0.0.1", server_->port(), "DELETE", "/api/health");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method->status, 405);

  Json missing = Json::MakeObject();
  missing.Set("session", "x");
  auto invalid = HttpFetch("127.0.0.1", server_->port(), "POST", "/api/query",
                           missing.Dump());
  ASSERT_TRUE(invalid.ok());
  EXPECT_EQ(invalid->status, 400);
}

TEST_F(HttpServerTest, UploadThenQueryOverTheWire) {
  const auto& item = world_.dataset[0];
  Json upload = Json::MakeObject();
  upload.Set("session", "wire-rag");
  upload.Set("document_id", "doc");
  upload.Set("text", item.golden);
  auto up = HttpFetch("127.0.0.1", server_->port(), "POST", "/api/upload",
                      upload.Dump());
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->status, 200);

  Json query = Json::MakeObject();
  query.Set("session", "wire-rag");
  query.Set("query", item.question);
  auto response = HttpFetch("127.0.0.1", server_->port(), "POST",
                            "/api/query", query.Dump());
  ASSERT_TRUE(response.ok());
  auto body = Json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_GE((*body)["retrieved_chunks"].AsInt(), 1);
}

TEST_F(HttpServerTest, ConcurrentClients) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 5; ++i) {
        auto response =
            HttpFetch("127.0.0.1", server_->port(), "GET", "/api/models");
        if (!response.ok() || response->status != 200) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(HttpServerTest, DoubleStartRejectedStopIdempotent) {
  EXPECT_TRUE(server_->Start(0).IsFailedPrecondition());
  server_->Stop();
  server_->Stop();  // idempotent
  EXPECT_FALSE(server_->running());
  // Connections after stop fail cleanly.
  auto response =
      HttpFetch("127.0.0.1", server_->port(), "GET", "/api/health");
  EXPECT_FALSE(response.ok());
}

}  // namespace
}  // namespace llmms::app
