#include <gtest/gtest.h>

#include "llmms/llm/knowledge.h"
#include "llmms/llm/registry.h"
#include "llmms/llm/runtime.h"
#include "testutil.h"

namespace llmms::llm {
namespace {

TEST(KnowledgeBaseTest, LookupFindsMatchingItem) {
  auto world = testutil::MakeWorld();
  const auto& item = world.dataset[3];
  const QaItem* found = world.knowledge->Lookup(item.question);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, item.id);
}

TEST(KnowledgeBaseTest, LookupSurvivesPromptDecoration) {
  auto world = testutil::MakeWorld();
  const auto& item = world.dataset[5];
  const std::string decorated =
      "Conversation so far:\nuser: hello\n\nQuestion: " + item.question;
  const QaItem* found = world.knowledge->Lookup(decorated);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, item.id);
}

TEST(KnowledgeBaseTest, LookupRejectsOffTopicPrompts) {
  auto world = testutil::MakeWorld();
  EXPECT_EQ(world.knowledge->Lookup("zzz qqq completely unrelated blorp",
                                    /*min_similarity=*/0.3),
            nullptr);
}

TEST(KnowledgeBaseTest, FindByIdAndValidation) {
  auto world = testutil::MakeWorld();
  EXPECT_NE(world.knowledge->FindById(world.dataset[0].id), nullptr);
  EXPECT_EQ(world.knowledge->FindById("no-such-id"), nullptr);
  KnowledgeBase kb(world.embedder);
  QaItem empty;
  EXPECT_TRUE(kb.Add(empty).IsInvalidArgument());
  EXPECT_EQ(kb.Lookup("anything"), nullptr);
}

TEST(ModelRegistryTest, RegisterGetRemove) {
  auto world = testutil::MakeWorld();
  EXPECT_EQ(world.registry->size(), 3u);
  EXPECT_TRUE(world.registry->Contains("llama3:8b"));
  auto model = world.registry->Get("mistral:7b");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "mistral:7b");
  EXPECT_TRUE(world.registry->Get("nope").status().IsNotFound());
  EXPECT_TRUE(world.registry->Remove("nope").IsNotFound());
  ASSERT_TRUE(world.registry->Remove("qwen2:7b").ok());
  EXPECT_EQ(world.registry->size(), 2u);
}

TEST(ModelRegistryTest, DuplicateRegistrationRejectedPullReplaces) {
  auto world = testutil::MakeWorld();
  auto model = world.registry->Get("llama3:8b");
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(world.registry->Register(*model).IsAlreadyExists());
  EXPECT_TRUE(world.registry->Pull(*model).ok());
  EXPECT_TRUE(world.registry->Register(nullptr).IsInvalidArgument());
}

TEST(ModelRegistryTest, ListIsSorted) {
  auto world = testutil::MakeWorld();
  const auto names = world.registry->List();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "llama3:8b");
  EXPECT_EQ(names[1], "mistral:7b");
  EXPECT_EQ(names[2], "qwen2:7b");
}

TEST(ModelRuntimeTest, LoadReservesDeviceMemory) {
  auto world = testutil::MakeWorld();
  // The test world loads all three models in MakeWorld; together they need
  // ~14.6 GB of the 32 GB V100.
  const auto snapshot = world.hardware->Snapshot();
  uint64_t used = 0;
  for (const auto& t : snapshot) used += t.memory_used_mb;
  EXPECT_GT(used, 14000u);
  EXPECT_EQ(world.runtime->LoadedModels().size(), 3u);
  EXPECT_TRUE(world.runtime->IsLoaded("llama3:8b"));
}

TEST(ModelRuntimeTest, LoadTwiceIsNoop) {
  auto world = testutil::MakeWorld();
  const auto before = world.hardware->Snapshot();
  ASSERT_TRUE(world.runtime->LoadModel("llama3:8b").ok());
  const auto after = world.hardware->Snapshot();
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].memory_used_mb, after[i].memory_used_mb);
  }
}

TEST(ModelRuntimeTest, UnloadFreesMemory) {
  auto world = testutil::MakeWorld();
  uint64_t used_before = 0;
  for (const auto& t : world.hardware->Snapshot()) {
    used_before += t.memory_used_mb;
  }
  ASSERT_TRUE(world.runtime->UnloadModel("llama3:8b").ok());
  uint64_t used_after = 0;
  for (const auto& t : world.hardware->Snapshot()) {
    used_after += t.memory_used_mb;
  }
  EXPECT_LT(used_after, used_before);
  EXPECT_TRUE(world.runtime->UnloadModel("llama3:8b").IsNotFound());
}

TEST(ModelRuntimeTest, GenerateUnloadedModelFails) {
  auto world = testutil::MakeWorld();
  ASSERT_TRUE(world.runtime->UnloadModel("qwen2:7b").ok());
  GenerationRequest request;
  request.prompt = world.dataset[0].question;
  EXPECT_TRUE(world.runtime->Generate("qwen2:7b", request)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ModelRuntimeTest, StartGenerationValidatesInput) {
  auto world = testutil::MakeWorld();
  GenerationRequest request;
  request.prompt = world.dataset[0].question;
  EXPECT_TRUE(world.runtime->StartGeneration({}, request)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(world.runtime
                  ->StartGeneration({"llama3:8b", "llama3:8b"}, request)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelGenerationTest, NextChunksRunsAllModels) {
  auto world = testutil::MakeWorld();
  GenerationRequest request;
  request.prompt = world.dataset[0].question;
  auto generation =
      world.runtime->StartGeneration(world.model_names, request);
  ASSERT_TRUE(generation.ok());
  std::vector<std::pair<std::string, size_t>> requests;
  for (const auto& m : world.model_names) requests.emplace_back(m, 8);
  auto batch = (*generation)->NextChunks(requests);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->errors.empty());
  EXPECT_EQ(batch->chunks.size(), 3u);
  for (const auto& [model, chunk] : batch->chunks) {
    EXPECT_LE(chunk.num_tokens, 8u);
    EXPECT_GT(chunk.num_tokens, 0u) << model;
  }
  EXPECT_EQ((*generation)->TotalTokens(),
            batch->chunks.at("llama3:8b").num_tokens +
                batch->chunks.at("mistral:7b").num_tokens +
                batch->chunks.at("qwen2:7b").num_tokens);
}

TEST(ParallelGenerationTest, UnknownModelRejected) {
  auto world = testutil::MakeWorld();
  GenerationRequest request;
  request.prompt = world.dataset[0].question;
  auto generation = world.runtime->StartGeneration({"llama3:8b"}, request);
  ASSERT_TRUE(generation.ok());
  EXPECT_TRUE((*generation)->NextChunk("mistral:7b", 4).status().IsNotFound());
  EXPECT_TRUE((*generation)->TextOf("nope").status().IsNotFound());
  EXPECT_TRUE((*generation)->StatsOf("nope").status().IsNotFound());
}

TEST(ParallelGenerationTest, SimulatedTimeUsesSlowestOfRound) {
  auto world = testutil::MakeWorld();
  GenerationRequest request;
  request.prompt = world.dataset[0].question;
  auto generation =
      world.runtime->StartGeneration(world.model_names, request);
  ASSERT_TRUE(generation.ok());
  std::vector<std::pair<std::string, size_t>> requests;
  for (const auto& m : world.model_names) requests.emplace_back(m, 8);
  ASSERT_TRUE((*generation)->NextChunks(requests).ok());
  // Parallel round: wall time must be <= the sum of per-model times.
  double sum = 0.0;
  for (const auto& m : world.model_names) {
    auto stats = (*generation)->StatsOf(m);
    ASSERT_TRUE(stats.ok());
    sum += stats->simulated_seconds;
  }
  EXPECT_GT((*generation)->SimulatedWallSeconds(), 0.0);
  EXPECT_LT((*generation)->SimulatedWallSeconds(), sum);
}

TEST(ParallelGenerationTest, DuplicateModelInOneRoundRejected) {
  // A model named twice in one NextChunks round would hand the same stream
  // to two concurrent pool tasks — reject it before any task is submitted.
  auto world = testutil::MakeWorld();
  GenerationRequest request;
  request.prompt = world.dataset[0].question;
  auto generation =
      world.runtime->StartGeneration(world.model_names, request);
  ASSERT_TRUE(generation.ok());
  auto batch = (*generation)->NextChunks(
      {{"llama3:8b", 8}, {"mistral:7b", 8}, {"llama3:8b", 8}});
  EXPECT_TRUE(batch.status().IsInvalidArgument());
  // The failed round charged nothing and generated nothing.
  EXPECT_EQ((*generation)->TotalTokens(), 0u);
  EXPECT_DOUBLE_EQ((*generation)->SimulatedWallSeconds(), 0.0);
}

// The head-of-line accounting invariant (DESIGN.md §13): a round's
// wall-clock charge is the max over the streams actually scheduled in it.
// Models that are idle this round — not requested — contribute nothing,
// with and without a BatchScheduler multiplexing the replicas underneath.
void ExpectRoundChargesOnlyScheduledStreams(llm::ModelRuntime* runtime,
                                            const testutil::World& world) {
  GenerationRequest request;
  request.prompt = world.dataset[1].question;
  auto generation = runtime->StartGeneration(world.model_names, request);
  ASSERT_TRUE(generation.ok());

  // Round 1: only two of the three models are scheduled.
  const std::string idle = world.model_names[2];
  std::vector<std::pair<std::string, size_t>> partial = {
      {world.model_names[0], 8}, {world.model_names[1], 8}};
  auto batch = (*generation)->NextChunks(partial);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->errors.empty());

  double slowest = 0.0;
  for (const auto& [name, tokens] : partial) {
    auto stats = (*generation)->StatsOf(name);
    ASSERT_TRUE(stats.ok());
    slowest = std::max(slowest, stats->simulated_seconds);
  }
  // The idle model was never touched...
  auto idle_stats = (*generation)->StatsOf(idle);
  ASSERT_TRUE(idle_stats.ok());
  EXPECT_EQ(idle_stats->tokens, 0u);
  EXPECT_DOUBLE_EQ(idle_stats->simulated_seconds, 0.0);
  // ...and the round's wall-clock is exactly the slowest *scheduled*
  // stream, not inflated by idle replicas or unrequested models.
  EXPECT_DOUBLE_EQ((*generation)->SimulatedWallSeconds(), slowest);

  // Round 2: only the previously idle model runs; the wall advances by its
  // chunk alone.
  const double wall_before = (*generation)->SimulatedWallSeconds();
  auto second = (*generation)->NextChunks({{idle, 8}});
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->errors.empty());
  auto after = (*generation)->StatsOf(idle);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ((*generation)->SimulatedWallSeconds(),
                   wall_before + after->simulated_seconds);
}

TEST(ParallelGenerationTest, RoundChargesOnlyScheduledStreams) {
  auto world = testutil::MakeWorld();
  ExpectRoundChargesOnlyScheduledStreams(world.runtime.get(), world);
}

TEST(ParallelGenerationTest, RoundChargesOnlyScheduledStreamsWithScheduler) {
  auto world = testutil::MakeWorld();
  SchedulerConfig config;
  config.replicas_per_model = 2;
  world.runtime->EnableScheduler(config);
  ExpectRoundChargesOnlyScheduledStreams(world.runtime.get(), world);
  // The scheduler saw the streams and released them all.
  const auto stats = world.runtime->scheduler()->stats();
  EXPECT_GT(stats.dispatches, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.waiting, 0u);
}

TEST(ParallelGenerationTest, GenerateToCompletionViaRuntime) {
  auto world = testutil::MakeWorld();
  GenerationRequest request;
  request.prompt = world.dataset[2].question;
  auto result = world.runtime->Generate("mistral:7b", request);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_tokens, 0u);
  EXPECT_EQ(result->stop_reason, StopReason::kStop);
  EXPECT_GT(result->simulated_seconds, 0.0);
  EXPECT_FALSE(result->text.empty());
}

}  // namespace
}  // namespace llmms::llm
