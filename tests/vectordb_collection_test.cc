#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>

#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/database.h"

namespace llmms::vectordb {
namespace {

Collection::Options SmallOptions(IndexKind kind = IndexKind::kFlat) {
  Collection::Options opts;
  opts.dimension = 4;
  opts.metric = DistanceMetric::kCosine;
  opts.index_kind = kind;
  return opts;
}

VectorRecord MakeRecord(const std::string& id, Vector v,
                        Metadata metadata = {}) {
  VectorRecord r;
  r.id = id;
  r.vector = std::move(v);
  r.metadata = std::move(metadata);
  r.document = "doc-" + id;
  return r;
}

TEST(CollectionTest, UpsertGetDelete) {
  Collection c("test", SmallOptions());
  ASSERT_TRUE(c.Upsert(MakeRecord("a", {1, 0, 0, 0})).ok());
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.Contains("a"));
  auto rec = c.Get("a");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->document, "doc-a");
  ASSERT_TRUE(c.Delete("a").ok());
  EXPECT_EQ(c.size(), 0u);
  EXPECT_TRUE(c.Get("a").status().IsNotFound());
  EXPECT_TRUE(c.Delete("a").IsNotFound());
}

TEST(CollectionTest, UpsertReplacesExisting) {
  Collection c("test", SmallOptions());
  ASSERT_TRUE(c.Upsert(MakeRecord("a", {1, 0, 0, 0})).ok());
  ASSERT_TRUE(c.Upsert(MakeRecord("a", {0, 1, 0, 0})).ok());
  EXPECT_EQ(c.size(), 1u);
  auto hits = c.Query({0, 1, 0, 0}, 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, "a");
  EXPECT_NEAR((*hits)[0].score, 1.0, 1e-5);
}

TEST(CollectionTest, RejectsBadInput) {
  Collection c("test", SmallOptions());
  EXPECT_TRUE(c.Upsert(MakeRecord("", {1, 0, 0, 0})).IsInvalidArgument());
  EXPECT_TRUE(c.Upsert(MakeRecord("a", {1, 0})).IsInvalidArgument());
}

TEST(CollectionTest, QueryOrdersBySimilarity) {
  Collection c("test", SmallOptions());
  ASSERT_TRUE(c.Upsert(MakeRecord("x", {1, 0, 0, 0})).ok());
  ASSERT_TRUE(c.Upsert(MakeRecord("y", {0.7f, 0.7f, 0, 0})).ok());
  ASSERT_TRUE(c.Upsert(MakeRecord("z", {0, 0, 1, 0})).ok());
  auto hits = c.Query({1, 0, 0, 0}, 2);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].id, "x");
  EXPECT_EQ((*hits)[1].id, "y");
  EXPECT_GT((*hits)[0].score, (*hits)[1].score);
}

TEST(CollectionTest, MetadataFilterRestrictsResults) {
  Collection c("test", SmallOptions());
  ASSERT_TRUE(
      c.Upsert(MakeRecord("a1", {1, 0, 0, 0}, {{"doc", "a"}})).ok());
  ASSERT_TRUE(
      c.Upsert(MakeRecord("a2", {0.9f, 0.1f, 0, 0}, {{"doc", "a"}})).ok());
  ASSERT_TRUE(
      c.Upsert(MakeRecord("b1", {0.99f, 0.05f, 0, 0}, {{"doc", "b"}})).ok());
  auto hits = c.Query({1, 0, 0, 0}, 10, {{"doc", "a"}});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  for (const auto& hit : *hits) {
    EXPECT_EQ(hit.metadata.at("doc"), "a");
  }
}

TEST(CollectionTest, FilterWithNoMatchesReturnsEmpty) {
  Collection c("test", SmallOptions());
  ASSERT_TRUE(c.Upsert(MakeRecord("a", {1, 0, 0, 0}, {{"k", "v"}})).ok());
  auto hits = c.Query({1, 0, 0, 0}, 5, {{"k", "other"}});
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(CollectionTest, QueryZeroKOrEmptyCollection) {
  Collection c("test", SmallOptions());
  auto hits = c.Query({1, 0, 0, 0}, 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  ASSERT_TRUE(c.Upsert(MakeRecord("a", {1, 0, 0, 0})).ok());
  hits = c.Query({1, 0, 0, 0}, 0);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(CollectionTest, HnswBackedCollectionWorks) {
  Collection c("test", SmallOptions(IndexKind::kHnsw));
  for (int i = 0; i < 50; ++i) {
    const float angle = static_cast<float>(i) * 0.1f;
    ASSERT_TRUE(c.Upsert(MakeRecord("v" + std::to_string(i),
                                    {std::cos(angle), std::sin(angle), 0, 0}))
                    .ok());
  }
  auto hits = c.Query({1, 0, 0, 0}, 3);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 3u);
  EXPECT_EQ((*hits)[0].id, "v0");
}

TEST(CollectionTest, IdsListsLiveRecords) {
  Collection c("test", SmallOptions());
  ASSERT_TRUE(c.Upsert(MakeRecord("a", {1, 0, 0, 0})).ok());
  ASSERT_TRUE(c.Upsert(MakeRecord("b", {0, 1, 0, 0})).ok());
  ASSERT_TRUE(c.Delete("a").ok());
  const auto ids = c.Ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], "b");
}

TEST(VectorDatabaseTest, CreateGetDropCollections) {
  VectorDatabase db;
  ASSERT_TRUE(db.CreateCollection("one", SmallOptions()).ok());
  EXPECT_TRUE(db.CreateCollection("one", SmallOptions())
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(db.CreateCollection("", SmallOptions())
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(db.GetCollection("one").ok());
  EXPECT_TRUE(db.GetCollection("two").status().IsNotFound());
  EXPECT_EQ(db.collection_count(), 1u);
  ASSERT_TRUE(db.DropCollection("one").ok());
  EXPECT_TRUE(db.DropCollection("one").IsNotFound());
}

TEST(VectorDatabaseTest, GetOrCreateChecksCompatibility) {
  VectorDatabase db;
  ASSERT_TRUE(db.GetOrCreateCollection("c", SmallOptions()).ok());
  ASSERT_TRUE(db.GetOrCreateCollection("c", SmallOptions()).ok());
  EXPECT_EQ(db.collection_count(), 1u);
  auto other = SmallOptions();
  other.dimension = 8;
  EXPECT_TRUE(db.GetOrCreateCollection("c", other)
                  .status()
                  .IsFailedPrecondition());
}

TEST(VectorDatabaseTest, SaveLoadRoundTrip) {
  VectorDatabase db;
  auto collection = db.CreateCollection("docs", SmallOptions(IndexKind::kHnsw));
  ASSERT_TRUE(collection.ok());
  ASSERT_TRUE((*collection)
                  ->Upsert(MakeRecord("a", {1, 0, 0, 0}, {{"k", "v"}}))
                  .ok());
  ASSERT_TRUE((*collection)->Upsert(MakeRecord("b", {0, 1, 0, 0})).ok());
  auto second = db.CreateCollection("other", SmallOptions());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE((*second)->Upsert(MakeRecord("x", {0, 0, 1, 0})).ok());

  const std::string path = ::testing::TempDir() + "/vdb_roundtrip.bin";
  ASSERT_TRUE(db.Save(path).ok());

  auto loaded = VectorDatabase::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->collection_count(), 2u);
  auto docs = (*loaded)->GetCollection("docs");
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ((*docs)->size(), 2u);
  auto rec = (*docs)->Get("a");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->metadata.at("k"), "v");
  EXPECT_EQ(rec->document, "doc-a");
  auto hits = (*docs)->Query({1, 0, 0, 0}, 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, "a");
  std::remove(path.c_str());
}

TEST(VectorDatabaseTest, LoadRejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/vdb_bad.bin";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("garbage data here", f);
    fclose(f);
  }
  EXPECT_FALSE(VectorDatabase::Load(path).ok());
  EXPECT_FALSE(VectorDatabase::Load("/nonexistent/db.bin").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace llmms::vectordb
