#include "llmms/common/status.h"

#include <gtest/gtest.h>

#include "llmms/common/result.h"

namespace llmms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

Status UseAssignOrReturn(int input, int* out) {
  LLMMS_ASSIGN_OR_RETURN(int value, ParsePositive(input));
  *out = value * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(3, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_TRUE(UseAssignOrReturn(-3, &out).IsInvalidArgument());
}

Status UseReturnNotOk(bool fail) {
  LLMMS_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_TRUE(UseReturnNotOk(true).IsInternal());
}

}  // namespace
}  // namespace llmms
