#include "llmms/tokenizer/word_tokenizer.h"

#include <gtest/gtest.h>

namespace llmms::tokenizer {
namespace {

TEST(WordTokenizerTest, DefaultLowercasesAndStripsPunctuation) {
  WordTokenizer tok;
  EXPECT_EQ(tok.Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(WordTokenizerTest, KeepsDigits) {
  WordTokenizer tok;
  EXPECT_EQ(tok.Tokenize("founded in 1842."),
            (std::vector<std::string>{"founded", "in", "1842"}));
}

TEST(WordTokenizerTest, RemoveArticlesOption) {
  WordTokenizer::Options opts;
  opts.remove_articles = true;
  WordTokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("The cat saw a dog and an owl"),
            (std::vector<std::string>{"cat", "saw", "dog", "and", "owl"}));
}

TEST(WordTokenizerTest, RemoveStopwordsOption) {
  WordTokenizer::Options opts;
  opts.remove_stopwords = true;
  WordTokenizer tok(opts);
  const auto tokens = tok.Tokenize("the mineral is heated in the lab");
  EXPECT_EQ(tokens, (std::vector<std::string>{"mineral", "heated", "lab"}));
}

TEST(WordTokenizerTest, EmptyAndPunctuationOnly) {
  WordTokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("... !!! ???").empty());
}

TEST(WordTokenizerTest, NormalizeJoinsWithSpaces) {
  WordTokenizer tok;
  EXPECT_EQ(tok.Normalize("A  B,   C!"), "a b c");
}

TEST(WordTokenizerTest, IsStopword) {
  EXPECT_TRUE(WordTokenizer::IsStopword("the"));
  EXPECT_TRUE(WordTokenizer::IsStopword("and"));
  EXPECT_FALSE(WordTokenizer::IsStopword("mineral"));
}

TEST(SplitSentencesTest, SplitsOnTerminators) {
  const auto s = SplitSentences("First one. Second one! Third one?");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "First one.");
  EXPECT_EQ(s[1], "Second one!");
  EXPECT_EQ(s[2], "Third one?");
}

TEST(SplitSentencesTest, KeepsAbbreviations) {
  const auto s = SplitSentences("Dr. Smith arrived. He was late.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "Dr. Smith arrived.");
}

TEST(SplitSentencesTest, KeepsDecimals) {
  const auto s = SplitSentences("The value is 3.14 exactly. Nice.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "The value is 3.14 exactly.");
}

TEST(SplitSentencesTest, TrailingTextWithoutTerminator) {
  const auto s = SplitSentences("Complete sentence. trailing fragment");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], "trailing fragment");
}

TEST(SplitSentencesTest, EmptyInput) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   ").empty());
}

}  // namespace
}  // namespace llmms::tokenizer
