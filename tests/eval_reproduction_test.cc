// Shape-level reproduction of the thesis evaluation (Chapter 8): on a
// TruthfulQA-style benchmark, multi-model orchestration must beat the static
// single-model baselines on answer quality, with OUA the most token-efficient
// strategy. These assertions encode the qualitative claims of Figures
// 8.1-8.3; the bench binaries print the full series.

#include <gtest/gtest.h>

#include "llmms/eval/harness.h"
#include "llmms/eval/qa_dataset.h"
#include "testutil.h"

namespace llmms::eval {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new testutil::World(testutil::MakeWorld(15));
    HarnessConfig config;
    EvaluationHarness harness(world_->runtime.get(), world_->embedder,
                              world_->model_names, config);
    auto report = harness.Run(world_->dataset);
    ASSERT_TRUE(report.ok());
    report_ = new EvaluationReport(std::move(report).value());
  }

  static void TearDownTestSuite() {
    delete report_;
    delete world_;
    report_ = nullptr;
    world_ = nullptr;
  }

  static double BestSingle(double StrategyAggregate::*metric) {
    double best = -1e9;
    for (const auto& name : world_->model_names) {
      const auto* run = report_->Find(name);
      EXPECT_NE(run, nullptr);
      best = std::max(best, run->aggregate.*metric);
    }
    return best;
  }

  static testutil::World* world_;
  static EvaluationReport* report_;
};

testutil::World* ReproductionTest::world_ = nullptr;
EvaluationReport* ReproductionTest::report_ = nullptr;

TEST_F(ReproductionTest, AllFiveStrategiesRan) {
  EXPECT_EQ(report_->runs.size(), 5u);
  EXPECT_NE(report_->Find("llm-ms-oua"), nullptr);
  EXPECT_NE(report_->Find("llm-ms-mab"), nullptr);
  for (const auto& run : report_->runs) {
    EXPECT_EQ(run.per_question.size(), world_->dataset.size());
  }
}

// Figure 8.1 shape: the orchestration strategies out-reward every static
// single-model baseline, and MAB achieves the highest average reward
// (§8.3.1).
TEST_F(ReproductionTest, OrchestrationBeatsSinglesOnRewardAndMabLeads) {
  const double best_single = BestSingle(&StrategyAggregate::mean_reward);
  const double oua = report_->Find("llm-ms-oua")->aggregate.mean_reward;
  const double mab = report_->Find("llm-ms-mab")->aggregate.mean_reward;
  EXPECT_GT(oua, best_single);
  EXPECT_GT(mab, best_single);
  EXPECT_GT(mab, oua);
}

// Figure 8.2 shape: the orchestration strategies beat every single model on
// F1, and OUA achieves the highest average F1 (§8.3.2).
TEST_F(ReproductionTest, OrchestrationBeatsSinglesOnF1AndOuaLeads) {
  const double best_single = BestSingle(&StrategyAggregate::mean_f1);
  const double oua = report_->Find("llm-ms-oua")->aggregate.mean_f1;
  const double mab = report_->Find("llm-ms-mab")->aggregate.mean_f1;
  EXPECT_GT(oua, best_single);
  EXPECT_GT(mab, best_single);
  EXPECT_GE(oua, mab);
}

// Figure 8.3 shape (the §8.2 token definition: tokens of the final answer):
// OUA shows the best reward-to-tokens trade-off of the two LLM-MS
// strategies, and orchestration beats the singles on the ratio too.
TEST_F(ReproductionTest, OuaBestRewardToTokenRatio) {
  const auto* oua = report_->Find("llm-ms-oua");
  const auto* mab = report_->Find("llm-ms-mab");
  EXPECT_GE(oua->aggregate.mean_reward_per_answer_token,
            mab->aggregate.mean_reward_per_answer_token);
  const double best_single =
      BestSingle(&StrategyAggregate::mean_reward_per_answer_token);
  EXPECT_GT(oua->aggregate.mean_reward_per_answer_token, best_single);
}

// §8.4: accuracy follows the same ordering as reward/F1.
TEST_F(ReproductionTest, OrchestrationAccuracyAtLeastBestSingle) {
  const double best_single = BestSingle(&StrategyAggregate::accuracy);
  EXPECT_GE(report_->Find("llm-ms-oua")->aggregate.accuracy, best_single);
  EXPECT_GE(report_->Find("llm-ms-mab")->aggregate.accuracy, best_single);
}

// The premise of the paper: each model dominates its own specialty domains,
// so no single model wins everywhere.
TEST_F(ReproductionTest, SpecialistsWinTheirOwnDomains) {
  auto domain_reward = [&](const std::string& strategy,
                           const std::string& domain) {
    const auto* run = report_->Find(strategy);
    for (const auto& [d, agg] :
         AggregateByDomain(strategy, run->per_question)) {
      if (d == domain) return agg.mean_reward;
    }
    return -1e9;
  };
  // LLaMA leads science; Mistral leads math; Qwen leads language.
  EXPECT_GT(domain_reward("llama3:8b", "science"),
            domain_reward("mistral:7b", "science"));
  EXPECT_GT(domain_reward("mistral:7b", "math"),
            domain_reward("llama3:8b", "math"));
  EXPECT_GT(domain_reward("qwen2:7b", "language"),
            domain_reward("llama3:8b", "language"));
}

// §8.4 "Better resource utilization": the orchestrators must not exceed the
// budget, and OUA should spend meaningfully less than 3x the single models.
TEST_F(ReproductionTest, TokenBudgetsRespected) {
  for (const auto& run : report_->runs) {
    for (const auto& q : run.per_question) {
      EXPECT_LE(q.total_tokens, 2048u) << run.strategy;
    }
  }
}

// Determinism: a second harness run reproduces the numbers exactly.
TEST_F(ReproductionTest, HarnessIsDeterministic) {
  HarnessConfig config;
  config.run_singles = false;
  config.run_mab = false;
  EvaluationHarness harness(world_->runtime.get(), world_->embedder,
                            world_->model_names, config);
  auto again = harness.Run(world_->dataset);
  ASSERT_TRUE(again.ok());
  const auto* first = report_->Find("llm-ms-oua");
  const auto* second = again->Find("llm-ms-oua");
  ASSERT_NE(second, nullptr);
  EXPECT_DOUBLE_EQ(first->aggregate.mean_reward,
                   second->aggregate.mean_reward);
  EXPECT_DOUBLE_EQ(first->aggregate.mean_f1, second->aggregate.mean_f1);
}

}  // namespace
}  // namespace llmms::eval
