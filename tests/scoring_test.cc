#include "llmms/core/scoring.h"

#include <gtest/gtest.h>

#include "llmms/embedding/hash_embedder.h"

namespace llmms::core {
namespace {

class ScoringTest : public ::testing::Test {
 protected:
  std::shared_ptr<const embedding::Embedder> embedder_ =
      std::make_shared<embedding::HashEmbedder>();
};

TEST_F(ScoringTest, ScoreRoundRanksTopicalResponseHighest) {
  ResponseScorer scorer(embedder_, ScoringWeights{});
  const std::string query = "what color does the veltrite mineral turn when heated";
  const auto scores = scorer.ScoreRound(
      query, {"the veltrite mineral turns crimson when heated",
              "veltrite becomes crimson under heat",
              "general maltok won the naval battle of drennos"});
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[0].combined, scores[2].combined);
  EXPECT_GT(scores[1].combined, scores[2].combined);
  // The two agreeing responses have higher inter-model similarity.
  EXPECT_GT(scores[0].inter_similarity, scores[2].inter_similarity);
}

TEST_F(ScoringTest, EmptyResponsesScoreZero) {
  ResponseScorer scorer(embedder_, ScoringWeights{});
  const auto scores = scorer.ScoreRound("query", {"", "related query text"});
  EXPECT_EQ(scores[0].combined, 0.0);
  EXPECT_GT(scores[1].combined, 0.0);
}

TEST_F(ScoringTest, WeightsChangeCombination) {
  ScoringWeights query_only{1.0, 0.0};
  ScoringWeights inter_only{0.0, 1.0};
  ResponseScorer a(embedder_, query_only);
  ResponseScorer b(embedder_, inter_only);
  const std::string query = "the veltrite mineral color when heated";
  const std::vector<std::string> responses{
      "the veltrite mineral turns crimson when heated",
      "the veltrite mineral becomes crimson when heated"};
  const auto sa = a.ScoreRound(query, responses);
  const auto sb = b.ScoreRound(query, responses);
  EXPECT_DOUBLE_EQ(sa[0].combined, sa[0].query_similarity);
  EXPECT_DOUBLE_EQ(sb[0].combined, sb[0].inter_similarity);
}

TEST_F(ScoringTest, SingleResponseHasZeroInterSimilarity) {
  ResponseScorer scorer(embedder_, ScoringWeights{});
  const auto scores = scorer.ScoreRound("query text", {"query text answer"});
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].inter_similarity, 0.0);
}

TEST_F(ScoringTest, ScoreOneMatchesScoreRound) {
  ResponseScorer scorer(embedder_, ScoringWeights{});
  const std::string query = "the veltrite mineral";
  const std::vector<std::string> responses{
      "veltrite is a crimson mineral", "the mineral is heated"};
  const auto round = scorer.ScoreRound(query, responses);
  const double one = scorer.ScoreOne(query, responses[0], {responses[1]});
  EXPECT_NEAR(one, round[0].combined, 1e-9);
}

TEST_F(ScoringTest, ScoreOneSkipsEmptyOthers) {
  ResponseScorer scorer(embedder_, ScoringWeights{});
  const double with_empty =
      scorer.ScoreOne("query", "query response", {"", ""});
  const double alone = scorer.ScoreOne("query", "query response", {});
  EXPECT_DOUBLE_EQ(with_empty, alone);
  EXPECT_EQ(scorer.ScoreOne("query", "", {"other"}), 0.0);
}

TEST_F(ScoringTest, RewardPrefersGoldenAlignedResponse) {
  const std::string golden = "the mineral turns crimson when heated";
  const std::vector<std::string> correct{"it becomes crimson under heat"};
  const std::vector<std::string> incorrect{
      "the mineral turns azure when heated"};
  const double good = ComputeReward(
      *embedder_, "the mineral turns crimson when heated", golden, correct,
      incorrect);
  const double bad = ComputeReward(
      *embedder_, "the mineral turns azure when heated", golden, correct,
      incorrect);
  EXPECT_GT(good, bad);
}

TEST_F(ScoringTest, RewardWeightsApplied) {
  const std::string golden = "crimson mineral";
  RewardWeights no_penalty{1.0, 0.5, 0.0};
  RewardWeights full_penalty{1.0, 0.5, 2.0};
  const std::string response = "azure mineral";
  const std::vector<std::string> incorrect{"azure mineral"};
  const double lenient =
      ComputeReward(*embedder_, response, golden, {}, incorrect, no_penalty);
  const double strict =
      ComputeReward(*embedder_, response, golden, {}, incorrect, full_penalty);
  EXPECT_GT(lenient, strict);
}

TEST_F(ScoringTest, RewardEmptySetsContributeZero) {
  const double r = ComputeReward(*embedder_, "any response", "", {}, {});
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(TokenF1Test, PerfectMatch) {
  EXPECT_DOUBLE_EQ(TokenF1("The capital is Paris", "the capital is paris!"),
                   1.0);
}

TEST(TokenF1Test, NoOverlap) {
  EXPECT_DOUBLE_EQ(TokenF1("alpha beta", "gamma delta"), 0.0);
}

TEST(TokenF1Test, PartialOverlapComputesHarmonicMean) {
  // response: {answer, 42, extra, words} (4), reference: {answer, 42} (2),
  // overlap 2 -> p=0.5, r=1.0 -> f1=2/3.
  EXPECT_NEAR(TokenF1("answer 42 extra words", "answer 42"), 2.0 / 3.0, 1e-9);
}

TEST(TokenF1Test, ArticlesIgnored) {
  EXPECT_DOUBLE_EQ(TokenF1("the answer", "answer"), 1.0);
}

TEST(TokenF1Test, BagSemanticsCountDuplicates) {
  // reference has one "x"; response has two -> only one counts.
  const double f1 = TokenF1("x x", "x y");
  // overlap=1, p=1/2, r=1/2 -> f1=1/2.
  EXPECT_NEAR(f1, 0.5, 1e-9);
}

TEST(TokenF1Test, EmptyEdgeCases) {
  EXPECT_DOUBLE_EQ(TokenF1("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TokenF1("something", ""), 0.0);
  EXPECT_DOUBLE_EQ(TokenF1("", "something"), 0.0);
}

TEST(TokenF1Test, BestTokenF1TakesMaximum) {
  const double best = BestTokenF1("the city was founded in 1200",
                                  "completely different words",
                                  {"founded in 1200", "unrelated answer"});
  EXPECT_NEAR(best, TokenF1("the city was founded in 1200", "founded in 1200"),
              1e-9);
}

TEST(TokenF1Test, SymmetricInArguments) {
  const double ab = TokenF1("alpha beta gamma", "beta gamma delta");
  const double ba = TokenF1("beta gamma delta", "alpha beta gamma");
  EXPECT_NEAR(ab, ba, 1e-12);
}

}  // namespace
}  // namespace llmms::core
