#include <cmath>
#include <gtest/gtest.h>

#include "llmms/embedding/embedding_cache.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/embedding/similarity.h"

namespace llmms::embedding {
namespace {

double Norm(const Vector& v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

TEST(HashEmbedderTest, FixedDimensionUnitNorm) {
  HashEmbedder embedder;
  const auto v = embedder.Embed("the capital of France is Paris");
  EXPECT_EQ(v.size(), embedder.dimension());
  EXPECT_NEAR(Norm(v), 1.0, 1e-5);
}

TEST(HashEmbedderTest, EmptyTextIsZeroVector) {
  HashEmbedder embedder;
  const auto v = embedder.Embed("");
  EXPECT_NEAR(Norm(v), 0.0, 1e-9);
}

TEST(HashEmbedderTest, Deterministic) {
  HashEmbedder a;
  HashEmbedder b;
  EXPECT_EQ(a.Embed("some text here"), b.Embed("some text here"));
}

TEST(HashEmbedderTest, SimilarTextsCloserThanUnrelated) {
  HashEmbedder embedder;
  const auto query = embedder.Embed("what color does the mineral turn when heated");
  const auto related = embedder.Embed("the mineral turns crimson when heated");
  const auto unrelated = embedder.Embed("general zelkor won the naval battle in 1742");
  EXPECT_GT(CosineSimilarity(query, related),
            CosineSimilarity(query, unrelated) + 0.2);
}

TEST(HashEmbedderTest, ParaphraseSimilarity) {
  HashEmbedder embedder;
  const auto a = embedder.Embed("the city was founded in 1200");
  const auto b = embedder.Embed("its founding year is 1200 the city");
  const auto c = embedder.Embed("bananas are rich in potassium today");
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c));
}

TEST(HashEmbedderTest, StopwordsContributeLess) {
  HashEmbedder embedder;
  const auto content = embedder.Embed("mineral crimson heated");
  const auto with_stops = embedder.Embed("the mineral is crimson and it is heated");
  EXPECT_GT(CosineSimilarity(content, with_stops), 0.6);
}

TEST(HashEmbedderTest, DifferentSeedsGiveDifferentSpaces) {
  HashEmbedder::Options a_opts;
  a_opts.seed = 1;
  HashEmbedder::Options b_opts;
  b_opts.seed = 2;
  HashEmbedder a(a_opts);
  HashEmbedder b(b_opts);
  EXPECT_NE(a.Embed("hello world"), b.Embed("hello world"));
}

TEST(HashEmbedderTest, NameIncludesDimension) {
  HashEmbedder::Options opts;
  opts.dimension = 128;
  HashEmbedder embedder(opts);
  EXPECT_EQ(embedder.name(), "hash-embedder-128");
  EXPECT_EQ(embedder.Embed("x").size(), 128u);
}

TEST(SimilarityTest, CosineBoundsAndIdentity) {
  HashEmbedder embedder;
  const auto v = embedder.Embed("identical text");
  EXPECT_NEAR(CosineSimilarity(v, v), 1.0, 1e-6);
  Vector zero(v.size(), 0.0f);
  EXPECT_EQ(CosineSimilarity(v, zero), 0.0);
}

TEST(SimilarityTest, DotProductMatchesCosineForUnitVectors) {
  HashEmbedder embedder;
  const auto a = embedder.Embed("alpha beta gamma");
  const auto b = embedder.Embed("beta gamma delta");
  EXPECT_NEAR(DotProduct(a, b), CosineSimilarity(a, b), 1e-5);
}

TEST(SimilarityTest, L2DistanceZeroForIdentical) {
  Vector a{1.0f, 2.0f, 3.0f};
  Vector b{1.0f, 2.0f, 4.0f};
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, a), 0.0);
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 1.0);
}

TEST(SimilarityTest, MeanSimilarityToOthers) {
  Vector x{1.0f, 0.0f};
  Vector y{1.0f, 0.0f};
  Vector z{0.0f, 1.0f};
  std::vector<Vector> all{x, y, z};
  EXPECT_NEAR(MeanSimilarityToOthers(all, 0), 0.5, 1e-9);
  EXPECT_NEAR(MeanSimilarityToOthers(all, 2), 0.0, 1e-9);
  EXPECT_EQ(MeanSimilarityToOthers({x}, 0), 0.0);
  EXPECT_EQ(MeanSimilarityToOthers(all, 99), 0.0);
}

TEST(L2NormalizeTest, NormalizesNonZero) {
  Vector v{3.0f, 4.0f};
  L2Normalize(&v);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
  EXPECT_NEAR(v[1], 0.8f, 1e-6);
  Vector zero{0.0f, 0.0f};
  L2Normalize(&zero);
  EXPECT_EQ(zero[0], 0.0f);
}

TEST(EmbeddingCacheTest, HitsAndMisses) {
  auto inner = std::make_shared<HashEmbedder>();
  EmbeddingCache cache(inner, 10);
  const auto v1 = cache.Embed("repeat me");
  const auto v2 = cache.Embed("repeat me");
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EmbeddingCacheTest, EvictsLeastRecentlyUsed) {
  auto inner = std::make_shared<HashEmbedder>();
  EmbeddingCache cache(inner, 2);
  cache.Embed("a");
  cache.Embed("b");
  cache.Embed("a");  // refresh a
  cache.Embed("c");  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  cache.Embed("a");
  EXPECT_EQ(cache.hits(), 2u);
  cache.Embed("b");  // must be a miss again
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(EmbeddingCacheTest, ZeroCapacityPassThrough) {
  auto inner = std::make_shared<HashEmbedder>();
  EmbeddingCache cache(inner, 0);
  EXPECT_EQ(cache.Embed("x"), inner->Embed("x"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EmbeddingCacheTest, MatchesInnerEmbedderExactly) {
  auto inner = std::make_shared<HashEmbedder>();
  EmbeddingCache cache(inner, 100);
  for (const std::string text : {"one", "two", "three", "one"}) {
    EXPECT_EQ(cache.Embed(text), inner->Embed(text));
  }
  EXPECT_EQ(cache.name(), inner->name() + "+lru");
  EXPECT_EQ(cache.dimension(), inner->dimension());
}

TEST(EmbeddingCacheTest, ClearResetsEntries) {
  auto inner = std::make_shared<HashEmbedder>();
  EmbeddingCache cache(inner, 10);
  cache.Embed("x");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace llmms::embedding
