// Tests for the hedging layer: QuantileWindow, HedgedModel race/failover
// semantics and accounting, the probe-budget circuit breaker with transition
// history, and durable breaker state (StateStore + /api/health).
//
// Hedge races run in *simulated* time (chunk cost = extra_seconds +
// tokens/tps), so every race in this file is deterministic: same seeds, same
// outcome, no wall-clock flakiness.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "llmms/app/service.h"
#include "llmms/common/quantile_window.h"
#include "llmms/core/single.h"
#include "llmms/llm/state_store.h"
#include "llmms/llm/fault_injection.h"
#include "llmms/llm/hedged_model.h"
#include "llmms/llm/resilient_model.h"
#include "testutil.h"

namespace llmms {
namespace {

// ---------------------------------------------------------------------------
// QuantileWindow

TEST(QuantileWindowTest, NearestRankQuantiles) {
  QuantileWindow window(32);
  for (int i = 1; i <= 10; ++i) window.Add(static_cast<double>(i));
  EXPECT_EQ(window.size(), 10u);
  EXPECT_EQ(window.count(), 10u);
  EXPECT_DOUBLE_EQ(window.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(window.Quantile(0.5), 5.0);   // ceil(0.5*10) = 5th smallest
  EXPECT_DOUBLE_EQ(window.Quantile(0.95), 10.0); // ceil(9.5) = 10th smallest
  EXPECT_DOUBLE_EQ(window.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(window.Quantile(-3.0), 1.0);  // q clamped into [0, 1]
  EXPECT_DOUBLE_EQ(window.Quantile(7.0), 10.0);
}

TEST(QuantileWindowTest, EmptyWindowReportsZero) {
  QuantileWindow window(8);
  EXPECT_TRUE(window.empty());
  EXPECT_DOUBLE_EQ(window.Quantile(0.5), 0.0);
}

TEST(QuantileWindowTest, EvictsOldestWhenFull) {
  QuantileWindow window(3);
  window.Add(1.0);
  window.Add(2.0);
  window.Add(3.0);
  window.Add(4.0);  // evicts 1.0
  EXPECT_EQ(window.size(), 3u);
  EXPECT_EQ(window.count(), 4u);  // lifetime observations keep counting
  EXPECT_DOUBLE_EQ(window.last(), 4.0);
  EXPECT_DOUBLE_EQ(window.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(window.Quantile(1.0), 4.0);
}

TEST(QuantileWindowTest, ClearResets) {
  QuantileWindow window(4);
  window.Add(7.0);
  window.Clear();
  EXPECT_TRUE(window.empty());
  EXPECT_EQ(window.count(), 0u);
}

// ---------------------------------------------------------------------------
// A deterministic scripted model for exact-threshold arithmetic. Emits
// "w0 w1 w2 ..." honouring the ask; tokens_per_second is 0, so each chunk's
// simulated cost is EXACTLY the scheduled extra_seconds of that call.

struct WordModelOptions {
  size_t total_words = 40;
  // extra_seconds by per-stream NextChunk call index; calls beyond the
  // schedule cost 0.
  std::vector<double> chunk_costs;
  // NextChunk fails (Internal) once this many tokens were emitted. 0 = never.
  size_t fail_at_token = 0;
  bool refuse_start = false;
};

class WordModel final : public llm::LanguageModel {
 public:
  WordModel(std::string name, WordModelOptions options)
      : name_(std::move(name)), options_(std::move(options)) {}

  const std::string& name() const override { return name_; }
  uint64_t memory_mb() const override { return 1; }
  double tokens_per_second() const override { return 0.0; }
  size_t context_window() const override { return 4096; }

  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest& request) const override {
    (void)request;
    if (options_.refuse_start) {
      return Status::ResourceExhausted("model '" + name_ + "' refuses work");
    }
    return std::unique_ptr<llm::GenerationStream>(
        std::make_unique<Stream>(&options_, name_));
  }

 private:
  class Stream final : public llm::GenerationStream {
   public:
    Stream(const WordModelOptions* options, std::string name)
        : options_(options), name_(std::move(name)) {}

    StatusOr<llm::Chunk> NextChunk(size_t max_tokens) override {
      if (options_->fail_at_token > 0 && pos_ >= options_->fail_at_token) {
        return Status::Internal("model '" + name_ + "' died mid-stream");
      }
      llm::Chunk chunk;
      if (call_ < options_->chunk_costs.size()) {
        chunk.extra_seconds = options_->chunk_costs[call_];
      }
      ++call_;
      const size_t n = std::min(max_tokens, options_->total_words - pos_);
      for (size_t i = 0; i < n; ++i) {
        if (pos_ + i > 0) chunk.text += ' ';
        chunk.text += "w" + std::to_string(pos_ + i);
      }
      chunk.num_tokens = n;
      pos_ += n;
      if (pos_ == options_->total_words) {
        chunk.done = true;
        chunk.stop_reason = llm::StopReason::kStop;
        finished_ = true;
      }
      text_ += chunk.text;
      return chunk;
    }

    const std::string& text() const override { return text_; }
    size_t tokens_generated() const override { return pos_; }
    bool finished() const override { return finished_; }
    llm::StopReason stop_reason() const override {
      return llm::StopReason::kStop;
    }

   private:
    const WordModelOptions* options_;
    std::string name_;
    size_t pos_ = 0;
    size_t call_ = 0;
    bool finished_ = false;
    std::string text_;
  };

  std::string name_;
  WordModelOptions options_;
};

// Drains a stream with fixed asks; returns {text, tokens, total cost charged
// against `tps`}.
struct DrainResult {
  std::string text;
  size_t tokens = 0;
  double seconds = 0.0;
  std::vector<llm::Chunk> chunks;
};

DrainResult Drain(llm::GenerationStream* stream, size_t ask, double tps,
                  size_t max_calls = 200) {
  DrainResult out;
  for (size_t i = 0; i < max_calls && !stream->finished(); ++i) {
    auto chunk = stream->NextChunk(ask);
    if (!chunk.ok()) {
      ADD_FAILURE() << "stream failed: " << chunk.status().ToString();
      break;
    }
    out.tokens += chunk->num_tokens;
    out.seconds += chunk->extra_seconds;
    if (tps > 0.0) {
      out.seconds += static_cast<double>(chunk->num_tokens) / tps;
    }
    out.chunks.push_back(*chunk);
    if (chunk->done) break;
  }
  out.text = stream->text();
  return out;
}

// ---------------------------------------------------------------------------
// HedgedModel: pass-through and threshold semantics

TEST(HedgedModelTest, HealthyPrimaryIsByteIdenticalWithZeroHedges) {
  WordModelOptions options;
  options.total_words = 40;
  auto bare = std::make_shared<WordModel>("solo", options);
  auto primary = std::make_shared<WordModel>("solo", options);
  WordModelOptions other;
  other.total_words = 25;  // a differently-sized backup must leave no trace
  auto backup = std::make_shared<WordModel>("backup", other);

  llm::HedgeConfig config;
  config.min_samples = 4;
  config.percentile = 0.5;
  llm::HedgedModel hedged(primary, {backup}, config);

  llm::GenerationRequest request;
  request.prompt = "q";
  auto bare_stream = bare->StartGeneration(request);
  auto hedged_stream = hedged.StartGeneration(request);
  ASSERT_TRUE(bare_stream.ok());
  ASSERT_TRUE(hedged_stream.ok());

  auto expected = Drain(bare_stream->get(), 7, 0.0);
  auto actual = Drain(hedged_stream->get(), 7, 0.0);
  EXPECT_EQ(actual.text, expected.text);  // byte-identical
  EXPECT_EQ(actual.tokens, expected.tokens);
  EXPECT_DOUBLE_EQ(actual.seconds, expected.seconds);
  ASSERT_EQ(actual.chunks.size(), expected.chunks.size());
  for (size_t i = 0; i < actual.chunks.size(); ++i) {
    EXPECT_EQ(actual.chunks[i].text, expected.chunks[i].text);
    EXPECT_EQ(actual.chunks[i].hedge, llm::HedgeOutcome::kNone);
  }
  const auto stats = hedged.stats();
  EXPECT_EQ(stats.hedges_launched, 0u);
  EXPECT_EQ(stats.hedges_won, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.wasted_tokens, 0u);
}

TEST(HedgedModelTest, ExactThresholdDoesNotFire) {
  // History {1, 1, 1}; percentile 1.0 => threshold exactly 1.0. The fourth
  // chunk costs exactly 1.0 — NOT strictly greater, so no race fires.
  WordModelOptions options;
  options.chunk_costs = {1.0, 1.0, 1.0, 1.0, 1.0};
  auto primary = std::make_shared<WordModel>("p", options);
  auto backup = std::make_shared<WordModel>("b", WordModelOptions{});

  llm::HedgeConfig config;
  config.percentile = 1.0;
  config.min_samples = 3;
  llm::HedgedModel hedged(primary, {backup}, config);
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  Drain(stream->get(), 5, 0.0);
  EXPECT_EQ(hedged.stats().hedges_launched, 0u);
}

TEST(HedgedModelTest, NoHedgeBeforeMinSamples) {
  // A huge spike on the very first chunk: history is empty, threshold is
  // +infinity, no hedge may fire.
  WordModelOptions options;
  options.chunk_costs = {100.0, 100.0};
  auto primary = std::make_shared<WordModel>("p", options);
  auto backup = std::make_shared<WordModel>("b", WordModelOptions{});
  llm::HedgeConfig config;
  config.min_samples = 8;
  llm::HedgedModel hedged(primary, {backup}, config);
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  Drain(stream->get(), 20, 0.0);
  EXPECT_EQ(hedged.stats().hedges_launched, 0u);
}

TEST(HedgedModelTest, BackupWinsRaceWithExactAccounting) {
  // Primary: three 1.0s chunks, then a 10.0s spike. Threshold after three
  // samples at percentile 1.0 is 1.0; the spike (10 > 1) fires the race at
  // t=1.0. The free backup catches up 15 tokens and answers instantly:
  // delivery at t=1.0 beats the in-flight chunk at t=10.0.
  WordModelOptions slow;
  slow.total_words = 40;
  slow.chunk_costs = {1.0, 1.0, 1.0, 10.0};
  auto primary = std::make_shared<WordModel>("p", slow);
  WordModelOptions fast;
  fast.total_words = 40;  // same wording => byte-identical final text
  auto backup = std::make_shared<WordModel>("b", fast);

  llm::HedgeConfig config;
  config.percentile = 1.0;
  config.min_samples = 3;
  llm::HedgedModel hedged(primary, {backup}, config);
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  auto result = Drain(stream->get(), 5, 0.0);

  // The race chunk carries the outcome and the re-priced delivery time.
  ASSERT_GE(result.chunks.size(), 4u);
  const llm::Chunk& adopted = result.chunks[3];
  EXPECT_EQ(adopted.hedge, llm::HedgeOutcome::kBackupWon);
  EXPECT_EQ(adopted.num_tokens, 5u);
  // Delivery at threshold(1.0) + catch-up(0) + chunk(0); tps 0 => all of it
  // lands in extra_seconds.
  EXPECT_DOUBLE_EQ(adopted.extra_seconds, 1.0);

  // The final text is the full 40-word answer, byte-identical to a bare run.
  WordModelOptions clean;
  clean.total_words = 40;
  WordModel reference_model("r", clean);
  auto reference = reference_model.StartGeneration(request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result.text, Drain(reference->get(), 5, 0.0).text);
  EXPECT_EQ(result.tokens, 40u);  // emitted tokens: no leak, no double-charge

  const auto stats = hedged.stats();
  EXPECT_EQ(stats.hedges_launched, 1u);
  EXPECT_EQ(stats.hedges_won, 1u);
  EXPECT_EQ(stats.hedges_lost, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  // Overhead: the cancelled 5-token primary chunk + 15 regenerated catch-up
  // tokens; the loser's in-flight chunk ran 10 simulated seconds.
  EXPECT_EQ(stats.wasted_tokens, 20u);
  EXPECT_DOUBLE_EQ(stats.wasted_seconds, 10.0);

  // Total time: 3*1.0 + 1.0 (race delivery); everything after the swap is
  // free in this script.
  EXPECT_DOUBLE_EQ(result.seconds, 4.0);
}

TEST(HedgedModelTest, PrimaryWinsRaceWhenBackupIsSlower) {
  // Same spike, but the backup needs 20s of catch-up: delivery at
  // 1.0 + 20 = 21 > 10, so the in-flight primary chunk wins.
  WordModelOptions slow;
  slow.total_words = 40;
  slow.chunk_costs = {1.0, 1.0, 1.0, 10.0};
  auto primary = std::make_shared<WordModel>("p", slow);
  WordModelOptions sluggish;
  sluggish.total_words = 40;
  sluggish.chunk_costs = {20.0};
  auto backup = std::make_shared<WordModel>("b", sluggish);

  llm::HedgeConfig config;
  config.percentile = 1.0;
  config.min_samples = 3;
  llm::HedgedModel hedged(primary, {backup}, config);
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  auto result = Drain(stream->get(), 5, 0.0);

  ASSERT_GE(result.chunks.size(), 4u);
  const llm::Chunk& spike = result.chunks[3];
  EXPECT_EQ(spike.hedge, llm::HedgeOutcome::kPrimaryWon);
  EXPECT_DOUBLE_EQ(spike.extra_seconds, 10.0);  // charged unchanged

  EXPECT_EQ(result.tokens, 40u);
  const auto stats = hedged.stats();
  EXPECT_EQ(stats.hedges_launched, 1u);
  EXPECT_EQ(stats.hedges_won, 0u);
  EXPECT_EQ(stats.hedges_lost, 1u);
  // The cancelled backup generated 15 catch-up + 5 race tokens over 20s.
  EXPECT_EQ(stats.wasted_tokens, 20u);
  EXPECT_DOUBLE_EQ(stats.wasted_seconds, 20.0);
}

TEST(HedgedModelTest, EachBackupRacesAtMostOncePerStream) {
  // Two spikes; a single backup that always loses. Only the first spike may
  // launch it.
  WordModelOptions slow;
  slow.total_words = 60;
  slow.chunk_costs = {1.0, 1.0, 1.0, 10.0, 10.0, 10.0};
  auto primary = std::make_shared<WordModel>("p", slow);
  WordModelOptions sluggish;
  sluggish.total_words = 60;
  sluggish.chunk_costs = {500.0};
  auto backup = std::make_shared<WordModel>("b", sluggish);

  llm::HedgeConfig config;
  config.percentile = 1.0;
  config.min_samples = 3;
  llm::HedgedModel hedged(primary, {backup}, config);
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  Drain(stream->get(), 5, 0.0);
  EXPECT_EQ(hedged.stats().hedges_launched, 1u);
  EXPECT_EQ(hedged.stats().hedges_lost, 1u);
}

// ---------------------------------------------------------------------------
// HedgedModel: failover

TEST(HedgedModelTest, MidStreamDeathFailsOverToBackup) {
  WordModelOptions dying;
  dying.total_words = 40;
  dying.fail_at_token = 10;
  auto primary = std::make_shared<WordModel>("p", dying);
  WordModelOptions clean;
  clean.total_words = 40;
  auto backup = std::make_shared<WordModel>("b", clean);

  llm::HedgeConfig config;
  config.min_samples = 100;  // latency hedging off; pure failover
  llm::HedgedModel hedged(primary, {backup}, config);
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  auto result = Drain(stream->get(), 5, 0.0);

  // Third call dies on the primary; the backup takes over seamlessly.
  ASSERT_GE(result.chunks.size(), 3u);
  EXPECT_EQ(result.chunks[2].hedge, llm::HedgeOutcome::kFailover);
  EXPECT_EQ(result.tokens, 40u);
  WordModel reference_model("r", clean);
  auto reference = reference_model.StartGeneration(request);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result.text, Drain(reference->get(), 5, 0.0).text);

  const auto stats = hedged.stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.hedges_launched, 0u);  // failover is not a race
  EXPECT_EQ(stats.wasted_tokens, 10u);   // the regenerated catch-up prefix
}

TEST(HedgedModelTest, FailoverDisabledSurfacesTheStreamError) {
  WordModelOptions dying;
  dying.fail_at_token = 10;
  auto primary = std::make_shared<WordModel>("p", dying);
  auto backup = std::make_shared<WordModel>("b", WordModelOptions{});

  llm::HedgeConfig config;
  config.failover_on_error = false;
  llm::HedgedModel hedged(primary, {backup}, config);
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  (void)(*stream)->NextChunk(5);
  (void)(*stream)->NextChunk(5);
  auto dead = (*stream)->NextChunk(5);
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsInternal());
  EXPECT_EQ(hedged.stats().failovers, 0u);
}

TEST(HedgedModelTest, StartRefusalFailsOverToBackup) {
  WordModelOptions refusing;
  refusing.refuse_start = true;
  auto primary = std::make_shared<WordModel>("p", refusing);
  WordModelOptions clean;
  clean.total_words = 20;
  auto backup = std::make_shared<WordModel>("b", clean);

  llm::HedgedModel hedged(primary, {backup}, llm::HedgeConfig());
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  auto result = Drain(stream->get(), 5, 0.0);
  EXPECT_EQ(result.tokens, 20u);
  EXPECT_EQ(hedged.stats().failovers, 1u);
}

TEST(HedgedModelTest, AllReplicasRefusingSurfacesLastError) {
  WordModelOptions refusing;
  refusing.refuse_start = true;
  auto primary = std::make_shared<WordModel>("p", refusing);
  auto backup = std::make_shared<WordModel>("b", refusing);
  llm::HedgedModel hedged(primary, {backup}, llm::HedgeConfig());
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsResourceExhausted());
}

TEST(HedgedModelTest, LatencySnapshotTracksPerReplicaPercentiles) {
  WordModelOptions options;
  options.total_words = 40;
  options.chunk_costs = {1.0, 2.0, 3.0, 4.0};
  auto primary = std::make_shared<WordModel>("p", options);
  auto backup = std::make_shared<WordModel>("b", WordModelOptions{});
  llm::HedgedModel hedged(primary, {backup}, llm::HedgeConfig());
  llm::GenerationRequest request;
  request.prompt = "q";
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  Drain(stream->get(), 10, 0.0);

  const auto latency = hedged.LatencySnapshot();
  ASSERT_EQ(latency.size(), 2u);
  EXPECT_EQ(latency[0].model, "p");
  EXPECT_EQ(latency[0].samples, 4u);
  EXPECT_DOUBLE_EQ(latency[0].p50, 2.0);
  EXPECT_DOUBLE_EQ(latency[0].p95, 4.0);
  EXPECT_EQ(latency[1].model, "b");
  EXPECT_EQ(latency[1].samples, 0u);  // never launched
}

// ---------------------------------------------------------------------------
// Chaos: spiky primary + healthy clone backup, full decorator stack. The
// acceptance scenario: hedged time-to-last-chunk strictly lower, charged
// tokens differing only by the documented overhead, byte-identical text.

struct ChaosStack {
  std::shared_ptr<llm::LanguageModel> stack;          // Resilient(Faulty(S))
  std::shared_ptr<llm::ResilientModel> primary_res;   // the resilient layer
};

ChaosStack MakeSpikyStack(const testutil::World& world,
                          const llm::ModelProfile& profile) {
  llm::FaultConfig faults;
  faults.seed = 0xCAFE;
  faults.latency_spike_prob = 0.3;
  faults.latency_spike_seconds = 5.0;
  auto synthetic =
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge);
  auto faulty = std::make_shared<llm::FaultyModel>(synthetic, faults);
  auto resilient =
      std::make_shared<llm::ResilientModel>(faulty, llm::ResilienceConfig());
  return {resilient, resilient};
}

TEST(HedgedChaosTest, HedgedBeatsSpikyPrimaryWithHonestAccounting) {
  auto world = testutil::MakeWorld(4);
  const auto profile = llm::DefaultProfiles()[0];
  const double tps = profile.tokens_per_second;

  llm::GenerationRequest request;
  request.prompt = world.dataset[0].question;

  // Bare run: the spiky stack alone.
  auto bare = MakeSpikyStack(world, profile);
  auto bare_stream = bare.stack->StartGeneration(request);
  ASSERT_TRUE(bare_stream.ok());
  const auto bare_run = Drain(bare_stream->get(), 8, tps);

  // Hedged run: an identically-seeded spiky stack plus a healthy clone
  // backup (same profile seed => identical wording).
  auto spiky = MakeSpikyStack(world, profile);
  auto clone = std::make_shared<llm::ResilientModel>(
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge),
      llm::ResilienceConfig());
  llm::HedgeConfig config;
  config.percentile = 0.5;  // spikes would saturate a p95 of a 30% spike mix
  config.min_samples = 4;
  auto hedged = std::make_shared<llm::HedgedModel>(
      spiky.stack, std::vector<std::shared_ptr<llm::LanguageModel>>{clone},
      config);
  auto hedged_stream = hedged->StartGeneration(request);
  ASSERT_TRUE(hedged_stream.ok());
  const auto hedged_run = Drain(hedged_stream->get(), 8, tps);

  const auto stats = hedged->stats();
  ASSERT_GE(stats.hedges_won, 1u) << "seed produced no won hedge";

  // Byte-identical answer, identical charged tokens.
  EXPECT_EQ(hedged_run.text, bare_run.text);
  EXPECT_EQ(hedged_run.tokens, bare_run.tokens);
  // Strictly lower time-to-last-chunk: the adopted backup dodges the spike
  // it raced plus every later spike the bare run keeps eating.
  EXPECT_LT(hedged_run.seconds, bare_run.seconds);
  // The only extra spend is the documented hedge overhead.
  EXPECT_GT(stats.wasted_tokens, 0u);
  EXPECT_GT(stats.wasted_seconds, 0.0);

  // Satellite 3: hedging does not corrupt the resilience layer's health
  // accounting — latency spikes are not failures, and racing must not
  // fabricate any.
  const auto health = spiky.primary_res->health();
  EXPECT_EQ(health.total_failures, 0u);
  EXPECT_EQ(health.fast_rejections, 0u);
  EXPECT_EQ(health.circuit, llm::CircuitBreaker::State::kClosed);
}

TEST(HedgedChaosTest, MidStreamDeathUnderFullStackCountsOneBreakerFailure) {
  auto world = testutil::MakeWorld(4);
  const auto profile = llm::DefaultProfiles()[1];

  llm::FaultConfig faults;
  faults.fail_after_tokens = 12;  // permanent mid-stream death
  auto dying = std::make_shared<llm::FaultyModel>(
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge), faults);
  auto dying_res =
      std::make_shared<llm::ResilientModel>(dying, llm::ResilienceConfig());
  auto clone = std::make_shared<llm::ResilientModel>(
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge),
      llm::ResilienceConfig());

  llm::HedgeConfig config;
  config.min_samples = 1000;  // pure failover
  llm::HedgedModel hedged(dying_res, {clone}, config);
  llm::GenerationRequest request;
  request.prompt = world.dataset[1].question;
  auto stream = hedged.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  const auto run = Drain(stream->get(), 8, profile.tokens_per_second);

  // The backup finished the answer...
  EXPECT_GT(run.tokens, 12u);
  EXPECT_EQ(hedged.stats().failovers, 1u);
  // ...and the dead replica's breaker recorded exactly one retry-exhausted
  // failure (the resilience layer retried, gave up, and the hedge layer's
  // adoption added nothing on top).
  EXPECT_EQ(dying_res->health().total_failures, 1u);
  EXPECT_EQ(clone->health().total_failures, 0u);
}

// ---------------------------------------------------------------------------
// Runtime + orchestrator plumbing

TEST(HedgedRuntimeTest, RuntimeCountsHedgedChunksAndTraceCarriesHedge) {
  auto world = testutil::MakeWorld(4);
  auto profile = llm::DefaultProfiles()[0];
  profile.name = "hedged:demo";

  llm::FaultConfig faults;
  faults.seed = 0xCAFE;
  faults.latency_spike_prob = 0.3;
  faults.latency_spike_seconds = 5.0;
  auto spiky = std::make_shared<llm::FaultyModel>(
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge), faults);
  auto clone =
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge);
  llm::HedgeConfig config;
  config.percentile = 0.5;
  config.min_samples = 4;
  auto hedged = std::make_shared<llm::HedgedModel>(
      spiky, std::vector<std::shared_ptr<llm::LanguageModel>>{clone}, config);
  ASSERT_TRUE(world.registry->Register(hedged).ok());
  ASSERT_TRUE(world.runtime->LoadModel("hedged:demo").ok());

  core::SingleModelOrchestrator::Config single;
  single.token_budget = 2048;
  single.chunk_tokens = 8;
  core::SingleModelOrchestrator orchestrator(world.runtime.get(),
                                             "hedged:demo", world.embedder,
                                             single);
  std::vector<core::OrchestratorEvent> events;
  auto result = orchestrator.Run(
      world.dataset[0].question,
      [&events](const core::OrchestratorEvent& e) { events.push_back(e); });
  ASSERT_TRUE(result.ok());

  // The hedge surfaced as a stream event and as a trace entry.
  size_t hedge_events = 0;
  for (const auto& event : events) {
    if (event.type == core::EventType::kHedge) {
      ++hedge_events;
      EXPECT_EQ(event.model, "hedged:demo");
      EXPECT_FALSE(event.text.empty());
    }
  }
  EXPECT_GE(hedge_events, 1u);
  bool traced = false;
  for (const auto& entry : result->trace) {
    if (entry.action == "hedge") traced = true;
  }
  EXPECT_TRUE(traced);
  EXPECT_GE(hedged->stats().hedges_launched, 1u);
}

TEST(HedgedRuntimeTest, ParallelGenerationCountsHedges) {
  auto world = testutil::MakeWorld(4);
  auto profile = llm::DefaultProfiles()[2];
  profile.name = "hedged:stats";

  llm::FaultConfig faults;
  faults.seed = 0xFEED;
  faults.latency_spike_prob = 0.35;
  faults.latency_spike_seconds = 4.0;
  auto spiky = std::make_shared<llm::FaultyModel>(
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge), faults);
  auto clone =
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge);
  llm::HedgeConfig config;
  config.percentile = 0.5;
  config.min_samples = 4;
  auto hedged = std::make_shared<llm::HedgedModel>(
      spiky, std::vector<std::shared_ptr<llm::LanguageModel>>{clone}, config);
  ASSERT_TRUE(world.registry->Register(hedged).ok());
  ASSERT_TRUE(world.runtime->LoadModel("hedged:stats").ok());

  llm::GenerationRequest request;
  request.prompt = world.dataset[2].question;
  auto generation =
      world.runtime->StartGeneration({"hedged:stats"}, request);
  ASSERT_TRUE(generation.ok());
  for (size_t i = 0; i < 100; ++i) {
    auto stats = (*generation)->StatsOf("hedged:stats");
    ASSERT_TRUE(stats.ok());
    if (stats->finished) break;
    ASSERT_TRUE((*generation)->NextChunk("hedged:stats", 8).ok());
  }
  auto stats = (*generation)->StatsOf("hedged:stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->hedges,
            hedged->stats().hedges_launched + hedged->stats().failovers);
  EXPECT_GE(stats->hedges, 1u);
}

// ---------------------------------------------------------------------------
// CircuitBreaker: probe budget, call clock, transition history

TEST(CircuitBreakerTest, ProbeBudgetRequiresConfiguredSuccesses) {
  llm::CircuitBreaker breaker(/*failure_threshold=*/1, /*open_calls=*/1,
                              /*probe_successes_to_close=*/3);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());  // rejection flips to half-open
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());   // the probe
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();  // third success spends the budget
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensEvenAfterPartialBudget) {
  llm::CircuitBreaker breaker(1, 1, /*probe_successes_to_close=*/3);
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  breaker.RecordSuccess();  // 2 of 3
  breaker.RecordFailure();  // any half-open failure reopens immediately
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  // The partial budget does not survive the reopen.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, SuccessWhileOpenDoesNotCloseTheCircuit) {
  // A stream admitted before the trip keeps delivering chunks; that must not
  // short-circuit the half-open probe discipline.
  llm::CircuitBreaker breaker(1, /*open_calls=*/10);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);  // but it is good evidence
}

TEST(CircuitBreakerTest, TransitionHistoryRecordsCallClockTimestamps) {
  llm::CircuitBreaker breaker(1, 1, 1, /*history_capacity=*/16);
  breaker.RecordFailure();       // call 1: closed -> open
  EXPECT_FALSE(breaker.AllowRequest());  // call 2: open -> half-open
  EXPECT_TRUE(breaker.AllowRequest());   // call 3
  breaker.RecordSuccess();       // call 4: half-open -> closed

  const auto history = breaker.history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].from, llm::CircuitBreaker::State::kClosed);
  EXPECT_EQ(history[0].to, llm::CircuitBreaker::State::kOpen);
  EXPECT_EQ(history[0].at_call, 1u);
  EXPECT_EQ(history[1].to, llm::CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(history[1].at_call, 2u);
  EXPECT_EQ(history[2].to, llm::CircuitBreaker::State::kClosed);
  EXPECT_EQ(history[2].at_call, 4u);
  EXPECT_EQ(breaker.call_clock(), 4u);
}

TEST(CircuitBreakerTest, HistoryRingKeepsOnlyTheLastK) {
  llm::CircuitBreaker breaker(1, 1, 1, /*history_capacity=*/2);
  breaker.RecordFailure();              // closed -> open      (dropped)
  EXPECT_FALSE(breaker.AllowRequest()); // open -> half-open   (kept)
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();              // half-open -> open   (kept)
  const auto history = breaker.history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].to, llm::CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(history[1].to, llm::CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, SnapshotRestoreRoundTrips) {
  llm::CircuitBreaker breaker(2, 3);
  breaker.RecordFailure();
  breaker.RecordFailure();  // trips
  EXPECT_FALSE(breaker.AllowRequest());
  const auto snapshot = breaker.snapshot();

  llm::CircuitBreaker restored(2, 3);
  restored.Restore(snapshot);
  EXPECT_EQ(restored.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_EQ(restored.total_failures(), 2u);
  EXPECT_EQ(restored.fast_rejections(), 1u);
  EXPECT_EQ(restored.call_clock(), snapshot.call_clock);
  EXPECT_EQ(restored.history().size(), breaker.history().size());
}

TEST(CircuitBreakerTest, TransitionListenerFiresOutsideTheLock) {
  llm::CircuitBreaker breaker(1, 1);
  std::vector<llm::CircuitBreaker::Snapshot> seen;
  breaker.SetTransitionListener(
      [&breaker, &seen](const llm::CircuitBreaker::Snapshot& snapshot) {
        // Re-entering the breaker from the listener must not deadlock —
        // exactly what StateStore does when it saves.
        (void)breaker.snapshot();
        seen.push_back(snapshot);
      });
  breaker.RecordFailure();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].state, llm::CircuitBreaker::State::kOpen);
}

// ---------------------------------------------------------------------------
// StateStore: durable breaker state (see adaptive_hedging_test.cc for the
// sketch side and the corruption-policy suite)

TEST(StateStoreTest, SnapshotJsonRoundTrips) {
  llm::CircuitBreaker breaker(1, 1);
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.AllowRequest());
  const auto snapshot = breaker.snapshot();
  const auto json = llm::StateStore::BreakerToJson(snapshot);
  const auto back = llm::StateStore::BreakerFromJson(json);
  EXPECT_EQ(back.state, snapshot.state);
  EXPECT_EQ(back.total_failures, snapshot.total_failures);
  EXPECT_EQ(back.fast_rejections, snapshot.fast_rejections);
  EXPECT_EQ(back.call_clock, snapshot.call_clock);
  ASSERT_EQ(back.history.size(), snapshot.history.size());
  for (size_t i = 0; i < back.history.size(); ++i) {
    EXPECT_EQ(back.history[i].to, snapshot.history[i].to);
    EXPECT_EQ(back.history[i].at_call, snapshot.history[i].at_call);
  }
}

TEST(StateStoreTest, StateSurvivesRestart) {
  const std::string path = ::testing::TempDir() + "/breakers.json";
  std::remove(path.c_str());

  // Process 1: attach, trip the breaker; every transition saves.
  {
    llm::StateStore store(path);
    ASSERT_TRUE(store.Load().ok());
    llm::CircuitBreaker breaker(2, 4);
    store.AttachBreaker("m1", &breaker);
    breaker.RecordFailure();
    breaker.RecordFailure();  // trips -> saved
    EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
    breaker.SetTransitionListener(nullptr);
  }

  // Process 2 ("restart"): a fresh breaker resumes open, with history.
  {
    llm::StateStore store(path);
    ASSERT_TRUE(store.Load().ok());
    EXPECT_TRUE(store.HasBreaker("m1"));
    llm::CircuitBreaker breaker(2, 4);
    store.AttachBreaker("m1", &breaker);
    EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.total_failures(), 2u);
    ASSERT_EQ(breaker.history().size(), 1u);
    EXPECT_EQ(breaker.history()[0].to, llm::CircuitBreaker::State::kOpen);
    breaker.SetTransitionListener(nullptr);
  }
}

TEST(StateStoreTest, MissingFileIsEmptyStore) {
  llm::StateStore store(::testing::TempDir() + "/does-not-exist.json");
  EXPECT_TRUE(store.Load().ok());
  EXPECT_FALSE(store.HasBreaker("anything"));
}

TEST(StateStoreTest, MalformedFileColdStartsWithWarning) {
  // A corrupt state file must never stop the node from booting: Load()
  // degrades to an empty store and reports why through load_warning().
  // (The full corruption matrix lives in adaptive_hedging_test.cc.)
  const std::string path = ::testing::TempDir() + "/garbage.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{not json", f);
    std::fclose(f);
  }
  llm::StateStore store(path);
  EXPECT_TRUE(store.Load().ok());
  EXPECT_FALSE(store.load_warning().empty());
  EXPECT_FALSE(store.HasBreaker("anything"));
}

// ---------------------------------------------------------------------------
// /api/health + persistence wiring through the app layer

class HedgedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = testutil::MakeWorld(4);
    // Register one hedged + resilient model alongside the plain defaults.
    auto profile = llm::DefaultProfiles()[0];
    profile.name = "hedged:svc";
    llm::FaultConfig faults;
    faults.seed = 0xCAFE;
    faults.latency_spike_prob = 0.3;
    faults.latency_spike_seconds = 5.0;
    auto spiky = std::make_shared<llm::FaultyModel>(
        std::make_shared<llm::SyntheticModel>(profile, world_.knowledge),
        faults);
    primary_resilient_ = std::make_shared<llm::ResilientModel>(
        spiky, llm::ResilienceConfig());
    auto clone = std::make_shared<llm::ResilientModel>(
        std::make_shared<llm::SyntheticModel>(profile, world_.knowledge),
        llm::ResilienceConfig());
    llm::HedgeConfig config;
    config.percentile = 0.5;
    config.min_samples = 4;
    hedged_ = std::make_shared<llm::HedgedModel>(primary_resilient_,
                                                 std::vector<std::shared_ptr<
                                                     llm::LanguageModel>>{
                                                     clone},
                                                 config);
    ASSERT_TRUE(world_.registry->Register(hedged_).ok());
    ASSERT_TRUE(world_.runtime->LoadModel("hedged:svc").ok());

    db_ = std::make_shared<vectordb::VectorDatabase>();
    sessions_ = std::make_shared<session::SessionStore>();
    engine_ = std::make_unique<core::SearchEngine>(
        world_.runtime.get(), world_.embedder, db_, sessions_);
    service_ = std::make_unique<app::ApiService>(engine_.get());
  }

  const Json* HealthEntryFor(const Json& response, const std::string& name) {
    for (const Json& entry : response["models"].AsArray()) {
      if (entry["model"].AsString() == name) return &entry;
    }
    return nullptr;
  }

  testutil::World world_;
  std::shared_ptr<llm::ResilientModel> primary_resilient_;
  std::shared_ptr<llm::HedgedModel> hedged_;
  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::shared_ptr<session::SessionStore> sessions_;
  std::unique_ptr<core::SearchEngine> engine_;
  std::unique_ptr<app::ApiService> service_;
};

TEST_F(HedgedServiceTest, HealthReportsHedgeStatsAndLatencyPercentiles) {
  // Generate through the hedged model so the windows have samples.
  llm::GenerationRequest request;
  request.prompt = world_.dataset[0].question;
  auto stream = hedged_->StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  Drain(stream->get(), 8, hedged_->tokens_per_second());
  ASSERT_GE(hedged_->stats().hedges_launched, 1u);

  auto response = service_->HandleHealth();
  ASSERT_TRUE(response["ok"].AsBool());
  const Json* entry = HealthEntryFor(response, "hedged:svc");
  ASSERT_NE(entry, nullptr);

  const Json& hedging = (*entry)["hedging"];
  ASSERT_TRUE(hedging.is_object());
  EXPECT_EQ(hedging["replicas"].AsInt(), 2);
  EXPECT_GE(hedging["hedges_launched"].AsInt(), 1);
  const Json& latency = hedging["latency"];
  ASSERT_TRUE(latency.is_array());
  ASSERT_EQ(latency.Size(), 2u);
  EXPECT_GT(latency.At(0)["samples"].AsInt(), 0);
  EXPECT_GT(latency.At(0)["p95_seconds"].AsDouble(), 0.0);
  EXPECT_GE(latency.At(0)["p95_seconds"].AsDouble(),
            latency.At(0)["p50_seconds"].AsDouble());

  // The breaker inspected is the primary replica's (nesting order).
  EXPECT_EQ((*entry)["circuit"].AsString(), "closed");
  EXPECT_TRUE(entry->Contains("circuit_history"));
}

TEST_F(HedgedServiceTest, HealthReportsBreakerTransitionHistory) {
  auto* breaker = primary_resilient_->mutable_breaker();
  breaker->RecordFailure();
  breaker->RecordFailure();
  breaker->RecordFailure();  // default threshold 3 -> open

  auto response = service_->HandleHealth();
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_EQ(response["status"].AsString(), "degraded");
  const Json* entry = HealthEntryFor(response, "hedged:svc");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ((*entry)["circuit"].AsString(), "open");
  const Json& history = (*entry)["circuit_history"];
  ASSERT_EQ(history.Size(), 1u);
  EXPECT_EQ(history.At(0)["from"].AsString(), "closed");
  EXPECT_EQ(history.At(0)["to"].AsString(), "open");
  EXPECT_GT(history.At(0)["at_call"].AsInt(), 0);
}

TEST_F(HedgedServiceTest, BreakerStateSurvivesServiceRestart) {
  const std::string path = ::testing::TempDir() + "/svc-breakers.json";
  std::remove(path.c_str());

  ASSERT_TRUE(service_->EnableStatePersistence(path).ok());
  auto* breaker = primary_resilient_->mutable_breaker();
  breaker->RecordFailure();
  breaker->RecordFailure();
  breaker->RecordFailure();  // trips -> persisted via the listener
  EXPECT_EQ(breaker->state(), llm::CircuitBreaker::State::kOpen);
  service_.reset();  // "shutdown": detaches listeners

  // "Restart": a brand-new world and service over the same file.
  SetUp();
  ASSERT_TRUE(service_->EnableStatePersistence(path).ok());
  EXPECT_EQ(primary_resilient_->breaker().state(),
            llm::CircuitBreaker::State::kOpen)
      << "tripped breaker must stay tripped across restart";
  auto response = service_->HandleHealth();
  EXPECT_EQ(response["status"].AsString(), "degraded");
  const Json* entry = HealthEntryFor(response, "hedged:svc");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ((*entry)["circuit"].AsString(), "open");
}

// ---------------------------------------------------------------------------
// String stability (wire/UI contracts)

TEST(HedgeNamesTest, OutcomeAndEventNamesAreStable) {
  EXPECT_STREQ(llm::HedgeOutcomeToString(llm::HedgeOutcome::kNone), "none");
  EXPECT_STREQ(llm::HedgeOutcomeToString(llm::HedgeOutcome::kPrimaryWon),
               "primary-won");
  EXPECT_STREQ(llm::HedgeOutcomeToString(llm::HedgeOutcome::kBackupWon),
               "backup-won");
  EXPECT_STREQ(llm::HedgeOutcomeToString(llm::HedgeOutcome::kFailover),
               "failover");
  EXPECT_STREQ(core::EventTypeToString(core::EventType::kHedge), "hedge");
}

}  // namespace
}  // namespace llmms
