// Frontier harness suite (DESIGN.md §16, `ctest -L frontier`): pinned-matrix
// determinism, the committed golden row trace, the token-conservation
// invariant across every cell, deterministic storm-cell shedding, the Pareto
// regression gate against tests/golden/frontier_reference.json, and the
// drifting-competence acceptance bar for the decayed RewardFeed.
//
// Regenerate the committed references with LLMMS_UPDATE_GOLDEN=1 after an
// intentional behaviour change.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "llmms/common/json.h"
#include "llmms/eval/scenario_matrix.h"

namespace llmms::eval {
namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::vector<CellResult> MustRun(const ScenarioMatrix& matrix) {
  auto results = matrix.Run();
  EXPECT_TRUE(results.ok()) << results.status().ToString();
  return results.ok() ? std::move(results).value() : std::vector<CellResult>();
}

// ---------------------------------------------------------------------------
// Matrix enumeration.

TEST(ScenarioMatrixTest, PinnedMatrixEnumeratesUniqueCells) {
  ScenarioMatrix matrix(PinnedMatrix());
  const auto cells = matrix.Cells();
  // {oua, mab} x {384} x {trio} x {none, storm} x {plain, adaptive}.
  EXPECT_EQ(cells.size(), 8u);
  std::set<std::string> keys;
  for (const auto& spec : cells) keys.insert(CellKey(spec));
  EXPECT_EQ(keys.size(), cells.size()) << "cell keys must be unique";
  EXPECT_TRUE(keys.count("mab/b384/trio/storm/adaptive"))
      << "CellKey format changed";
}

// ---------------------------------------------------------------------------
// Determinism: a cell's metrics depend only on (spec, config).

TEST(ScenarioMatrixTest, PinnedCellsAreDeterministicAcrossRuns) {
  ScenarioMatrix matrix(PinnedMatrix());
  const auto first = MustRun(matrix);
  const auto second = MustRun(matrix);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    // The trace line covers every deterministic field (wall_seconds is
    // deliberately excluded from it).
    EXPECT_EQ(CellTraceLine(first[i]), CellTraceLine(second[i]))
        << "cell " << CellKey(first[i].spec)
        << " is not deterministic under a fixed seed";
  }
}

// ---------------------------------------------------------------------------
// Golden trace of one full matrix row (the mab row of the pinned matrix).

TEST(ScenarioMatrixTest, GoldenRowTrace) {
  ScenarioMatrix matrix(PinnedMatrix());
  std::string serialized;
  for (const auto& spec : matrix.Cells()) {
    if (spec.orchestrator != MatrixOrchestrator::kMab) continue;
    auto result = matrix.RunCell(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    serialized += CellTraceLine(result.value());
    serialized += '\n';
  }

  const std::string golden_path =
      std::string(LLMMS_TESTS_DIR) + "/golden/frontier_row.golden";
  if (std::getenv("LLMMS_UPDATE_GOLDEN") != nullptr) {
    WriteFile(golden_path, serialized);
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }
  ASSERT_TRUE(FileExists(golden_path))
      << "missing golden file; regenerate with LLMMS_UPDATE_GOLDEN=1 "
      << golden_path;
  EXPECT_EQ(serialized, ReadFile(golden_path))
      << "frontier row diverged from the committed golden trace; if the "
         "change is intentional, regenerate with LLMMS_UPDATE_GOLDEN=1";
}

// ---------------------------------------------------------------------------
// Token conservation: generated == charged + wasted, in every cell.

TEST(ScenarioMatrixTest, TokenConservationHoldsInEveryCell) {
  ScenarioMatrix matrix(PinnedMatrix());
  for (const auto& result : MustRun(matrix)) {
    EXPECT_EQ(result.generated_tokens,
              result.charged_tokens + result.wasted_tokens)
        << "cell " << CellKey(result.spec)
        << ": tokens leaked — every token the substrate generated must be "
           "either budget-charged or booked as hedge waste";
    EXPECT_GT(result.queries, 0u);
    EXPECT_LE(result.failed_queries, result.queries);
    EXPECT_DOUBLE_EQ(result.shed_rate,
                     static_cast<double>(result.failed_queries) /
                         static_cast<double>(result.queries));
    if (result.spec.mode != MatrixMode::kAdaptive) {
      EXPECT_EQ(result.wasted_tokens, 0u)
          << "cell " << CellKey(result.spec)
          << ": only hedged cells may waste tokens";
    }
  }
}

// Storm cells must exercise the shed path: the fault profile is calibrated
// so whole-pool failures survive the retry budget at a nonzero rate.
TEST(ScenarioMatrixTest, StormCellsShedDeterministically) {
  ScenarioMatrix matrix(PinnedMatrix());
  bool saw_storm = false;
  for (const auto& result : MustRun(matrix)) {
    if (result.spec.faults != MatrixFaults::kStorm) continue;
    saw_storm = true;
    if (result.spec.mode == MatrixMode::kPlain) {
      EXPECT_GT(result.failed_queries, 0u)
          << "cell " << CellKey(result.spec)
          << ": the storm profile no longer sheds — the regression gate "
             "would stop covering the failure path";
    }
  }
  EXPECT_TRUE(saw_storm);
}

// ---------------------------------------------------------------------------
// The Pareto regression gate: a fresh pinned run may not be dominated by the
// committed reference — strictly worse on BOTH the quality axis
// (mean_reward) and the efficiency axis (reward_per_token) beyond epsilon.
// Moving along the frontier (trading one axis for the other) passes; falling
// inside it fails.

TEST(ScenarioMatrixTest, ParetoGateAgainstCommittedReference) {
  constexpr double kEps = 1e-6;
  ScenarioMatrix matrix(PinnedMatrix());
  const auto results = MustRun(matrix);

  Json fresh = Json::MakeArray();
  for (const auto& result : results) {
    Json cell = Json::MakeObject();
    cell.Set("cell", CellKey(result.spec));
    cell.Set("mean_reward", result.mean_reward);
    cell.Set("reward_per_token", result.reward_per_token);
    cell.Set("shed_rate", result.shed_rate);
    fresh.Append(std::move(cell));
  }

  const std::string reference_path =
      std::string(LLMMS_TESTS_DIR) + "/golden/frontier_reference.json";
  if (std::getenv("LLMMS_UPDATE_GOLDEN") != nullptr) {
    WriteFile(reference_path, fresh.Dump(2) + "\n");
    GTEST_SKIP() << "reference regenerated at " << reference_path;
  }
  ASSERT_TRUE(FileExists(reference_path))
      << "missing Pareto reference; regenerate with LLMMS_UPDATE_GOLDEN=1 "
      << reference_path;
  auto reference = Json::Parse(ReadFile(reference_path));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  std::map<std::string, std::pair<double, double>> expected;
  for (size_t i = 0; i < reference->Size(); ++i) {
    const Json& cell = reference->At(i);
    expected[std::string(cell["cell"].AsString())] = {
        cell["mean_reward"].AsDouble(), cell["reward_per_token"].AsDouble()};
  }

  for (const auto& result : results) {
    const auto it = expected.find(CellKey(result.spec));
    ASSERT_NE(it, expected.end())
        << "cell " << CellKey(result.spec)
        << " missing from the committed reference; regenerate with "
           "LLMMS_UPDATE_GOLDEN=1";
    const bool worse_reward = result.mean_reward < it->second.first - kEps;
    const bool worse_efficiency =
        result.reward_per_token < it->second.second - kEps;
    EXPECT_FALSE(worse_reward && worse_efficiency)
        << "cell " << CellKey(result.spec)
        << " regressed on BOTH axes (dominated): reward "
        << result.mean_reward << " < " << it->second.first
        << " and reward/token " << result.reward_per_token << " < "
        << it->second.second
        << "; if intentional, regenerate with LLMMS_UPDATE_GOLDEN=1";
  }
}

// ---------------------------------------------------------------------------
// Drifting-competence acceptance: the sliding-window feed must strictly beat
// the lifetime-mean baseline on reward/token when the pool's pecking order
// flips mid-session (the CI frontier job replays this with
// --repeat until-fail:3).

TEST(ScenarioMatrixTest, DecayedFeedBeatsLifetimeMeanUnderDrift) {
  DriftConfig config;
  auto comparison = RunDriftComparison(config);
  ASSERT_TRUE(comparison.ok()) << comparison.status().ToString();
  EXPECT_EQ(comparison->lifetime.queries, comparison->adaptive.queries);
  EXPECT_GT(comparison->adaptive.reward_per_token,
            comparison->lifetime.reward_per_token)
      << "the windowed RewardFeed no longer beats the lifetime-mean "
         "baseline after the mid-session competence swap — the decayed "
         "estimator stopped forgetting stale reputations";
}

// The drift scenario itself is deterministic (same seeds, simulated time).
TEST(ScenarioMatrixTest, DriftComparisonIsDeterministic) {
  DriftConfig config;
  auto first = RunDriftComparison(config);
  auto second = RunDriftComparison(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(first->lifetime.reward_per_token,
                   second->lifetime.reward_per_token);
  EXPECT_DOUBLE_EQ(first->adaptive.reward_per_token,
                   second->adaptive.reward_per_token);
  EXPECT_EQ(first->lifetime.charged_tokens, second->lifetime.charged_tokens);
  EXPECT_EQ(first->adaptive.charged_tokens, second->adaptive.charged_tokens);
}

// DriftSwitchModel hands the first N starts to `before` and the rest to
// `after` — the drift clock the acceptance scenario is built on.
TEST(ScenarioMatrixTest, DriftSwitchModelSwitchesAtTheConfiguredStart) {
  DriftConfig config;
  // Reuse the scenario's own model construction indirectly: a switch model
  // over two synthetic models with opposite competence answers differently
  // before and after the switch (checked through starts()).
  auto world_check = RunDriftComparison(config);
  ASSERT_TRUE(world_check.ok());
  // Direct unit check of the switch arithmetic.
  class Probe final : public llm::LanguageModel {
   public:
    explicit Probe(std::string name) : name_(std::move(name)) {}
    const std::string& name() const override { return name_; }
    uint64_t memory_mb() const override { return 1; }
    double tokens_per_second() const override { return 1.0; }
    size_t context_window() const override { return 128; }
    StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
        const llm::GenerationRequest&) const override {
      ++starts;
      return Status::Internal("probe: not a real stream");
    }
    mutable size_t starts = 0;

   private:
    std::string name_;
  };
  auto before = std::make_shared<Probe>("probe");
  auto after = std::make_shared<Probe>("probe");
  DriftSwitchModel model(before, after, 2);
  llm::GenerationRequest request;
  for (int i = 0; i < 5; ++i) {
    auto ignored = model.StartGeneration(request);
    (void)ignored;
  }
  EXPECT_EQ(before->starts, 2u);
  EXPECT_EQ(after->starts, 3u);
  EXPECT_EQ(model.starts(), 5u);
}

}  // namespace
}  // namespace llmms::eval
