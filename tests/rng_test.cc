#include "llmms/common/rng.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

namespace llmms {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntStaysInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleValueRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(RngTest, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.WeightedIndex({-5.0, 0.0, 1.0}), 2u);
  }
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(31);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.WeightedIndex({0.0, 0.0, 0.0, 0.0})];
  }
  for (int c : counts) EXPECT_GT(c, 1500);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, ShuffleEmptyAndSingleAreNoops) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // Child should not replay the parent's stream.
  Rng parent2(43);
  (void)parent2.NextUint64();  // align with post-fork parent
  EXPECT_NE(child.NextUint64(), parent.NextUint64());
}

TEST(HashTest, MixHash64IsDeterministicAndSpreads) {
  EXPECT_EQ(MixHash64(42), MixHash64(42));
  EXPECT_NE(MixHash64(42), MixHash64(43));
}

TEST(HashTest, HashBytesSeedSensitive) {
  const char data[] = "hello";
  EXPECT_EQ(HashBytes(data, 5), HashBytes(data, 5));
  EXPECT_NE(HashBytes(data, 5, 1), HashBytes(data, 5, 2));
  EXPECT_NE(HashBytes("abc", 3), HashBytes("abd", 3));
}

}  // namespace
}  // namespace llmms
