#include "llmms/core/oua.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace llmms::core {
namespace {

class OuaTest : public ::testing::Test {
 protected:
  void SetUp() override { world_ = testutil::MakeWorld(6); }

  OuaOrchestrator MakeOrchestrator(OuaOrchestrator::Config config = {}) {
    return OuaOrchestrator(world_.runtime.get(), world_.model_names,
                           world_.embedder, config);
  }

  // A question from the given domain.
  const llm::QaItem& QuestionIn(const std::string& domain) {
    for (const auto& item : world_.dataset) {
      if (item.domain == domain) return item;
    }
    std::abort();
  }

  testutil::World world_;
};

TEST_F(OuaTest, ProducesAnswerWithinBudget) {
  OuaOrchestrator::Config config;
  config.token_budget = 300;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
  EXPECT_FALSE(result->best_model.empty());
  EXPECT_LE(result->total_tokens, config.token_budget);
  EXPECT_GT(result->total_tokens, 0u);
  EXPECT_GT(result->rounds, 0u);
}

TEST_F(OuaTest, DeterministicAcrossRuns) {
  auto orchestrator = MakeOrchestrator();
  auto a = orchestrator.Run(world_.dataset[1].question);
  auto b = orchestrator.Run(world_.dataset[1].question);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->best_model, b->best_model);
  EXPECT_EQ(a->answer, b->answer);
  EXPECT_EQ(a->total_tokens, b->total_tokens);
}

TEST_F(OuaTest, AnswerComesFromWinner) {
  auto orchestrator = MakeOrchestrator();
  auto result = orchestrator.Run(world_.dataset[2].question);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->per_model.count(result->best_model) > 0);
  EXPECT_EQ(result->answer, result->per_model[result->best_model].response);
  // The winner must not be a pruned model.
  EXPECT_FALSE(result->per_model[result->best_model].pruned);
}

TEST_F(OuaTest, WinnerHasTopScoreAmongCandidates) {
  auto orchestrator = MakeOrchestrator();
  auto result = orchestrator.Run(world_.dataset[3].question);
  ASSERT_TRUE(result.ok());
  const double winner_score =
      result->per_model[result->best_model].final_score;
  for (const auto& [name, outcome] : result->per_model) {
    if (outcome.pruned) continue;
    EXPECT_LE(outcome.final_score, winner_score + 1e-9) << name;
  }
}

TEST_F(OuaTest, EventsStreamInOrder) {
  auto orchestrator = MakeOrchestrator();
  std::vector<OrchestratorEvent> events;
  auto result = orchestrator.Run(
      world_.dataset[0].question,
      [&events](const OrchestratorEvent& e) { events.push_back(e); });
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(events.empty());
  // Last event is the final selection; chunks precede scores per round.
  EXPECT_EQ(events.back().type, EventType::kFinal);
  EXPECT_EQ(events.back().model, result->best_model);
  bool saw_chunk = false;
  bool saw_score = false;
  for (const auto& e : events) {
    saw_chunk = saw_chunk || e.type == EventType::kChunk;
    saw_score = saw_score || e.type == EventType::kScore;
  }
  EXPECT_TRUE(saw_chunk);
  EXPECT_TRUE(saw_score);
}

TEST_F(OuaTest, TraceRecordsDecisions) {
  auto orchestrator = MakeOrchestrator();
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->trace.empty());
  EXPECT_EQ(result->trace.back().action, "final");
}

TEST_F(OuaTest, AggressivePruningDropsModels) {
  OuaOrchestrator::Config config;
  config.prune_margin = -1.0;  // prune every round regardless of gap
  config.early_stop_margin = 1e9;  // never early-stop
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  size_t pruned = 0;
  for (const auto& [name, outcome] : result->per_model) {
    pruned += outcome.pruned ? 1 : 0;
  }
  EXPECT_GE(pruned, 1u);
  EXPECT_FALSE(result->per_model[result->best_model].pruned);
}

TEST_F(OuaTest, NoPruningWhenMarginHuge) {
  OuaOrchestrator::Config config;
  config.prune_margin = 1e9;
  config.early_stop_margin = 1e9;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  for (const auto& [name, outcome] : result->per_model) {
    EXPECT_FALSE(outcome.pruned) << name;
  }
  EXPECT_FALSE(result->early_stopped);
}

TEST_F(OuaTest, EarlyStopWithZeroMarginWhenWinnerFinishes) {
  OuaOrchestrator::Config config;
  config.early_stop_margin = -1.0;  // any finished leader wins immediately
  config.chunk_tokens = 256;        // finish in one round
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->early_stopped);
  EXPECT_TRUE(result->per_model[result->best_model].finished);
  EXPECT_EQ(result->per_model[result->best_model].stop_reason,
            llm::StopReason::kStop);
}

TEST_F(OuaTest, PrunedModelsSpendFewerTokensThanBudgetShare) {
  OuaOrchestrator::Config config;
  config.token_budget = 600;
  config.chunk_tokens = 8;
  config.prune_margin = -1.0;      // aggressive pruning
  config.early_stop_margin = 1e9;  // isolate the pruning effect
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  for (const auto& [name, outcome] : result->per_model) {
    if (outcome.pruned) {
      EXPECT_LT(outcome.tokens, config.token_budget / 3) << name;
    }
  }
}

TEST_F(OuaTest, SmallBudgetRespectedPerModel) {
  OuaOrchestrator::Config config;
  config.token_budget = 30;  // 10 tokens per model
  config.chunk_tokens = 4;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->total_tokens, 30u);
}

TEST_F(OuaTest, ValidatesConfiguration) {
  OuaOrchestrator::Config config;
  config.token_budget = 0;
  auto orchestrator = MakeOrchestrator(config);
  EXPECT_TRUE(
      orchestrator.Run(world_.dataset[0].question).status().IsInvalidArgument());
  OuaOrchestrator empty(world_.runtime.get(), {}, world_.embedder, {});
  EXPECT_TRUE(empty.Run("question").status().IsFailedPrecondition());
}

TEST_F(OuaTest, SingleModelPoolDegeneratesGracefully) {
  OuaOrchestrator solo(world_.runtime.get(), {"llama3:8b"}, world_.embedder,
                       {});
  auto result = solo.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best_model, "llama3:8b");
  EXPECT_FALSE(result->answer.empty());
}

TEST_F(OuaTest, ReportsSimulatedLatency) {
  auto orchestrator = MakeOrchestrator();
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->simulated_seconds, 0.0);
  EXPECT_LT(result->simulated_seconds, 60.0);
}

}  // namespace
}  // namespace llmms::core
