// Placement regression tests for hedge-aware scheduling (DESIGN.md §11):
// a hedged group reserves its *peak* footprint — steady-state residency
// plus the largest backup replica, since a hedge race keeps two replicas
// resident — so a device that only fits the group between races is
// rejected and the load re-packs. Non-hedged placement must behave exactly
// as it did before the hedge-aware scheduler existed.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "llmms/app/service.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/hardware/placement.h"
#include "llmms/llm/hedged_model.h"
#include "llmms/llm/registry.h"
#include "llmms/llm/runtime.h"

namespace llmms {
namespace {

hardware::DeviceSpec Gpu(const std::string& name, uint64_t memory_mb) {
  hardware::DeviceSpec spec;
  spec.name = name;
  spec.kind = hardware::DeviceKind::kGpu;
  spec.memory_mb = memory_mb;
  spec.throughput_factor = 1.0;
  return spec;
}

// A model whose only interesting property is its memory footprint.
class SizedModel final : public llm::LanguageModel {
 public:
  SizedModel(std::string name, uint64_t memory_mb)
      : name_(std::move(name)), memory_mb_(memory_mb) {}
  const std::string& name() const override { return name_; }
  uint64_t memory_mb() const override { return memory_mb_; }
  double tokens_per_second() const override { return 10.0; }
  size_t context_window() const override { return 4096; }
  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest&) const override {
    return Status::Unimplemented("placement-only model");
  }

 private:
  std::string name_;
  uint64_t memory_mb_;
};

std::shared_ptr<llm::HedgedModel> MakeHedged(const std::string& name,
                                             uint64_t primary_mb,
                                             uint64_t backup_mb) {
  return std::make_shared<llm::HedgedModel>(
      std::make_shared<SizedModel>(name, primary_mb),
      std::vector<std::shared_ptr<llm::LanguageModel>>{
          std::make_shared<SizedModel>(name + ":backup", backup_mb)});
}

// ---------------------------------------------------------------------------
// HardwareManager::Place — the seed behaviour must be unchanged for plain
// loads.

TEST(PlacementTest, PlainLoadsPreferTheEmptiestGpuThenFallBackToCpu) {
  hardware::HardwareManager manager({Gpu("gpu-small", 6 * 1024),
                                     Gpu("gpu-big", 8 * 1024)});
  auto first = manager.Place(7 * 1024);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->device()->spec().name, "gpu-big");
  EXPECT_EQ((*first)->memory_mb(), 7u * 1024);
  EXPECT_EQ((*first)->hedge_extra_mb(), 0u);
  EXPECT_EQ((*first)->total_mb(), 7u * 1024);

  // gpu-big has 1 GB free, gpu-small 6 GB: no GPU fits, CPU catches it.
  auto second = manager.Place(7 * 1024);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->device()->spec().kind, hardware::DeviceKind::kCpu);
}

TEST(PlacementTest, OversizedPlainLoadKeepsTheSeedErrorMessage) {
  hardware::HardwareManager manager({Gpu("gpu-0", 8 * 1024)});
  auto placement = manager.Place(200 * 1024);  // beyond GPU and CPU fallback
  ASSERT_FALSE(placement.ok());
  EXPECT_EQ(placement.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(placement.status().message(),
            "no device can host a model of 204800 MB");
}

TEST(PlacementTest, HedgedPeakFootprintRepacksOntoTheCpu) {
  hardware::HardwareManager manager({Gpu("gpu-0", 10 * 1024)});
  hardware::Device* gpu = manager.device(0);
  ASSERT_EQ(gpu->spec().name, "gpu-0");
  hardware::Device* cpu = manager.device(1);  // auto-added fallback
  ASSERT_EQ(cpu->spec().kind, hardware::DeviceKind::kCpu);
  const uint64_t cpu_free = cpu->FreeMemoryMb();

  // Steady state alone (6 GB) fits the GPU…
  hardware::PlacementRequest request;
  request.memory_mb = 6 * 1024;
  request.hedge_extra_mb = 0;
  {
    auto steady = manager.Place(request);
    ASSERT_TRUE(steady.ok());
    EXPECT_EQ((*steady)->device(), gpu);
  }
  EXPECT_EQ(gpu->FreeMemoryMb(), 10u * 1024);  // RAII released it

  // …but the race peak (6 + 5 GB) does not: the load re-packs to the CPU
  // instead of taking a placement that would OOM on the first tail spike.
  request.hedge_extra_mb = 5 * 1024;
  auto hedged = manager.Place(request);
  ASSERT_TRUE(hedged.ok());
  EXPECT_EQ((*hedged)->device(), cpu);
  EXPECT_EQ((*hedged)->memory_mb(), 6u * 1024);
  EXPECT_EQ((*hedged)->hedge_extra_mb(), 5u * 1024);
  EXPECT_EQ((*hedged)->total_mb(), 11u * 1024);
  // The reservation covers the peak, not just the steady state.
  EXPECT_EQ(cpu->FreeMemoryMb(), cpu_free - 11 * 1024);
  hedged->reset();
  EXPECT_EQ(cpu->FreeMemoryMb(), cpu_free);
}

TEST(PlacementTest, UnplaceableRacePeakNamesTheHedgeHeadroom) {
  hardware::HardwareManager manager({Gpu("gpu-0", 10 * 1024)});
  hardware::PlacementRequest request;
  request.memory_mb = 90 * 1024;      // would fit the 96 GB CPU fallback…
  request.hedge_extra_mb = 20 * 1024; // …but not with the race headroom
  auto placement = manager.Place(request);
  ASSERT_FALSE(placement.ok());
  EXPECT_EQ(placement.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(placement.status().message().find("hedge-race headroom"),
            std::string::npos)
      << placement.status().message();

  // Proof the headroom is what rejected it: the steady state alone places.
  request.hedge_extra_mb = 0;
  EXPECT_TRUE(manager.Place(request).ok());
}

// ---------------------------------------------------------------------------
// ModelRuntime::LoadModel — the runtime detects hedged groups and charges
// the peak.

class HedgedRuntimePlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_ = std::make_shared<llm::ModelRegistry>();
    ASSERT_TRUE(
        registry_->Register(std::make_shared<SizedModel>("solo", 6 * 1024))
            .ok());
    ASSERT_TRUE(
        registry_->Register(MakeHedged("dup", 6 * 1024, 5 * 1024)).ok());
    hardware_ = std::make_shared<hardware::HardwareManager>(
        std::vector<hardware::DeviceSpec>{Gpu("gpu-0", 10 * 1024)});
    runtime_ = std::make_unique<llm::ModelRuntime>(registry_, hardware_,
                                                   /*num_threads=*/2);
  }

  std::shared_ptr<llm::ModelRegistry> registry_;
  std::shared_ptr<hardware::HardwareManager> hardware_;
  std::unique_ptr<llm::ModelRuntime> runtime_;
};

TEST_F(HedgedRuntimePlacementTest, RuntimeChargesThePeakForHedgedGroups) {
  // The plain 6 GB model fits the 10 GB GPU.
  ASSERT_TRUE(runtime_->LoadModel("solo").ok());
  auto snapshot = runtime_->PlacementSnapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].model, "solo");
  EXPECT_EQ(snapshot[0].device, "gpu-0");
  EXPECT_EQ(snapshot[0].hedge_extra_mb, 0u);
  ASSERT_TRUE(runtime_->UnloadModel("solo").ok());

  // The hedged group has the same steady-state footprint, but its race
  // peak (6 + 5 GB) exceeds the GPU: the runtime re-packs it to the CPU.
  hardware::Device* cpu = hardware_->device(1);
  const uint64_t cpu_free = cpu->FreeMemoryMb();
  ASSERT_TRUE(runtime_->LoadModel("dup").ok());
  snapshot = runtime_->PlacementSnapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].model, "dup");
  EXPECT_EQ(snapshot[0].device, "cpu-fallback");
  EXPECT_EQ(snapshot[0].memory_mb, 6u * 1024);
  EXPECT_EQ(snapshot[0].hedge_extra_mb, 5u * 1024);
  EXPECT_EQ(cpu->FreeMemoryMb(), cpu_free - 11 * 1024);
  EXPECT_EQ(hardware_->device(0)->FreeMemoryMb(), 10u * 1024);

  // Unloading releases the full peak reservation.
  ASSERT_TRUE(runtime_->UnloadModel("dup").ok());
  EXPECT_EQ(cpu->FreeMemoryMb(), cpu_free);
}

TEST_F(HedgedRuntimePlacementTest, SnapshotIsSortedByModelName) {
  ASSERT_TRUE(runtime_->LoadModel("solo").ok());
  ASSERT_TRUE(runtime_->LoadModel("dup").ok());
  auto snapshot = runtime_->PlacementSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].model, "dup");
  EXPECT_EQ(snapshot[1].model, "solo");
}

TEST_F(HedgedRuntimePlacementTest, HealthPlacementBlockShowsTheRacePeak) {
  ASSERT_TRUE(runtime_->LoadModel("solo").ok());
  ASSERT_TRUE(runtime_->LoadModel("dup").ok());

  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  core::SearchEngine engine(runtime_.get(), embedder, db, sessions);
  app::ApiService service(&engine);

  auto response = service.HandleHealth();
  ASSERT_TRUE(response["ok"].AsBool());
  const Json& placement = response["placement"];
  ASSERT_TRUE(placement.is_array());
  ASSERT_EQ(placement.Size(), 2u);

  const Json& dup = placement.At(0);  // sorted by model name
  EXPECT_EQ(dup["model"].AsString(), "dup");
  EXPECT_EQ(dup["device"].AsString(), "cpu-fallback");
  EXPECT_EQ(dup["memory_mb"].AsInt(), 6 * 1024);
  EXPECT_EQ(dup["hedge_extra_mb"].AsInt(), 5 * 1024);
  EXPECT_EQ(dup["race_peak_mb"].AsInt(), 11 * 1024);

  const Json& solo = placement.At(1);
  EXPECT_EQ(solo["model"].AsString(), "solo");
  EXPECT_EQ(solo["device"].AsString(), "gpu-0");
  EXPECT_EQ(solo["hedge_extra_mb"].AsInt(), 0);
  EXPECT_EQ(solo["race_peak_mb"].AsInt(), 6 * 1024);
}

}  // namespace
}  // namespace llmms
