// Chaos tests for the multi-agent pipeline (§9.5): the decompose →
// research → verify → compose crew must keep the degradation promises
// core/agents.cc makes when the researcher pool is unhealthy — quarantined
// researchers are survivable, the retry path gets a chance to recover a
// failed research pass, and only a pool with nothing left to compose from
// surfaces the typed pipeline error.

#include "llmms/core/agents.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "llmms/llm/fault_injection.h"
#include "llmms/llm/resilient_model.h"
#include "testutil.h"

namespace llmms::core {
namespace {

// A world whose first `num_faulty` models are wrapped in FaultyModel; with
// `with_resilience`, every model additionally gets the ResilientModel
// decorator — the production stack. Keeps handles to the FaultyModels so
// tests can assert the chaos actually fired.
struct ChaosAgentsWorld {
  std::shared_ptr<const embedding::Embedder> embedder;
  std::shared_ptr<llm::KnowledgeBase> knowledge;
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::vector<llm::QaItem> dataset;
  std::vector<llm::QaItem> composites;
  std::vector<std::string> model_names;
  std::vector<std::shared_ptr<llm::FaultyModel>> faulty;
};

ChaosAgentsWorld MakeChaosAgentsWorld(size_t num_faulty,
                                      const llm::FaultConfig& faults,
                                      bool with_resilience = false) {
  ChaosAgentsWorld world;
  world.embedder = std::make_shared<embedding::HashEmbedder>();

  eval::DatasetOptions dataset_options;
  dataset_options.questions_per_domain = 4;
  world.dataset = eval::GenerateDataset(dataset_options);
  world.composites = eval::GenerateCompositeDataset(world.dataset, 4);

  auto knowledge = std::make_shared<llm::KnowledgeBase>(world.embedder);
  if (!knowledge->AddAll(world.dataset).ok()) std::abort();
  world.knowledge = knowledge;

  world.registry = std::make_shared<llm::ModelRegistry>();
  const auto profiles = llm::DefaultProfiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    std::shared_ptr<llm::LanguageModel> model =
        std::make_shared<llm::SyntheticModel>(profiles[i], knowledge);
    if (i < num_faulty) {
      llm::FaultConfig fault_config = faults;
      fault_config.seed += i;
      auto faulty = std::make_shared<llm::FaultyModel>(model, fault_config);
      world.faulty.push_back(faulty);
      model = faulty;
    }
    if (with_resilience) {
      llm::ResilienceConfig resilience;
      resilience.seed += i;
      model = std::make_shared<llm::ResilientModel>(model, resilience);
    }
    world.model_names.push_back(profiles[i].name);
    if (!world.registry->Register(model).ok()) std::abort();
  }

  hardware::DeviceSpec gpu;
  gpu.name = "chaos-gpu-0";
  gpu.kind = hardware::DeviceKind::kGpu;
  gpu.memory_mb = 64 * 1024;
  gpu.throughput_factor = 1.0;
  world.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{gpu});

  world.runtime = std::make_unique<llm::ModelRuntime>(
      world.registry, world.hardware, /*num_threads=*/4);
  for (const auto& name : world.model_names) {
    if (!world.runtime->LoadModel(name).ok()) std::abort();
  }
  return world;
}

MultiAgentPipeline MakePipeline(ChaosAgentsWorld* world,
                                MultiAgentPipeline::Config config = {}) {
  return MultiAgentPipeline(world->runtime.get(), world->model_names,
                            world->embedder, config);
}

TEST(AgentsChaosTest, ResearcherDyingMidStreamIsSurvivable) {
  // One researcher dies mid-generation on every sub-question; the other
  // two carry the research and the pipeline composes a full answer.
  llm::FaultConfig faults;
  faults.fail_after_tokens = 4;
  auto world = MakeChaosAgentsWorld(/*num_faulty=*/1, faults);
  auto pipeline = MakePipeline(&world);

  auto result = pipeline.Run(world.composites[0].question);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->sub_results.size(), 2u);
  EXPECT_FALSE(result->answer.empty());
  for (const auto& sub : result->sub_results) {
    EXPECT_FALSE(sub.answer.empty());
    // The accepted answer must come from a healthy researcher — a
    // quarantined model's partial output is never selected.
    EXPECT_NE(sub.model, world.model_names[0]);
    EXPECT_GT(sub.tokens, 0u);
  }
}

TEST(AgentsChaosTest, RefusedStartsAreSurvivable) {
  // One researcher refuses every StartGeneration (a crashed backend); it
  // joins each research pass pre-failed and the pipeline still answers.
  llm::FaultConfig faults;
  faults.refuse_start_prob = 1.0;
  auto world = MakeChaosAgentsWorld(/*num_faulty=*/1, faults);
  auto pipeline = MakePipeline(&world);

  auto result = pipeline.Run(world.composites[1].question);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->answer.empty());
  for (const auto& sub : result->sub_results) {
    EXPECT_FALSE(sub.answer.empty());
    EXPECT_NE(sub.model, world.model_names[0]);
  }
  // The chaos actually fired: every start on the faulty model was refused.
  ASSERT_EQ(world.faulty.size(), 1u);
  const auto counters = world.faulty[0]->counters();
  EXPECT_GT(counters.starts_attempted, 0u);
  EXPECT_EQ(counters.starts_refused, counters.starts_attempted);
}

TEST(AgentsChaosTest, AllResearchersDeadIsATypedPipelineError) {
  // Every model in the pool dies mid-generation, so research fails, the
  // MAB retry fails, and the pipeline must surface its typed error — with
  // the sub-question named and the underlying status code preserved — not
  // compose an empty answer.
  llm::FaultConfig faults;
  faults.fail_after_tokens = 3;
  auto world = MakeChaosAgentsWorld(/*num_faulty=*/3, faults);
  auto pipeline = MakePipeline(&world);

  auto result = pipeline.Run(world.composites[2].question);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(
                "multi-agent pipeline failed on sub-question"),
            std::string::npos)
      << result.status().ToString();
}

TEST(AgentsChaosTest, RetryPathRecoversAFailedResearchPass) {
  // The whole pool dies mid-stream *probabilistically*: with transient
  // chunk errors and resilience enabled, the stack absorbs the faults and
  // the pipeline completes as if the pool were healthy.
  llm::FaultConfig faults;
  faults.chunk_error_prob = 0.3;  // transient; retryable by ResilientModel
  auto world =
      MakeChaosAgentsWorld(/*num_faulty=*/3, faults, /*with_resilience=*/true);
  auto pipeline = MakePipeline(&world);

  auto result = pipeline.Run(world.composites[3].question);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->answer.empty());
  for (const auto& sub : result->sub_results) {
    EXPECT_FALSE(sub.answer.empty());
    EXPECT_GT(sub.tokens, 0u);
  }
  // The faults fired and were absorbed below the pipeline.
  size_t injected = 0;
  for (const auto& faulty : world.faulty) {
    injected += faulty->counters().chunk_errors_injected;
  }
  EXPECT_GT(injected, 0u);
}

TEST(AgentsChaosTest, DegradedPoolStaysDeterministic) {
  // Chaos is seeded: the same faulty pool answers the same composite
  // question identically across runs — the property every other chaos
  // assertion in this file quietly relies on.
  llm::FaultConfig faults;
  faults.fail_after_tokens = 4;
  auto world_a = MakeChaosAgentsWorld(/*num_faulty=*/1, faults);
  auto world_b = MakeChaosAgentsWorld(/*num_faulty=*/1, faults);
  auto result_a =
      MakePipeline(&world_a).Run(world_a.composites[0].question);
  auto result_b =
      MakePipeline(&world_b).Run(world_b.composites[0].question);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  EXPECT_EQ(result_a->answer, result_b->answer);
  EXPECT_EQ(result_a->total_tokens, result_b->total_tokens);
}

}  // namespace
}  // namespace llmms::core
