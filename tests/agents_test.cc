#include "llmms/core/agents.h"

#include <gtest/gtest.h>

#include "llmms/core/scoring.h"
#include "llmms/eval/qa_dataset.h"
#include "testutil.h"

namespace llmms::core {
namespace {

TEST(DecomposeTest, SinglePartQuestionPassesThrough) {
  const auto parts = DecomposeQuestion("What is the capital of Veldan?");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "What is the capital of Veldan?");
}

TEST(DecomposeTest, SplitsTwoPartQuestions) {
  const auto parts = DecomposeQuestion(
      "What is 5 plus 3? Also, who won the battle of Drennos?");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "What is 5 plus 3?");
  EXPECT_EQ(parts[1], "who won the battle of Drennos?");
}

TEST(DecomposeTest, StripsVariousJoiners) {
  const auto parts = DecomposeQuestion(
      "First question? Additionally, second question? And third question?");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "second question?");
  EXPECT_EQ(parts[2], "third question?");
}

TEST(DecomposeTest, StatementsAttachToPrecedingQuestion) {
  const auto parts =
      DecomposeQuestion("What color is veltrite? Answer briefly.");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "What color is veltrite? Answer briefly.");
}

TEST(DecomposeTest, EmptyAndWhitespaceInput) {
  EXPECT_EQ(DecomposeQuestion("").size(), 1u);
  EXPECT_EQ(DecomposeQuestion("no question mark here").size(), 1u);
}

class AgentsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = testutil::MakeWorld(6);
    composites_ = eval::GenerateCompositeDataset(world_.dataset, 8);
  }

  MultiAgentPipeline MakePipeline(MultiAgentPipeline::Config config = {}) {
    return MultiAgentPipeline(world_.runtime.get(), world_.model_names,
                              world_.embedder, config);
  }

  testutil::World world_;
  std::vector<llm::QaItem> composites_;
};

TEST_F(AgentsTest, CompositeGeneratorProducesTraps) {
  ASSERT_EQ(composites_.size(), 8u);
  for (const auto& item : composites_) {
    EXPECT_EQ(item.domain, "composite");
    EXPECT_NE(item.question.find(" Also, "), std::string::npos);
    EXPECT_GE(item.correct.size(), 1u);
    EXPECT_GE(item.incorrect.size(), 2u);
  }
  // Degenerate inputs.
  EXPECT_TRUE(eval::GenerateCompositeDataset({}, 5).empty());
  EXPECT_TRUE(eval::GenerateCompositeDataset(world_.dataset, 0).empty());
}

TEST_F(AgentsTest, AnswersBothPartsOfCompositeQuestions) {
  auto pipeline = MakePipeline();
  const auto& item = composites_[0];
  auto result = pipeline.Run(item.question);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->sub_results.size(), 2u);
  EXPECT_FALSE(result->answer.empty());
  for (const auto& sub : result->sub_results) {
    EXPECT_FALSE(sub.answer.empty());
    EXPECT_FALSE(sub.model.empty());
    EXPECT_GT(sub.tokens, 0u);
  }
  EXPECT_EQ(result->total_tokens,
            result->sub_results[0].tokens + result->sub_results[1].tokens);
}

TEST_F(AgentsTest, Deterministic) {
  auto pipeline = MakePipeline();
  auto a = pipeline.Run(composites_[1].question);
  auto b = pipeline.Run(composites_[1].question);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->answer, b->answer);
  EXPECT_EQ(a->total_tokens, b->total_tokens);
}

TEST_F(AgentsTest, PipelineBeatsSingleShotOnComposites) {
  // The decompose-research-compose crew should collect more combined F1
  // than one orchestration run over the fused question (whose KB lookup can
  // only resolve one half).
  auto pipeline = MakePipeline();
  OuaOrchestrator single_shot(world_.runtime.get(), world_.model_names,
                              world_.embedder, {});
  double pipeline_f1 = 0.0;
  double single_f1 = 0.0;
  for (const auto& item : composites_) {
    auto crew = pipeline.Run(item.question);
    auto solo = single_shot.Run(item.question);
    ASSERT_TRUE(crew.ok());
    ASSERT_TRUE(solo.ok());
    pipeline_f1 += BestTokenF1(crew->answer, item.golden, item.correct);
    single_f1 += BestTokenF1(solo->answer, item.golden, item.correct);
  }
  EXPECT_GT(pipeline_f1, single_f1);
}

TEST_F(AgentsTest, VerifierRetriesLowSimilarityAnswers) {
  MultiAgentPipeline::Config config;
  config.verify_threshold = 0.99;  // unreachable: force the retry path
  config.max_retries = 1;
  auto pipeline = MakePipeline(config);
  auto result = pipeline.Run(composites_[2].question);
  ASSERT_TRUE(result.ok());
  for (const auto& sub : result->sub_results) {
    EXPECT_TRUE(sub.retried);
    EXPECT_FALSE(sub.verified);  // threshold is impossible
  }
}

TEST_F(AgentsTest, NoRetryWhenVerificationPasses) {
  MultiAgentPipeline::Config config;
  config.verify_threshold = -1.0;  // always verified
  auto pipeline = MakePipeline(config);
  auto result = pipeline.Run(composites_[3].question);
  ASSERT_TRUE(result.ok());
  for (const auto& sub : result->sub_results) {
    EXPECT_TRUE(sub.verified);
    EXPECT_FALSE(sub.retried);
  }
}

TEST_F(AgentsTest, ValidatesInput) {
  auto pipeline = MakePipeline();
  EXPECT_TRUE(pipeline.Run("").status().IsInvalidArgument());
  MultiAgentPipeline empty(world_.runtime.get(), {}, world_.embedder, {});
  EXPECT_TRUE(empty.Run("q?").status().IsFailedPrecondition());
}

TEST_F(AgentsTest, SimplePassthroughForSinglePartQuestions) {
  auto pipeline = MakePipeline();
  const auto& item = world_.dataset[0];
  auto result = pipeline.Run(item.question);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sub_results.size(), 1u);
}

}  // namespace
}  // namespace llmms::core
