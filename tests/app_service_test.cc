#include "llmms/app/service.h"

#include <gtest/gtest.h>

#include "llmms/app/sse.h"
#include "llmms/llm/hedged_model.h"
#include "testutil.h"

namespace llmms::app {
namespace {

class ApiServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = testutil::MakeWorld(4);
    db_ = std::make_shared<vectordb::VectorDatabase>();
    sessions_ = std::make_shared<session::SessionStore>();
    engine_ = std::make_unique<core::SearchEngine>(
        world_.runtime.get(), world_.embedder, db_, sessions_);
    service_ = std::make_unique<ApiService>(engine_.get());
  }

  Json QueryRequest(const std::string& question) {
    Json request = Json::MakeObject();
    request.Set("session", "s1");
    request.Set("query", question);
    return request;
  }

  testutil::World world_;
  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::shared_ptr<session::SessionStore> sessions_;
  std::unique_ptr<core::SearchEngine> engine_;
  std::unique_ptr<ApiService> service_;
};

TEST_F(ApiServiceTest, QueryReturnsAnswerAndTransparencyData) {
  auto response = service_->Handle("/api/query",
                                   QueryRequest(world_.dataset[0].question));
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_FALSE(response["answer"].AsString().empty());
  EXPECT_FALSE(response["model"].AsString().empty());
  EXPECT_GT(response["total_tokens"].AsInt(), 0);
  EXPECT_EQ(response["models"].Size(), 3u);
  const auto& winner = response["models"][response["model"].AsString()];
  EXPECT_FALSE(winner.is_null());
  EXPECT_TRUE(winner.Contains("score"));
  EXPECT_TRUE(winner.Contains("tokens"));
}

TEST_F(ApiServiceTest, QueryValidatesArguments) {
  Json missing = Json::MakeObject();
  missing.Set("session", "s1");
  auto response = service_->Handle("/api/query", missing);
  EXPECT_FALSE(response["ok"].AsBool());
  EXPECT_EQ(response["error"]["code"].AsString(), "InvalidArgument");

  Json bad_budget = QueryRequest("q");
  bad_budget.Set("budget", -5);
  response = service_->Handle("/api/query", bad_budget);
  EXPECT_FALSE(response["ok"].AsBool());
}

TEST_F(ApiServiceTest, QueryHonorsAlgorithmAndModelSettings) {
  Json request = QueryRequest(world_.dataset[0].question);
  request.Set("algorithm", "single");
  request.Set("single_model", "mistral:7b");
  auto response = service_->Handle("/api/query", request);
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_EQ(response["model"].AsString(), "mistral:7b");
  EXPECT_EQ(response["models"].Size(), 1u);
}

TEST_F(ApiServiceTest, QueryStreamsEvents) {
  std::vector<Json> events;
  auto response =
      service_->Handle("/api/query", QueryRequest(world_.dataset[1].question),
                       [&events](const Json& e) { events.push_back(e); });
  ASSERT_TRUE(response["ok"].AsBool());
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back()["type"].AsString(), "final");
  bool saw_chunk = false;
  for (const auto& e : events) {
    saw_chunk = saw_chunk || e["type"].AsString() == "chunk";
  }
  EXPECT_TRUE(saw_chunk);
}

TEST_F(ApiServiceTest, UploadThenQueryUsesRag) {
  const auto& item = world_.dataset[0];
  Json upload = Json::MakeObject();
  upload.Set("session", "s1");
  upload.Set("document_id", "notes");
  upload.Set("text", item.golden);
  auto up_response = service_->Handle("/api/upload", upload);
  ASSERT_TRUE(up_response["ok"].AsBool());
  EXPECT_GE(up_response["chunks"].AsInt(), 1);

  auto response = service_->Handle("/api/query", QueryRequest(item.question));
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_GE(response["retrieved_chunks"].AsInt(), 1);
}

TEST_F(ApiServiceTest, UploadValidatesArguments) {
  Json upload = Json::MakeObject();
  upload.Set("session", "s1");
  auto response = service_->Handle("/api/upload", upload);
  EXPECT_FALSE(response["ok"].AsBool());
}

TEST_F(ApiServiceTest, InstructionsFieldAppliesNlConfig) {
  Json request = QueryRequest(world_.dataset[0].question);
  request.Set("instructions", "use the bandit algorithm, avoid llama3");
  auto response = service_->Handle("/api/query", request);
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_EQ(response["applied_config"].Size(), 2u);
  EXPECT_EQ(response["models"].Size(), 2u);
  EXPECT_TRUE(response["models"]["llama3:8b"].is_null());
}

TEST_F(ApiServiceTest, ContradictoryInstructionsRejected) {
  Json request = QueryRequest(world_.dataset[0].question);
  request.Set("instructions",
              "avoid llama3, avoid mistral, avoid qwen2");
  auto response = service_->Handle("/api/query", request);
  EXPECT_FALSE(response["ok"].AsBool());
}

TEST_F(ApiServiceTest, ModelsEndpointListsLoadedModels) {
  auto response = service_->Handle("/api/models", Json::MakeObject());
  ASSERT_TRUE(response["ok"].AsBool());
  EXPECT_EQ(response["models"].Size(), 3u);
}

TEST_F(ApiServiceTest, SessionsLifecycle) {
  ASSERT_TRUE(service_
                  ->Handle("/api/query",
                           QueryRequest(world_.dataset[0].question))["ok"]
                  .AsBool());
  auto listing = service_->Handle("/api/sessions", Json::MakeObject());
  ASSERT_TRUE(listing["ok"].AsBool());
  EXPECT_EQ(listing["sessions"].Size(), 1u);
  EXPECT_EQ(listing["sessions"].At(0).AsString(), "s1");

  Json end = Json::MakeObject();
  end.Set("session", "s1");
  EXPECT_TRUE(service_->Handle("/api/session/end", end)["ok"].AsBool());
  listing = service_->Handle("/api/sessions", Json::MakeObject());
  EXPECT_EQ(listing["sessions"].Size(), 0u);
  // Ending again fails cleanly.
  EXPECT_FALSE(service_->Handle("/api/session/end", end)["ok"].AsBool());
}

TEST_F(ApiServiceTest, HealthAndHardwareEndpoints) {
  auto health = service_->Handle("/api/health", Json::MakeObject());
  ASSERT_TRUE(health["ok"].AsBool());
  EXPECT_EQ(health["status"].AsString(), "healthy");
  EXPECT_EQ(health["loaded_models"].AsInt(), 3);

  // The storage block (DESIGN.md §14): recovery counters + I/O op counts.
  ASSERT_TRUE(health.Contains("storage"));
  const auto& storage = health["storage"];
  EXPECT_FALSE(storage["chaos"].AsBool());  // no LLMMS_IO_CHAOS in tests
  ASSERT_TRUE(storage.Contains("recovery"));
  EXPECT_TRUE(storage["recovery"].Contains("wal_replays"));
  EXPECT_TRUE(storage["recovery"].Contains("torn_tails_recovered"));
  EXPECT_TRUE(storage["recovery"].Contains("sequence_breaks"));
  EXPECT_TRUE(storage["recovery"].Contains("state_cold_starts"));
  ASSERT_TRUE(storage.Contains("io"));
  EXPECT_TRUE(storage["io"].Contains("appends"));
  EXPECT_TRUE(storage["io"].Contains("syncs"));
  EXPECT_TRUE(storage["io"].Contains("dir_syncs"));

  auto hardware = service_->Handle("/api/hardware", Json::MakeObject());
  ASSERT_TRUE(hardware["ok"].AsBool());
  ASSERT_GE(hardware["devices"].Size(), 1u);
  const auto& gpu = hardware["devices"].At(0);
  EXPECT_TRUE(gpu.Contains("memory_total_mb"));
  EXPECT_TRUE(gpu.Contains("utilization"));
  EXPECT_TRUE(gpu.Contains("temperature_c"));
}

TEST_F(ApiServiceTest, UnknownEndpointIsNotFound) {
  auto response = service_->Handle("/api/nope", Json::MakeObject());
  EXPECT_FALSE(response["ok"].AsBool());
  EXPECT_EQ(response["error"]["code"].AsString(), "NotFound");
}

// The adaptive hedging block surfaces the engine feed's estimator
// configuration (DESIGN.md §16): `window_size` / `reward_half_life` tell an
// operator which estimator the favours driving the percentiles come from.
TEST(ApiServiceAdaptiveHealthTest, HealthReportsRewardEstimatorConfig) {
  auto world = testutil::MakeWorld(1);
  auto profile = llm::DefaultProfiles()[0];
  profile.name = "hedged:demo";
  llm::HedgeConfig hedge;
  hedge.adapt = true;
  ASSERT_TRUE(world.registry
                  ->Register(std::make_shared<llm::HedgedModel>(
                      std::make_shared<llm::SyntheticModel>(profile,
                                                            world.knowledge),
                      std::vector<std::shared_ptr<llm::LanguageModel>>{
                          std::make_shared<llm::SyntheticModel>(
                              profile, world.knowledge)},
                      hedge))
                  .ok());
  ASSERT_TRUE(world.runtime->LoadModel("hedged:demo").ok());

  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(world.runtime.get(), world.embedder, db, sessions);
  core::RewardFeedConfig feed_config;
  feed_config.warmup = 4;
  feed_config.window = 32;
  engine.ConfigureRewardFeed(feed_config);
  ApiService service(&engine);

  auto health = service.Handle("/api/health", Json::MakeObject());
  ASSERT_TRUE(health["ok"].AsBool());
  const Json* entry = nullptr;
  for (const Json& model : health["models"].AsArray()) {
    if (model["model"].AsString() == "hedged:demo") entry = &model;
  }
  ASSERT_NE(entry, nullptr);
  const Json& hedging = (*entry)["hedging"];
  ASSERT_TRUE(hedging.is_object());
  EXPECT_TRUE(hedging["adaptive"].AsBool());
  EXPECT_EQ(hedging["window_size"].AsInt(), 32);
  EXPECT_DOUBLE_EQ(hedging["reward_half_life"].AsDouble(), 0.0);
}

TEST(SseTest, EncodeBasicEvent) {
  SseEvent event;
  event.event = "chunk";
  event.data = "{\"a\":1}";
  EXPECT_EQ(EncodeSse(event), "event: chunk\ndata: {\"a\":1}\n\n");
}

TEST(SseTest, EncodeMultilineData) {
  SseEvent event;
  event.data = "line1\nline2";
  EXPECT_EQ(EncodeSse(event), "data: line1\ndata: line2\n\n");
}

TEST(SseTest, RoundTripWithIds) {
  SseEvent a;
  a.event = "score";
  a.id = "7";
  a.data = "payload";
  SseEvent b;
  b.data = "first\nsecond";
  const std::string wire = EncodeSse(a) + EncodeSse(b);
  const auto decoded = DecodeSse(wire);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].event, "score");
  EXPECT_EQ(decoded[0].id, "7");
  EXPECT_EQ(decoded[0].data, "payload");
  EXPECT_EQ(decoded[1].data, "first\nsecond");
}

TEST(SseTest, DecodeIgnoresCommentsAndIncompleteTrailers) {
  const auto decoded =
      DecodeSse(": a comment\ndata: complete\n\ndata: incomplete");
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].data, "complete");
}

TEST(SseTest, StreamedOrchestrationEventsSurviveSseRoundTrip) {
  // End-to-end: JSON event -> SSE wire -> decode -> JSON.
  Json event = Json::MakeObject();
  event.Set("type", "chunk");
  event.Set("text", "hello world");
  SseEvent sse;
  sse.event = "orchestration";
  sse.data = event.Dump();
  const auto decoded = DecodeSse(EncodeSse(sse));
  ASSERT_EQ(decoded.size(), 1u);
  auto parsed = Json::Parse(decoded[0].data);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, event);
}

}  // namespace
}  // namespace llmms::app
