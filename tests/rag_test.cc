#include <gtest/gtest.h>

#include "llmms/common/string_util.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/rag/chunker.h"
#include "llmms/rag/document_store.h"
#include "llmms/rag/pipeline.h"
#include "llmms/rag/prompt_builder.h"
#include "llmms/vectordb/database.h"

namespace llmms::rag {
namespace {

std::string RepeatSentences(int n) {
  std::string doc;
  for (int i = 0; i < n; ++i) {
    doc += "Sentence number " + std::to_string(i) +
           " talks about topic " + std::to_string(i % 7) + ". ";
  }
  return doc;
}

TEST(ChunkerTest, EmptyDocumentYieldsNoChunks) {
  Chunker chunker;
  EXPECT_TRUE(chunker.Chunk("").empty());
  EXPECT_TRUE(chunker.Chunk("   \n ").empty());
}

TEST(ChunkerTest, ShortDocumentSingleChunk) {
  Chunker chunker;
  const auto chunks = chunker.Chunk("One sentence. Another sentence.");
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].index, 0u);
  EXPECT_EQ(chunks[0].text, "One sentence. Another sentence.");
}

TEST(ChunkerTest, LongDocumentSplitsNearTarget) {
  Chunker::Options opts;
  opts.target_words = 30;
  opts.max_words = 45;
  opts.overlap_words = 0;
  Chunker chunker(opts);
  const auto chunks = chunker.Chunk(RepeatSentences(40));
  ASSERT_GT(chunks.size(), 3u);
  for (const auto& chunk : chunks) {
    EXPECT_LE(chunk.num_words, opts.max_words);
    EXPECT_GT(chunk.num_words, 0u);
  }
}

TEST(ChunkerTest, ChunksNeverSplitSentences) {
  Chunker::Options opts;
  opts.target_words = 20;
  opts.overlap_words = 0;
  Chunker chunker(opts);
  const auto chunks = chunker.Chunk(RepeatSentences(30));
  for (const auto& chunk : chunks) {
    // Every chunk must end with a sentence terminator.
    EXPECT_EQ(chunk.text.back(), '.');
  }
}

TEST(ChunkerTest, OverlapRepeatsTrailingContext) {
  Chunker::Options opts;
  opts.target_words = 25;
  opts.max_words = 35;
  opts.overlap_words = 8;
  Chunker chunker(opts);
  const auto chunks = chunker.Chunk(RepeatSentences(30));
  ASSERT_GT(chunks.size(), 1u);
  // Some sentence of chunk 0 must reappear in chunk 1.
  const auto first_words = SplitWhitespace(chunks[0].text);
  bool overlap_found = chunks[1].text.find("Sentence number") !=
                       std::string::npos;
  // Stronger: the start word offset of chunk 1 is before the end of chunk 0.
  EXPECT_LT(chunks[1].start_word, chunks[0].start_word + chunks[0].num_words);
  EXPECT_TRUE(overlap_found);
  (void)first_words;
}

TEST(ChunkerTest, CoversWholeDocument) {
  Chunker::Options opts;
  opts.target_words = 25;
  opts.overlap_words = 5;
  Chunker chunker(opts);
  const std::string doc = RepeatSentences(50);
  const auto chunks = chunker.Chunk(doc);
  // Every sentence index 0..49 must appear in some chunk.
  for (int i = 0; i < 50; ++i) {
    const std::string needle = "Sentence number " + std::to_string(i) + " ";
    bool found = false;
    for (const auto& chunk : chunks) {
      found = found || chunk.text.find(needle) != std::string::npos;
    }
    EXPECT_TRUE(found) << "sentence " << i << " missing";
  }
}

class DocumentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    embedder_ = std::make_shared<embedding::HashEmbedder>();
    vectordb::Collection::Options opts;
    opts.dimension = embedder_->dimension();
    opts.index_kind = vectordb::IndexKind::kFlat;
    collection_ = std::make_shared<vectordb::Collection>("docs", opts);
    store_ = std::make_unique<DocumentStore>(collection_, embedder_);
  }

  std::shared_ptr<embedding::HashEmbedder> embedder_;
  std::shared_ptr<vectordb::Collection> collection_;
  std::unique_ptr<DocumentStore> store_;
};

TEST_F(DocumentStoreTest, AddAndRetrieve) {
  auto n = store_->AddDocument(
      "manual",
      "The reactor core temperature must stay below 900 degrees. "
      "Cooling pumps are serviced every three months. "
      "The control room is staffed around the clock.");
  ASSERT_TRUE(n.ok());
  EXPECT_GE(*n, 1u);
  auto hits = store_->Retrieve("what is the maximum reactor temperature", 2);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_NE((*hits)[0].text.find("900 degrees"), std::string::npos);
  EXPECT_EQ((*hits)[0].document_id, "manual");
}

TEST_F(DocumentStoreTest, ValidatesDocumentId) {
  EXPECT_TRUE(store_->AddDocument("", "text").status().IsInvalidArgument());
  EXPECT_TRUE(
      store_->AddDocument("bad#id", "text").status().IsInvalidArgument());
}

TEST_F(DocumentStoreTest, ReAddReplacesChunks) {
  ASSERT_TRUE(store_->AddDocument("d", "Old content about apples.").ok());
  ASSERT_TRUE(store_->AddDocument("d", "New content about oranges.").ok());
  EXPECT_EQ(store_->document_ids().size(), 1u);
  auto hits = store_->Retrieve("apples oranges content", 5);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) {
    EXPECT_EQ(hit.text.find("apples"), std::string::npos);
  }
}

TEST_F(DocumentStoreTest, RemoveDocumentDropsChunks) {
  ASSERT_TRUE(store_->AddDocument("a", RepeatSentences(20)).ok());
  ASSERT_TRUE(store_->AddDocument("b", "Unrelated text about rivers.").ok());
  const size_t before = store_->chunk_count();
  ASSERT_TRUE(store_->RemoveDocument("a").ok());
  EXPECT_LT(store_->chunk_count(), before);
  EXPECT_TRUE(store_->RemoveDocument("a").IsNotFound());
  auto hits = store_->Retrieve("topic sentence number", 10);
  ASSERT_TRUE(hits.ok());
  for (const auto& hit : *hits) EXPECT_EQ(hit.document_id, "b");
}

TEST_F(DocumentStoreTest, RetrieveScopedToDocument) {
  ASSERT_TRUE(store_->AddDocument("a", "Rivers flow toward the sea.").ok());
  ASSERT_TRUE(store_->AddDocument("b", "Rivers carve deep canyons.").ok());
  auto hits = store_->Retrieve("rivers", 10, "b");
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  for (const auto& hit : *hits) EXPECT_EQ(hit.document_id, "b");
}

TEST(PromptBuilderTest, BareQueryWhenNoContext) {
  PromptBuilder builder;
  EXPECT_EQ(builder.Build("What is X?", {}), "Question: What is X?");
}

TEST(PromptBuilderTest, ContextComesFirstByDefault) {
  PromptBuilder builder;
  RetrievedChunk chunk;
  chunk.text = "X is a kind of Y.";
  const std::string prompt = builder.Build("What is X?", {chunk});
  EXPECT_LT(prompt.find("X is a kind of Y."), prompt.find("Question:"));
  EXPECT_NE(prompt.find("Use the following context"), std::string::npos);
}

TEST(PromptBuilderTest, HistoryIncludedWhenPresent) {
  PromptBuilder builder;
  const std::string prompt =
      builder.Build("What is X?", {}, "user: earlier question");
  EXPECT_NE(prompt.find("Conversation so far:"), std::string::npos);
  EXPECT_NE(prompt.find("earlier question"), std::string::npos);
}

TEST(PromptBuilderTest, ClipsContextToWordBudget) {
  PromptBuilder::Options opts;
  opts.max_context_words = 10;
  PromptBuilder builder(opts);
  RetrievedChunk chunk;
  for (int i = 0; i < 50; ++i) chunk.text += "word" + std::to_string(i) + " ";
  const std::string prompt = builder.Build("q", {chunk});
  EXPECT_NE(prompt.find("word9"), std::string::npos);
  EXPECT_EQ(prompt.find("word10 "), std::string::npos);
}

TEST(PromptBuilderTest, ContextLastWhenConfigured) {
  PromptBuilder::Options opts;
  opts.context_first = false;
  PromptBuilder builder(opts);
  RetrievedChunk chunk;
  chunk.text = "context text";
  const std::string prompt = builder.Build("query", {chunk});
  EXPECT_GT(prompt.find("context text"), prompt.find("Question:"));
}

TEST(RagPipelineTest, EndToEndUploadRetrievePrompt) {
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  auto pipeline = RagPipeline::Create(db, embedder, "s1");
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ((*pipeline)->collection_name(), "session-s1");
  ASSERT_TRUE(db->GetCollection("session-s1").ok());

  auto chunks = (*pipeline)->Upload(
      "notes", "The veltrite mineral turns crimson when heated above 400C.");
  ASSERT_TRUE(chunks.ok());
  auto prompt =
      (*pipeline)->BuildPrompt("what color does veltrite turn when heated");
  ASSERT_TRUE(prompt.ok());
  EXPECT_NE(prompt->find("crimson"), std::string::npos);
  EXPECT_NE(prompt->find("Question:"), std::string::npos);
}

TEST(RagPipelineTest, NoDocumentsMeansBarePrompt) {
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  auto pipeline = RagPipeline::Create(db, embedder, "s2");
  ASSERT_TRUE(pipeline.ok());
  auto prompt = (*pipeline)->BuildPrompt("anything at all");
  ASSERT_TRUE(prompt.ok());
  EXPECT_EQ(*prompt, "Question: anything at all");
}

TEST(RagPipelineTest, IrrelevantChunksFilteredByMinScore) {
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  RagPipeline::Options opts;
  opts.min_score = 0.5;  // strict
  auto pipeline = RagPipeline::Create(db, embedder, "s3", opts);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Upload("doc", "Bananas are yellow fruit.").ok());
  auto chunks = (*pipeline)->Retrieve("quantum chromodynamics lattice gauge");
  ASSERT_TRUE(chunks.ok());
  EXPECT_TRUE(chunks->empty());
}

TEST(RagPipelineTest, ExpireDropsCollection) {
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  auto pipeline = RagPipeline::Create(db, embedder, "s4");
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Expire().ok());
  EXPECT_TRUE(db->GetCollection("session-s4").status().IsNotFound());
}

TEST(RagPipelineTest, RejectsEmptySessionId) {
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  EXPECT_TRUE(
      RagPipeline::Create(db, embedder, "").status().IsInvalidArgument());
}

}  // namespace
}  // namespace llmms::rag
