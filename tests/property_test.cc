// Property-style sweeps over randomized (but seeded, reproducible) inputs:
// round-trip laws, metric bounds, and structural invariants that must hold
// for every input, not just the hand-picked cases in the unit suites.

#include <gtest/gtest.h>

#include "llmms/common/json.h"
#include "llmms/common/rng.h"
#include "llmms/common/string_util.h"
#include "llmms/core/scoring.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/rag/chunker.h"
#include "llmms/session/session.h"
#include "llmms/session/summarizer.h"
#include "llmms/tokenizer/bpe_tokenizer.h"
#include "llmms/tokenizer/word_tokenizer.h"
#include "llmms/vectordb/distance.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"

namespace llmms {
namespace {

std::string RandomText(Rng* rng, size_t max_words) {
  static const char* kWords[] = {"mineral", "crimson", "heated", "battle",
                                 "general", "capital", "river",  "word",
                                 "number", "sequence", "city",   "year"};
  const size_t n = static_cast<size_t>(rng->UniformInt(1, static_cast<int64_t>(max_words)));
  std::string text;
  for (size_t i = 0; i < n; ++i) {
    if (!text.empty()) text += ' ';
    text += kWords[rng->UniformInt(0, 11)];
    if (rng->Bernoulli(0.3)) text += std::to_string(rng->UniformInt(0, 99));
    if (rng->Bernoulli(0.15)) text += '.';
  }
  return text;
}

// ---------------------------------------------------------------- BPE laws
class BpeRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(BpeRoundTripTest, EncodeDecodeIsIdentityOnRandomText) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<std::string> corpus;
  for (int i = 0; i < 20; ++i) corpus.push_back(RandomText(&rng, 30));
  tokenizer::BpeTokenizer tok;
  tokenizer::BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 300 + GetParam() * 50;
  ASSERT_TRUE(tok.Train(corpus, opts).ok());
  for (int i = 0; i < 50; ++i) {
    const std::string text = RandomText(&rng, 40);
    EXPECT_EQ(tok.Decode(tok.Encode(text)), text) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpeRoundTripTest, ::testing::Range(1, 5));

// --------------------------------------------------------------- JSON laws
Json RandomJson(Rng* rng, int depth) {
  const int kind = static_cast<int>(rng->UniformInt(0, depth <= 0 ? 3 : 5));
  switch (kind) {
    case 0:
      return Json(nullptr);
    case 1:
      return Json(rng->Bernoulli(0.5));
    case 2:
      return rng->Bernoulli(0.5)
                 ? Json(rng->UniformInt(-1000000, 1000000))
                 : Json(rng->Uniform(-1e6, 1e6));
    case 3:
      return Json(RandomText(rng, 6) + "\"\\\n\t");
    case 4: {
      Json arr = Json::MakeArray();
      const int n = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth - 1));
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      const int n = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(rng->UniformInt(0, 9)),
                RandomJson(rng, depth - 1));
      }
      return obj;
    }
  }
}

class JsonRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTripTest, DumpParseIsIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  for (int i = 0; i < 100; ++i) {
    const Json value = RandomJson(&rng, 4);
    auto parsed = Json::Parse(value.Dump());
    ASSERT_TRUE(parsed.ok()) << value.Dump();
    EXPECT_EQ(*parsed, value) << value.Dump();
    // Pretty printing parses back to the same value too.
    auto pretty = Json::Parse(value.Dump(2));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest, ::testing::Range(1, 5));

// ------------------------------------------------------------ chunker laws
class ChunkerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChunkerPropertyTest, ChunksRespectBoundsAndCoverDocument) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1301);
  rag::Chunker::Options opts;
  opts.target_words = static_cast<size_t>(rng.UniformInt(15, 60));
  opts.max_words = opts.target_words + 30;
  opts.overlap_words = static_cast<size_t>(rng.UniformInt(0, 10));
  rag::Chunker chunker(opts);

  std::string document;
  const int sentences = static_cast<int>(rng.UniformInt(5, 60));
  for (int i = 0; i < sentences; ++i) {
    document += "Sentence " + std::to_string(i) + " " + RandomText(&rng, 12);
    if (document.back() != '.') document += '.';
    document += ' ';
  }

  const auto chunks = chunker.Chunk(document);
  ASSERT_FALSE(chunks.empty());
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].index, i);
    EXPECT_GT(chunks[i].num_words, 0u);
    EXPECT_EQ(chunks[i].num_words, SplitWhitespace(chunks[i].text).size());
  }
  // Every sentence marker appears in at least one chunk.
  for (int i = 0; i < sentences; ++i) {
    const std::string needle = "Sentence " + std::to_string(i) + " ";
    bool found = false;
    for (const auto& chunk : chunks) {
      found = found || chunk.text.find(needle) != std::string::npos;
    }
    EXPECT_TRUE(found) << "sentence " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkerPropertyTest, ::testing::Range(1, 6));

// --------------------------------------------------------- summarizer laws
class SummarizerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SummarizerPropertyTest, BudgetAlwaysRespectedWithinOneSentence) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337);
  session::Summarizer::Options opts;
  opts.max_words = static_cast<size_t>(rng.UniformInt(10, 60));
  session::Summarizer summarizer(opts);
  for (int trial = 0; trial < 20; ++trial) {
    std::string text;
    const int sentences = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < sentences; ++i) {
      text += RandomText(&rng, 14) + ". ";
    }
    const std::string summary = summarizer.Summarize(text);
    // Budget may be exceeded by at most the final sentence (greedy fill).
    EXPECT_LE(SplitWhitespace(summary).size(), opts.max_words + 16);
    // Summaries are substrings-of-sentences: every summary sentence must
    // occur verbatim in the input (extractive property).
    for (const auto& sentence : tokenizer::SplitSentences(summary)) {
      EXPECT_NE(text.find(sentence), std::string::npos) << sentence;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummarizerPropertyTest, ::testing::Range(1, 5));

// ----------------------------------------------------------------- F1 laws
TEST(F1PropertyTest, BoundsSymmetryAndIdentity) {
  Rng rng(4242);
  for (int i = 0; i < 200; ++i) {
    const std::string a = RandomText(&rng, 15);
    const std::string b = RandomText(&rng, 15);
    const double ab = core::TokenF1(a, b);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_NEAR(ab, core::TokenF1(b, a), 1e-12);
    EXPECT_NEAR(core::TokenF1(a, a), 1.0, 1e-12);
  }
}

TEST(RewardPropertyTest, GoldenAnswerBeatsEveryMisconception) {
  embedding::HashEmbedder embedder;
  eval::DatasetOptions opts;
  opts.questions_per_domain = 5;
  for (const auto& item : eval::GenerateDataset(opts)) {
    const double golden_reward = core::ComputeReward(
        embedder, item.golden, item.golden, item.correct, item.incorrect);
    for (const auto& wrong : item.incorrect) {
      const double wrong_reward = core::ComputeReward(
          embedder, wrong, item.golden, item.correct, item.incorrect);
      EXPECT_GT(golden_reward, wrong_reward) << item.id;
    }
  }
}

// --------------------------------------------------------------- HNSW laws
struct HnswLawParams {
  size_t M;
  size_t ef;
};

class HnswPropertyTest : public ::testing::TestWithParam<HnswLawParams> {};

TEST_P(HnswPropertyTest, ResultsSortedLiveAndWithinK) {
  const auto params = GetParam();
  Rng rng(99);
  vectordb::HnswIndex::Options opts;
  opts.M = params.M;
  opts.ef_search = params.ef;
  vectordb::HnswIndex index(8, vectordb::DistanceMetric::kCosine, opts);
  vectordb::FlatIndex flat(8, vectordb::DistanceMetric::kCosine);
  for (int i = 0; i < 300; ++i) {
    vectordb::Vector v(8);
    for (auto& x : v) x = static_cast<float>(rng.Normal());
    ASSERT_TRUE(index.Add(v).ok());
    ASSERT_TRUE(flat.Add(v).ok());
  }
  for (vectordb::SlotId s = 0; s < 300; s += 7) {
    ASSERT_TRUE(index.Remove(s).ok());
  }
  for (int q = 0; q < 20; ++q) {
    vectordb::Vector query(8);
    for (auto& x : query) x = static_cast<float>(rng.Normal());
    auto hits = index.Search(query, 12);
    ASSERT_TRUE(hits.ok());
    EXPECT_LE(hits->size(), 12u);
    for (size_t i = 0; i < hits->size(); ++i) {
      EXPECT_NE((*hits)[i].slot % 7, 0u) << "tombstoned slot returned";
      if (i > 0) {
        EXPECT_LE((*hits)[i - 1].distance, (*hits)[i].distance + 1e-12);
      }
      // Reported distance must equal the true distance to that vector.
      const auto* vec = index.GetVector((*hits)[i].slot);
      ASSERT_NE(vec, nullptr);
      EXPECT_NEAR((*hits)[i].distance,
                  vectordb::Distance(vectordb::DistanceMetric::kCosine, query,
                                     *vec),
                  1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, HnswPropertyTest,
    ::testing::Values(HnswLawParams{4, 16}, HnswLawParams{8, 32},
                      HnswLawParams{16, 64}, HnswLawParams{32, 128}));

// ------------------------------------------------------------ session laws
TEST(SessionPropertyTest, ContextNeverExceedsBudget) {
  Rng rng(777);
  session::Session::Options opts;
  opts.keep_recent = 4;
  opts.max_context_words = 50;
  session::Session session("p", opts);
  for (int i = 0; i < 40; ++i) {
    session.Append(i % 2 == 0 ? session::Role::kUser
                              : session::Role::kAssistant,
                   RandomText(&rng, 30));
    EXPECT_LE(SplitWhitespace(session.ContextText()).size(),
              opts.max_context_words);
    EXPECT_LE(session.RecentMessages().size(), opts.keep_recent);
  }
}

}  // namespace
}  // namespace llmms
