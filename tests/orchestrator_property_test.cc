// Cross-strategy orchestration invariants, swept over (algorithm x budget x
// chunk size) with parameterized gtest: every strategy must respect the
// budget, return the winner's own complete-at-selection response, never
// return a pruned winner, and be deterministic.

#include <gtest/gtest.h>

#include "llmms/core/hybrid.h"
#include "llmms/core/mab.h"
#include "llmms/core/oua.h"
#include "llmms/core/single.h"
#include "testutil.h"

namespace llmms::core {
namespace {

enum class Strategy { kOua, kMab, kHybrid, kSingle };

struct SweepParams {
  Strategy strategy;
  size_t budget;
  size_t chunk;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParams>& info) {
  const char* names[] = {"Oua", "Mab", "Hybrid", "Single"};
  return std::string(names[static_cast<int>(info.param.strategy)]) + "_b" +
         std::to_string(info.param.budget) + "_c" +
         std::to_string(info.param.chunk);
}

class OrchestratorSweepTest : public ::testing::TestWithParam<SweepParams> {
 protected:
  static void SetUpTestSuite() {
    world_ = new testutil::World(testutil::MakeWorld(3));
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  std::unique_ptr<Orchestrator> MakeOrchestrator() {
    const auto params = GetParam();
    switch (params.strategy) {
      case Strategy::kOua: {
        OuaOrchestrator::Config config;
        config.token_budget = params.budget;
        config.chunk_tokens = params.chunk;
        return std::make_unique<OuaOrchestrator>(
            world_->runtime.get(), world_->model_names, world_->embedder,
            config);
      }
      case Strategy::kMab: {
        MabOrchestrator::Config config;
        config.token_budget = params.budget;
        config.chunk_tokens = params.chunk;
        return std::make_unique<MabOrchestrator>(
            world_->runtime.get(), world_->model_names, world_->embedder,
            config);
      }
      case Strategy::kHybrid: {
        HybridOrchestrator::Config config;
        config.token_budget = params.budget;
        config.chunk_tokens = params.chunk;
        config.mab_chunk_tokens = params.chunk * 2;
        return std::make_unique<HybridOrchestrator>(
            world_->runtime.get(), world_->model_names, world_->embedder,
            config);
      }
      case Strategy::kSingle: {
        SingleModelOrchestrator::Config config;
        config.token_budget = params.budget;
        config.chunk_tokens = params.chunk;
        return std::make_unique<SingleModelOrchestrator>(
            world_->runtime.get(), world_->model_names[0], world_->embedder,
            config);
      }
    }
    return nullptr;
  }

  static testutil::World* world_;
};

testutil::World* OrchestratorSweepTest::world_ = nullptr;

TEST_P(OrchestratorSweepTest, CoreInvariantsHoldOnEveryQuestion) {
  auto orchestrator = MakeOrchestrator();
  for (size_t i = 0; i < 6 && i < world_->dataset.size(); ++i) {
    auto result = orchestrator->Run(world_->dataset[i].question);
    ASSERT_TRUE(result.ok());
    // 1. Budget is a hard cap on total tokens across all models.
    EXPECT_LE(result->total_tokens, GetParam().budget);
    // 2. Some answer is always produced (possibly empty only if the budget
    //    couldn't buy a single token for the winner).
    if (result->total_tokens >= world_->model_names.size()) {
      EXPECT_FALSE(result->answer.empty());
    }
    // 3. The winner exists in per_model, is not pruned, and the returned
    //    answer is exactly its response.
    ASSERT_TRUE(result->per_model.count(result->best_model) > 0);
    const auto& winner = result->per_model[result->best_model];
    EXPECT_FALSE(winner.pruned);
    EXPECT_EQ(result->answer, winner.response);
    EXPECT_EQ(result->answer_tokens, winner.tokens);
    // 4. Per-model token accounting sums to the total.
    size_t sum = 0;
    for (const auto& [model, outcome] : result->per_model) {
      sum += outcome.tokens;
    }
    EXPECT_EQ(sum, result->total_tokens);
    // 5. Trace ends with the final decision.
    ASSERT_FALSE(result->trace.empty());
    EXPECT_EQ(result->trace.back().action, "final");
    EXPECT_EQ(result->trace.back().model, result->best_model);
  }
}

TEST_P(OrchestratorSweepTest, DeterministicAcrossRepeats) {
  auto orchestrator = MakeOrchestrator();
  const auto& question = world_->dataset[1].question;
  auto a = orchestrator->Run(question);
  auto b = orchestrator->Run(question);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->best_model, b->best_model);
  EXPECT_EQ(a->answer, b->answer);
  EXPECT_EQ(a->total_tokens, b->total_tokens);
  EXPECT_EQ(a->rounds, b->rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrchestratorSweepTest,
    ::testing::Values(
        SweepParams{Strategy::kOua, 64, 4}, SweepParams{Strategy::kOua, 256, 8},
        SweepParams{Strategy::kOua, 2048, 16},
        SweepParams{Strategy::kMab, 64, 4}, SweepParams{Strategy::kMab, 256, 8},
        SweepParams{Strategy::kMab, 2048, 16},
        SweepParams{Strategy::kHybrid, 64, 4},
        SweepParams{Strategy::kHybrid, 256, 8},
        SweepParams{Strategy::kHybrid, 2048, 16},
        SweepParams{Strategy::kSingle, 64, 4},
        SweepParams{Strategy::kSingle, 256, 8},
        SweepParams{Strategy::kSingle, 2048, 16}),
    ParamName);

}  // namespace
}  // namespace llmms::core
