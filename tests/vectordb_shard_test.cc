// Property suite for the sharded / quantized vector-search path
// (DESIGN.md §15): sharding must never change results on the exact path,
// and the two-stage quantized path must clear per-overfetch recall floors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/vectordb/collection.h"
#include "llmms/vectordb/database.h"
#include "llmms/vectordb/durable_collection.h"
#include "llmms/vectordb/sharded_collection.h"

namespace llmms::vectordb {
namespace {

constexpr size_t kDim = 8;

Collection::Options FlatOptions(DistanceMetric metric = DistanceMetric::kCosine) {
  Collection::Options opts;
  opts.dimension = kDim;
  opts.metric = metric;
  opts.index_kind = IndexKind::kFlat;
  return opts;
}

VectorRecord MakeRecord(const std::string& id, Vector v) {
  VectorRecord r;
  r.id = id;
  r.vector = std::move(v);
  r.document = "doc-" + id;
  return r;
}

// Deterministic corpus with deliberate duplicate vectors: every fourth
// record reuses the previous vector, so duplicate-distance ties occur at
// every k and land on different shards (ids differ, so placement differs).
std::vector<VectorRecord> MakeCorpus(size_t n, uint64_t seed = 7) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  std::vector<VectorRecord> records;
  records.reserve(n);
  Vector previous(kDim, 0.5f);
  for (size_t i = 0; i < n; ++i) {
    Vector v(kDim);
    if (i % 4 == 3) {
      v = previous;
    } else {
      for (auto& x : v) x = dist(rng);
      previous = v;
    }
    records.push_back(MakeRecord("rec-" + std::to_string(i), std::move(v)));
  }
  return records;
}

// A fresh scratch directory per test, mirroring storage_chaos_test.
std::string FreshDir(const std::string& tag) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir() + "/vectordb_shard_" + tag +
                          "_" + std::to_string(counter++);
  std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

Vector MakeQuery(uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  Vector q(kDim);
  for (auto& x : q) x = dist(rng);
  return q;
}

// Exact equality — the sharded exact path promises byte-identical results,
// not merely approximately equal scores.
void ExpectIdenticalResults(const std::vector<QueryResult>& expected,
                            const std::vector<QueryResult>& actual,
                            const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].id, actual[i].id) << context << " at rank " << i;
    EXPECT_EQ(expected[i].score, actual[i].score)
        << context << " at rank " << i;
    EXPECT_EQ(expected[i].document, actual[i].document)
        << context << " at rank " << i;
  }
}

TEST(ShardedCollectionTest, ShardForIsStableAndInRange) {
  for (size_t shards : {1u, 2u, 7u, 16u}) {
    for (int i = 0; i < 100; ++i) {
      const std::string id = "id-" + std::to_string(i);
      const size_t s = ShardedCollection::ShardFor(id, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardedCollection::ShardFor(id, shards));
    }
  }
  EXPECT_EQ(ShardedCollection::ShardFor("anything", 1), 0u);
}

TEST(ShardedCollectionTest, PartitionCoversEveryShard) {
  ShardedCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 7;
  ShardedCollection sharded("c", opts);
  for (auto& r : MakeCorpus(300)) {
    ASSERT_TRUE(sharded.Upsert(std::move(r)).ok());
  }
  EXPECT_EQ(sharded.size(), 300u);
  size_t total = 0;
  for (size_t i = 0; i < sharded.num_shards(); ++i) {
    EXPECT_GT(sharded.shard(i)->size(), 0u) << "empty shard " << i;
    total += sharded.shard(i)->size();
  }
  EXPECT_EQ(total, 300u);
}

// The tentpole property: for every (k, shard-count) combination — including
// k far above the per-shard record counts and duplicate-distance ties — the
// sharded top-k equals the single-collection top-k exactly.
TEST(ShardedCollectionTest, ShardedTopKMatchesSingleShardExactly) {
  for (DistanceMetric metric :
       {DistanceMetric::kCosine, DistanceMetric::kL2,
        DistanceMetric::kInnerProduct}) {
    const auto corpus = MakeCorpus(300);
    Collection reference("ref", FlatOptions(metric));
    for (const auto& r : corpus) {
      ASSERT_TRUE(reference.Upsert(r).ok());
    }
    for (size_t shards : {1u, 2u, 7u, 16u}) {
      ShardedCollection::Options opts;
      opts.collection = FlatOptions(metric);
      opts.num_shards = shards;
      ShardedCollection sharded("c", opts);
      for (const auto& r : corpus) {
        ASSERT_TRUE(sharded.Upsert(r).ok());
      }
      for (size_t k : {1u, 10u, 100u}) {
        for (uint64_t qseed = 0; qseed < 5; ++qseed) {
          const Vector q = MakeQuery(1000 + qseed);
          auto expected = reference.Query(q, k);
          auto actual = sharded.Query(q, k);
          ASSERT_TRUE(expected.ok());
          ASSERT_TRUE(actual.ok());
          ExpectIdenticalResults(
              *expected, *actual,
              "metric=" + std::to_string(static_cast<int>(metric)) +
                  " shards=" + std::to_string(shards) +
                  " k=" + std::to_string(k) +
                  " q=" + std::to_string(qseed));
        }
      }
    }
  }
}

// k greater than the whole corpus: every shard is asked for more than it
// holds and the merge must return all records, still in global order.
TEST(ShardedCollectionTest, KBeyondCorpusReturnsEverythingInOrder) {
  const auto corpus = MakeCorpus(12);
  Collection reference("ref", FlatOptions());
  ShardedCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 16;  // more shards than records: some shards are empty
  ShardedCollection sharded("c", opts);
  for (const auto& r : corpus) {
    ASSERT_TRUE(reference.Upsert(r).ok());
    ASSERT_TRUE(sharded.Upsert(r).ok());
  }
  const Vector q = MakeQuery(42);
  auto expected = reference.Query(q, 100);
  auto actual = sharded.Query(q, 100);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual->size(), 12u);
  ExpectIdenticalResults(*expected, *actual, "k>corpus");
}

// All-duplicate corpus: every distance ties, so ordering is decided purely
// by the id tie-break and must not depend on the sharding.
TEST(ShardedCollectionTest, DuplicateDistanceTiesBreakById) {
  Collection reference("ref", FlatOptions());
  ShardedCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 7;
  ShardedCollection sharded("c", opts);
  const Vector same = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 40; ++i) {
    auto r = MakeRecord("tie-" + std::to_string(i), same);
    ASSERT_TRUE(reference.Upsert(r).ok());
    ASSERT_TRUE(sharded.Upsert(std::move(r)).ok());
  }
  auto expected = reference.Query(MakeQuery(3), 10);
  auto actual = sharded.Query(MakeQuery(3), 10);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ExpectIdenticalResults(*expected, *actual, "all-ties");
  // Ties sort by id ascending — the documented total order.
  for (size_t i = 1; i < actual->size(); ++i) {
    EXPECT_LT((*actual)[i - 1].id, (*actual)[i].id);
  }
}

// Deletes and replacing upserts must keep the sharded view equal to the
// reference view.
TEST(ShardedCollectionTest, MutationsPreserveEquivalence) {
  auto corpus = MakeCorpus(120);
  Collection reference("ref", FlatOptions());
  ShardedCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 7;
  ShardedCollection sharded("c", opts);
  for (const auto& r : corpus) {
    ASSERT_TRUE(reference.Upsert(r).ok());
    ASSERT_TRUE(sharded.Upsert(r).ok());
  }
  for (size_t i = 0; i < corpus.size(); i += 3) {
    ASSERT_TRUE(reference.Delete(corpus[i].id).ok());
    ASSERT_TRUE(sharded.Delete(corpus[i].id).ok());
  }
  for (size_t i = 1; i < corpus.size(); i += 5) {
    auto replaced = MakeRecord(corpus[i].id, MakeQuery(9000 + i));
    ASSERT_TRUE(reference.Upsert(replaced).ok());
    ASSERT_TRUE(sharded.Upsert(replaced).ok());
  }
  EXPECT_EQ(reference.size(), sharded.size());
  auto expected = reference.Query(MakeQuery(5), 20);
  auto actual = sharded.Query(MakeQuery(5), 20);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ExpectIdenticalResults(*expected, *actual, "after mutations");
  EXPECT_TRUE(sharded.Get("rec-0").status().IsNotFound());
  EXPECT_FALSE(sharded.Contains("rec-0"));
  EXPECT_TRUE(sharded.Contains("rec-1"));
}

TEST(MergeShardResultsTest, MergesSortedListsUnderTotalOrder) {
  auto mk = [](const std::string& id, double score) {
    QueryResult r;
    r.id = id;
    r.score = score;
    return r;
  };
  // Per-shard lists already sorted by (score desc, id asc).
  std::vector<std::vector<QueryResult>> per_shard = {
      {mk("a", 0.9), mk("d", 0.5)},
      {},
      {mk("b", 0.9), mk("c", 0.7), mk("e", 0.5)},
  };
  auto merged = MergeShardResults(per_shard, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, "a");  // ties at 0.9 break by id
  EXPECT_EQ(merged[1].id, "b");
  EXPECT_EQ(merged[2].id, "c");
  EXPECT_EQ(merged[3].id, "d");  // ties at 0.5 break by id

  EXPECT_TRUE(MergeShardResults({}, 5).empty());
  EXPECT_TRUE(MergeShardResults({{}, {}}, 5).empty());
  auto all = MergeShardResults(per_shard, 100);
  EXPECT_EQ(all.size(), 5u);
}

// The opt-in criterion: one shard + quantization off must reproduce the
// plain Collection path exactly — same ids, bit-identical scores.
TEST(ShardedCollectionTest, SingleShardUnquantizedIsByteForByteIdentical) {
  const auto corpus = MakeCorpus(150);
  Collection plain("plain", FlatOptions());
  ShardedCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 1;
  ShardedCollection sharded("c", opts);
  ASSERT_FALSE(opts.collection.quantization.enabled);
  for (const auto& r : corpus) {
    ASSERT_TRUE(plain.Upsert(r).ok());
    ASSERT_TRUE(sharded.Upsert(r).ok());
  }
  EXPECT_FALSE(sharded.shard(0)->quantized());
  for (size_t k : {1u, 7u, 50u}) {
    for (uint64_t qseed = 0; qseed < 10; ++qseed) {
      const Vector q = MakeQuery(2000 + qseed);
      auto expected = plain.Query(q, k);
      auto actual = sharded.Query(q, k);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok());
      ASSERT_EQ(expected->size(), actual->size());
      for (size_t i = 0; i < expected->size(); ++i) {
        EXPECT_EQ((*expected)[i].id, (*actual)[i].id);
        // Bit-identical, not approximately equal.
        EXPECT_EQ(std::memcmp(&(*expected)[i].score, &(*actual)[i].score,
                              sizeof(double)),
                  0);
      }
    }
  }
}

double RecallAt10(const std::vector<QueryResult>& truth,
                  const std::vector<QueryResult>& got) {
  std::set<std::string> expected;
  for (const auto& r : truth) expected.insert(r.id);
  size_t hit = 0;
  for (const auto& r : got) hit += expected.count(r.id);
  return truth.empty() ? 1.0 : static_cast<double>(hit) / truth.size();
}

// Two-stage quantized retrieval: recall@10 against the exact path must
// clear a floor that rises with the overfetch factor.
TEST(ShardedCollectionTest, QuantizedRerankClearsRecallFloors) {
  Collection::Options exact_opts;
  exact_opts.dimension = 16;
  exact_opts.metric = DistanceMetric::kCosine;
  exact_opts.index_kind = IndexKind::kFlat;

  Collection exact("exact", exact_opts);
  Collection::Options qopts = exact_opts;
  qopts.quantization.enabled = true;
  qopts.quantization.train_size = 256;
  Collection quantized("quant", qopts);

  std::mt19937_64 rng(11);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (int i = 0; i < 2000; ++i) {
    Vector v(16);
    for (auto& x : v) x = dist(rng);
    auto r = MakeRecord("q-" + std::to_string(i), std::move(v));
    ASSERT_TRUE(exact.Upsert(r).ok());
    ASSERT_TRUE(quantized.Upsert(std::move(r)).ok());
  }
  ASSERT_TRUE(quantized.quantized());

  const struct {
    size_t overfetch;
    double floor;
  } kFloors[] = {{1, 0.45}, {2, 0.60}, {4, 0.75}, {8, 0.85}, {16, 0.90}};

  double previous = 0.0;
  for (const auto& [overfetch, floor] : kFloors) {
    quantized.set_quantization_overfetch(overfetch);
    double total = 0.0;
    constexpr int kQueries = 20;
    for (int qi = 0; qi < kQueries; ++qi) {
      Vector q(16);
      for (auto& x : q) x = dist(rng);
      auto truth = exact.Query(q, 10);
      auto got = quantized.Query(q, 10);
      ASSERT_TRUE(truth.ok());
      ASSERT_TRUE(got.ok());
      total += RecallAt10(*truth, *got);
    }
    const double recall = total / kQueries;
    EXPECT_GE(recall, floor) << "overfetch=" << overfetch;
    // Larger candidate sets must not lose recall (small epsilon: queries
    // are regenerated per sweep, but the generator sequence is fixed).
    EXPECT_GE(recall, previous - 0.05) << "overfetch=" << overfetch;
    previous = recall;
  }
}

// The same floors hold when quantization runs inside a sharded collection
// (each shard trains its own quantizer).
TEST(ShardedCollectionTest, ShardedQuantizedRecall) {
  Collection::Options exact_opts;
  exact_opts.dimension = 16;
  exact_opts.metric = DistanceMetric::kCosine;
  exact_opts.index_kind = IndexKind::kFlat;
  Collection exact("exact", exact_opts);

  ShardedCollection::Options sopts;
  sopts.collection = exact_opts;
  sopts.collection.quantization.enabled = true;
  sopts.collection.quantization.train_size = 64;
  sopts.collection.quantization.overfetch = 8;
  sopts.num_shards = 4;
  ShardedCollection sharded("c", sopts);

  std::mt19937_64 rng(13);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (int i = 0; i < 1200; ++i) {
    Vector v(16);
    for (auto& x : v) x = dist(rng);
    auto r = MakeRecord("s-" + std::to_string(i), std::move(v));
    ASSERT_TRUE(exact.Upsert(r).ok());
    ASSERT_TRUE(sharded.Upsert(std::move(r)).ok());
  }
  double total = 0.0;
  constexpr int kQueries = 20;
  for (int qi = 0; qi < kQueries; ++qi) {
    Vector q(16);
    for (auto& x : q) x = dist(rng);
    auto truth = exact.Query(q, 10);
    auto got = sharded.Query(q, 10);
    ASSERT_TRUE(truth.ok());
    ASSERT_TRUE(got.ok());
    total += RecallAt10(*truth, *got);
  }
  EXPECT_GE(total / kQueries, 0.85);
}

TEST(ShardedCollectionTest, StatsReportPerShardGauges) {
  ShardedCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 4;
  ShardedCollection sharded("c", opts);
  for (auto& r : MakeCorpus(100)) {
    ASSERT_TRUE(sharded.Upsert(std::move(r)).ok());
  }
  ASSERT_TRUE(sharded.Query(MakeQuery(1), 5).ok());
  ASSERT_TRUE(sharded.Query(MakeQuery(2), 5).ok());
  const auto stats = sharded.Stats();
  ASSERT_EQ(stats.size(), 4u);
  size_t records = 0;
  uint64_t queries = 0;
  for (const auto& s : stats) {
    records += s.records;
    queries += s.queries;
    EXPECT_GT(s.vector_bytes, 0u);
    EXPECT_FALSE(s.quantized);
  }
  EXPECT_EQ(records, 100u);
  EXPECT_EQ(queries, 8u);  // 2 queries fanned out over 4 shards
}

TEST(VectorDatabaseShardTest, RegistryAndSnapshotRoundTrip) {
  auto db = std::make_unique<VectorDatabase>();
  ShardedCollection::Options sopts;
  sopts.collection = FlatOptions();
  sopts.num_shards = 3;
  auto sharded = db->CreateShardedCollection("big", sopts);
  ASSERT_TRUE(sharded.ok());
  // One namespace across plain and sharded.
  EXPECT_TRUE(db->CreateCollection("big", FlatOptions())
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(db->CreateShardedCollection("big", sopts)
                  .status()
                  .IsAlreadyExists());
  ASSERT_TRUE(db->CreateCollection("small", FlatOptions()).ok());
  EXPECT_EQ(db->collection_count(), 2u);

  const auto corpus = MakeCorpus(90);
  for (const auto& r : corpus) {
    ASSERT_TRUE((*sharded)->Upsert(r).ok());
  }

  const std::string path = ::testing::TempDir() + "/vdb_sharded.bin";
  ASSERT_TRUE(db->Save(path).ok());
  auto loaded = VectorDatabase::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->collection_count(), 2u);
  auto reloaded = (*loaded)->GetShardedCollection("big");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->num_shards(), 3u);
  EXPECT_EQ((*reloaded)->size(), 90u);
  // Re-partitioning is deterministic: per-shard contents match.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*reloaded)->shard(i)->size(), (*sharded)->shard(i)->size());
  }
  const Vector q = MakeQuery(77);
  auto expected = (*sharded)->Query(q, 10);
  auto actual = (*reloaded)->Query(q, 10);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ExpectIdenticalResults(*expected, *actual, "snapshot round-trip");
  std::remove(path.c_str());
}

TEST(ShardedDurableCollectionTest, ReopenRecoversAcrossShards) {
  RealFileSystem fs;
  const std::string dir = FreshDir("reopen");
  ShardedDurableCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 3;

  const auto corpus = MakeCorpus(60);
  {
    auto db = ShardedDurableCollection::Open("c", dir, opts, nullptr, &fs);
    ASSERT_TRUE(db.ok());
    for (const auto& r : corpus) {
      ASSERT_TRUE((*db)->Upsert(r).ok());
    }
    ASSERT_TRUE((*db)->Delete(corpus[0].id).ok());
    ASSERT_TRUE((*db)->Sync().ok());
  }
  ShardedDurableCollection::OpenStats stats;
  auto reopened = ShardedDurableCollection::Open("c", dir, opts, &stats, &fs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(stats.num_shards, 3u);
  EXPECT_EQ(stats.replayed_upserts, 60u);
  EXPECT_EQ(stats.replayed_deletes, 1u);
  EXPECT_EQ((*reopened)->size(), 59u);
  EXPECT_FALSE((*reopened)->Contains(corpus[0].id));
  EXPECT_TRUE((*reopened)->Contains(corpus[1].id));
}

TEST(ShardedDurableCollectionTest, ManifestPinsShardCount) {
  RealFileSystem fs;
  const std::string dir = FreshDir("manifest");
  ShardedDurableCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 4;
  {
    auto db = ShardedDurableCollection::Open("c", dir, opts, nullptr, &fs);
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->num_shards(), 4u);
  }
  // Reopening with a different configured count keeps the manifest's.
  opts.num_shards = 16;
  ShardedDurableCollection::OpenStats stats;
  auto reopened = ShardedDurableCollection::Open("c", dir, opts, &stats, &fs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_shards(), 4u);
  // Incompatible geometry is refused outright.
  opts.collection.dimension = kDim * 2;
  EXPECT_TRUE(ShardedDurableCollection::Open("c", dir, opts, nullptr, &fs)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ShardedDurableCollectionTest, CheckpointSwapsGenerationAndSweepsOld) {
  RealFileSystem fs;
  const std::string dir = FreshDir("checkpoint");
  ShardedDurableCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 2;
  auto db = ShardedDurableCollection::Open("c", dir, opts, nullptr, &fs);
  ASSERT_TRUE(db.ok());
  const auto corpus = MakeCorpus(40);
  for (const auto& r : corpus) {
    ASSERT_TRUE((*db)->Upsert(r).ok());
  }
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*db)->Delete(corpus[i].id).ok());
  }
  EXPECT_EQ((*db)->generation(), 1u);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_EQ((*db)->generation(), 2u);
  EXPECT_EQ((*db)->size(), 30u);
  // Old-generation files are gone; the new generation is live.
  auto entries = fs.List(dir);
  ASSERT_TRUE(entries.ok());
  for (const auto& e : *entries) {
    EXPECT_EQ(e.find(".g1."), std::string::npos) << e;
  }
  // Mutations keep flowing after the swap, and a reopen replays compacted
  // logs only.
  ASSERT_TRUE((*db)->Upsert(corpus[0]).ok());
  ASSERT_TRUE((*db)->Sync().ok());
  ShardedDurableCollection::OpenStats stats;
  auto reopened = ShardedDurableCollection::Open("c", dir, opts, &stats, &fs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ((*reopened)->size(), 31u);
  EXPECT_EQ(stats.replayed_deletes, 0u);  // compaction dropped the deletes
}

TEST(ShardedDurableCollectionTest, OpenSweepsOrphanShardFiles) {
  RealFileSystem fs;
  const std::string dir = FreshDir("orphans");
  ShardedDurableCollection::Options opts;
  opts.collection = FlatOptions();
  opts.num_shards = 2;
  {
    auto db = ShardedDurableCollection::Open("c", dir, opts, nullptr, &fs);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Upsert(MakeRecord("a", Vector(kDim, 1.0f))).ok());
    ASSERT_TRUE((*db)->Sync().ok());
  }
  // Plant orphans from a hypothetical crashed checkpoint.
  ASSERT_TRUE(AtomicWriteFile(&fs, dir + "/shard-0.g9.wal", "junk").ok());
  ASSERT_TRUE(AtomicWriteFile(&fs, dir + "/shard-1.g9.wal", "junk").ok());
  ShardedDurableCollection::OpenStats stats;
  auto reopened = ShardedDurableCollection::Open("c", dir, opts, &stats, &fs);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(stats.orphan_files_removed, 2u);
  EXPECT_FALSE(fs.Exists(dir + "/shard-0.g9.wal"));
  EXPECT_FALSE(fs.Exists(dir + "/shard-1.g9.wal"));
  EXPECT_EQ((*reopened)->size(), 1u);
}

}  // namespace
}  // namespace llmms::vectordb
