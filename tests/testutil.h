#ifndef LLMMS_TESTS_TESTUTIL_H_
#define LLMMS_TESTS_TESTUTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/embedding/hash_embedder.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/hardware/placement.h"
#include "llmms/llm/knowledge.h"
#include "llmms/llm/model_profile.h"
#include "llmms/llm/registry.h"
#include "llmms/llm/runtime.h"
#include "llmms/llm/synthetic_model.h"

namespace llmms::testutil {

// A fully wired miniature platform: embedder, synthetic world, the three
// default models registered and loaded on a simulated V100. Shared by the
// orchestrator, engine, and eval tests.
struct World {
  std::shared_ptr<const embedding::Embedder> embedder;
  std::shared_ptr<llm::KnowledgeBase> knowledge;
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::vector<llm::QaItem> dataset;
  std::vector<std::string> model_names;
};

inline World MakeWorld(size_t questions_per_domain = 4,
                       uint64_t seed = 0x7A9E11ULL) {
  World world;
  world.embedder = std::make_shared<embedding::HashEmbedder>();

  eval::DatasetOptions dataset_options;
  dataset_options.questions_per_domain = questions_per_domain;
  dataset_options.seed = seed;
  world.dataset = eval::GenerateDataset(dataset_options);

  auto knowledge = std::make_shared<llm::KnowledgeBase>(world.embedder);
  auto status = knowledge->AddAll(world.dataset);
  if (!status.ok()) std::abort();
  world.knowledge = knowledge;

  world.registry = std::make_shared<llm::ModelRegistry>();
  for (const auto& profile : llm::DefaultProfiles()) {
    world.model_names.push_back(profile.name);
    status = world.registry->Register(
        std::make_shared<llm::SyntheticModel>(profile, knowledge));
    if (!status.ok()) std::abort();
  }

  hardware::DeviceSpec v100;
  v100.name = "tesla-v100-0";
  v100.kind = hardware::DeviceKind::kGpu;
  v100.memory_mb = 32 * 1024;
  v100.throughput_factor = 1.0;
  world.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{v100});

  world.runtime = std::make_unique<llm::ModelRuntime>(
      world.registry, world.hardware, /*num_threads=*/4);
  for (const auto& name : world.model_names) {
    status = world.runtime->LoadModel(name);
    if (!status.ok()) std::abort();
  }
  return world;
}

}  // namespace llmms::testutil

#endif  // LLMMS_TESTS_TESTUTIL_H_
