#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <unordered_set>

#include "llmms/common/rng.h"
#include "llmms/vectordb/distance.h"
#include "llmms/vectordb/flat_index.h"
#include "llmms/vectordb/hnsw_index.h"

namespace llmms::vectordb {
namespace {

Vector RandomUnitVector(Rng* rng, size_t dim) {
  Vector v(dim);
  double norm_sq = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(rng->Normal());
    norm_sq += static_cast<double>(x) * x;
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (auto& x : v) x *= inv;
  return v;
}

TEST(DistanceTest, CosineDistanceProperties) {
  Vector a{1.0f, 0.0f};
  Vector b{0.0f, 1.0f};
  EXPECT_NEAR(Distance(DistanceMetric::kCosine, a, a), 0.0, 1e-6);
  EXPECT_NEAR(Distance(DistanceMetric::kCosine, a, b), 1.0, 1e-6);
  Vector zero{0.0f, 0.0f};
  EXPECT_NEAR(Distance(DistanceMetric::kCosine, a, zero), 1.0, 1e-6);
}

TEST(DistanceTest, L2AndInnerProduct) {
  Vector a{1.0f, 2.0f};
  Vector b{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Distance(DistanceMetric::kL2, a, b), 8.0);
  EXPECT_DOUBLE_EQ(Distance(DistanceMetric::kInnerProduct, a, b), -11.0);
}

TEST(DistanceTest, SimilarityInversion) {
  EXPECT_DOUBLE_EQ(SimilarityFromDistance(DistanceMetric::kCosine, 0.25), 0.75);
  EXPECT_DOUBLE_EQ(SimilarityFromDistance(DistanceMetric::kL2, 9.0), -3.0);
  EXPECT_DOUBLE_EQ(SimilarityFromDistance(DistanceMetric::kInnerProduct, -5.0),
                   5.0);
}

TEST(DistanceTest, MetricNames) {
  EXPECT_STREQ(DistanceMetricToString(DistanceMetric::kCosine), "cosine");
  EXPECT_STREQ(DistanceMetricToString(DistanceMetric::kL2), "l2");
  EXPECT_STREQ(DistanceMetricToString(DistanceMetric::kInnerProduct), "ip");
}

TEST(FlatIndexTest, AddSearchExactOrder) {
  FlatIndex index(2, DistanceMetric::kL2);
  ASSERT_TRUE(index.Add({0.0f, 0.0f}).ok());
  ASSERT_TRUE(index.Add({1.0f, 0.0f}).ok());
  ASSERT_TRUE(index.Add({5.0f, 0.0f}).ok());
  auto hits = index.Search({0.2f, 0.0f}, 3);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 3u);
  EXPECT_EQ((*hits)[0].slot, 0u);
  EXPECT_EQ((*hits)[1].slot, 1u);
  EXPECT_EQ((*hits)[2].slot, 2u);
}

TEST(FlatIndexTest, DimensionMismatchRejected) {
  FlatIndex index(3, DistanceMetric::kCosine);
  EXPECT_TRUE(index.Add({1.0f, 2.0f}).status().IsInvalidArgument());
  ASSERT_TRUE(index.Add({1.0f, 0.0f, 0.0f}).ok());
  EXPECT_TRUE(index.Search({1.0f}, 1).status().IsInvalidArgument());
}

TEST(FlatIndexTest, RemoveHidesFromResults) {
  FlatIndex index(1, DistanceMetric::kL2);
  ASSERT_TRUE(index.Add({1.0f}).ok());
  ASSERT_TRUE(index.Add({2.0f}).ok());
  EXPECT_EQ(index.size(), 2u);
  ASSERT_TRUE(index.Remove(0).ok());
  EXPECT_EQ(index.size(), 1u);
  auto hits = index.Search({1.0f}, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].slot, 1u);
  EXPECT_EQ(index.GetVector(0), nullptr);
  // Removing twice is idempotent; out-of-range fails.
  EXPECT_TRUE(index.Remove(0).ok());
  EXPECT_TRUE(index.Remove(99).IsNotFound());
}

TEST(FlatIndexTest, KLargerThanSize) {
  FlatIndex index(1, DistanceMetric::kL2);
  ASSERT_TRUE(index.Add({1.0f}).ok());
  auto hits = index.Search({0.0f}, 100);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST(HnswIndexTest, ExactOnTinySets) {
  HnswIndex index(2, DistanceMetric::kL2);
  ASSERT_TRUE(index.Add({0.0f, 0.0f}).ok());
  ASSERT_TRUE(index.Add({1.0f, 0.0f}).ok());
  ASSERT_TRUE(index.Add({0.0f, 3.0f}).ok());
  auto hits = index.Search({0.9f, 0.1f}, 2);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  EXPECT_EQ((*hits)[0].slot, 1u);
  EXPECT_EQ((*hits)[1].slot, 0u);
}

TEST(HnswIndexTest, EmptyIndexReturnsNothing) {
  HnswIndex index(4, DistanceMetric::kCosine);
  auto hits = index.Search({0.5f, 0.5f, 0.5f, 0.5f}, 3);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(HnswIndexTest, DimensionMismatchRejected) {
  HnswIndex index(4, DistanceMetric::kCosine);
  EXPECT_TRUE(index.Add({1.0f}).status().IsInvalidArgument());
}

TEST(HnswIndexTest, RemovedSlotsNeverReturned) {
  Rng rng(5);
  HnswIndex index(8, DistanceMetric::kCosine);
  std::vector<Vector> vectors;
  for (int i = 0; i < 200; ++i) {
    vectors.push_back(RandomUnitVector(&rng, 8));
    ASSERT_TRUE(index.Add(vectors.back()).ok());
  }
  std::unordered_set<SlotId> removed;
  for (SlotId s = 0; s < 200; s += 3) {
    ASSERT_TRUE(index.Remove(s).ok());
    removed.insert(s);
  }
  EXPECT_EQ(index.size(), 200u - removed.size());
  for (int q = 0; q < 20; ++q) {
    auto hits = index.Search(RandomUnitVector(&rng, 8), 10);
    ASSERT_TRUE(hits.ok());
    for (const auto& hit : *hits) {
      EXPECT_EQ(removed.count(hit.slot), 0u);
    }
  }
}

TEST(HnswIndexTest, DeterministicForSameSeed) {
  Rng rng(11);
  std::vector<Vector> vectors;
  for (int i = 0; i < 100; ++i) vectors.push_back(RandomUnitVector(&rng, 8));

  HnswIndex a(8, DistanceMetric::kCosine);
  HnswIndex b(8, DistanceMetric::kCosine);
  for (const auto& v : vectors) {
    ASSERT_TRUE(a.Add(v).ok());
    ASSERT_TRUE(b.Add(v).ok());
  }
  const auto query = RandomUnitVector(&rng, 8);
  auto ha = a.Search(query, 5);
  auto hb = b.Search(query, 5);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  ASSERT_EQ(ha->size(), hb->size());
  for (size_t i = 0; i < ha->size(); ++i) {
    EXPECT_EQ((*ha)[i].slot, (*hb)[i].slot);
  }
}

// Recall property sweep: HNSW must find nearly everything brute force finds.
struct RecallParams {
  size_t dim;
  size_t n;
  DistanceMetric metric;
};

class HnswRecallTest : public ::testing::TestWithParam<RecallParams> {};

TEST_P(HnswRecallTest, RecallAtTenAboveNinetyPercent) {
  const auto params = GetParam();
  Rng rng(23);
  FlatIndex flat(params.dim, params.metric);
  HnswIndex hnsw(params.dim, params.metric);
  for (size_t i = 0; i < params.n; ++i) {
    const auto v = RandomUnitVector(&rng, params.dim);
    ASSERT_TRUE(flat.Add(v).ok());
    ASSERT_TRUE(hnsw.Add(v).ok());
  }
  const size_t k = 10;
  size_t found = 0;
  size_t expected = 0;
  for (int q = 0; q < 30; ++q) {
    const auto query = RandomUnitVector(&rng, params.dim);
    auto exact = flat.Search(query, k);
    auto approx = hnsw.Search(query, k);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    std::unordered_set<SlotId> truth;
    for (const auto& hit : *exact) truth.insert(hit.slot);
    expected += truth.size();
    for (const auto& hit : *approx) found += truth.count(hit.slot);
  }
  const double recall = static_cast<double>(found) / static_cast<double>(expected);
  EXPECT_GE(recall, 0.9) << "dim=" << params.dim << " n=" << params.n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HnswRecallTest,
    ::testing::Values(RecallParams{8, 200, DistanceMetric::kCosine},
                      RecallParams{16, 500, DistanceMetric::kCosine},
                      RecallParams{32, 1000, DistanceMetric::kCosine},
                      RecallParams{16, 500, DistanceMetric::kL2},
                      RecallParams{16, 500, DistanceMetric::kInnerProduct}));

}  // namespace
}  // namespace llmms::vectordb
