#include "llmms/core/router.h"

#include <gtest/gtest.h>

#include "llmms/core/feedback.h"
#include "testutil.h"

namespace llmms::core {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = testutil::MakeWorld(10);
    classifier_ = std::make_unique<IntentClassifier>(world_.embedder);
    // Train the intent detector with the benchmark questions themselves
    // (labels = domains) — the "semantic task index" bootstrap.
    for (const auto& item : world_.dataset) {
      ASSERT_TRUE(classifier_->AddExample(item.question, item.domain).ok());
    }
  }

  testutil::World world_;
  std::unique_ptr<IntentClassifier> classifier_;
  FeedbackStore feedback_;
  EloRatings ratings_;
};

TEST_F(RouterTest, ClassifierRecognizesDomains) {
  size_t correct = 0;
  for (const auto& item : world_.dataset) {
    auto prediction = classifier_->Classify(item.question);
    ASSERT_TRUE(prediction.ok());
    correct += prediction->label == item.domain ? 1 : 0;
  }
  // Training items themselves must classify almost perfectly.
  EXPECT_GT(static_cast<double>(correct) / world_.dataset.size(), 0.9);
}

TEST_F(RouterTest, ClassifierValidatesInput) {
  IntentClassifier fresh(world_.embedder);
  EXPECT_TRUE(fresh.Classify("anything").status().IsFailedPrecondition());
  EXPECT_TRUE(fresh.AddExample("", "label").IsInvalidArgument());
  EXPECT_TRUE(fresh.AddExample("text", "").IsInvalidArgument());
}

TEST_F(RouterTest, ClassifierLabelsSorted) {
  const auto labels = classifier_->Labels();
  EXPECT_EQ(labels.size(), llm::CanonicalDomains().size());
  EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
  EXPECT_EQ(classifier_->example_count(), world_.dataset.size());
}

TEST_F(RouterTest, FeedbackStoreAccumulates) {
  feedback_.Record("m1", "math", 0.8, true);
  feedback_.Record("m1", "math", 0.6, false);
  feedback_.Record("m2", "math", 0.2, false);
  const auto stats = feedback_.GetStats("m1", "math");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.MeanReward(), 0.7);
  EXPECT_DOUBLE_EQ(stats.WinRate(), 0.5);
  EXPECT_EQ(feedback_.DomainObservations("math"), 3u);
  EXPECT_EQ(feedback_.DomainObservations("logic"), 0u);
  EXPECT_EQ(feedback_.GetStats("m9", "math").count, 0u);
}

TEST_F(RouterTest, FeedbackRankingOrdersByMeanReward) {
  feedback_.Record("a", "math", 0.9, true);
  feedback_.Record("b", "math", 0.3, false);
  feedback_.Record("c", "math", 0.6, false);
  const auto ranked = feedback_.RankModels("math", {"a", "b", "c", "d"});
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0], "a");
  EXPECT_EQ(ranked[1], "c");
  EXPECT_EQ(ranked[2], "b");
  EXPECT_EQ(ranked[3], "d");  // never observed -> last
}

TEST_F(RouterTest, FeedbackJsonRoundTrip) {
  feedback_.Record("m1", "math", 0.8, true);
  feedback_.Record("m2", "logic", 0.4, false);
  const std::string json = feedback_.ToJson();
  auto loaded = FeedbackStore::FromJson(json);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ((*loaded)->GetStats("m1", "math").MeanReward(), 0.8);
  EXPECT_EQ((*loaded)->GetStats("m2", "logic").count, 1u);
  EXPECT_FALSE(FeedbackStore::FromJson("not json").ok());
  EXPECT_FALSE(FeedbackStore::FromJson("{\"version\": 99}").ok());
}

TEST_F(RouterTest, EloRatingsRewardWinners) {
  EloRatings elo;
  EXPECT_DOUBLE_EQ(elo.Rating("fresh"), 1000.0);
  for (int i = 0; i < 10; ++i) {
    elo.RecordOutcome("strong", {"weak1", "weak2"});
  }
  EXPECT_GT(elo.Rating("strong"), 1000.0);
  EXPECT_LT(elo.Rating("weak1"), 1000.0);
  const auto ranking = elo.Ranking();
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].first, "strong");
}

TEST_F(RouterTest, EloSelfWinIsNoop) {
  EloRatings elo;
  elo.RecordOutcome("solo", {"solo"});
  EXPECT_DOUBLE_EQ(elo.Rating("solo"), 1000.0);
}

TEST_F(RouterTest, RoutesToFullPoolBeforeWarmup) {
  RoutedOrchestrator::Config config;
  config.min_observations = 10;
  RoutedOrchestrator router(world_.runtime.get(), world_.model_names,
                            world_.embedder, classifier_.get(), &feedback_,
                            &ratings_, config);
  auto route = router.RouteFor(world_.dataset[0].question);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->size(), 3u);
}

TEST_F(RouterTest, RoutesToSpecialistsAfterWarmup) {
  RoutedOrchestrator::Config config;
  config.min_observations = 5;
  config.route_to = 1;
  RoutedOrchestrator router(world_.runtime.get(), world_.model_names,
                            world_.embedder, classifier_.get(), &feedback_,
                            &ratings_, config);

  // Warm up: run every math question through the router; it records
  // feedback under the predicted label each time.
  std::vector<const llm::QaItem*> math_items;
  for (const auto& item : world_.dataset) {
    if (item.domain == "math") math_items.push_back(&item);
  }
  ASSERT_GE(math_items.size(), 6u);
  for (const auto* item : math_items) {
    ASSERT_TRUE(router.Run(item->question).ok());
  }

  // After warmup the route for a math question is a single model, and it is
  // the feedback store's top math model.
  auto route = router.RouteFor(math_items[0]->question);
  ASSERT_TRUE(route.ok());
  ASSERT_EQ(route->size(), 1u);
  const auto ranked = feedback_.RankModels("math", world_.model_names);
  EXPECT_EQ(route->front(), ranked.front());

  // Routing saves tokens: the routed run touches one model only.
  auto result = router.Run(math_items[1]->question);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_model.size(), 1u);
}

TEST_F(RouterTest, SelfImprovementLoopUpdatesEloAndFeedback) {
  RoutedOrchestrator::Config config;
  RoutedOrchestrator router(world_.runtime.get(), world_.model_names,
                            world_.embedder, classifier_.get(), &feedback_,
                            &ratings_, config);
  ASSERT_TRUE(router.Run(world_.dataset[0].question).ok());
  const std::string domain = world_.dataset[0].domain;
  EXPECT_EQ(feedback_.DomainObservations(domain), 3u);  // all participants
  EXPECT_FALSE(ratings_.Ranking().empty());
}

TEST_F(RouterTest, EmptyPoolRejected) {
  RoutedOrchestrator router(world_.runtime.get(), {}, world_.embedder,
                            classifier_.get(), &feedback_, &ratings_, {});
  EXPECT_TRUE(router.Run("q").status().IsFailedPrecondition());
}

}  // namespace
}  // namespace llmms::core
