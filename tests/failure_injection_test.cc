// Failure injection: IO errors, resource exhaustion, degenerate inputs, and
// mid-flight misuse. Every failure must surface as a typed Status — never a
// crash, hang, or silent wrong answer.

#include <gtest/gtest.h>

#include "llmms/core/oua.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/llm/synthetic_model.h"
#include "llmms/tokenizer/bpe_tokenizer.h"
#include "llmms/vectordb/database.h"
#include "testutil.h"

namespace llmms {
namespace {

TEST(IoFailureTest, VectorDatabaseSaveToUnwritablePath) {
  vectordb::VectorDatabase db;
  EXPECT_TRUE(db.Save("/nonexistent-dir/sub/file.bin").IsIOError());
  EXPECT_TRUE(vectordb::VectorDatabase::Load("/nonexistent-dir/db.bin")
                  .status()
                  .IsIOError());
}

TEST(IoFailureTest, TokenizerSaveToUnwritablePath) {
  tokenizer::BpeTokenizer tok;
  EXPECT_TRUE(tok.Save("/nonexistent-dir/tok.txt").IsIOError());
}

TEST(IoFailureTest, DatasetSaveToUnwritablePath) {
  eval::DatasetOptions opts;
  opts.questions_per_domain = 1;
  const auto items = eval::GenerateDataset(opts);
  EXPECT_TRUE(
      eval::SaveDatasetJsonl(items, "/nonexistent-dir/d.jsonl").IsIOError());
}

TEST(IoFailureTest, TruncatedDatabaseFileRejected) {
  // Write a valid database, then truncate it at several byte offsets; every
  // truncation must be rejected cleanly.
  vectordb::VectorDatabase db;
  vectordb::Collection::Options copts;
  copts.dimension = 4;
  auto collection = db.CreateCollection("c", copts);
  ASSERT_TRUE(collection.ok());
  for (int i = 0; i < 5; ++i) {
    vectordb::VectorRecord record;
    record.id = "r" + std::to_string(i);
    record.vector = {1.0f, 0.0f, 0.0f, static_cast<float>(i)};
    record.metadata["k"] = "v";
    record.document = "doc";
    ASSERT_TRUE((*collection)->Upsert(std::move(record)).ok());
  }
  const std::string path = ::testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(db.Save(path).ok());

  std::string bytes;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    fclose(f);
  }
  ASSERT_GT(bytes.size(), 64u);
  for (size_t cut : {size_t{6}, size_t{20}, bytes.size() / 2,
                     bytes.size() - 3}) {
    const std::string truncated_path =
        ::testing::TempDir() + "/trunc_cut.bin";
    FILE* f = fopen(truncated_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(bytes.data(), 1, cut, f);
    fclose(f);
    auto loaded = vectordb::VectorDatabase::Load(truncated_path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
    std::remove(truncated_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(ResourceExhaustionTest, TinyGpuFallsBackThenExhausts) {
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  auto knowledge = std::make_shared<llm::KnowledgeBase>(embedder);
  auto registry = std::make_shared<llm::ModelRegistry>();
  for (const auto& profile : llm::DefaultProfiles()) {
    ASSERT_TRUE(
        registry->Register(std::make_shared<llm::SyntheticModel>(profile,
                                                                 knowledge))
            .ok());
  }
  // GPU too small for any model; CPU fallback holds two of three.
  hardware::DeviceSpec tiny_gpu;
  tiny_gpu.name = "tiny";
  tiny_gpu.kind = hardware::DeviceKind::kGpu;
  tiny_gpu.memory_mb = 1000;
  hardware::DeviceSpec cpu;
  cpu.name = "cpu";
  cpu.kind = hardware::DeviceKind::kCpu;
  cpu.memory_mb = 10000;  // fits two ~4.5GB models, not three
  auto hw = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{tiny_gpu, cpu});
  llm::ModelRuntime runtime(registry, hw, 2);

  ASSERT_TRUE(runtime.LoadModel("mistral:7b").ok());
  ASSERT_TRUE(runtime.LoadModel("qwen2:7b").ok());
  EXPECT_TRUE(runtime.LoadModel("llama3:8b").IsResourceExhausted());
  // Unloading frees capacity again.
  ASSERT_TRUE(runtime.UnloadModel("qwen2:7b").ok());
  EXPECT_TRUE(runtime.LoadModel("llama3:8b").ok());
}

TEST(DegenerateInputTest, ModelWithEmptyKnowledgeHedges) {
  auto embedder = std::make_shared<embedding::HashEmbedder>();
  auto empty_kb = std::make_shared<llm::KnowledgeBase>(embedder);
  llm::ModelProfile profile = llm::DefaultProfiles()[0];
  llm::SyntheticModel model(profile, empty_kb);
  llm::GenerationRequest request;
  request.prompt = "what is the capital of veldan";
  auto result = model.Generate(request);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->text.empty());
  EXPECT_EQ(result->stop_reason, llm::StopReason::kStop);
}

TEST(DegenerateInputTest, OrchestratorSurvivesNonsenseQuery) {
  auto world = testutil::MakeWorld(2);
  core::OuaOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, {});
  auto result = orchestrator.Run("qqq zzz blorp unknown entity xyzzy");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());  // hedged answers still returned
}

TEST(DegenerateInputTest, OrchestratorRejectsEmptyPrompt) {
  auto world = testutil::MakeWorld(2);
  core::OuaOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, {});
  EXPECT_FALSE(orchestrator.Run("").ok());
}

TEST(MisuseTest, GenerationWithUnloadedModelFailsAtomically) {
  auto world = testutil::MakeWorld(2);
  ASSERT_TRUE(world.runtime->UnloadModel("qwen2:7b").ok());
  llm::GenerationRequest request;
  request.prompt = world.dataset[0].question;
  // One of the requested models is missing: the whole start must fail.
  auto generation = world.runtime->StartGeneration(
      {"llama3:8b", "qwen2:7b"}, request);
  EXPECT_TRUE(generation.status().IsFailedPrecondition());
}

TEST(MisuseTest, RemovingRegisteredModelDoesNotBreakLoadedOne) {
  auto world = testutil::MakeWorld(2);
  // Loaded models hold their own reference; deregistering must not affect
  // in-flight service.
  ASSERT_TRUE(world.registry->Remove("mistral:7b").ok());
  llm::GenerationRequest request;
  request.prompt = world.dataset[0].question;
  auto result = world.runtime->Generate("mistral:7b", request);
  EXPECT_TRUE(result.ok());
}

TEST(MisuseTest, BudgetSmallerThanModelCountStillAnswers) {
  auto world = testutil::MakeWorld(2);
  core::OuaOrchestrator::Config config;
  config.token_budget = 2;  // less than one token per model
  config.chunk_tokens = 8;
  core::OuaOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, config);
  auto result = orchestrator.Run(world.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->total_tokens, 2u);
}

}  // namespace
}  // namespace llmms
