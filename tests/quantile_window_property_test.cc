// Property tests for QuantileWindow: the nearest-rank estimator is checked
// against a naive sort-based reference on randomized (but seeded, hence
// reproducible) sequences, the ring buffer is checked to hold exactly the
// last `capacity` samples, and Snapshot/Restore is checked to round-trip
// the window bit-for-bit — including the min_samples cold-start boundary a
// restored HedgedModel sketch must respect. The RewardFeed estimators
// (sliding window / exponential decay, DESIGN.md §16) are held to the same
// standard at the bottom of the file.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "llmms/common/quantile_window.h"
#include "llmms/common/rng.h"
#include "llmms/core/reward_feed.h"
#include "llmms/llm/hedged_model.h"
#include "llmms/llm/state_store.h"

namespace llmms {
namespace {

// The reference: sort the window and take the nearest-rank sample, i.e. the
// ceil(q*n)-th smallest (1-based), with q clamped into [0, 1].
double NaiveQuantile(std::vector<double> samples, double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp<size_t>(rank, 1, n);
  return samples[rank - 1];
}

// A latency-shaped sample: mostly small values with occasional spikes, the
// distribution hedging actually sees.
double LatencySample(Rng* rng) {
  if (rng->Bernoulli(0.1)) return rng->Uniform(50.0, 100.0);
  return rng->Uniform(0.0, 10.0);
}

const double kQGrid[] = {0.0,  0.01, 0.1, 0.25, 0.5,
                         0.75, 0.9,  0.95, 0.99, 1.0};

TEST(QuantileWindowPropertyTest, MatchesNaiveReferenceOnRandomSequences) {
  const size_t kCapacities[] = {1, 2, 3, 7, 16, 64};
  const uint64_t kSeeds[] = {1, 42, 0xBADC0FFEE};
  for (size_t capacity : kCapacities) {
    for (uint64_t seed : kSeeds) {
      Rng rng(seed);
      QuantileWindow window(capacity);
      std::deque<double> recent;  // the last `capacity` samples, oldest first
      for (int i = 0; i < 200; ++i) {
        const double value = LatencySample(&rng);
        window.Add(value);
        recent.push_back(value);
        if (recent.size() > capacity) recent.pop_front();
        const std::vector<double> reference(recent.begin(), recent.end());
        for (double q : kQGrid) {
          ASSERT_DOUBLE_EQ(window.Quantile(q), NaiveQuantile(reference, q))
              << "capacity=" << capacity << " seed=" << seed << " add=" << i
              << " q=" << q;
        }
      }
    }
  }
}

TEST(QuantileWindowPropertyTest, FullRankSweepRecoversTheSortedWindow) {
  // Querying q = (k+0.5)/n for every k must walk the sorted window exactly
  // — the strongest form of the nearest-rank contract (the midpoint avoids
  // the float-rounding ambiguity of exact rank boundaries).
  Rng rng(7);
  QuantileWindow window(48);
  std::vector<double> values;
  for (int i = 0; i < 48; ++i) {
    const double v = LatencySample(&rng);
    window.Add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (size_t k = 0; k < values.size(); ++k) {
    const double q = (static_cast<double>(k) + 0.5) / n;
    EXPECT_DOUBLE_EQ(window.Quantile(q), values[k]) << "rank " << k;
  }
}

TEST(QuantileWindowPropertyTest, EvictionKeepsExactlyTheLastCapacitySamples) {
  // Long past the first wrap-around, the window must behave as if only the
  // most recent `capacity` samples ever existed.
  const size_t capacity = 9;
  Rng rng(1234);
  QuantileWindow window(capacity);
  std::deque<double> recent;
  for (int i = 0; i < 10 * static_cast<int>(capacity) + 3; ++i) {
    const double v = rng.Uniform(-5.0, 5.0);
    window.Add(v);
    recent.push_back(v);
    if (recent.size() > capacity) recent.pop_front();
  }
  EXPECT_EQ(window.size(), capacity);
  EXPECT_EQ(window.count(), 10 * capacity + 3);
  EXPECT_DOUBLE_EQ(window.last(), recent.back());
  std::vector<double> reference(recent.begin(), recent.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_DOUBLE_EQ(window.Quantile(0.0), reference.front());
  EXPECT_DOUBLE_EQ(window.Quantile(1.0), reference.back());
  for (size_t k = 0; k < capacity; ++k) {
    const double q =
        (static_cast<double>(k) + 0.5) / static_cast<double>(capacity);
    EXPECT_DOUBLE_EQ(window.Quantile(q), reference[k]);
  }
}

TEST(QuantileWindowPropertyTest, SnapshotRestoreRoundTripsExactly) {
  const uint64_t kSeeds[] = {3, 99, 2026};
  for (uint64_t seed : kSeeds) {
    Rng rng(seed);
    QuantileWindow original(16);
    // Past capacity, so the snapshot has to unwrap the ring correctly.
    for (int i = 0; i < 41; ++i) original.Add(LatencySample(&rng));

    const auto snapshot = original.snapshot();
    EXPECT_EQ(snapshot.capacity, 16u);
    EXPECT_EQ(snapshot.count, 41u);
    ASSERT_EQ(snapshot.samples.size(), original.size());

    QuantileWindow restored(16);
    restored.Restore(snapshot);
    EXPECT_EQ(restored.size(), original.size());
    EXPECT_EQ(restored.count(), original.count());
    EXPECT_DOUBLE_EQ(restored.last(), original.last());
    for (double q : kQGrid) {
      EXPECT_DOUBLE_EQ(restored.Quantile(q), original.Quantile(q))
          << "seed=" << seed << " q=" << q;
    }

    // The restored window must also EVOLVE identically: feeding both the
    // same future keeps them indistinguishable (arrival order survived).
    Rng future(seed ^ 0xF00D);
    for (int i = 0; i < 20; ++i) {
      const double v = LatencySample(&future);
      original.Add(v);
      restored.Add(v);
      for (double q : kQGrid) {
        ASSERT_DOUBLE_EQ(restored.Quantile(q), original.Quantile(q));
      }
    }

    // Snapshot of the restored window equals a fresh snapshot of the
    // original (idempotence of the round trip).
    const auto again = restored.snapshot();
    const auto fresh = original.snapshot();
    EXPECT_EQ(again.count, fresh.count);
    ASSERT_EQ(again.samples.size(), fresh.samples.size());
    for (size_t i = 0; i < again.samples.size(); ++i) {
      EXPECT_DOUBLE_EQ(again.samples[i], fresh.samples[i]);
    }
  }
}

TEST(QuantileWindowPropertyTest, RestoreIntoSmallerWindowKeepsMostRecent) {
  QuantileWindow big(16);
  for (int i = 1; i <= 16; ++i) big.Add(static_cast<double>(i));

  QuantileWindow small(4);
  small.Restore(big.snapshot());
  // Only the most recent 4 samples (13, 14, 15, 16) survive — exactly as if
  // they had been Add()ed live into the smaller ring.
  EXPECT_EQ(small.size(), 4u);
  EXPECT_EQ(small.count(), 16u);  // lifetime count restored from the snapshot
  EXPECT_DOUBLE_EQ(small.Quantile(0.0), 13.0);
  EXPECT_DOUBLE_EQ(small.Quantile(1.0), 16.0);
  EXPECT_DOUBLE_EQ(small.last(), 16.0);
}

TEST(QuantileWindowPropertyTest, RestoreReplacesPriorContents) {
  QuantileWindow window(8);
  for (int i = 0; i < 5; ++i) window.Add(100.0);

  QuantileWindow other(8);
  other.Add(1.0);
  other.Add(2.0);
  window.Restore(other.snapshot());
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.count(), 2u);
  EXPECT_DOUBLE_EQ(window.Quantile(1.0), 2.0);

  // An empty snapshot empties the window.
  window.Restore(QuantileWindow::Snapshot{});
  EXPECT_TRUE(window.empty());
}

// ---------------------------------------------------------------------------
// The min_samples cold-start boundary, seen through a restored HedgedModel
// sketch: one sample short of min_samples still reports the +infinity
// threshold (no hedge may fire), exactly min_samples flips to the real
// percentile.

class InertModel final : public llm::LanguageModel {
 public:
  explicit InertModel(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  uint64_t memory_mb() const override { return 1; }
  double tokens_per_second() const override { return 0.0; }
  size_t context_window() const override { return 4096; }
  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest&) const override {
    return Status::Unimplemented("inert");
  }

 private:
  std::string name_;
};

TEST(QuantileWindowPropertyTest, RestoredSketchHonoursMinSamplesBoundary) {
  llm::HedgeConfig config;
  config.min_samples = 8;
  config.percentile = 0.5;

  QuantileWindow::Snapshot sketch;
  sketch.capacity = 128;
  for (int i = 1; i <= 7; ++i) {
    sketch.samples.push_back(static_cast<double>(i));
  }
  sketch.count = sketch.samples.size();

  // 7 of 8 required samples: still cold, the threshold must stay infinite.
  llm::HedgedModel seven(std::make_shared<InertModel>("m"),
                         {std::make_shared<InertModel>("m")}, config);
  seven.RestoreSketches({sketch});
  EXPECT_TRUE(std::isinf(seven.ThresholdFor(0)));

  // The 8th sample crosses the boundary: the threshold becomes the exact
  // nearest-rank percentile of the restored history.
  sketch.samples.push_back(8.0);
  sketch.count = sketch.samples.size();
  llm::HedgedModel eight(std::make_shared<InertModel>("m"),
                         {std::make_shared<InertModel>("m")}, config);
  eight.RestoreSketches({sketch});
  EXPECT_FALSE(std::isinf(eight.ThresholdFor(0)));
  EXPECT_DOUBLE_EQ(eight.ThresholdFor(0), 4.0);  // ceil(0.5*8) = 4th smallest

  // The backup replica received no sketch and stays cold.
  EXPECT_TRUE(std::isinf(eight.ThresholdFor(1)));
}

// ---------------------------------------------------------------------------
// RewardFeed estimators (DESIGN.md §16): the sliding-window and
// exponential-decay means are held to the same property-test standard as
// the quantile sketch — checked against naive references on randomized
// reward streams, across the window boundary, and through a StateStore
// round-trip.

// Naive reference for the sliding window: replay the full publish history
// and average the entries of `model` whose global tick is within the last
// `window` ticks. Entry i (0-based) of the history carries tick i+1.
double NaiveWindowMean(
    const std::vector<std::pair<std::string, double>>& history,
    const std::string& model, size_t window) {
  const uint64_t now = history.size();  // == the feed's tick after replay
  double sum = 0.0;
  size_t kept = 0;
  for (size_t i = 0; i < history.size(); ++i) {
    const uint64_t tick = i + 1;
    if (history[i].first != model || now - tick >= window) continue;
    sum += history[i].second;
    ++kept;
  }
  return kept == 0 ? 0.0 : sum / static_cast<double>(kept);
}

// Naive reference for exponential decay: sum(r_i * d^(T - t_i)) over the
// model's observations, normalized by the matching weight sum, with
// d = 2^(-1/half_life).
double NaiveDecayMean(
    const std::vector<std::pair<std::string, double>>& history,
    const std::string& model, double half_life) {
  const double d = std::exp2(-1.0 / half_life);
  const double now = static_cast<double>(history.size());
  double sum = 0.0;
  double weight = 0.0;
  for (size_t i = 0; i < history.size(); ++i) {
    if (history[i].first != model) continue;
    const double age = now - static_cast<double>(i + 1);
    sum += history[i].second * std::pow(d, age);
    weight += std::pow(d, age);
  }
  return weight == 0.0 ? 0.0 : sum / weight;
}

TEST(RewardFeedPropertyTest, WindowMeanMatchesNaiveReference) {
  const std::string models[] = {"a", "b", "c"};
  for (const size_t window : {size_t{1}, size_t{4}, size_t{16}}) {
    Rng rng(0xFEED0000ULL + window);
    core::RewardFeedConfig config;
    config.warmup = 2;
    config.window = window;
    core::RewardFeed feed(config);

    std::vector<std::pair<std::string, double>> history;
    for (int i = 0; i < 400; ++i) {
      const std::string& model = models[rng.NextUint64() % 3];
      const double reward = rng.Uniform(-0.2, 1.0);
      feed.Publish(model, reward);
      history.emplace_back(model, reward);

      for (const auto& m : models) {
        // The feed recomputes the window sum on every read, so the match
        // against the naive replay is exact, not approximate.
        EXPECT_DOUBLE_EQ(feed.EstimateFor(m).mean,
                         NaiveWindowMean(history, m, window))
            << "model " << m << " window " << window << " after " << i + 1
            << " publishes";
      }
    }
  }
}

TEST(RewardFeedPropertyTest, DecayMeanMatchesNaiveReference) {
  const std::string models[] = {"a", "b", "c"};
  for (const double half_life : {2.0, 8.0, 64.0}) {
    Rng rng(0xDECA0000ULL + static_cast<uint64_t>(half_life));
    core::RewardFeedConfig config;
    config.warmup = 2;
    config.half_life = half_life;
    core::RewardFeed feed(config);

    std::vector<std::pair<std::string, double>> history;
    for (int i = 0; i < 300; ++i) {
      const std::string& model = models[rng.NextUint64() % 3];
      const double reward = rng.Uniform(-0.2, 1.0);
      feed.Publish(model, reward);
      history.emplace_back(model, reward);
    }
    for (const auto& m : models) {
      EXPECT_NEAR(feed.EstimateFor(m).mean,
                  NaiveDecayMean(history, m, half_life), 1e-9)
          << "model " << m << " half-life " << half_life;
    }
  }
}

TEST(RewardFeedPropertyTest, WindowBoundaryEvictsExactlyOnTime) {
  core::RewardFeedConfig config;
  config.warmup = 1;
  config.window = 5;
  core::RewardFeed feed(config);

  feed.Publish("m", 1.0);  // tick 1: retained while tick - 1 < 5, i.e. to 5
  for (int tick = 2; tick <= 5; ++tick) {
    feed.Publish("other", 0.1);
    EXPECT_DOUBLE_EQ(feed.EstimateFor("m").weight, 1.0)
        << "tick " << tick << ": the entry is still inside the window";
  }
  feed.Publish("other", 0.1);  // tick 6: 6 - 1 >= 5, evicted
  EXPECT_DOUBLE_EQ(feed.EstimateFor("m").weight, 0.0);
  EXPECT_DOUBLE_EQ(feed.EstimateFor("m").mean, 0.0);
  EXPECT_DOUBLE_EQ(feed.FavourOf("m"), 0.0);
  // Lifetime totals never evict.
  EXPECT_EQ(feed.StatsFor("m").count, 1u);
  EXPECT_DOUBLE_EQ(feed.StatsFor("m").MeanReward(), 1.0);
}

TEST(RewardFeedPropertyTest, SnapshotRoundTripsThroughStateStore) {
  const std::string path =
      ::testing::TempDir() + "/reward-feed-roundtrip.json";
  std::remove(path.c_str());

  core::RewardFeedConfig config;
  config.warmup = 3;
  config.window = 8;

  core::RewardFeed original(config);
  Rng rng(0x57A7E57ULL);
  const std::string models[] = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    original.Publish(models[rng.NextUint64() % 3], rng.Uniform(0.0, 1.0));
  }

  {
    llm::StateStore store(path);
    ASSERT_TRUE(store.Load().ok());
    core::AttachRewardFeed(&store, &original);
    ASSERT_TRUE(store.SaveNow().ok());
  }

  // A fresh store + fresh feed on the same file must see identical
  // estimates, favours, lifetime stats, and tick.
  llm::StateStore reloaded(path);
  ASSERT_TRUE(reloaded.Load().ok());
  EXPECT_TRUE(reloaded.load_warning().empty()) << reloaded.load_warning();
  core::RewardFeed restored(config);
  core::AttachRewardFeed(&reloaded, &restored);

  EXPECT_EQ(restored.tick(), original.tick());
  for (const auto& m : models) {
    EXPECT_DOUBLE_EQ(restored.EstimateFor(m).mean,
                     original.EstimateFor(m).mean);
    EXPECT_DOUBLE_EQ(restored.EstimateFor(m).weight,
                     original.EstimateFor(m).weight);
    EXPECT_DOUBLE_EQ(restored.FavourOf(m), original.FavourOf(m));
    EXPECT_EQ(restored.StatsFor(m).count, original.StatsFor(m).count);
    EXPECT_DOUBLE_EQ(restored.StatsFor(m).reward_sum,
                     original.StatsFor(m).reward_sum);
  }

  // The restored feed is not a dead snapshot: publishing the same stream to
  // both keeps them in lockstep (ticks, eviction, and means all resumed).
  for (int i = 0; i < 20; ++i) {
    const std::string& m = models[i % 3];
    const double reward = 0.1 * static_cast<double>(i % 7);
    original.Publish(m, reward);
    restored.Publish(m, reward);
  }
  for (const auto& m : models) {
    EXPECT_DOUBLE_EQ(restored.EstimateFor(m).mean,
                     original.EstimateFor(m).mean);
    EXPECT_DOUBLE_EQ(restored.FavourOf(m), original.FavourOf(m));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace llmms
