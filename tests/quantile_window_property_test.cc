// Property tests for QuantileWindow: the nearest-rank estimator is checked
// against a naive sort-based reference on randomized (but seeded, hence
// reproducible) sequences, the ring buffer is checked to hold exactly the
// last `capacity` samples, and Snapshot/Restore is checked to round-trip
// the window bit-for-bit — including the min_samples cold-start boundary a
// restored HedgedModel sketch must respect.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "llmms/common/quantile_window.h"
#include "llmms/common/rng.h"
#include "llmms/llm/hedged_model.h"

namespace llmms {
namespace {

// The reference: sort the window and take the nearest-rank sample, i.e. the
// ceil(q*n)-th smallest (1-based), with q clamped into [0, 1].
double NaiveQuantile(std::vector<double> samples, double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp<size_t>(rank, 1, n);
  return samples[rank - 1];
}

// A latency-shaped sample: mostly small values with occasional spikes, the
// distribution hedging actually sees.
double LatencySample(Rng* rng) {
  if (rng->Bernoulli(0.1)) return rng->Uniform(50.0, 100.0);
  return rng->Uniform(0.0, 10.0);
}

const double kQGrid[] = {0.0,  0.01, 0.1, 0.25, 0.5,
                         0.75, 0.9,  0.95, 0.99, 1.0};

TEST(QuantileWindowPropertyTest, MatchesNaiveReferenceOnRandomSequences) {
  const size_t kCapacities[] = {1, 2, 3, 7, 16, 64};
  const uint64_t kSeeds[] = {1, 42, 0xBADC0FFEE};
  for (size_t capacity : kCapacities) {
    for (uint64_t seed : kSeeds) {
      Rng rng(seed);
      QuantileWindow window(capacity);
      std::deque<double> recent;  // the last `capacity` samples, oldest first
      for (int i = 0; i < 200; ++i) {
        const double value = LatencySample(&rng);
        window.Add(value);
        recent.push_back(value);
        if (recent.size() > capacity) recent.pop_front();
        const std::vector<double> reference(recent.begin(), recent.end());
        for (double q : kQGrid) {
          ASSERT_DOUBLE_EQ(window.Quantile(q), NaiveQuantile(reference, q))
              << "capacity=" << capacity << " seed=" << seed << " add=" << i
              << " q=" << q;
        }
      }
    }
  }
}

TEST(QuantileWindowPropertyTest, FullRankSweepRecoversTheSortedWindow) {
  // Querying q = (k+0.5)/n for every k must walk the sorted window exactly
  // — the strongest form of the nearest-rank contract (the midpoint avoids
  // the float-rounding ambiguity of exact rank boundaries).
  Rng rng(7);
  QuantileWindow window(48);
  std::vector<double> values;
  for (int i = 0; i < 48; ++i) {
    const double v = LatencySample(&rng);
    window.Add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (size_t k = 0; k < values.size(); ++k) {
    const double q = (static_cast<double>(k) + 0.5) / n;
    EXPECT_DOUBLE_EQ(window.Quantile(q), values[k]) << "rank " << k;
  }
}

TEST(QuantileWindowPropertyTest, EvictionKeepsExactlyTheLastCapacitySamples) {
  // Long past the first wrap-around, the window must behave as if only the
  // most recent `capacity` samples ever existed.
  const size_t capacity = 9;
  Rng rng(1234);
  QuantileWindow window(capacity);
  std::deque<double> recent;
  for (int i = 0; i < 10 * static_cast<int>(capacity) + 3; ++i) {
    const double v = rng.Uniform(-5.0, 5.0);
    window.Add(v);
    recent.push_back(v);
    if (recent.size() > capacity) recent.pop_front();
  }
  EXPECT_EQ(window.size(), capacity);
  EXPECT_EQ(window.count(), 10 * capacity + 3);
  EXPECT_DOUBLE_EQ(window.last(), recent.back());
  std::vector<double> reference(recent.begin(), recent.end());
  std::sort(reference.begin(), reference.end());
  EXPECT_DOUBLE_EQ(window.Quantile(0.0), reference.front());
  EXPECT_DOUBLE_EQ(window.Quantile(1.0), reference.back());
  for (size_t k = 0; k < capacity; ++k) {
    const double q =
        (static_cast<double>(k) + 0.5) / static_cast<double>(capacity);
    EXPECT_DOUBLE_EQ(window.Quantile(q), reference[k]);
  }
}

TEST(QuantileWindowPropertyTest, SnapshotRestoreRoundTripsExactly) {
  const uint64_t kSeeds[] = {3, 99, 2026};
  for (uint64_t seed : kSeeds) {
    Rng rng(seed);
    QuantileWindow original(16);
    // Past capacity, so the snapshot has to unwrap the ring correctly.
    for (int i = 0; i < 41; ++i) original.Add(LatencySample(&rng));

    const auto snapshot = original.snapshot();
    EXPECT_EQ(snapshot.capacity, 16u);
    EXPECT_EQ(snapshot.count, 41u);
    ASSERT_EQ(snapshot.samples.size(), original.size());

    QuantileWindow restored(16);
    restored.Restore(snapshot);
    EXPECT_EQ(restored.size(), original.size());
    EXPECT_EQ(restored.count(), original.count());
    EXPECT_DOUBLE_EQ(restored.last(), original.last());
    for (double q : kQGrid) {
      EXPECT_DOUBLE_EQ(restored.Quantile(q), original.Quantile(q))
          << "seed=" << seed << " q=" << q;
    }

    // The restored window must also EVOLVE identically: feeding both the
    // same future keeps them indistinguishable (arrival order survived).
    Rng future(seed ^ 0xF00D);
    for (int i = 0; i < 20; ++i) {
      const double v = LatencySample(&future);
      original.Add(v);
      restored.Add(v);
      for (double q : kQGrid) {
        ASSERT_DOUBLE_EQ(restored.Quantile(q), original.Quantile(q));
      }
    }

    // Snapshot of the restored window equals a fresh snapshot of the
    // original (idempotence of the round trip).
    const auto again = restored.snapshot();
    const auto fresh = original.snapshot();
    EXPECT_EQ(again.count, fresh.count);
    ASSERT_EQ(again.samples.size(), fresh.samples.size());
    for (size_t i = 0; i < again.samples.size(); ++i) {
      EXPECT_DOUBLE_EQ(again.samples[i], fresh.samples[i]);
    }
  }
}

TEST(QuantileWindowPropertyTest, RestoreIntoSmallerWindowKeepsMostRecent) {
  QuantileWindow big(16);
  for (int i = 1; i <= 16; ++i) big.Add(static_cast<double>(i));

  QuantileWindow small(4);
  small.Restore(big.snapshot());
  // Only the most recent 4 samples (13, 14, 15, 16) survive — exactly as if
  // they had been Add()ed live into the smaller ring.
  EXPECT_EQ(small.size(), 4u);
  EXPECT_EQ(small.count(), 16u);  // lifetime count restored from the snapshot
  EXPECT_DOUBLE_EQ(small.Quantile(0.0), 13.0);
  EXPECT_DOUBLE_EQ(small.Quantile(1.0), 16.0);
  EXPECT_DOUBLE_EQ(small.last(), 16.0);
}

TEST(QuantileWindowPropertyTest, RestoreReplacesPriorContents) {
  QuantileWindow window(8);
  for (int i = 0; i < 5; ++i) window.Add(100.0);

  QuantileWindow other(8);
  other.Add(1.0);
  other.Add(2.0);
  window.Restore(other.snapshot());
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.count(), 2u);
  EXPECT_DOUBLE_EQ(window.Quantile(1.0), 2.0);

  // An empty snapshot empties the window.
  window.Restore(QuantileWindow::Snapshot{});
  EXPECT_TRUE(window.empty());
}

// ---------------------------------------------------------------------------
// The min_samples cold-start boundary, seen through a restored HedgedModel
// sketch: one sample short of min_samples still reports the +infinity
// threshold (no hedge may fire), exactly min_samples flips to the real
// percentile.

class InertModel final : public llm::LanguageModel {
 public:
  explicit InertModel(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  uint64_t memory_mb() const override { return 1; }
  double tokens_per_second() const override { return 0.0; }
  size_t context_window() const override { return 4096; }
  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest&) const override {
    return Status::Unimplemented("inert");
  }

 private:
  std::string name_;
};

TEST(QuantileWindowPropertyTest, RestoredSketchHonoursMinSamplesBoundary) {
  llm::HedgeConfig config;
  config.min_samples = 8;
  config.percentile = 0.5;

  QuantileWindow::Snapshot sketch;
  sketch.capacity = 128;
  for (int i = 1; i <= 7; ++i) {
    sketch.samples.push_back(static_cast<double>(i));
  }
  sketch.count = sketch.samples.size();

  // 7 of 8 required samples: still cold, the threshold must stay infinite.
  llm::HedgedModel seven(std::make_shared<InertModel>("m"),
                         {std::make_shared<InertModel>("m")}, config);
  seven.RestoreSketches({sketch});
  EXPECT_TRUE(std::isinf(seven.ThresholdFor(0)));

  // The 8th sample crosses the boundary: the threshold becomes the exact
  // nearest-rank percentile of the restored history.
  sketch.samples.push_back(8.0);
  sketch.count = sketch.samples.size();
  llm::HedgedModel eight(std::make_shared<InertModel>("m"),
                         {std::make_shared<InertModel>("m")}, config);
  eight.RestoreSketches({sketch});
  EXPECT_FALSE(std::isinf(eight.ThresholdFor(0)));
  EXPECT_DOUBLE_EQ(eight.ThresholdFor(0), 4.0);  // ceil(0.5*8) = 4th smallest

  // The backup replica received no sketch and stays cold.
  EXPECT_TRUE(std::isinf(eight.ThresholdFor(1)));
}

}  // namespace
}  // namespace llmms
