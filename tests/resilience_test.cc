#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "llmms/core/hybrid.h"
#include "llmms/core/mab.h"
#include "llmms/core/oua.h"
#include "llmms/core/single.h"
#include "llmms/llm/fault_injection.h"
#include "llmms/llm/resilient_model.h"
#include "testutil.h"

namespace llmms {
namespace {

using core::EventType;
using core::OrchestratorEvent;

// A 5-model chaos world: the three default profiles plus two renamed
// clones, the first `num_faulty` wrapped in FaultyModel, and every model
// wrapped in ResilientModel — the full decorator stack the resilience layer
// is specified against.
struct ChaosWorld {
  std::shared_ptr<const embedding::Embedder> embedder;
  std::shared_ptr<llm::KnowledgeBase> knowledge;
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::vector<llm::QaItem> dataset;
  std::vector<std::string> model_names;
  std::vector<std::string> faulty_names;
  std::string prompt;
};

ChaosWorld MakeChaosWorld(size_t num_faulty, const llm::FaultConfig& faults,
                          llm::ResilienceConfig resilience =
                              llm::ResilienceConfig()) {
  ChaosWorld world;
  world.embedder = std::make_shared<embedding::HashEmbedder>();

  eval::DatasetOptions dataset_options;
  dataset_options.questions_per_domain = 4;
  world.dataset = eval::GenerateDataset(dataset_options);
  world.prompt = world.dataset[0].question;

  auto knowledge = std::make_shared<llm::KnowledgeBase>(world.embedder);
  if (!knowledge->AddAll(world.dataset).ok()) std::abort();
  world.knowledge = knowledge;

  auto profiles = llm::DefaultProfiles();
  auto clone1 = profiles[0];
  clone1.name = "phi3:mini";
  clone1.seed ^= 0x1111;
  auto clone2 = profiles[1];
  clone2.name = "gemma2:9b";
  clone2.seed ^= 0x2222;
  profiles.push_back(clone1);
  profiles.push_back(clone2);

  world.registry = std::make_shared<llm::ModelRegistry>();
  for (size_t i = 0; i < profiles.size(); ++i) {
    std::shared_ptr<llm::LanguageModel> model =
        std::make_shared<llm::SyntheticModel>(profiles[i], knowledge);
    if (i < num_faulty) {
      llm::FaultConfig fault_config = faults;
      fault_config.seed += i;
      model = std::make_shared<llm::FaultyModel>(model, fault_config);
      world.faulty_names.push_back(profiles[i].name);
    }
    resilience.seed += i;
    model = std::make_shared<llm::ResilientModel>(model, resilience);
    world.model_names.push_back(profiles[i].name);
    if (!world.registry->Register(model).ok()) std::abort();
  }

  hardware::DeviceSpec a100;
  a100.name = "a100-0";
  a100.kind = hardware::DeviceKind::kGpu;
  a100.memory_mb = 40 * 1024;
  a100.throughput_factor = 1.0;
  world.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{a100});

  world.runtime = std::make_unique<llm::ModelRuntime>(
      world.registry, world.hardware, /*num_threads=*/4);
  for (const auto& name : world.model_names) {
    if (!world.runtime->LoadModel(name).ok()) std::abort();
  }
  return world;
}

bool IsFaulty(const ChaosWorld& world, const std::string& model) {
  for (const auto& name : world.faulty_names) {
    if (name == model) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// FaultyModel

TEST(FaultyModelTest, SameSeedReplaysIdenticalFaultSequence) {
  auto base = testutil::MakeWorld();
  llm::FaultConfig config;
  config.chunk_error_prob = 0.4;
  config.stall_prob = 0.2;
  config.latency_spike_prob = 0.3;
  config.latency_spike_seconds = 1.5;

  auto run = [&](uint64_t seed) {
    llm::FaultConfig seeded = config;
    seeded.seed = seed;
    auto inner = base.registry->Get("llama3:8b");
    EXPECT_TRUE(inner.ok());
    llm::FaultyModel faulty(*inner, seeded);
    llm::GenerationRequest request;
    request.prompt = base.dataset[0].question;
    auto stream = faulty.StartGeneration(request);
    EXPECT_TRUE(stream.ok());
    std::vector<std::string> outcomes;
    for (size_t i = 0; i < 20; ++i) {
      auto chunk = (*stream)->NextChunk(4);
      if (!chunk.ok()) {
        outcomes.push_back("error:" + chunk.status().message());
      } else {
        outcomes.push_back("ok:" + std::to_string(chunk->num_tokens) + ":" +
                           std::to_string(chunk->extra_seconds));
        if (chunk->done) break;
      }
    }
    return outcomes;
  };

  const auto first = run(0xC0FFEE);
  const auto second = run(0xC0FFEE);
  const auto other = run(0xBEEF);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);  // different seed, different fault schedule
}

TEST(FaultyModelTest, DiesPermanentlyAfterConfiguredTokens) {
  auto base = testutil::MakeWorld();
  llm::FaultConfig config;
  config.fail_after_tokens = 6;
  auto inner = base.registry->Get("mistral:7b");
  ASSERT_TRUE(inner.ok());
  llm::FaultyModel faulty(*inner, config);
  llm::GenerationRequest request;
  request.prompt = base.dataset[1].question;
  auto stream = faulty.StartGeneration(request);
  ASSERT_TRUE(stream.ok());

  auto first = (*stream)->NextChunk(8);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->num_tokens, 0u);
  auto second = (*stream)->NextChunk(8);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsInternal());
  // The death is sticky: every further call fails too.
  EXPECT_FALSE((*stream)->NextChunk(8).ok());
}

TEST(FaultyModelTest, TruncatesStreamAtConfiguredLength) {
  auto base = testutil::MakeWorld();
  llm::FaultConfig config;
  config.truncate_after_tokens = 4;
  auto inner = base.registry->Get("qwen2:7b");
  ASSERT_TRUE(inner.ok());
  llm::FaultyModel faulty(*inner, config);
  llm::GenerationRequest request;
  request.prompt = base.dataset[2].question;
  auto stream = faulty.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  size_t total = 0;
  bool done = false;
  for (size_t i = 0; i < 10 && !done; ++i) {
    auto chunk = (*stream)->NextChunk(4);
    ASSERT_TRUE(chunk.ok());
    total += chunk->num_tokens;
    done = chunk->done;
    if (done) {
      EXPECT_EQ(chunk->stop_reason, llm::StopReason::kLength);
    }
  }
  EXPECT_TRUE(done);
  EXPECT_LE(total, 8u);  // 4 tokens + at most one in-flight chunk
  EXPECT_EQ(faulty.counters().truncations_injected, 1u);
}

// ---------------------------------------------------------------------------
// CircuitBreaker

TEST(CircuitBreakerTest, OpensAfterThresholdAndRecoversViaHalfOpen) {
  llm::CircuitBreaker breaker(/*failure_threshold=*/3, /*open_calls=*/2);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kClosed);

  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);

  // While open the breaker fails fast; after `open_calls` rejections it
  // transitions to half-open and admits exactly one probe.
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());  // second probe rejected
  EXPECT_EQ(breaker.fast_rejections(), 3u);

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, FailedProbeReopensImmediately) {
  llm::CircuitBreaker breaker(/*failure_threshold=*/1, /*open_calls=*/1);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();  // the probe failed
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.total_failures(), 2u);
}

TEST(CircuitBreakerTest, StateNamesAreStable) {
  EXPECT_STREQ(llm::CircuitStateToString(llm::CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(llm::CircuitStateToString(llm::CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(
      llm::CircuitStateToString(llm::CircuitBreaker::State::kHalfOpen),
      "half-open");
}

// ---------------------------------------------------------------------------
// Backoff

TEST(BackoffTest, SameSeedSameSchedule) {
  llm::ResilienceConfig config;
  Rng a(42), b(42), c(43);
  std::vector<double> first, second, other;
  for (size_t attempt = 0; attempt < 6; ++attempt) {
    first.push_back(llm::JitteredBackoffSeconds(config, attempt, &a));
    second.push_back(llm::JitteredBackoffSeconds(config, attempt, &b));
    other.push_back(llm::JitteredBackoffSeconds(config, attempt, &c));
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
}

TEST(BackoffTest, GrowsExponentiallyAndSaturates) {
  llm::ResilienceConfig config;
  config.backoff_jitter = 0.0;  // isolate the deterministic base schedule
  Rng rng(1);
  EXPECT_DOUBLE_EQ(llm::JitteredBackoffSeconds(config, 0, &rng), 0.05);
  EXPECT_DOUBLE_EQ(llm::JitteredBackoffSeconds(config, 1, &rng), 0.10);
  EXPECT_DOUBLE_EQ(llm::JitteredBackoffSeconds(config, 2, &rng), 0.20);
  // Attempt 10 would be 51.2s unbounded; the cap holds it at the max.
  EXPECT_DOUBLE_EQ(llm::JitteredBackoffSeconds(config, 10, &rng),
                   config.backoff_max_seconds);
  // Jitter stays within the configured band.
  config.backoff_jitter = 0.1;
  for (size_t i = 0; i < 32; ++i) {
    const double v = llm::JitteredBackoffSeconds(config, 0, &rng);
    EXPECT_GE(v, 0.05 * 0.9);
    EXPECT_LE(v, 0.05 * 1.1);
  }
}

// ---------------------------------------------------------------------------
// ResilientModel

TEST(ResilientModelTest, AbsorbsTransientChunkErrors) {
  auto base = testutil::MakeWorld();
  llm::FaultConfig faults;
  faults.chunk_error_prob = 0.25;
  auto inner = base.registry->Get("llama3:8b");
  ASSERT_TRUE(inner.ok());
  auto faulty = std::make_shared<llm::FaultyModel>(*inner, faults);
  llm::ResilienceConfig resilience;
  // Generous retry budget: with p=0.25 per call, exhausting five attempts
  // on any chunk is a ~0.1% event per call, and the seeds are fixed.
  resilience.max_chunk_retries = 4;
  llm::ResilientModel resilient(faulty, resilience);

  llm::GenerationRequest request;
  request.prompt = base.dataset[0].question;
  auto stream = resilient.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  size_t total = 0;
  double extra = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    auto chunk = (*stream)->NextChunk(8);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    total += chunk->num_tokens;
    extra += chunk->extra_seconds;
    if (chunk->done) break;
  }
  EXPECT_GT(total, 0u);
  EXPECT_TRUE((*stream)->finished());
  const auto health = resilient.health();
  EXPECT_EQ(health.circuit, llm::CircuitBreaker::State::kClosed);
  EXPECT_GT(health.chunk_retries, 0u);       // faults were hit and retried
  EXPECT_GT(health.backoff_seconds, 0.0);    // and charged in simulated time
  EXPECT_GT(extra, 0.0);                     // ... onto the stream's chunks
  EXPECT_GT(faulty->counters().chunk_errors_injected, 0u);
}

TEST(ResilientModelTest, PermanentFailureTripsBreakerAndFailsFast) {
  auto base = testutil::MakeWorld();
  llm::FaultConfig faults;
  faults.refuse_start_prob = 1.0;
  auto inner = base.registry->Get("mistral:7b");
  ASSERT_TRUE(inner.ok());
  auto faulty = std::make_shared<llm::FaultyModel>(*inner, faults);
  llm::ResilienceConfig resilience;
  resilience.breaker_failure_threshold = 2;
  resilience.breaker_open_calls = 3;
  llm::ResilientModel resilient(faulty, resilience);

  llm::GenerationRequest request;
  request.prompt = base.dataset[0].question;
  // Every start exhausts its retries and records one breaker failure.
  auto first = resilient.StartGeneration(request);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsInternal());
  EXPECT_NE(first.status().message().find("failed to start"),
            std::string::npos);
  ASSERT_FALSE(resilient.StartGeneration(request).ok());
  EXPECT_EQ(resilient.health().circuit, llm::CircuitBreaker::State::kOpen);

  // With the circuit open, calls fail fast without touching the backend.
  const auto starts_before = faulty->counters().starts_attempted;
  auto rejected = resilient.StartGeneration(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_EQ(faulty->counters().starts_attempted, starts_before);
  EXPECT_GT(resilient.health().fast_rejections, 0u);
}

TEST(ResilientModelTest, RepeatedMidStreamDeathsOpenTheCircuit) {
  // A backend that accepts every stream but dies on the first chunk must
  // still trip the breaker: the successful StartGeneration is not evidence
  // of health and must not reset the consecutive-failure count.
  auto base = testutil::MakeWorld();
  llm::FaultConfig faults;
  faults.chunk_error_prob = 1.0;  // every chunk attempt fails
  auto inner = base.registry->Get("llama3:8b");
  ASSERT_TRUE(inner.ok());
  auto faulty = std::make_shared<llm::FaultyModel>(*inner, faults);
  llm::ResilienceConfig resilience;
  resilience.breaker_failure_threshold = 3;
  llm::ResilientModel resilient(faulty, resilience);

  llm::GenerationRequest request;
  request.prompt = base.dataset[0].question;
  for (size_t i = 0; i < 3; ++i) {
    auto stream = resilient.StartGeneration(request);
    ASSERT_TRUE(stream.ok()) << i;
    EXPECT_FALSE((*stream)->NextChunk(8).ok()) << i;
  }
  EXPECT_EQ(resilient.health().circuit, llm::CircuitBreaker::State::kOpen);
  auto rejected = resilient.StartGeneration(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
}

TEST(ResilientModelTest, DetectsStalledBackend) {
  auto base = testutil::MakeWorld();
  llm::FaultConfig faults;
  faults.stall_prob = 1.0;  // the backend never makes progress
  auto inner = base.registry->Get("qwen2:7b");
  ASSERT_TRUE(inner.ok());
  auto faulty = std::make_shared<llm::FaultyModel>(*inner, faults);
  llm::ResilienceConfig resilience;
  resilience.max_stalled_chunks = 4;
  llm::ResilientModel resilient(faulty, resilience);

  llm::GenerationRequest request;
  request.prompt = base.dataset[0].question;
  auto stream = resilient.StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  Status failure = Status::OK();
  for (size_t i = 0; i < 16; ++i) {
    auto chunk = (*stream)->NextChunk(8);
    if (!chunk.ok()) {
      failure = chunk.status();
      break;
    }
  }
  EXPECT_TRUE(failure.IsDeadlineExceeded()) << failure.ToString();
  EXPECT_NE(failure.message().find("stalled"), std::string::npos);
  EXPECT_GT(resilient.health().stalls_detected, 0u);
}

// ---------------------------------------------------------------------------
// Chaos: orchestrators under partial failure

core::ScoringWeights DefaultWeights() { return core::ScoringWeights(); }

TEST(ChaosTest, OuaSurvivesTwoMidStreamDeaths) {
  llm::FaultConfig faults;
  faults.fail_after_tokens = 6;  // dies early in round 2
  auto world = MakeChaosWorld(/*num_faulty=*/2, faults);

  core::OuaOrchestrator::Config config;
  config.weights = DefaultWeights();
  config.token_budget = 400;
  config.chunk_tokens = 8;
  core::OuaOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, config);

  size_t failure_events = 0;
  std::vector<std::string> failed_models;
  auto result = orchestrator.Run(
      world.prompt, [&](const OrchestratorEvent& event) {
        if (event.type == EventType::kFailure) {
          ++failure_events;
          failed_models.push_back(event.model);
        }
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The answer comes from a healthy model, within budget.
  EXPECT_FALSE(result->answer.empty());
  EXPECT_FALSE(IsFaulty(world, result->best_model));
  EXPECT_LE(result->total_tokens,
            config.token_budget + world.model_names.size() *
                                      config.chunk_tokens);

  // Both faulty models were quarantined: kFailure events, failed outcomes,
  // and failure entries in the trace.
  EXPECT_EQ(failure_events, 2u);
  for (const auto& name : world.faulty_names) {
    const auto& outcome = result->per_model.at(name);
    EXPECT_TRUE(outcome.failed) << name;
    EXPECT_FALSE(outcome.error.empty()) << name;
  }
  size_t failure_trace_entries = 0;
  for (const auto& entry : result->trace) {
    if (entry.action == "failure") ++failure_trace_entries;
  }
  EXPECT_EQ(failure_trace_entries, 2u);

  // Healthy models were never marked failed.
  for (const auto& name : world.model_names) {
    if (!IsFaulty(world, name)) {
      EXPECT_FALSE(result->per_model.at(name).failed) << name;
    }
  }
}

TEST(ChaosTest, MabSurvivesTwoFaultyArms) {
  llm::FaultConfig faults;
  faults.fail_after_tokens = 1;  // first pull succeeds, every later one dies
  auto world = MakeChaosWorld(/*num_faulty=*/2, faults);

  core::MabOrchestrator::Config config;
  config.weights = DefaultWeights();
  config.token_budget = 400;
  config.chunk_tokens = 16;
  core::MabOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, config);

  auto result = orchestrator.Run(world.prompt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->answer.empty());
  EXPECT_FALSE(IsFaulty(world, result->best_model));
  EXPECT_FALSE(result->per_model.at(result->best_model).failed);
  EXPECT_LE(result->total_tokens,
            config.token_budget + world.model_names.size() *
                                      config.chunk_tokens);
}

TEST(ChaosTest, HybridSurvivesTwoMidStreamDeaths) {
  llm::FaultConfig faults;
  faults.fail_after_tokens = 6;  // dies during phase-1 screening
  auto world = MakeChaosWorld(/*num_faulty=*/2, faults);

  core::HybridOrchestrator::Config config;
  config.weights = DefaultWeights();
  config.token_budget = 400;
  core::HybridOrchestrator orchestrator(world.runtime.get(),
                                        world.model_names, world.embedder,
                                        config);

  size_t failure_events = 0;
  auto result = orchestrator.Run(
      world.prompt, [&](const OrchestratorEvent& event) {
        if (event.type == EventType::kFailure) ++failure_events;
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->answer.empty());
  EXPECT_FALSE(IsFaulty(world, result->best_model));
  EXPECT_EQ(failure_events, 2u);
  for (const auto& name : world.faulty_names) {
    EXPECT_TRUE(result->per_model.at(name).failed) << name;
  }
  EXPECT_LE(result->total_tokens,
            config.token_budget + world.model_names.size() * 16);
}

TEST(ChaosTest, AllModelsDeadReturnsTypedErrorNotAHang) {
  llm::FaultConfig faults;
  faults.fail_after_tokens = 1;
  auto world = MakeChaosWorld(/*num_faulty=*/5, faults);

  core::OuaOrchestrator::Config oua_config;
  oua_config.weights = DefaultWeights();
  oua_config.token_budget = 400;
  core::OuaOrchestrator oua(world.runtime.get(), world.model_names,
                            world.embedder, oua_config);
  auto oua_result = oua.Run(world.prompt);
  ASSERT_FALSE(oua_result.ok());
  EXPECT_NE(oua_result.status().message().find("all 5 models failed"),
            std::string::npos)
      << oua_result.status().ToString();

  core::MabOrchestrator::Config mab_config;
  mab_config.weights = DefaultWeights();
  mab_config.token_budget = 400;
  core::MabOrchestrator mab(world.runtime.get(), world.model_names,
                            world.embedder, mab_config);
  auto mab_result = mab.Run(world.prompt);
  ASSERT_FALSE(mab_result.ok());
  EXPECT_NE(mab_result.status().message().find("all 5 models failed"),
            std::string::npos)
      << mab_result.status().ToString();

  core::HybridOrchestrator::Config hybrid_config;
  hybrid_config.weights = DefaultWeights();
  hybrid_config.token_budget = 400;
  core::HybridOrchestrator hybrid(world.runtime.get(), world.model_names,
                                  world.embedder, hybrid_config);
  auto hybrid_result = hybrid.Run(world.prompt);
  ASSERT_FALSE(hybrid_result.ok());
  EXPECT_NE(hybrid_result.status().message().find("all 5 models failed"),
            std::string::npos)
      << hybrid_result.status().ToString();
}

TEST(ChaosTest, AllStartsRefusedReturnsTypedError) {
  llm::FaultConfig faults;
  faults.refuse_start_prob = 1.0;
  auto world = MakeChaosWorld(/*num_faulty=*/5, faults);

  core::OuaOrchestrator::Config config;
  config.weights = DefaultWeights();
  core::OuaOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, config);
  auto result = orchestrator.Run(world.prompt);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("no model could start"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ChaosTest, SingleModelFailureIsTypedAndNamesTheRound) {
  llm::FaultConfig faults;
  faults.fail_after_tokens = 6;
  auto world = MakeChaosWorld(/*num_faulty=*/1, faults);

  core::SingleModelOrchestrator::Config config;
  config.weights = DefaultWeights();
  config.chunk_tokens = 8;
  core::SingleModelOrchestrator orchestrator(
      world.runtime.get(), world.faulty_names[0], world.embedder, config);

  size_t failure_events = 0;
  auto result = orchestrator.Run(
      world.prompt, [&](const OrchestratorEvent& event) {
        if (event.type == EventType::kFailure) ++failure_events;
      });
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().message();
  EXPECT_NE(message.find("single-model orchestration failed"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("model '" + world.faulty_names[0] + "'"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("round"), std::string::npos) << message;
  EXPECT_EQ(failure_events, 1u);
}

TEST(ChaosTest, RetriesChargeSimulatedTimeNotWallClock) {
  llm::FaultConfig faults;
  faults.chunk_error_prob = 0.3;
  faults.latency_spike_prob = 0.2;
  faults.latency_spike_seconds = 2.0;
  auto world = MakeChaosWorld(/*num_faulty=*/2, faults);

  core::OuaOrchestrator::Config config;
  config.weights = DefaultWeights();
  config.token_budget = 300;
  core::OuaOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                     world.embedder, config);
  auto result = orchestrator.Run(world.prompt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Transient faults are absorbed; injected latency and backoff show up in
  // the simulated wall clock.
  EXPECT_GT(result->simulated_seconds, 0.0);
  for (const auto& name : world.faulty_names) {
    auto model = world.registry->Get(name);
    ASSERT_TRUE(model.ok());
    auto resilient = std::dynamic_pointer_cast<llm::ResilientModel>(*model);
    ASSERT_NE(resilient, nullptr);
    EXPECT_EQ(resilient->health().circuit,
              llm::CircuitBreaker::State::kClosed)
        << name;
  }
}

}  // namespace
}  // namespace llmms
