// Deterministic fuzz sweeps over hostile inputs: parsers and interpreters
// must never crash and must fail with typed statuses, not garbage state.

#include <gtest/gtest.h>

#include "llmms/app/http.h"
#include "llmms/app/nl_config.h"
#include "llmms/app/sse.h"
#include "llmms/common/fs.h"
#include "llmms/common/json.h"
#include "llmms/common/rng.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/tokenizer/bpe_tokenizer.h"
#include "llmms/vectordb/wal.h"

namespace llmms {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t n =
      static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(max_len)));
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng->UniformInt(0, 255)));
  }
  return out;
}

std::string RandomAsciiSoup(Rng* rng, size_t max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz 0123456789{}[]\":,.\\/?\r\n-";
  const size_t n =
      static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(max_len)));
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        kAlphabet[rng->UniformInt(0, sizeof(kAlphabet) - 2)]);
  }
  return out;
}

TEST(FuzzTest, JsonParserSurvivesRandomBytes) {
  Rng rng(0xF022);
  for (int i = 0; i < 2000; ++i) {
    (void)Json::Parse(RandomBytes(&rng, 200));
    (void)Json::Parse(RandomAsciiSoup(&rng, 200));
  }
  SUCCEED();
}

TEST(FuzzTest, JsonParserSurvivesMutatedValidDocuments) {
  Rng rng(0xF023);
  const std::string valid =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":"d\ne"},"n":-12})";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const size_t edits = static_cast<size_t>(rng.UniformInt(1, 5));
    for (size_t e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    auto parsed = Json::Parse(mutated);
    if (parsed.ok()) {
      // Whatever parsed must serialize and re-parse to itself.
      auto round = Json::Parse(parsed->Dump());
      ASSERT_TRUE(round.ok());
      EXPECT_EQ(*round, *parsed);
    }
  }
}

TEST(FuzzTest, HttpRequestParserSurvivesRandomBytes) {
  Rng rng(0xF024);
  for (int i = 0; i < 2000; ++i) {
    (void)app::ParseHttpRequest(RandomBytes(&rng, 300));
    (void)app::ParseHttpRequest(RandomAsciiSoup(&rng, 300));
    (void)app::ParseHttpResponse(RandomBytes(&rng, 300));
    (void)app::ParseHttpResponse(RandomAsciiSoup(&rng, 300));
  }
  SUCCEED();
}

TEST(FuzzTest, HttpRequestParserSurvivesMutatedValidRequests) {
  Rng rng(0xF025);
  const std::string valid =
      "POST /api/query?stream=1 HTTP/1.1\r\nhost: x\r\ncontent-length: "
      "4\r\n\r\nbody";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    (void)app::ParseHttpRequest(mutated);
  }
  SUCCEED();
}

TEST(FuzzTest, SseDecoderSurvivesAnything) {
  Rng rng(0xF026);
  for (int i = 0; i < 2000; ++i) {
    (void)app::DecodeSse(RandomBytes(&rng, 300));
    (void)app::DecodeSse(RandomAsciiSoup(&rng, 300));
  }
  SUCCEED();
}

TEST(FuzzTest, SseEncodeDecodeRoundTripsRandomPayloads) {
  Rng rng(0xF027);
  for (int i = 0; i < 500; ++i) {
    app::SseEvent event;
    event.event = "e";
    // SSE data cannot carry raw '\r'; the encoder splits on '\n'.
    std::string data = RandomAsciiSoup(&rng, 100);
    data.erase(std::remove(data.begin(), data.end(), '\r'), data.end());
    event.data = data;
    const auto decoded = app::DecodeSse(app::EncodeSse(event));
    ASSERT_EQ(decoded.size(), 1u) << data;
    EXPECT_EQ(decoded[0].data, data);
  }
}

TEST(FuzzTest, IncrementalSseDecoderMatchesOneShotAtRandomSplits) {
  Rng rng(0xF02B);
  for (int i = 0; i < 1000; ++i) {
    const std::string wire = rng.Bernoulli(0.5) ? RandomBytes(&rng, 300)
                                                : RandomAsciiSoup(&rng, 300);
    const auto whole = app::DecodeSse(wire);
    app::SseDecoder decoder;
    std::vector<app::SseEvent> incremental;
    size_t pos = 0;
    while (pos < wire.size()) {
      const size_t take = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(wire.size() - pos)));
      for (auto& event : app::DecodeSseIncremental(
               std::string_view(wire).substr(pos, take), &decoder)) {
        incremental.push_back(std::move(event));
      }
      pos += take;
    }
    // Slicing must never change what is decoded.
    ASSERT_EQ(incremental.size(), whole.size());
    for (size_t e = 0; e < whole.size(); ++e) {
      EXPECT_EQ(incremental[e].event, whole[e].event);
      EXPECT_EQ(incremental[e].data, whole[e].data);
      EXPECT_EQ(incremental[e].id, whole[e].id);
    }
  }
}

TEST(FuzzTest, ChunkedDecoderSurvivesRandomBytes) {
  Rng rng(0xF02C);
  for (int i = 0; i < 2000; ++i) {
    app::ChunkedDecoder decoder;
    std::string out;
    // Feeds after a decode error must keep failing, never crash.
    (void)decoder.Feed(RandomBytes(&rng, 200), &out);
    (void)decoder.Feed(RandomAsciiSoup(&rng, 200), &out);
  }
  SUCCEED();
}

TEST(FuzzTest, ChunkedDecoderRoundTripsRandomPayloadsAtRandomSplits) {
  Rng rng(0xF02D);
  for (int i = 0; i < 500; ++i) {
    // Build a valid chunked encoding of a random payload.
    const std::string payload = RandomBytes(&rng, 200);
    std::string wire;
    size_t pos = 0;
    while (pos < payload.size()) {
      const size_t take = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(payload.size() - pos)));
      char size_line[32];
      std::snprintf(size_line, sizeof(size_line), "%zx\r\n", take);
      wire += size_line;
      wire.append(payload, pos, take);
      wire += "\r\n";
      pos += take;
    }
    wire += "0\r\n\r\n";

    app::ChunkedDecoder decoder;
    std::string out;
    size_t fed = 0;
    while (fed < wire.size()) {
      const size_t take = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(wire.size() - fed)));
      ASSERT_TRUE(
          decoder.Feed(std::string_view(wire).substr(fed, take), &out).ok());
      fed += take;
    }
    EXPECT_EQ(out, payload);
    EXPECT_TRUE(decoder.done());
  }
}

TEST(FuzzTest, NlConfigNeverCrashesAndPoolStaysValid) {
  Rng rng(0xF028);
  const std::vector<app::NlModelInfo> models = {
      {"llama3:8b", 75.0}, {"mistral:7b", 95.0}, {"qwen2:7b", 85.0}};
  static const char* kFragments[] = {
      "avoid", "use", "the", "bandit", "llama3", "mistral", "qwen2",
      "budget", "512", "tokens", "slow", "models", "only", "prioritize",
      "no", "retrieval", "consensus", "focus", "on", ",", ".", "hybrid"};
  for (int i = 0; i < 2000; ++i) {
    std::string instruction;
    const int words = static_cast<int>(rng.UniformInt(0, 12));
    for (int w = 0; w < words; ++w) {
      if (!instruction.empty()) instruction += ' ';
      instruction += kFragments[rng.UniformInt(0, 21)];
    }
    auto result = app::ApplyNlConfig(
        instruction, core::SearchEngine::QueryOptions{}, models);
    if (result.ok()) {
      // The pool must only ever contain known models, no duplicates.
      ASSERT_FALSE(result->options.models.empty());
      for (const auto& m : result->options.models) {
        bool known = false;
        for (const auto& info : models) known = known || info.name == m;
        EXPECT_TRUE(known) << m << " from: " << instruction;
      }
      EXPECT_GT(result->options.token_budget, 0u) << instruction;
    }
  }
}

TEST(FuzzTest, DatasetLoaderSurvivesMutatedJsonl) {
  Rng rng(0xF029);
  eval::DatasetOptions opts;
  opts.questions_per_domain = 1;
  const auto items = eval::GenerateDataset(opts);
  const std::string path = ::testing::TempDir() + "/fuzz.jsonl";
  ASSERT_TRUE(eval::SaveDatasetJsonl(items, path).ok());
  std::string contents;
  {
    FILE* f = fopen(path.c_str(), "rb");
    char buf[65536];
    size_t n = 0;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
    fclose(f);
  }
  for (int i = 0; i < 200; ++i) {
    std::string mutated = contents;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    {
      FILE* f = fopen(path.c_str(), "wb");
      fwrite(mutated.data(), 1, mutated.size(), f);
      fclose(f);
    }
    auto loaded = eval::LoadDatasetJsonl(path);
    if (loaded.ok()) {
      for (const auto& item : *loaded) {
        EXPECT_FALSE(item.question.empty());
      }
    }
  }
  std::remove(path.c_str());
}

// WAL record-parser seeds: recovery must treat anything on disk — truncated
// length prefixes, corrupt checksums, absurd declared lengths — as a torn
// tail or typed error, never as a crash or an over-read.
TEST(FuzzTest, WalReplaySurvivesTruncatedLengthPrefix) {
  RealFileSystem fs;
  const std::string path = ::testing::TempDir() + "/fuzz_wal_trunc.log";
  vectordb::WriteAheadLog::Options wal_opts;
  {
    (void)fs.Remove(path);
    auto log = vectordb::WriteAheadLog::Open(&fs, path, wal_opts);
    ASSERT_TRUE(log.ok());
    vectordb::VectorRecord record;
    record.id = "seed";
    record.vector = {0.1f, 0.2f, 0.3f};
    ASSERT_TRUE((*log)->AppendUpsert(record).ok());
    ASSERT_TRUE((*log)->Sync().ok());
  }
  auto contents = fs.ReadFile(path);
  ASSERT_TRUE(contents.ok());
  vectordb::Collection::Options copts;
  copts.dimension = 3;
  copts.index_kind = vectordb::IndexKind::kFlat;
  // Every truncation inside the 16-byte frame header (including mid-length-
  // prefix) is a torn tail.
  for (size_t keep = 0; keep < 16 && keep < contents->size(); ++keep) {
    ASSERT_TRUE(fs.Truncate(path, keep).ok());
    vectordb::Collection collection("t", copts);
    auto stats = vectordb::WriteAheadLog::Replay(&fs, path, &collection);
    ASSERT_TRUE(stats.ok()) << "keep=" << keep;
    EXPECT_EQ(stats->upserts, 0u) << "keep=" << keep;
    EXPECT_EQ(stats->torn_tail, keep != 0) << "keep=" << keep;
  }
  (void)fs.Remove(path);
}

TEST(FuzzTest, WalReplaySurvivesCorruptChecksumsAndRandomMutations) {
  Rng rng(0xF02B);
  RealFileSystem fs;
  const std::string path = ::testing::TempDir() + "/fuzz_wal_mut.log";
  vectordb::WriteAheadLog::Options wal_opts;
  std::string pristine;
  {
    (void)fs.Remove(path);
    auto log = vectordb::WriteAheadLog::Open(&fs, path, wal_opts);
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 4; ++i) {
      vectordb::VectorRecord record;
      record.id = "r" + std::to_string(i);
      record.vector = {0.1f * static_cast<float>(i), 0.5f, 0.9f};
      record.document = "payload " + std::string(20, 'x');
      ASSERT_TRUE((*log)->AppendUpsert(record).ok());
    }
    ASSERT_TRUE((*log)->Sync().ok());
    auto contents = fs.ReadFile(path);
    ASSERT_TRUE(contents.ok());
    pristine = *contents;
  }
  vectordb::Collection::Options copts;
  copts.dimension = 3;
  copts.index_kind = vectordb::IndexKind::kFlat;
  for (int i = 0; i < 300; ++i) {
    std::string mutated = pristine;
    // Flip one random byte (often inside a checksum or length field).
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] ^= static_cast<char>(1 << rng.UniformInt(0, 7));
    {
      auto out = fs.OpenTrunc(path);
      ASSERT_TRUE(out.ok());
      ASSERT_TRUE((*out)->Append(mutated).ok());
    }
    vectordb::Collection collection("m", copts);
    auto stats = vectordb::WriteAheadLog::Replay(&fs, path, &collection);
    // A flipped checksum/length is a torn tail (replay stops, Status OK); a
    // flip inside a payload that survives its checksum is vanishingly rare
    // but must still surface as a typed error, never a crash.
    if (stats.ok()) {
      EXPECT_LE(stats->upserts, 4u);
      EXPECT_EQ(collection.size(), stats->upserts);
    } else {
      EXPECT_TRUE(stats.status().IsIOError());
    }
  }
  (void)fs.Remove(path);
}

TEST(FuzzTest, WalReplaySurvivesGiantDeclaredLength) {
  RealFileSystem fs;
  const std::string path = ::testing::TempDir() + "/fuzz_wal_giant.log";
  // Hand-build frames whose length prefix declares far more payload than the
  // file holds — including values chosen to wrap 32-bit and size_t math.
  const uint32_t kHostileLengths[] = {0xFFFFFFFFu, 0xFFFFFFF0u, 0x80000000u,
                                      0x7FFFFFFFu, 1u << 20};
  vectordb::Collection::Options copts;
  copts.dimension = 3;
  copts.index_kind = vectordb::IndexKind::kFlat;
  for (const uint32_t len : kHostileLengths) {
    std::string frame;
    frame.append(reinterpret_cast<const char*>(&len), 4);  // declared length
    frame.append(12, '\x5a');  // checksum + sequence, then no payload at all
    {
      auto out = fs.OpenTrunc(path);
      ASSERT_TRUE(out.ok());
      ASSERT_TRUE((*out)->Append(frame).ok());
    }
    vectordb::Collection collection("g", copts);
    auto stats = vectordb::WriteAheadLog::Replay(&fs, path, &collection);
    ASSERT_TRUE(stats.ok()) << "len=" << len;
    EXPECT_TRUE(stats->torn_tail) << "len=" << len;
    EXPECT_EQ(stats->upserts, 0u) << "len=" << len;
    EXPECT_EQ(collection.size(), 0u) << "len=" << len;
  }
  (void)fs.Remove(path);
}

TEST(FuzzTest, WalReplaySurvivesRandomByteSoup) {
  Rng rng(0xF02C);
  RealFileSystem fs;
  const std::string path = ::testing::TempDir() + "/fuzz_wal_soup.log";
  vectordb::Collection::Options copts;
  copts.dimension = 3;
  copts.index_kind = vectordb::IndexKind::kFlat;
  for (int i = 0; i < 200; ++i) {
    const std::string soup = RandomBytes(&rng, 400);
    {
      auto out = fs.OpenTrunc(path);
      ASSERT_TRUE(out.ok());
      ASSERT_TRUE((*out)->Append(soup).ok());
    }
    vectordb::Collection collection("s", copts);
    auto stats = vectordb::WriteAheadLog::Replay(&fs, path, &collection);
    if (stats.ok()) {
      EXPECT_EQ(collection.size(), stats->upserts);
    } else {
      EXPECT_TRUE(stats.status().IsIOError());
    }
  }
  (void)fs.Remove(path);
}

TEST(FuzzTest, BpeSurvivesBinaryInput) {
  Rng rng(0xF02A);
  tokenizer::BpeTokenizer tok;
  tokenizer::BpeTokenizer::TrainOptions opts;
  opts.vocab_size = 300;
  ASSERT_TRUE(tok.Train({"some ordinary training text here"}, opts).ok());
  for (int i = 0; i < 500; ++i) {
    const std::string input = RandomBytes(&rng, 100);
    const auto ids = tok.Encode(input);
    const std::string decoded = tok.Decode(ids);
    // Byte-level BPE must round-trip anything modulo whitespace runs.
    EXPECT_LE(decoded.size(), input.size());
  }
}

}  // namespace
}  // namespace llmms
