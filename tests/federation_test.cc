// Federated model integration (§9.5): node B hosts models behind the HTTP
// API; node A registers a RemoteModel adapter for one of them and
// orchestrates it together with its local models — across a real socket.
// The streaming conformance tests pin down the wire protocol of DESIGN.md
// §9: chunk-for-chunk delivery with identical token accounting, the
// one-shot fallback for pre-streaming peers, and mid-stream peer death as
// a quarantinable stream error rather than a hang.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "llmms/app/http_server.h"
#include "llmms/app/remote_model.h"
#include "llmms/app/sse.h"
#include "llmms/core/oua.h"
#include "llmms/llm/fault_injection.h"
#include "testutil.h"

namespace llmms::app {
namespace {

// A model whose stream emits one immediate chunk and then blocks until the
// test opens the gate. Registering it on the remote node proves the first
// chunk crosses the federation wire while the remote generation is still
// in flight — deterministically, with no timing heuristics.
class GatedModel final : public llm::LanguageModel {
 public:
  explicit GatedModel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  uint64_t memory_mb() const override { return 1; }
  double tokens_per_second() const override { return 100.0; }
  size_t context_window() const override { return 4096; }

  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      gate_open_ = true;
    }
    gate_cv_.notify_all();
  }

  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest&) const override {
    return {std::make_unique<Stream>(this)};
  }

 private:
  class Stream final : public llm::GenerationStream {
   public:
    explicit Stream(const GatedModel* model) : model_(model) {}

    StatusOr<llm::Chunk> NextChunk(size_t max_tokens) override {
      if (max_tokens == 0) {
        return Status::InvalidArgument("max_tokens must be positive");
      }
      llm::Chunk chunk;
      if (step_ == 0) {
        step_ = 1;
        chunk.text = "alpha beta gamma";
        chunk.num_tokens = 3;
      } else if (step_ == 1) {
        std::unique_lock<std::mutex> lock(model_->mutex_);
        if (!model_->gate_cv_.wait_for(
                lock, std::chrono::seconds(20),
                [this] { return model_->gate_open_; })) {
          return Status::Internal("gate never opened — test bug");
        }
        step_ = 2;
        chunk.text = " delta epsilon";
        chunk.num_tokens = 2;
        chunk.done = true;
        chunk.stop_reason = llm::StopReason::kStop;
      } else {
        chunk.done = true;
        chunk.stop_reason = llm::StopReason::kStop;
      }
      text_ += chunk.text;
      tokens_ += chunk.num_tokens;
      if (chunk.done) finished_ = true;
      return {std::move(chunk)};
    }

    const std::string& text() const override { return text_; }
    size_t tokens_generated() const override { return tokens_; }
    bool finished() const override { return finished_; }
    llm::StopReason stop_reason() const override {
      return llm::StopReason::kStop;
    }

   private:
    const GatedModel* model_;
    int step_ = 0;
    std::string text_;
    size_t tokens_ = 0;
    bool finished_ = false;
  };

  std::string name_;
  mutable std::mutex mutex_;
  mutable std::condition_variable gate_cv_;
  bool gate_open_ = false;
};

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // --- Node B: the remote host serving the default three models. ---
    remote_world_ = testutil::MakeWorld(4);
    remote_db_ = std::make_shared<vectordb::VectorDatabase>();
    remote_sessions_ = std::make_shared<session::SessionStore>();
    remote_engine_ = std::make_unique<core::SearchEngine>(
        remote_world_.runtime.get(), remote_world_.embedder, remote_db_,
        remote_sessions_);
    remote_service_ = std::make_unique<ApiService>(remote_engine_.get());
    remote_server_ = std::make_unique<HttpServer>(remote_service_.get());
    ASSERT_TRUE(remote_server_->Start(0).ok());
  }

  void TearDown() override { remote_server_->Stop(); }

  testutil::World remote_world_;
  std::shared_ptr<vectordb::VectorDatabase> remote_db_;
  std::shared_ptr<session::SessionStore> remote_sessions_;
  std::unique_ptr<core::SearchEngine> remote_engine_;
  std::unique_ptr<ApiService> remote_service_;
  std::unique_ptr<HttpServer> remote_server_;
};

TEST_F(FederationTest, GenerateEndpointServesCompletions) {
  Json body = Json::MakeObject();
  body.Set("model", "mistral:7b");
  body.Set("prompt", remote_world_.dataset[0].question);
  auto response = HttpFetch("127.0.0.1", remote_server_->port(), "POST",
                            "/api/generate", body.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto result = Json::Parse(response->body);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)["ok"].AsBool());
  EXPECT_FALSE((*result)["text"].AsString().empty());
  EXPECT_GT((*result)["tokens"].AsInt(), 0);
  EXPECT_EQ((*result)["done_reason"].AsString(), "stop");
}

TEST_F(FederationTest, GenerateValidatesArguments) {
  Json body = Json::MakeObject();
  body.Set("model", "no-such-model");
  body.Set("prompt", "hello");
  auto response = HttpFetch("127.0.0.1", remote_server_->port(), "POST",
                            "/api/generate", body.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->status, 200);
}

TEST_F(FederationTest, ModelInfoEndpoint) {
  Json body = Json::MakeObject();
  body.Set("model", "qwen2:7b");
  auto response = HttpFetch("127.0.0.1", remote_server_->port(), "POST",
                            "/api/model_info", body.Dump());
  ASSERT_TRUE(response.ok());
  auto info = Json::Parse(response->body);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE((*info)["ok"].AsBool());
  EXPECT_GT((*info)["tokens_per_second"].AsDouble(), 0.0);
  EXPECT_GT((*info)["context_window"].AsInt(), 0);
  EXPECT_TRUE((*info)["loaded"].AsBool());
}

TEST_F(FederationTest, ConnectFetchesMetadata) {
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b");
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ((*remote)->remote_name(), "mistral:7b");
  EXPECT_NE((*remote)->name().find("mistral:7b@127.0.0.1"),
            std::string::npos);
  EXPECT_EQ((*remote)->memory_mb(), 0u);  // weights live remotely
  EXPECT_DOUBLE_EQ((*remote)->tokens_per_second(), 95.0);
}

TEST_F(FederationTest, ConnectRejectsUnknownModel) {
  EXPECT_FALSE(RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                    "ghost:13b")
                   .ok());
  EXPECT_FALSE(RemoteModel::Connect("127.0.0.1", 1, "mistral:7b").ok());
}

TEST_F(FederationTest, RemoteStreamMatchesRemoteExecution) {
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-mistral");
  ASSERT_TRUE(remote.ok());
  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[1].question;
  auto via_adapter = (*remote)->Generate(request);
  ASSERT_TRUE(via_adapter.ok());
  auto direct = remote_world_.runtime->Generate("mistral:7b", request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_adapter->text, direct->text);
  EXPECT_EQ(via_adapter->num_tokens, direct->num_tokens);
  EXPECT_EQ(via_adapter->stop_reason, llm::StopReason::kStop);
}

// ----------------------------------------- streaming wire conformance
TEST_F(FederationTest, StreamingEndpointSpeaksTheWireProtocol) {
  Json body = Json::MakeObject();
  body.Set("model", "mistral:7b");
  body.Set("prompt", remote_world_.dataset[0].question);
  body.Set("chunk_tokens", 4);  // small frames force several chunk events

  auto stream = HttpClientStream::Open(
      "127.0.0.1", remote_server_->port(), "POST", "/api/generate?stream=1",
      body.Dump(), "application/json", /*timeout_seconds=*/5.0,
      /*accept_event_stream=*/true);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->head().status, 200);
  EXPECT_EQ((*stream)->head().headers.at("content-type"),
            "text/event-stream");

  SseDecoder decoder;
  std::vector<SseEvent> events;
  for (;;) {
    auto bytes = (*stream)->Read();
    ASSERT_TRUE(bytes.ok());
    if (bytes->empty()) break;
    for (auto& event : decoder.Feed(*bytes)) {
      events.push_back(std::move(event));
    }
  }
  EXPECT_FALSE(decoder.has_partial_event());

  // Several chunk frames, sequentially numbered, then exactly one typed
  // terminal frame.
  ASSERT_GE(events.size(), 3u);
  const SseEvent& terminal = events.back();
  EXPECT_EQ(terminal.event, "done");
  auto done = Json::Parse(terminal.data);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE((*done)["ok"].AsBool());
  EXPECT_EQ((*done)["done_reason"].AsString(), "stop");
  EXPECT_GT((*done)["simulated_seconds"].AsDouble(), 0.0);

  int64_t chunk_token_sum = 0;
  std::string chunk_text;
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_EQ(events[i].event, "chunk");
    EXPECT_EQ(events[i].id, std::to_string(i));
    auto data = Json::Parse(events[i].data);
    ASSERT_TRUE(data.ok());
    const int64_t tokens = (*data)["tokens"].AsInt();
    EXPECT_GE(tokens, 1);
    EXPECT_LE(tokens, 4);
    chunk_token_sum += tokens;
    // Chunk texts are word runs; consumers join them with single spaces —
    // the same convention local GenerationStream chunks follow.
    if (!chunk_text.empty()) chunk_text += ' ';
    chunk_text += (*data)["text"].AsString();
  }
  EXPECT_EQ(chunk_token_sum, (*done)["tokens"].AsInt());

  // Chunk-for-chunk reassembly must equal the one-shot endpoint's answer,
  // token for token.
  auto oneshot = HttpFetch("127.0.0.1", remote_server_->port(), "POST",
                           "/api/generate", body.Dump());
  ASSERT_TRUE(oneshot.ok());
  auto oneshot_result = Json::Parse(oneshot->body);
  ASSERT_TRUE(oneshot_result.ok());
  EXPECT_EQ(chunk_text, (*oneshot_result)["text"].AsString());
  EXPECT_EQ(chunk_token_sum, (*oneshot_result)["tokens"].AsInt());
}

TEST_F(FederationTest, StreamingAdapterMatchesOneShotAccounting) {
  // The peer advertises streaming, so Connect negotiates the SSE path.
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-mistral");
  ASSERT_TRUE(remote.ok());
  EXPECT_TRUE((*remote)->peer_streaming());

  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[1].question;
  auto streamed = (*remote)->Generate(request);
  ASSERT_TRUE(streamed.ok());
  auto direct = remote_world_.runtime->Generate("mistral:7b", request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(streamed->text, direct->text);
  EXPECT_EQ(streamed->num_tokens, direct->num_tokens);
  EXPECT_EQ(streamed->stop_reason, direct->stop_reason);
}

TEST_F(FederationTest, StreamingChunksCarryWireLatency) {
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-mistral");
  ASSERT_TRUE(remote.ok());
  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[0].question;
  auto stream = (*remote)->StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  auto first = (*stream)->NextChunk(4);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->num_tokens, 0u);
  // TTFT: the first chunk is charged the real wire time it took to arrive
  // (connection setup included), so a slow federation link shows up in the
  // simulated accounting the orchestrators budget with.
  EXPECT_GT(first->extra_seconds, 0.0);
}

TEST_F(FederationTest, OldPeerWithoutStreamingFallsBackToOneShot) {
  // A pre-streaming peer: /api/model_info does not advertise the
  // capability and ?stream=1 is ignored.
  remote_service_->set_streaming_generate(false);
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-old");
  ASSERT_TRUE(remote.ok());
  EXPECT_FALSE((*remote)->peer_streaming());

  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[1].question;
  auto via_adapter = (*remote)->Generate(request);
  ASSERT_TRUE(via_adapter.ok());
  auto direct = remote_world_.runtime->Generate("mistral:7b", request);
  ASSERT_TRUE(direct.ok());
  // Identical token accounting on the fallback path.
  EXPECT_EQ(via_adapter->text, direct->text);
  EXPECT_EQ(via_adapter->num_tokens, direct->num_tokens);
  EXPECT_EQ(via_adapter->stop_reason, direct->stop_reason);
}

TEST_F(FederationTest, StreamingClientSurvivesPeerDowngradeViaContentType) {
  // Negotiated streaming at Connect time, but the peer answers the
  // streaming request with a plain JSON response (downgraded between
  // Connect and Generate). The content-type check catches it and the
  // adapter serves the one-shot payload instead of misparsing it.
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-downgraded");
  ASSERT_TRUE(remote.ok());
  EXPECT_TRUE((*remote)->peer_streaming());
  remote_service_->set_streaming_generate(false);

  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[2].question;
  auto via_adapter = (*remote)->Generate(request);
  ASSERT_TRUE(via_adapter.ok()) << via_adapter.status().ToString();
  auto direct = remote_world_.runtime->Generate("mistral:7b", request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_adapter->text, direct->text);
  EXPECT_EQ(via_adapter->num_tokens, direct->num_tokens);
}

TEST_F(FederationTest, FirstChunkArrivesBeforeRemoteGenerationFinishes) {
  auto gated = std::make_shared<GatedModel>("gated:1b");
  ASSERT_TRUE(remote_world_.registry->Register(gated).ok());
  ASSERT_TRUE(remote_world_.runtime->LoadModel("gated:1b").ok());

  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "gated:1b", "fed-gated");
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE((*remote)->peer_streaming());

  llm::GenerationRequest request;
  request.prompt = "unused";
  auto stream = (*remote)->StartGeneration(request);
  ASSERT_TRUE(stream.ok());

  // The remote generation cannot complete — its second chunk is blocked on
  // the gate — yet the first chunk is already readable here. This is the
  // time-to-first-token property: delivery is chunk-for-chunk, not
  // whole-response.
  auto first = (*stream)->NextChunk(8);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->text, "alpha beta gamma");
  EXPECT_EQ(first->num_tokens, 3u);
  EXPECT_FALSE(first->done);
  EXPECT_FALSE((*stream)->finished());

  gated->OpenGate();
  std::string text = first->text;
  while (!(*stream)->finished()) {
    auto chunk = (*stream)->NextChunk(8);
    ASSERT_TRUE(chunk.ok());
    if (!chunk->text.empty() && !text.empty()) text += ' ';
    text += chunk->text;
  }
  EXPECT_EQ(text, "alpha beta gamma delta epsilon");
  EXPECT_EQ((*stream)->tokens_generated(), 5u);
  EXPECT_EQ((*stream)->stop_reason(), llm::StopReason::kStop);
}

TEST_F(FederationTest, MidStreamPeerDeathIsQuarantinedByOrchestrator) {
  // A remote model that dies mid-generation: the wire carries its chunks
  // until the fault, then a typed `error` frame. On this side that must
  // surface as a stream failure the orchestrator quarantines — the query
  // still completes on the surviving local models.
  llm::FaultConfig faults;
  faults.fail_after_tokens = 5;
  auto profile = llm::DefaultProfiles()[0];
  profile.name = "dying:7b";
  auto dying = std::make_shared<llm::FaultyModel>(
      std::make_shared<llm::SyntheticModel>(profile, remote_world_.knowledge),
      faults);
  ASSERT_TRUE(remote_world_.registry->Register(dying).ok());
  ASSERT_TRUE(remote_world_.runtime->LoadModel("dying:7b").ok());

  auto local_world = testutil::MakeWorld(4);
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "dying:7b", "fed-dying");
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE((*remote)->peer_streaming());
  ASSERT_TRUE(local_world.registry->Register(*remote).ok());
  ASSERT_TRUE(local_world.runtime->LoadModel("fed-dying").ok());

  std::vector<core::OrchestratorEvent> events;
  core::OuaOrchestrator orchestrator(
      local_world.runtime.get(), {"llama3:8b", "qwen2:7b", "fed-dying"},
      local_world.embedder, {});
  auto result = orchestrator.Run(
      local_world.dataset[0].question,
      [&events](const core::OrchestratorEvent& event) {
        events.push_back(event);
      });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
  ASSERT_EQ(result->per_model.size(), 3u);
  EXPECT_TRUE(result->per_model["fed-dying"].failed);
  EXPECT_FALSE(result->per_model["llama3:8b"].failed);
  EXPECT_FALSE(result->per_model["qwen2:7b"].failed);
  bool saw_failure_event = false;
  for (const auto& event : events) {
    saw_failure_event = saw_failure_event ||
                        (event.type == core::EventType::kFailure &&
                         event.model == "fed-dying");
  }
  EXPECT_TRUE(saw_failure_event);
}

TEST_F(FederationTest, AbruptPeerCloseIsATypedErrorNotAHang) {
  // A fake peer that speaks just enough of the protocol to be believed,
  // sends one chunk frame, then drops the connection without the terminal
  // SSE event or the terminal HTTP chunk.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const int fake_port = ntohs(addr.sin_port);

  std::thread fake_peer([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    char buf[4096];
    (void)::recv(fd, buf, sizeof(buf), 0);  // swallow the request
    SseEvent chunk;
    chunk.event = "chunk";
    chunk.data = "{\"text\":\"half an\",\"tokens\":2}";
    const std::string frame = EncodeSse(chunk);
    char size_line[32];
    std::snprintf(size_line, sizeof(size_line), "%zx\r\n", frame.size());
    const std::string wire =
        "HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\n"
        "transfer-encoding: chunked\r\nconnection: close\r\n\r\n" +
        std::string(size_line) + frame + "\r\n";
    (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
    ::close(fd);  // mid-stream death
  });

  auto stream = HttpClientStream::Open(
      "127.0.0.1", fake_port, "POST", "/api/generate?stream=1",
      "{\"model\":\"x\",\"prompt\":\"y\"}", "application/json",
      /*timeout_seconds=*/5.0, /*accept_event_stream=*/true);
  ASSERT_TRUE(stream.ok());

  // Drain: the chunk frame arrives, then the close must surface as a typed
  // IOError within the deadline — never a hang, never a clean end.
  Status error = Status::OK();
  std::string received;
  for (;;) {
    auto bytes = (*stream)->Read();
    if (!bytes.ok()) {
      error = bytes.status();
      break;
    }
    if (bytes->empty()) break;  // would be a (wrong) clean end of stream
    received += *bytes;
  }
  fake_peer.join();
  ::close(listen_fd);
  EXPECT_TRUE(error.IsIOError()) << error.ToString();
  EXPECT_NE(received.find("half an"), std::string::npos);
}

// ----------------------------------------- hedged federation (DESIGN.md §10)

// A second full node, for two-peer hedging tests. Same dataset seed as the
// fixture's node B, so models with the same profile word their answers
// identically on both nodes.
struct TestNode {
  testutil::World world;
  std::shared_ptr<vectordb::VectorDatabase> db;
  std::shared_ptr<session::SessionStore> sessions;
  std::unique_ptr<core::SearchEngine> engine;
  std::unique_ptr<ApiService> service;
  std::unique_ptr<HttpServer> server;

  ~TestNode() {
    if (server != nullptr) server->Stop();
  }
};

std::unique_ptr<TestNode> StartNode() {
  auto node = std::make_unique<TestNode>();
  node->world = testutil::MakeWorld(4);
  node->db = std::make_shared<vectordb::VectorDatabase>();
  node->sessions = std::make_shared<session::SessionStore>();
  node->engine = std::make_unique<core::SearchEngine>(
      node->world.runtime.get(), node->world.embedder, node->db,
      node->sessions);
  node->service = std::make_unique<ApiService>(node->engine.get());
  node->server = std::make_unique<HttpServer>(node->service.get());
  if (!node->server->Start(0).ok()) return nullptr;
  return node;
}

TEST_F(FederationTest, HedgeRaceAdoptsFederatedReplica) {
  // A latency-spiky local model is hedged by a clean replica served by
  // node B across the wire — the "rent a healthy replica from a peer"
  // topology. A spike on the local stream fires the hedge; the federated
  // replica catches up over HTTP, is adopted, and the answer still matches
  // the model's canonical wording byte for byte (same profile, same
  // knowledge, identical token accounting on the wire path).
  auto profile = llm::DefaultProfiles()[0];
  profile.name = "spiky:7b";
  auto clean = std::make_shared<llm::SyntheticModel>(
      profile, remote_world_.knowledge);
  ASSERT_TRUE(remote_world_.registry->Register(clean).ok());
  ASSERT_TRUE(remote_world_.runtime->LoadModel("spiky:7b").ok());

  llm::FaultConfig faults;
  faults.seed = 0xCAFE;
  faults.latency_spike_prob = 0.3;
  faults.latency_spike_seconds = 5.0;
  auto local_world = testutil::MakeWorld(4);
  auto spiky = std::make_shared<llm::FaultyModel>(
      std::make_shared<llm::SyntheticModel>(profile, local_world.knowledge),
      faults);
  auto backup = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "spiky:7b");
  ASSERT_TRUE(backup.ok());

  llm::HedgeConfig hedge;
  hedge.percentile = 0.5;
  hedge.min_samples = 4;
  auto hedged = std::make_shared<llm::HedgedModel>(
      spiky, std::vector<std::shared_ptr<llm::LanguageModel>>{*backup},
      hedge);

  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[0].question;
  auto stream = hedged->StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  size_t tokens = 0;
  bool adopted = false;
  for (size_t i = 0; i < 300 && !(*stream)->finished(); ++i) {
    auto chunk = (*stream)->NextChunk(8);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    tokens += chunk->num_tokens;
    adopted = adopted || chunk->hedge == llm::HedgeOutcome::kBackupWon;
  }
  ASSERT_TRUE((*stream)->finished());

  const auto stats = hedged->stats();
  EXPECT_GE(stats.hedges_launched, 1u);
  EXPECT_GE(stats.hedges_won, 1u) << "spiky local model was never out-raced";
  EXPECT_TRUE(adopted);
  EXPECT_GT(stats.wasted_tokens, 0u);  // the documented hedge overhead

  // The adopted peer words the answer identically, so the race leaves no
  // seam in the emitted text.
  auto direct = remote_world_.runtime->Generate("spiky:7b", request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*stream)->text(), direct->text);
  EXPECT_EQ(tokens, direct->num_tokens);

  // The latency snapshot identifies the peer replica by its derived
  // "<model>@host:port" name.
  const auto latency = hedged->LatencySnapshot();
  ASSERT_EQ(latency.size(), 2u);
  EXPECT_EQ(latency[0].model, "spiky:7b");
  EXPECT_NE(latency[1].model.find("spiky:7b@127.0.0.1"), std::string::npos);
  EXPECT_GT(latency[1].samples, 0u);  // the backup actually raced
}

TEST_F(FederationTest, ConnectHedgedFailsOverMidStreamToOneShotPeer) {
  // The primary peer dies mid-stream; the backup peer is a pre-streaming
  // node (one-shot /api/generate only). The hedged adapter fails over
  // across the protocol difference and still delivers the full answer —
  // token accounting is identical on both wire paths, so adoption is
  // seamless.
  auto profile = llm::DefaultProfiles()[1];
  profile.name = "fragile:7b";
  llm::FaultConfig faults;
  faults.fail_after_tokens = 10;
  auto dying = std::make_shared<llm::FaultyModel>(
      std::make_shared<llm::SyntheticModel>(profile, remote_world_.knowledge),
      faults);
  ASSERT_TRUE(remote_world_.registry->Register(dying).ok());
  ASSERT_TRUE(remote_world_.runtime->LoadModel("fragile:7b").ok());

  auto peer_c = StartNode();
  ASSERT_NE(peer_c, nullptr);
  peer_c->service->set_streaming_generate(false);  // a pre-streaming peer
  auto clean = std::make_shared<llm::SyntheticModel>(
      profile, peer_c->world.knowledge);
  ASSERT_TRUE(peer_c->world.registry->Register(clean).ok());
  ASSERT_TRUE(peer_c->world.runtime->LoadModel("fragile:7b").ok());

  llm::HedgeConfig hedge;
  hedge.min_samples = 1000;  // latency hedging off: pure failover
  auto hedged = RemoteModel::ConnectHedged(
      {"127.0.0.1", remote_server_->port()},
      {{"127.0.0.1", peer_c->server->port()}}, "fragile:7b", "fed-fragile",
      hedge);
  ASSERT_TRUE(hedged.ok()) << hedged.status().ToString();
  EXPECT_TRUE((*hedged)->backups().size() == 1u);

  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[2].question;
  auto stream = (*hedged)->StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  bool saw_failover = false;
  for (size_t i = 0; i < 300 && !(*stream)->finished(); ++i) {
    auto chunk = (*stream)->NextChunk(4);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    saw_failover =
        saw_failover || chunk->hedge == llm::HedgeOutcome::kFailover;
  }
  ASSERT_TRUE((*stream)->finished());
  EXPECT_TRUE(saw_failover);
  EXPECT_EQ((*hedged)->stats().failovers, 1u);
  EXPECT_EQ((*hedged)->stats().hedges_launched, 0u);

  // The full answer, not just the prefix the primary survived for.
  auto direct = peer_c->world.runtime->Generate("fragile:7b", request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*stream)->text(), direct->text);
}

TEST_F(FederationTest, ConnectHedgedRequiresABackupAndReachablePeers) {
  auto no_backups = RemoteModel::ConnectHedged(
      {"127.0.0.1", remote_server_->port()}, {}, "mistral:7b");
  EXPECT_FALSE(no_backups.ok());
  auto dead_backup = RemoteModel::ConnectHedged(
      {"127.0.0.1", remote_server_->port()}, {{"127.0.0.1", 1}},
      "mistral:7b");
  EXPECT_FALSE(dead_backup.ok());
}

TEST_F(FederationTest, RemoteModelJoinsLocalOrchestration) {
  // --- Node A: a local node with two local models + the federated one. ---
  auto local_world = testutil::MakeWorld(4);
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-mistral");
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE(local_world.registry->Register(*remote).ok());
  ASSERT_TRUE(local_world.runtime->LoadModel("fed-mistral").ok());

  core::OuaOrchestrator orchestrator(
      local_world.runtime.get(),
      {"llama3:8b", "qwen2:7b", "fed-mistral"}, local_world.embedder, {});
  auto result = orchestrator.Run(local_world.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
  ASSERT_EQ(result->per_model.size(), 3u);
  EXPECT_GT(result->per_model["fed-mistral"].tokens, 0u);
}

}  // namespace
}  // namespace llmms::app
