// Federated model integration (§9.5): node B hosts models behind the HTTP
// API; node A registers a RemoteModel adapter for one of them and
// orchestrates it together with its local models — across a real socket.

#include <gtest/gtest.h>

#include "llmms/app/http_server.h"
#include "llmms/app/remote_model.h"
#include "llmms/core/oua.h"
#include "testutil.h"

namespace llmms::app {
namespace {

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // --- Node B: the remote host serving the default three models. ---
    remote_world_ = testutil::MakeWorld(4);
    remote_db_ = std::make_shared<vectordb::VectorDatabase>();
    remote_sessions_ = std::make_shared<session::SessionStore>();
    remote_engine_ = std::make_unique<core::SearchEngine>(
        remote_world_.runtime.get(), remote_world_.embedder, remote_db_,
        remote_sessions_);
    remote_service_ = std::make_unique<ApiService>(remote_engine_.get());
    remote_server_ = std::make_unique<HttpServer>(remote_service_.get());
    ASSERT_TRUE(remote_server_->Start(0).ok());
  }

  void TearDown() override { remote_server_->Stop(); }

  testutil::World remote_world_;
  std::shared_ptr<vectordb::VectorDatabase> remote_db_;
  std::shared_ptr<session::SessionStore> remote_sessions_;
  std::unique_ptr<core::SearchEngine> remote_engine_;
  std::unique_ptr<ApiService> remote_service_;
  std::unique_ptr<HttpServer> remote_server_;
};

TEST_F(FederationTest, GenerateEndpointServesCompletions) {
  Json body = Json::MakeObject();
  body.Set("model", "mistral:7b");
  body.Set("prompt", remote_world_.dataset[0].question);
  auto response = HttpFetch("127.0.0.1", remote_server_->port(), "POST",
                            "/api/generate", body.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto result = Json::Parse(response->body);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE((*result)["ok"].AsBool());
  EXPECT_FALSE((*result)["text"].AsString().empty());
  EXPECT_GT((*result)["tokens"].AsInt(), 0);
  EXPECT_EQ((*result)["done_reason"].AsString(), "stop");
}

TEST_F(FederationTest, GenerateValidatesArguments) {
  Json body = Json::MakeObject();
  body.Set("model", "no-such-model");
  body.Set("prompt", "hello");
  auto response = HttpFetch("127.0.0.1", remote_server_->port(), "POST",
                            "/api/generate", body.Dump());
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->status, 200);
}

TEST_F(FederationTest, ModelInfoEndpoint) {
  Json body = Json::MakeObject();
  body.Set("model", "qwen2:7b");
  auto response = HttpFetch("127.0.0.1", remote_server_->port(), "POST",
                            "/api/model_info", body.Dump());
  ASSERT_TRUE(response.ok());
  auto info = Json::Parse(response->body);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE((*info)["ok"].AsBool());
  EXPECT_GT((*info)["tokens_per_second"].AsDouble(), 0.0);
  EXPECT_GT((*info)["context_window"].AsInt(), 0);
  EXPECT_TRUE((*info)["loaded"].AsBool());
}

TEST_F(FederationTest, ConnectFetchesMetadata) {
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b");
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ((*remote)->remote_name(), "mistral:7b");
  EXPECT_NE((*remote)->name().find("mistral:7b@127.0.0.1"),
            std::string::npos);
  EXPECT_EQ((*remote)->memory_mb(), 0u);  // weights live remotely
  EXPECT_DOUBLE_EQ((*remote)->tokens_per_second(), 95.0);
}

TEST_F(FederationTest, ConnectRejectsUnknownModel) {
  EXPECT_FALSE(RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                    "ghost:13b")
                   .ok());
  EXPECT_FALSE(RemoteModel::Connect("127.0.0.1", 1, "mistral:7b").ok());
}

TEST_F(FederationTest, RemoteStreamMatchesRemoteExecution) {
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-mistral");
  ASSERT_TRUE(remote.ok());
  llm::GenerationRequest request;
  request.prompt = remote_world_.dataset[1].question;
  auto via_adapter = (*remote)->Generate(request);
  ASSERT_TRUE(via_adapter.ok());
  auto direct = remote_world_.runtime->Generate("mistral:7b", request);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_adapter->text, direct->text);
  EXPECT_EQ(via_adapter->num_tokens, direct->num_tokens);
  EXPECT_EQ(via_adapter->stop_reason, llm::StopReason::kStop);
}

TEST_F(FederationTest, RemoteModelJoinsLocalOrchestration) {
  // --- Node A: a local node with two local models + the federated one. ---
  auto local_world = testutil::MakeWorld(4);
  auto remote = RemoteModel::Connect("127.0.0.1", remote_server_->port(),
                                     "mistral:7b", "fed-mistral");
  ASSERT_TRUE(remote.ok());
  ASSERT_TRUE(local_world.registry->Register(*remote).ok());
  ASSERT_TRUE(local_world.runtime->LoadModel("fed-mistral").ok());

  core::OuaOrchestrator orchestrator(
      local_world.runtime.get(),
      {"llama3:8b", "qwen2:7b", "fed-mistral"}, local_world.embedder, {});
  auto result = orchestrator.Run(local_world.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
  ASSERT_EQ(result->per_model.size(), 3u);
  EXPECT_GT(result->per_model["fed-mistral"].tokens, 0u);
}

}  // namespace
}  // namespace llmms::app
