#include "llmms/common/json.h"

#include <gtest/gtest.h>

namespace llmms {
namespace {

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->AsBool());
  EXPECT_FALSE(Json::Parse("false")->AsBool(true));
  EXPECT_EQ(Json::Parse("42")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(Json::Parse("-3.5")->AsDouble(), -3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, IntegerVsDouble) {
  EXPECT_TRUE(Json::Parse("7")->is_integer());
  EXPECT_FALSE(Json::Parse("7.0")->is_integer());
}

TEST(JsonTest, ParseNestedStructures) {
  auto doc = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)["a"].Size(), 3u);
  EXPECT_EQ((*doc)["a"].At(2)["b"].AsString(), "c");
  EXPECT_TRUE((*doc)["d"]["e"].is_null());
}

TEST(JsonTest, MissingKeyReturnsNull) {
  auto doc = Json::Parse(R"({"a": 1})");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*doc)["zzz"].is_null());
  EXPECT_FALSE(doc->Contains("zzz"));
  EXPECT_TRUE(doc->Contains("a"));
}

TEST(JsonTest, StringEscapes) {
  auto doc = Json::Parse(R"("line1\nline2\t\"quoted\" \\ A")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "line1\nline2\t\"quoted\" \\ A");
}

TEST(JsonTest, UnicodeEscapeMultibyte) {
  auto doc = Json::Parse(R"("é中")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("-").ok());
  EXPECT_FALSE(Json::Parse("{\"a\": 1,}").ok()) << "trailing comma key";
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, DumpRoundTrip) {
  const std::string text =
      R"({"arr":[1,2.5,"x"],"obj":{"nested":true},"s":"a\nb","z":null})";
  auto doc = Json::Parse(text);
  ASSERT_TRUE(doc.ok());
  auto round = Json::Parse(doc->Dump());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*doc, *round);
}

TEST(JsonTest, DumpEscapesControlCharacters) {
  Json doc(std::string("a\x01") + "b");
  EXPECT_EQ(doc.Dump(), "\"a\\u0001b\"");
}

TEST(JsonTest, BuilderApi) {
  Json obj = Json::MakeObject();
  obj.Set("name", "llm-ms");
  obj.Set("count", 3);
  Json arr = Json::MakeArray();
  arr.Append(1);
  arr.Append("two");
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj["name"].AsString(), "llm-ms");
  EXPECT_EQ(obj["items"].Size(), 2u);
  auto round = Json::Parse(obj.Dump());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(obj, *round);
}

TEST(JsonTest, PrettyPrintParsesBack) {
  Json obj = Json::MakeObject();
  obj.Set("a", Json::MakeArray());
  obj.MutableObject()["a"].Append(1);
  obj.Set("b", "text");
  const std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto round = Json::Parse(pretty);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(obj, *round);
}

TEST(JsonTest, ObjectKeysSortedDeterministically) {
  auto a = Json::Parse(R"({"b":1,"a":2})");
  auto b = Json::Parse(R"({"a":2,"b":1})");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Dump(), b->Dump());
}

TEST(JsonTest, LargeIntegersPreserved) {
  auto doc = Json::Parse("1234567890123");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsInt(), 1234567890123LL);
  EXPECT_EQ(doc->Dump(), "1234567890123");
}

}  // namespace
}  // namespace llmms
