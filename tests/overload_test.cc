// Overload-safety suite for the serving layer (DESIGN.md §12): slow-loris
// socket deadlines, oversized-request rejection, client-disconnect
// cancellation, admission-control shedding, graceful drain, and the
// 4x-overload acceptance bound. Registered under the `overload` ctest label
// and run by the TSan CI job alongside `concurrency`.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "llmms/app/http.h"
#include "llmms/app/http_server.h"
#include "llmms/app/service.h"
#include "llmms/app/sse.h"
#include "llmms/core/search_engine.h"
#include "llmms/llm/fault_injection.h"
#include "testutil.h"

namespace llmms::app {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Polls `pred` until it holds or `timeout_seconds` elapses.
bool WaitFor(const std::function<bool()>& pred, double timeout_seconds) {
  const auto start = Clock::now();
  while (SecondsSince(start) < timeout_seconds) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// A raw client socket the tests drive byte-by-byte (slow-loris, mid-stream
// disconnect) — HttpFetch is too well-behaved to misbehave with.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() { Close(); }

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads to EOF (bounded by `max_seconds` via a socket deadline).
  std::string ReadAll(double max_seconds = 10.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(max_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (max_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string out;
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      out.append(buffer, static_cast<size_t>(n));
    }
    return out;
  }

  // Reads at least `want` bytes (or gives up after 10s).
  std::string ReadSome(size_t want) {
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string out;
    char buffer[1024];
    while (out.size() < want) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      out.append(buffer, static_cast<size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

std::string PostRequest(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nhost: t\r\n"
         "content-type: application/json\r\n"
         "content-length: " + std::to_string(body.size()) + "\r\n"
         "connection: close\r\n\r\n" + body;
}

class OverloadTest : public ::testing::Test {
 protected:
  void StartServer(const HttpServerOptions& options) {
    world_ = testutil::MakeWorld(2);
    db_ = std::make_shared<vectordb::VectorDatabase>();
    sessions_ = std::make_shared<session::SessionStore>();
    engine_ = std::make_unique<core::SearchEngine>(
        world_.runtime.get(), world_.embedder, db_, sessions_);
    service_ = std::make_unique<ApiService>(engine_.get());
    server_ = std::make_unique<HttpServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  Json QueryBody(const std::string& session) {
    Json request = Json::MakeObject();
    request.Set("session", session);
    request.Set("query", world_.dataset[0].question);
    request.Set("budget", 64);
    request.Set("use_rag", false);
    return request;
  }

  testutil::World world_;
  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::shared_ptr<session::SessionStore> sessions_;
  std::unique_ptr<core::SearchEngine> engine_;
  std::unique_ptr<ApiService> service_;
  std::unique_ptr<HttpServer> server_;
};

// A peer that trickles bytes slower than the socket deadline gets 408 and
// frees its worker — it cannot pin the pool.
TEST_F(OverloadTest, SlowLorisTimesOutWith408) {
  HttpServerOptions options;
  options.socket_timeout_seconds = 0.3;
  StartServer(options);

  RawClient loris(server_->port());
  ASSERT_TRUE(loris.connected());
  ASSERT_TRUE(loris.Send("POST /api/query HTTP/1.1\r\nhost:"));  // ...crickets

  const std::string response = loris.ReadAll(5.0);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  EXPECT_GE(server_->stats().timeouts.load(), 1u);
  EXPECT_TRUE(WaitFor([&]() { return server_->stats().in_flight.load() == 0; },
                      5.0));
}

// A body larger than the cap is rejected with 413 as soon as Content-Length
// announces it — before the body is pulled off the wire.
TEST_F(OverloadTest, OversizedBodyRejectedWith413) {
  HttpServerOptions options;
  options.max_body_bytes = 1024;
  StartServer(options);

  const std::string big(8 * 1024, 'x');
  auto response = HttpFetch("127.0.0.1", server_->port(), "POST",
                            "/api/upload", big);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
  EXPECT_GE(server_->stats().rejected_oversize.load(), 1u);
}

// A head that never terminates within the cap is rejected, not buffered
// forever.
TEST_F(OverloadTest, OversizedHeadRejectedWith413) {
  HttpServerOptions options;
  options.max_head_bytes = 1024;
  StartServer(options);

  RawClient client(server_->port());
  ASSERT_TRUE(client.connected());
  std::string junk = "GET /api/health HTTP/1.1\r\n";
  junk += "x-padding: " + std::string(4 * 1024, 'a') + "\r\n";
  ASSERT_TRUE(client.Send(junk));  // no terminating blank line needed
  const std::string response = client.ReadAll(5.0);
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  EXPECT_GE(server_->stats().rejected_oversize.load(), 1u);
}

// The request's wall-clock budget starts at admission: a request whose
// deadline has passed by the time the engine would run answers 504 without
// generating anything.
TEST_F(OverloadTest, ExpiredDeadlineAnswers504) {
  HttpServerOptions options;
  options.request_timeout_seconds = 0.1;
  StartServer(options);

  RawClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // Let the admission-time deadline lapse before the request arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(client.Send(PostRequest("/api/query", QueryBody("d").Dump())));
  const std::string response = client.ReadAll(5.0);
  EXPECT_NE(response.find("504"), std::string::npos) << response;
  EXPECT_NE(response.find("DeadlineExceeded"), std::string::npos) << response;
  EXPECT_GE(server_->stats().timeouts.load(), 1u);
}

// Service-level twin: an expired context stops generation through the
// orchestrator loop with a typed error, not a 200 built from partial output.
TEST_F(OverloadTest, ExpiredContextUnwindsGenerationTyped) {
  HttpServerOptions options;
  StartServer(options);

  auto ctx = RequestContext::WithTimeout(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const Json result =
      service_->HandleQuery(QueryBody("svc"), StreamCallback(), ctx);
  ASSERT_FALSE(result["ok"].AsBool());
  EXPECT_EQ(result["error"]["code"].AsString(), "DeadlineExceeded");

  Json generate = Json::MakeObject();
  generate.Set("model", world_.model_names[0]);
  generate.Set("prompt", "hello");
  generate.Set("max_tokens", 64);
  const Json gen_result = service_->HandleGenerate(generate, ctx);
  ASSERT_FALSE(gen_result["ok"].AsBool());
  EXPECT_EQ(gen_result["error"]["code"].AsString(), "DeadlineExceeded");
}

// World whose models inject a latency spike on every chunk, served with
// real pacing — each flushed SSE frame is followed by its simulated latency
// in real time. Used both to verify pacing and to make mid-stream
// disconnection deterministic (the stream is guaranteed to still be on the
// wire when the client walks away).
class PacedOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = testutil::MakeWorld(2);
    auto registry = std::make_shared<llm::ModelRegistry>();
    llm::FaultConfig faults;
    faults.latency_spike_prob = 1.0;
    faults.latency_spike_seconds = 0.05;
    for (const auto& profile : llm::DefaultProfiles()) {
      auto synthetic =
          std::make_shared<llm::SyntheticModel>(profile, world_.knowledge);
      ASSERT_TRUE(registry
                      ->Register(std::make_shared<llm::FaultyModel>(
                          std::move(synthetic), faults))
                      .ok());
    }
    runtime_ =
        std::make_unique<llm::ModelRuntime>(registry, world_.hardware, 4);
    for (const auto& name : world_.model_names) {
      ASSERT_TRUE(runtime_->LoadModel(name).ok());
    }
    db_ = std::make_shared<vectordb::VectorDatabase>();
    sessions_ = std::make_shared<session::SessionStore>();
    engine_ = std::make_unique<core::SearchEngine>(
        runtime_.get(), world_.embedder, db_, sessions_);
    service_ = std::make_unique<ApiService>(engine_.get());
    HttpServerOptions options;
    options.pace_scale = 1.0;
    server_ = std::make_unique<HttpServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start(0).ok());
  }

  void TearDown() override { server_->Stop(); }

  Json GenerateBody(size_t max_tokens, size_t chunk_tokens) {
    Json body = Json::MakeObject();
    body.Set("model", world_.model_names[0]);
    body.Set("prompt", "stream me a long paced answer");
    body.Set("max_tokens", max_tokens);
    body.Set("chunk_tokens", chunk_tokens);
    return body;
  }

  testutil::World world_;
  std::unique_ptr<llm::ModelRuntime> runtime_;
  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::shared_ptr<session::SessionStore> sessions_;
  std::unique_ptr<core::SearchEngine> engine_;
  std::unique_ptr<ApiService> service_;
  std::unique_ptr<HttpServer> server_;
};

// A client that walks away mid-SSE cancels the in-flight generation at the
// next chunk boundary — the server does not keep generating for nobody.
// Pacing guarantees the stream is still live when the client disconnects.
TEST_F(PacedOverloadTest, ClientDisconnectMidStreamCancelsGeneration) {
  RawClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(PostRequest(
      "/api/generate?stream=1", GenerateBody(4096, 1).Dump())));
  // Take a few frames so the stream is demonstrably live, then vanish. The
  // server's next send into the dead socket fails and cancels the context.
  ASSERT_FALSE(client.ReadSome(256).empty());
  client.Close();

  EXPECT_TRUE(WaitFor(
      [&]() { return server_->stats().cancelled.load() >= 1; }, 15.0));
  EXPECT_TRUE(WaitFor([&]() { return server_->stats().in_flight.load() == 0; },
                      15.0));
}

// Streamed-generation pacing: with pace_scale > 0 each flushed chunk is
// followed by a scaled real-time delay matching its simulated latency
// (`extra_seconds`), so wire delivery takes at least the paced total
// instead of arriving as one burst.
TEST_F(PacedOverloadTest, PacedStreamingSlowsWireDelivery) {
  const auto start = Clock::now();
  auto response = HttpFetch("127.0.0.1", server_->port(), "POST",
                            "/api/generate?stream=1",
                            GenerateBody(32, 8).Dump(),
                            "application/json", 30.0);
  const double elapsed = SecondsSince(start);
  ASSERT_TRUE(response.ok());

  double advertised = 0.0;
  size_t chunk_frames = 0;
  for (const auto& frame : DecodeSse(response->body)) {
    if (frame.event != "chunk") continue;
    ++chunk_frames;
    auto event = Json::Parse(frame.data);
    ASSERT_TRUE(event.ok());
    if (event->Contains("extra_seconds")) {
      advertised += (*event)["extra_seconds"].AsDouble();
    }
  }
  ASSERT_GT(chunk_frames, 1u);
  ASSERT_GT(advertised, 0.0);
  // The wire must have actually slowed down: at least half the advertised
  // simulated latency elapsed for real (half, to absorb scheduler slop).
  EXPECT_GE(elapsed, 0.5 * advertised);
}

// With the single worker pinned and the admission queue full, the next
// connection is shed immediately with 503 + Retry-After; once the worker
// frees up, the queued request is still served.
TEST_F(OverloadTest, SaturationShedsWith503RetryAfter) {
  HttpServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.socket_timeout_seconds = 8.0;
  options.retry_after_seconds = 2.0;
  StartServer(options);

  // Pin the only worker: a connection that sends no request blocks it in
  // ReadRequest until we hang up.
  RawClient pin(server_->port());
  ASSERT_TRUE(pin.connected());
  ASSERT_TRUE(pin.Send("GET"));
  ASSERT_TRUE(WaitFor(
      [&]() {
        return server_->stats().in_flight.load() == 1 &&
               server_->stats().queued.load() == 0;
      },
      5.0));

  // Fill the one queue slot.
  RawClient queued(server_->port());
  ASSERT_TRUE(queued.connected());
  ASSERT_TRUE(queued.Send("GET /api/models HTTP/1.1\r\nhost: t\r\n"
                          "connection: close\r\n\r\n"));
  ASSERT_TRUE(WaitFor(
      [&]() { return server_->stats().queued.load() == 1; }, 5.0));

  // Over capacity: shed at the front door.
  RawClient shed(server_->port());
  ASSERT_TRUE(shed.connected());
  const std::string response = shed.ReadAll(5.0);
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_NE(response.find("retry-after: 2"), std::string::npos) << response;
  EXPECT_GE(server_->stats().shed.load(), 1u);

  // Release the worker; the queued request must still complete.
  pin.Close();
  const std::string served = queued.ReadAll(10.0);
  EXPECT_NE(served.find("200"), std::string::npos) << served;

  // The health endpoint reports the serving counters.
  auto health =
      HttpFetch("127.0.0.1", server_->port(), "GET", "/api/health", "",
                "application/json", 10.0);
  ASSERT_TRUE(health.ok());
  auto parsed = Json::Parse(health->body);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->Contains("server"));
  EXPECT_GE((*parsed)["server"]["shed"].AsInt(), 1);
  EXPECT_GE((*parsed)["server"]["accepted"].AsInt(), 3);
}

// Stop() under load returns within the drain budget (plus margin), not the
// socket deadline: stragglers are cancelled and their sockets shut down.
TEST_F(OverloadTest, DrainUnderLoadIsBounded) {
  HttpServerOptions options;
  options.socket_timeout_seconds = 30.0;  // without drain this would pin Stop
  options.drain_timeout_seconds = 0.5;
  StartServer(options);

  RawClient pin(server_->port());
  ASSERT_TRUE(pin.connected());
  ASSERT_TRUE(pin.Send("POST /api/query HTTP/1.1\r\n"));
  ASSERT_TRUE(WaitFor(
      [&]() { return server_->stats().in_flight.load() == 1; }, 5.0));

  const auto start = Clock::now();
  server_->Stop();
  EXPECT_LT(SecondsSince(start), 5.0);
  EXPECT_GE(server_->stats().cancelled.load(), 1u);
  EXPECT_TRUE(server_->stats().draining.load());
  // The last counters remain readable through the service after the server
  // has stopped (the health closure shares ownership of the stats).
  const Json health = service_->HandleHealth();
  ASSERT_TRUE(health.Contains("server"));
  EXPECT_TRUE(health["server"]["draining"].AsBool());
}

// The acceptance bound: at 4x capacity the server sheds the excess with 503
// and keeps the latency of every ADMITTED request bounded — overload
// degrades availability, never admitted-request latency.
TEST_F(OverloadTest, FourTimesOverloadShedsAndKeepsAdmittedLatencyBounded) {
  HttpServerOptions options;
  options.num_workers = 2;
  options.max_queue = 2;  // capacity: 2 running + 2 queued
  StartServer(options);

  constexpr int kClients = 16;  // 4x the 4-connection capacity
  constexpr int kRequestsPerClient = 3;
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> unexpected{0};
  std::vector<double> latencies[kClients];
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const auto start = Clock::now();
        auto response = HttpFetch(
            "127.0.0.1", server_->port(), "POST", "/api/query",
            QueryBody("load-" + std::to_string(c)).Dump(),
            "application/json", 20.0);
        const double elapsed = SecondsSince(start);
        if (!response.ok()) {
          ++unexpected;  // connection refused/reset is not shedding
        } else if (response->status == 200) {
          ++served;
          latencies[c].push_back(elapsed);
        } else if (response->status == 503) {
          ++shed;
        } else {
          ++unexpected;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(served.load(), 0);
  // Overload must actually shed (the load is 4x what the server admits).
  EXPECT_GT(shed.load(), 0);
  EXPECT_EQ(server_->stats().shed.load(), static_cast<size_t>(shed.load()));

  std::vector<double> admitted;
  for (const auto& per_client : latencies) {
    admitted.insert(admitted.end(), per_client.begin(), per_client.end());
  }
  std::sort(admitted.begin(), admitted.end());
  const double p99 =
      admitted[static_cast<size_t>(std::ceil(0.99 * admitted.size())) - 1];
  // Unloaded, these queries answer in milliseconds; bounded means nowhere
  // near the 20s client deadline even at 4x offered load.
  EXPECT_LT(p99, 10.0);
}

}  // namespace
}  // namespace llmms::app
