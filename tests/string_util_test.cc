#include "llmms/common/string_util.h"

#include <gtest/gtest.h>

namespace llmms {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyPiecesByDefault) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, SkipEmptyDropsThem) {
  EXPECT_EQ(Split(",a,,b,", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "b"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_TRUE(Split("", ',', true).empty());
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesEdgesOnly) {
  EXPECT_EQ(Trim("  hello world \n"), "hello world");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123 Case!"), "mixed 123 case!");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_TRUE(EndsWith("hello", "llo"));
  EXPECT_FALSE(EndsWith("hello", "hhello"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(NormalizeAnswerTest, StripsPunctuationAndCases) {
  EXPECT_EQ(NormalizeAnswerText("The Answer, is: 42!"), "the answer is 42");
  EXPECT_EQ(NormalizeAnswerText("  multiple   spaces  "), "multiple spaces");
  EXPECT_EQ(NormalizeAnswerText("!!!"), "");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.3f", 1.5), "1.500");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

}  // namespace
}  // namespace llmms
