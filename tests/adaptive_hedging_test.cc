// The adaptive-hedging feedback loop (DESIGN.md §11), locked down end to
// end:
//   - RewardFeed favour arithmetic (pool-relative ratio × warm-up ramp);
//   - HedgedModel::ApplyRewardFavour bound handling;
//   - the kHedgeAdapt trace event, emitted only when the percentile moves;
//   - the two-phase acceptance test: under a reward stream favouring model
//     A, A's effective percentile strictly decreases within its bounds and
//     A launches strictly more hedges than the static-threshold baseline on
//     the same deterministic cost schedule, within the same token budget;
//   - golden-trace determinism of the full Synthetic→Faulty→Resilient→
//     Hedged chaos stack with adaptation on (run twice, byte-identical);
//   - warm-start sketches across an ApiService restart (with persistence
//     the first post-restart request hedges immediately; without it the
//     node cold-starts) and the StateStore corruption matrix.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "llmms/app/service.h"
#include "llmms/common/quantile_window.h"
#include "llmms/core/mab.h"
#include "llmms/core/oua.h"
#include "llmms/core/reward_feed.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/llm/fault_injection.h"
#include "llmms/llm/hedged_model.h"
#include "llmms/llm/registry.h"
#include "llmms/llm/resilient_model.h"
#include "llmms/llm/runtime.h"
#include "llmms/llm/state_store.h"
#include "llmms/llm/synthetic_model.h"
#include "testutil.h"

namespace llmms {
namespace {

// ---------------------------------------------------------------------------
// A deterministic scripted model: emits its vocabulary cyclically (so its
// response can be made arbitrarily similar — or dissimilar — to a prompt)
// with a repeating per-call cost schedule. tokens_per_second is 0, so each
// chunk's simulated cost is EXACTLY the scheduled extra_seconds.

struct ScriptOptions {
  std::vector<std::string> vocab = {"tok"};
  size_t total_words = 100000;  // effectively unbounded
  // extra_seconds by per-stream call index, repeating; empty = all zero.
  std::vector<double> cost_cycle;
};

class ScriptedModel final : public llm::LanguageModel {
 public:
  ScriptedModel(std::string name, ScriptOptions options)
      : name_(std::move(name)), options_(std::move(options)) {}

  const std::string& name() const override { return name_; }
  uint64_t memory_mb() const override { return 1; }
  double tokens_per_second() const override { return 0.0; }
  size_t context_window() const override { return 1 << 20; }

  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest&) const override {
    return std::unique_ptr<llm::GenerationStream>(
        std::make_unique<Stream>(&options_));
  }

 private:
  class Stream final : public llm::GenerationStream {
   public:
    explicit Stream(const ScriptOptions* options) : options_(options) {}

    StatusOr<llm::Chunk> NextChunk(size_t max_tokens) override {
      llm::Chunk chunk;
      if (!options_->cost_cycle.empty()) {
        chunk.extra_seconds =
            options_->cost_cycle[call_ % options_->cost_cycle.size()];
      }
      ++call_;
      const size_t n = std::min(max_tokens, options_->total_words - pos_);
      for (size_t i = 0; i < n; ++i) {
        if (pos_ + i > 0) chunk.text += ' ';
        chunk.text += options_->vocab[(pos_ + i) % options_->vocab.size()];
      }
      chunk.num_tokens = n;
      pos_ += n;
      if (pos_ == options_->total_words) {
        chunk.done = true;
        chunk.stop_reason = llm::StopReason::kStop;
        finished_ = true;
      }
      text_ += chunk.text;
      return chunk;
    }

    const std::string& text() const override { return text_; }
    size_t tokens_generated() const override { return pos_; }
    bool finished() const override { return finished_; }
    llm::StopReason stop_reason() const override {
      return llm::StopReason::kStop;
    }

   private:
    const ScriptOptions* options_;
    size_t pos_ = 0;
    size_t call_ = 0;
    bool finished_ = false;
    std::string text_;
  };

  std::string name_;
  ScriptOptions options_;
};

void Drain(llm::GenerationStream* stream, size_t ask, size_t max_calls = 200) {
  for (size_t i = 0; i < max_calls && !stream->finished(); ++i) {
    auto chunk = stream->NextChunk(ask);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk->done) break;
  }
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.is_open();
}

// ---------------------------------------------------------------------------
// RewardFeed: favour = (mean / pool best mean) * min(1, count / warmup)

TEST(RewardFeedTest, FavourRampsWithWarmupAndTracksThePoolBest) {
  core::RewardFeed feed(/*warmup=*/4);
  EXPECT_DOUBLE_EQ(feed.FavourOf("a"), 0.0);  // never observed

  feed.Publish("a", 0.8);
  // Sole model: ratio 1, ramp 1/4.
  EXPECT_DOUBLE_EQ(feed.FavourOf("a"), 0.25);

  feed.Publish("b", 0.4);
  // b's mean is half the pool best: ratio 0.5, ramp 1/4.
  EXPECT_DOUBLE_EQ(feed.FavourOf("b"), 0.125);

  feed.Publish("a", 0.8);
  feed.Publish("a", 0.8);
  feed.Publish("a", 0.8);
  // Warm-up complete: the pool's favourite saturates at 1.
  EXPECT_DOUBLE_EQ(feed.FavourOf("a"), 1.0);
  EXPECT_EQ(feed.StatsFor("a").count, 4u);
  EXPECT_DOUBLE_EQ(feed.StatsFor("a").MeanReward(), 0.8);

  feed.Reset();
  EXPECT_DOUBLE_EQ(feed.FavourOf("a"), 0.0);
  EXPECT_EQ(feed.StatsFor("a").count, 0u);
}

TEST(RewardFeedTest, NonPositiveMeansClampToZeroFavour) {
  core::RewardFeed feed(/*warmup=*/1);
  feed.Publish("loser", -1.0);
  feed.Publish("winner", 0.9);
  EXPECT_DOUBLE_EQ(feed.FavourOf("loser"), 0.0);
  EXPECT_DOUBLE_EQ(feed.FavourOf("winner"), 1.0);
}

// Regression: favour warmup must be gated on *retained* evidence, not
// lifetime counts. A model whose window observations have all been evicted
// (its retained weight is back to zero) must report favour 0 — exactly like
// a model that was never observed — even though its lifetime count is still
// positive. Before the fix, the warmup ramp divided the lifetime count by
// warmup and a fully evicted model kept hedging on its stale reputation.
TEST(RewardFeedTest, EvictedModelReportsZeroFavourDespiteLifetimeCount) {
  core::RewardFeedConfig config;
  config.warmup = 2;
  config.window = 3;
  core::RewardFeed feed(config);

  feed.Publish("stale", 0.9);
  EXPECT_GT(feed.FavourOf("stale"), 0.0);

  // Three publishes for another model advance the global tick past the
  // window: every "stale" entry is evicted.
  feed.Publish("fresh", 0.5);
  feed.Publish("fresh", 0.5);
  feed.Publish("fresh", 0.5);

  EXPECT_EQ(feed.StatsFor("stale").count, 1u);  // lifetime totals remain
  EXPECT_DOUBLE_EQ(feed.EstimateFor("stale").weight, 0.0);
  EXPECT_DOUBLE_EQ(feed.FavourOf("stale"), 0.0)
      << "a model with zero retained observations must never carry favour";
  EXPECT_GT(feed.FavourOf("fresh"), 0.0);
}

TEST(RewardFeedTest, PublishDeliversTheUpdateAndReturnsTheAdaptation) {
  core::RewardFeed feed(/*warmup=*/2);
  core::RewardFeed::Update seen;
  feed.Subscribe("m", [&seen](const core::RewardFeed::Update& update) {
    seen = update;
    core::RewardFeed::Adaptation adaptation;
    adaptation.changed = true;
    adaptation.old_percentile = 0.95;
    adaptation.new_percentile = 0.7;
    return adaptation;
  });

  const auto adaptation = feed.Publish("m", 0.6);
  EXPECT_TRUE(adaptation.changed);
  EXPECT_DOUBLE_EQ(adaptation.old_percentile, 0.95);
  EXPECT_DOUBLE_EQ(adaptation.new_percentile, 0.7);
  EXPECT_DOUBLE_EQ(adaptation.favour, 0.5);  // ratio 1 * ramp 1/2

  EXPECT_EQ(seen.model, "m");
  EXPECT_DOUBLE_EQ(seen.reward, 0.6);
  EXPECT_DOUBLE_EQ(seen.mean, 0.6);
  EXPECT_EQ(seen.count, 1u);
  EXPECT_DOUBLE_EQ(seen.favour, 0.5);

  // No subscriber: the observation still counts, but nothing changes.
  const auto silent = feed.Publish("other", 0.9);
  EXPECT_FALSE(silent.changed);
  EXPECT_EQ(feed.StatsFor("other").count, 1u);
}

// ---------------------------------------------------------------------------
// HedgedModel::ApplyRewardFavour

std::shared_ptr<llm::HedgedModel> MakeStubHedged(const llm::HedgeConfig& config,
                                                 const std::string& name) {
  ScriptOptions inert;
  return std::make_shared<llm::HedgedModel>(
      std::make_shared<ScriptedModel>(name, inert),
      std::vector<std::shared_ptr<llm::LanguageModel>>{
          std::make_shared<ScriptedModel>(name + ":backup", inert)},
      config);
}

TEST(ApplyRewardFavourTest, MovesTheEffectivePercentileInsideTheBounds) {
  llm::HedgeConfig config;
  config.adapt = true;
  config.percentile = 0.95;
  config.min_percentile = 0.5;
  config.max_percentile = 0.95;
  auto hedged = MakeStubHedged(config, "adaptive");
  EXPECT_DOUBLE_EQ(hedged->effective_percentile(), 0.95);

  // favour 0 targets max_percentile — already there, no change.
  EXPECT_FALSE(hedged->ApplyRewardFavour(0.0).has_value());
  EXPECT_EQ(hedged->adaptations(), 0u);

  auto moved = hedged->ApplyRewardFavour(1.0);
  ASSERT_TRUE(moved.has_value());
  EXPECT_DOUBLE_EQ(moved->first, 0.95);
  EXPECT_DOUBLE_EQ(moved->second, 0.5);
  EXPECT_DOUBLE_EQ(hedged->effective_percentile(), 0.5);

  // Identical favour again: no movement, no extra adaptation counted.
  EXPECT_FALSE(hedged->ApplyRewardFavour(1.0).has_value());
  EXPECT_EQ(hedged->adaptations(), 1u);

  moved = hedged->ApplyRewardFavour(0.5);
  ASSERT_TRUE(moved.has_value());
  EXPECT_DOUBLE_EQ(moved->second, 0.725);  // 0.95 - 0.5 * (0.95 - 0.5)

  // Out-of-range favour is clamped into [0, 1].
  moved = hedged->ApplyRewardFavour(7.0);
  ASSERT_TRUE(moved.has_value());
  EXPECT_DOUBLE_EQ(moved->second, 0.5);
  EXPECT_DOUBLE_EQ(hedged->last_favour(), 1.0);
  EXPECT_EQ(hedged->adaptations(), 3u);
}

TEST(ApplyRewardFavourTest, DisabledAdaptationNeverMoves) {
  llm::HedgeConfig config;
  config.adapt = false;
  config.percentile = 0.9;
  auto hedged = MakeStubHedged(config, "static");
  EXPECT_FALSE(hedged->ApplyRewardFavour(1.0).has_value());
  EXPECT_DOUBLE_EQ(hedged->effective_percentile(), 0.9);
  EXPECT_EQ(hedged->adaptations(), 0u);
}

TEST(ApplyRewardFavourTest, InvertedBoundsAreNormalised) {
  llm::HedgeConfig config;
  config.adapt = true;
  config.percentile = 0.95;
  config.min_percentile = 0.9;  // inverted on purpose
  config.max_percentile = 0.4;
  auto hedged = MakeStubHedged(config, "swapped");
  // Bounds swap to [0.4, 0.9]; the starting percentile clamps into them.
  EXPECT_DOUBLE_EQ(hedged->effective_percentile(), 0.9);
  auto moved = hedged->ApplyRewardFavour(1.0);
  ASSERT_TRUE(moved.has_value());
  EXPECT_DOUBLE_EQ(moved->second, 0.4);
}

TEST(ApplyRewardFavourTest, ThresholdFollowsTheEffectivePercentile) {
  llm::HedgeConfig config;
  config.adapt = true;
  config.percentile = 0.95;
  config.min_percentile = 0.5;
  config.max_percentile = 0.95;
  config.min_samples = 4;
  auto hedged = MakeStubHedged(config, "threshold");
  for (int i = 1; i <= 10; ++i) {
    hedged->RecordLatency(0, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(hedged->ThresholdFor(0), 10.0);  // p95 of 1..10
  ASSERT_TRUE(hedged->ApplyRewardFavour(1.0).has_value());
  EXPECT_DOUBLE_EQ(hedged->ThresholdFor(0), 5.0);  // p50 of 1..10
}

// ---------------------------------------------------------------------------
// kHedgeAdapt event plumbing

TEST(HedgeAdaptEventTest, EventNameIsStable) {
  EXPECT_STREQ(core::EventTypeToString(core::EventType::kHedgeAdapt),
               "hedge-adapt");
}

TEST(HedgeAdaptEventTest, PublishRewardTracesOnlyActualMoves) {
  llm::HedgeConfig config;
  config.adapt = true;
  config.min_percentile = 0.5;
  config.max_percentile = 0.95;
  auto hedged = MakeStubHedged(config, "traced");

  core::RewardFeed feed(/*warmup=*/2);
  feed.Subscribe("traced", [hedged](const core::RewardFeed::Update& update) {
    core::RewardFeed::Adaptation adaptation;
    if (auto moved = hedged->ApplyRewardFavour(update.favour)) {
      adaptation.changed = true;
      adaptation.old_percentile = moved->first;
      adaptation.new_percentile = moved->second;
    }
    return adaptation;
  });

  std::vector<core::TraceEntry> trace;
  std::vector<core::OrchestratorEvent> events;
  auto callback = [&events](const core::OrchestratorEvent& event) {
    events.push_back(event);
  };

  // First reward: favour 1/2 -> percentile 0.95 -> 0.725. One event.
  core::internal::PublishReward(&feed, "traced", 0.8, /*round=*/3,
                                /*total_tokens=*/24, callback, &trace);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].action, "hedge-adapt");
  EXPECT_EQ(trace[0].model, "traced");
  EXPECT_EQ(trace[0].round, 3u);
  EXPECT_EQ(trace[0].detail, "p0.950->0.725 favour=0.500");
  EXPECT_DOUBLE_EQ(trace[0].score, 0.725);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, core::EventType::kHedgeAdapt);
  EXPECT_EQ(events[0].total_tokens, 24u);

  // Warm-up saturated: favour 1 -> 0.5, one more event…
  core::internal::PublishReward(&feed, "traced", 0.8, 4, 32, callback, &trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].detail, "p0.725->0.500 favour=1.000");

  // …then the favour is stable and further rewards trace nothing.
  core::internal::PublishReward(&feed, "traced", 0.8, 5, 40, callback, &trace);
  EXPECT_EQ(trace.size(), 2u);

  // A model without a subscriber never traces.
  core::internal::PublishReward(&feed, "plain", 0.9, 5, 40, callback, &trace);
  EXPECT_EQ(trace.size(), 2u);

  // A null feed is a no-op (orchestrators without the loop wired).
  core::internal::PublishReward(nullptr, "traced", 0.8, 6, 48, callback,
                                &trace);
  EXPECT_EQ(trace.size(), 2u);
}

// ---------------------------------------------------------------------------
// The two-phase acceptance test. Model A ("arm:a") answers on-topic with a
// deterministic cost schedule that spikes every 4th call to 3.0 simulated
// seconds; its static p95 threshold converges to exactly 3.0, which a 3.0
// spike never *strictly* exceeds — so the static baseline stops hedging
// after the window warms. Under adaptation, the orchestrator's rewards
// favour A, its effective percentile walks down to min_percentile (p50 =
// 1.0), and every spike fires a hedge race its zero-cost backup wins.

struct Arena {
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::shared_ptr<llm::HedgedModel> hedged;
  std::shared_ptr<const embedding::Embedder> embedder;
  std::unique_ptr<core::RewardFeed> feed;
  size_t attached = 0;
};

constexpr char kArenaPrompt[] = "alpha beta gamma delta epsilon zeta";

Arena MakeArena(bool adapt) {
  Arena arena;
  ScriptOptions on_topic;
  on_topic.vocab = {"alpha", "beta", "gamma", "delta", "epsilon", "zeta"};
  on_topic.cost_cycle = {1.0, 1.0, 1.0, 3.0};
  auto primary = std::make_shared<ScriptedModel>("arm:a", on_topic);
  ScriptOptions fast = on_topic;
  fast.cost_cycle.clear();  // the backup answers identically, instantly
  auto backup = std::make_shared<ScriptedModel>("arm:a:backup", fast);

  llm::HedgeConfig config;
  config.latency_window = 64;
  config.min_samples = 4;
  config.percentile = 0.95;
  config.adapt = adapt;
  config.min_percentile = 0.5;
  config.max_percentile = 0.95;
  arena.hedged = std::make_shared<llm::HedgedModel>(
      primary, std::vector<std::shared_ptr<llm::LanguageModel>>{backup},
      config);

  ScriptOptions off_topic;
  off_topic.vocab = {"quux", "blorp", "fnord", "zork"};
  off_topic.total_words = 8;  // finishes after one pull, scores ~0

  arena.registry = std::make_shared<llm::ModelRegistry>();
  EXPECT_TRUE(arena.registry->Register(arena.hedged).ok());
  EXPECT_TRUE(arena.registry
                  ->Register(std::make_shared<ScriptedModel>("arm:b",
                                                             off_topic))
                  .ok());
  hardware::DeviceSpec gpu;
  gpu.name = "gpu-0";
  gpu.kind = hardware::DeviceKind::kGpu;
  gpu.memory_mb = 32 * 1024;
  arena.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{gpu});
  arena.runtime = std::make_unique<llm::ModelRuntime>(arena.registry,
                                                      arena.hardware,
                                                      /*num_threads=*/2);
  EXPECT_TRUE(arena.runtime->LoadModel("arm:a").ok());
  EXPECT_TRUE(arena.runtime->LoadModel("arm:b").ok());

  arena.embedder = std::make_shared<embedding::HashEmbedder>();
  arena.feed = std::make_unique<core::RewardFeed>(/*warmup=*/4);
  arena.attached = core::AttachAdaptiveHedging(arena.feed.get(),
                                               arena.runtime.get());
  return arena;
}

core::MabOrchestrator::Config ArenaMabConfig(Arena* arena) {
  core::MabOrchestrator::Config config;
  config.weights.alpha = 1.0;  // reward = query similarity only
  config.weights.beta = 0.0;
  config.token_budget = 96;
  config.chunk_tokens = 8;
  config.gamma0 = 0.1;
  config.reward_feed = arena->feed.get();
  return config;
}

TEST(AdaptiveHedgingAcceptanceTest, RewardFavourFiresHedgesStaticMisses) {
  constexpr size_t kQueries = 3;

  // --- Adaptive run. ---
  Arena adaptive = MakeArena(/*adapt=*/true);
  ASSERT_EQ(adaptive.attached, 1u);  // only arm:a subscribes
  std::vector<core::TraceEntry> adaptive_trace;
  for (size_t q = 0; q < kQueries; ++q) {
    core::MabOrchestrator orchestrator(adaptive.runtime.get(),
                                       {"arm:a", "arm:b"}, adaptive.embedder,
                                       ArenaMabConfig(&adaptive));
    auto result = orchestrator.Run(kArenaPrompt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LE(result->total_tokens, 96u) << "budget must hold under hedging";
    EXPECT_EQ(result->best_model, "arm:a");
    adaptive_trace.insert(adaptive_trace.end(), result->trace.begin(),
                          result->trace.end());
  }

  // The effective percentile walked strictly downward inside its bounds,
  // one kHedgeAdapt trace event per move.
  std::vector<double> percentiles;
  for (const auto& entry : adaptive_trace) {
    if (entry.action != "hedge-adapt") continue;
    EXPECT_EQ(entry.model, "arm:a");
    percentiles.push_back(entry.score);
  }
  ASSERT_GE(percentiles.size(), 2u);
  double previous = 0.95;
  for (double p : percentiles) {
    EXPECT_LT(p, previous) << "each adaptation must strictly decrease";
    EXPECT_GE(p, 0.5);
    previous = p;
  }
  EXPECT_DOUBLE_EQ(adaptive.hedged->effective_percentile(), 0.5);
  EXPECT_GE(adaptive.hedged->adaptations(), 2u);
  EXPECT_DOUBLE_EQ(adaptive.hedged->last_favour(), 1.0);

  const auto adaptive_stats = adaptive.hedged->stats();
  EXPECT_GE(adaptive_stats.hedges_launched, 2u);
  EXPECT_GE(adaptive_stats.hedges_won, 1u);

  // The races show up in the orchestration trace too.
  size_t hedge_events = 0;
  for (const auto& entry : adaptive_trace) {
    if (entry.action == "hedge") ++hedge_events;
  }
  EXPECT_GE(hedge_events, 2u);

  // --- Static baseline: identical pool, schedules, and budget. ---
  Arena baseline = MakeArena(/*adapt=*/false);
  ASSERT_EQ(baseline.attached, 0u);
  std::vector<core::TraceEntry> static_trace;
  for (size_t q = 0; q < kQueries; ++q) {
    core::MabOrchestrator orchestrator(baseline.runtime.get(),
                                       {"arm:a", "arm:b"}, baseline.embedder,
                                       ArenaMabConfig(&baseline));
    auto result = orchestrator.Run(kArenaPrompt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_LE(result->total_tokens, 96u);
    static_trace.insert(static_trace.end(), result->trace.begin(),
                        result->trace.end());
  }
  for (const auto& entry : static_trace) {
    EXPECT_NE(entry.action, "hedge-adapt") << "static run must never adapt";
  }
  EXPECT_DOUBLE_EQ(baseline.hedged->effective_percentile(), 0.95);
  EXPECT_EQ(baseline.hedged->adaptations(), 0u);

  const auto static_stats = baseline.hedged->stats();
  // A 3.0 spike never strictly exceeds the static p95 of 3.0: zero hedges.
  EXPECT_EQ(static_stats.hedges_launched, 0u);
  EXPECT_GT(adaptive_stats.hedges_launched, static_stats.hedges_launched)
      << "adaptation must strictly increase hedge launches on this schedule";
}

// ---------------------------------------------------------------------------
// Golden-trace determinism: the full chaos stack (Synthetic → Faulty →
// Resilient → Hedged) under an adapting threshold, run twice from identical
// fresh worlds — every trace entry, score, and the answer must match, and
// the decision sequence must match the committed golden file.

struct GoldenRun {
  std::string answer;
  std::vector<core::TraceEntry> trace;
};

GoldenRun RunGoldenOnce() {
  auto world = testutil::MakeWorld(4);
  auto profile = llm::DefaultProfiles()[0];
  profile.name = "hedged:gold";
  llm::FaultConfig faults;
  faults.seed = 0xCAFE;
  faults.latency_spike_prob = 0.3;
  faults.latency_spike_seconds = 5.0;
  auto spiky = std::make_shared<llm::FaultyModel>(
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge), faults);
  auto primary = std::make_shared<llm::ResilientModel>(
      spiky, llm::ResilienceConfig());
  auto clone = std::make_shared<llm::ResilientModel>(
      std::make_shared<llm::SyntheticModel>(profile, world.knowledge),
      llm::ResilienceConfig());
  llm::HedgeConfig config;
  config.percentile = 0.5;
  config.min_samples = 4;
  config.adapt = true;
  config.min_percentile = 0.5;
  config.max_percentile = 0.95;
  auto hedged = std::make_shared<llm::HedgedModel>(
      primary, std::vector<std::shared_ptr<llm::LanguageModel>>{clone},
      config);
  EXPECT_TRUE(world.registry->Register(hedged).ok());
  EXPECT_TRUE(world.runtime->LoadModel("hedged:gold").ok());

  core::RewardFeed feed(/*warmup=*/4);
  EXPECT_EQ(core::AttachAdaptiveHedging(&feed, world.runtime.get()), 1u);

  core::OuaOrchestrator::Config oua;
  oua.token_budget = 96;
  oua.chunk_tokens = 8;
  oua.reward_feed = &feed;
  core::OuaOrchestrator orchestrator(
      world.runtime.get(),
      {"hedged:gold", world.model_names[0], world.model_names[1]},
      world.embedder, oua);
  auto result = orchestrator.Run(world.dataset[0].question);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  GoldenRun run;
  run.answer = result->answer;
  run.trace = std::move(result->trace);
  return run;
}

// The discrete decision sequence: chunk events are not traced, so this is
// the score/prune/hedge/hedge-adapt/final skeleton of the run. Scores are
// compared exactly in-process (run vs. rerun) and deliberately left out of
// the golden file, which pins the *decisions*.
std::string SerializeTrace(const std::vector<core::TraceEntry>& trace) {
  std::string out;
  for (const auto& entry : trace) {
    out += std::to_string(entry.round) + "|" + entry.model + "|" +
           entry.action + "|" + entry.detail + "\n";
  }
  return out;
}

TEST(GoldenTraceTest, AdaptiveChaosStackIsDeterministic) {
  const GoldenRun first = RunGoldenOnce();
  const GoldenRun second = RunGoldenOnce();

  EXPECT_EQ(first.answer, second.answer);
  ASSERT_EQ(first.trace.size(), second.trace.size());
  for (size_t i = 0; i < first.trace.size(); ++i) {
    EXPECT_EQ(first.trace[i].round, second.trace[i].round) << "entry " << i;
    EXPECT_EQ(first.trace[i].model, second.trace[i].model) << "entry " << i;
    EXPECT_EQ(first.trace[i].action, second.trace[i].action) << "entry " << i;
    EXPECT_EQ(first.trace[i].detail, second.trace[i].detail) << "entry " << i;
    EXPECT_DOUBLE_EQ(first.trace[i].score, second.trace[i].score)
        << "entry " << i;
  }

  // The run must actually exercise the adaptive loop.
  size_t adapts = 0;
  for (const auto& entry : first.trace) {
    if (entry.action == "hedge-adapt") ++adapts;
  }
  EXPECT_GE(adapts, 1u);

  const std::string serialized = SerializeTrace(first.trace);
  const std::string golden_path =
      std::string(LLMMS_TESTS_DIR) + "/golden/adaptive_trace.golden";
  if (std::getenv("LLMMS_UPDATE_GOLDEN") != nullptr) {
    WriteFile(golden_path, serialized);
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }
  ASSERT_TRUE(FileExists(golden_path))
      << "missing golden file; regenerate with LLMMS_UPDATE_GOLDEN=1 "
      << golden_path;
  EXPECT_EQ(serialized, ReadFile(golden_path))
      << "trace diverged from the committed golden decision sequence; if "
         "the change is intentional, regenerate with LLMMS_UPDATE_GOLDEN=1";
}

// ---------------------------------------------------------------------------
// Warm-start sketches across a restart, through the app layer.

struct Node {
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::shared_ptr<llm::HedgedModel> hedged;
  std::shared_ptr<vectordb::VectorDatabase> db;
  std::shared_ptr<session::SessionStore> sessions;
  std::unique_ptr<core::SearchEngine> engine;
  std::unique_ptr<app::ApiService> service;
};

Node MakeNode(const std::vector<double>& cost_cycle) {
  Node node;
  ScriptOptions script;
  script.vocab = {"steady", "stream", "of", "words"};
  script.total_words = 60;
  script.cost_cycle = cost_cycle;
  auto primary = std::make_shared<ScriptedModel>("warm:a", script);
  ScriptOptions fast = script;
  fast.cost_cycle.clear();
  auto backup = std::make_shared<ScriptedModel>("warm:a:backup", fast);
  llm::HedgeConfig config;
  config.percentile = 0.95;
  config.min_samples = 4;
  config.latency_window = 64;
  node.hedged = std::make_shared<llm::HedgedModel>(
      primary, std::vector<std::shared_ptr<llm::LanguageModel>>{backup},
      config);

  node.registry = std::make_shared<llm::ModelRegistry>();
  EXPECT_TRUE(node.registry->Register(node.hedged).ok());
  hardware::DeviceSpec gpu;
  gpu.name = "gpu-0";
  gpu.kind = hardware::DeviceKind::kGpu;
  gpu.memory_mb = 8 * 1024;
  node.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{gpu});
  node.runtime = std::make_unique<llm::ModelRuntime>(node.registry,
                                                     node.hardware,
                                                     /*num_threads=*/2);
  EXPECT_TRUE(node.runtime->LoadModel("warm:a").ok());

  node.db = std::make_shared<vectordb::VectorDatabase>();
  node.sessions = std::make_shared<session::SessionStore>();
  node.engine = std::make_unique<core::SearchEngine>(
      node.runtime.get(), std::make_shared<embedding::HashEmbedder>(),
      node.db, node.sessions);
  node.service = std::make_unique<app::ApiService>(node.engine.get());
  return node;
}

TEST(WarmStartTest, SketchesSurviveRestartAndColdStartWithoutPersistence) {
  const std::string path = ::testing::TempDir() + "/warm-state.json";
  std::remove(path.c_str());

  // --- Node 1: persistence on; generate past min_samples; shut down. ---
  double saved_threshold = 0.0;
  {
    Node node = MakeNode({1.0, 2.0, 3.0, 4.0, 5.0});
    ASSERT_TRUE(node.service->EnableStatePersistence(path).ok());
    EXPECT_TRUE(node.service->state_store()->load_warning().empty());
    EXPECT_TRUE(std::isinf(node.hedged->ThresholdFor(0)))
        << "nothing to restore on the very first boot";

    llm::GenerationRequest request;
    request.prompt = "q";
    auto stream = node.hedged->StartGeneration(request);
    ASSERT_TRUE(stream.ok());
    Drain(stream->get(), /*ask=*/6);  // 10 calls on the cost cycle
    saved_threshold = node.hedged->ThresholdFor(0);
    ASSERT_FALSE(std::isinf(saved_threshold));
    EXPECT_DOUBLE_EQ(saved_threshold, 5.0);  // p95 of the recorded cycle
    node.service.reset();  // shutdown flushes the sketches
  }
  {
    llm::StateStore probe(path);
    ASSERT_TRUE(probe.Load().ok());
    EXPECT_TRUE(probe.HasSketches("warm:a"));
  }

  // --- Node 2 ("restart", persistence on): the spike schedule exceeds the
  // restored threshold, so the VERY FIRST request hedges. ---
  {
    Node node = MakeNode({6.0});
    EXPECT_TRUE(std::isinf(node.hedged->ThresholdFor(0)));
    ASSERT_TRUE(node.service->EnableStatePersistence(path).ok());
    EXPECT_TRUE(node.service->state_store()->load_warning().empty());
    ASSERT_FALSE(std::isinf(node.hedged->ThresholdFor(0)))
        << "restored sketches must yield a usable percentile immediately";
    EXPECT_DOUBLE_EQ(node.hedged->ThresholdFor(0), saved_threshold);

    llm::GenerationRequest request;
    request.prompt = "q";
    auto stream = node.hedged->StartGeneration(request);
    ASSERT_TRUE(stream.ok());
    auto chunk = stream->get()->NextChunk(6);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(node.hedged->stats().hedges_launched, 1u)
        << "6.0s in-flight cost must beat the restored 5.0s threshold on "
           "the first post-restart chunk";
    EXPECT_EQ(node.hedged->stats().hedges_won, 1u);
  }

  // --- Node 3 (identical, but NO persistence): cold start, min_samples
  // gate, not a single hedge on the same schedule. ---
  {
    Node node = MakeNode({6.0});
    EXPECT_TRUE(std::isinf(node.hedged->ThresholdFor(0)));
    llm::GenerationRequest request;
    request.prompt = "q";
    auto stream = node.hedged->StartGeneration(request);
    ASSERT_TRUE(stream.ok());
    Drain(stream->get(), /*ask=*/6);
    // Every call costs 6.0: the window is flat, the p95 is 6.0, and 6.0
    // never strictly exceeds it — the cold node cannot hedge.
    EXPECT_EQ(node.hedged->stats().hedges_launched, 0u);
    EXPECT_TRUE(node.service->state_store() == nullptr);
  }
}

// ---------------------------------------------------------------------------
// StateStore corruption matrix: any broken file cold-starts completely —
// never a crash, never a half-restore — and a crashed mid-write (stray
// .tmp) never damages the committed snapshot.

class StateStoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/corrupt-state.json";
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  // Writes a fully populated, valid state file and returns its content.
  std::string PopulateValidFile() {
    llm::StateStore store(path_);
    EXPECT_TRUE(store.Load().ok());
    llm::CircuitBreaker breaker(1, 1);
    store.AttachBreaker("m1", &breaker);
    llm::HedgeConfig config;
    config.min_samples = 2;
    auto hedged = MakeStubHedged(config, "m1");
    hedged->RecordLatency(0, 1.5);
    hedged->RecordLatency(0, 2.5);
    hedged->RecordLatency(1, 0.5);
    store.AttachSketches("m1", hedged);
    breaker.RecordFailure();  // trips -> transition save (breaker+sketches)
    EXPECT_TRUE(store.SaveNow().ok());
    breaker.SetTransitionListener(nullptr);
    return ReadFile(path_);
  }

  std::string path_;
};

TEST_F(StateStoreCorruptionTest, TruncatedFileColdStartsEverything) {
  const std::string content = PopulateValidFile();
  ASSERT_GT(content.size(), 20u);
  WriteFile(path_, content.substr(0, content.size() / 2));

  llm::StateStore store(path_);
  ASSERT_TRUE(store.Load().ok()) << "a bad file must never fail the boot";
  EXPECT_FALSE(store.load_warning().empty());
  EXPECT_FALSE(store.HasBreaker("m1"));
  EXPECT_FALSE(store.HasSketches("m1"));
}

TEST_F(StateStoreCorruptionTest, GarbageAndWrongShapesColdStart) {
  for (const char* content :
       {"complete garbage, not json", "[1, 2, 3]", "42",
        "{\"breakers\": \"not an object\"}",
        "{\"sketches\": [1, 2]}", "{\"m1\": 7}"}) {
    WriteFile(path_, content);
    llm::StateStore store(path_);
    ASSERT_TRUE(store.Load().ok()) << content;
    EXPECT_FALSE(store.load_warning().empty()) << content;
    EXPECT_FALSE(store.HasBreaker("m1")) << content;
    EXPECT_FALSE(store.HasSketches("m1")) << content;
  }
}

TEST_F(StateStoreCorruptionTest, IntactSectionsNeverHalfRestore) {
  // Truncate INSIDE the sketches section: the breakers section earlier in
  // the file is fully intact JSON text, but the all-or-nothing policy must
  // refuse to restore it.
  const std::string content = PopulateValidFile();
  const auto cut = content.find("\"sketches\"");
  ASSERT_NE(cut, std::string::npos);
  WriteFile(path_, content.substr(0, cut + 15));

  llm::StateStore store(path_);
  ASSERT_TRUE(store.Load().ok());
  EXPECT_FALSE(store.load_warning().empty());
  EXPECT_FALSE(store.HasBreaker("m1"))
      << "the intact breakers section must NOT survive a broken file";
  EXPECT_FALSE(store.HasSketches("m1"));

  // The cold-started store is fully usable: a fresh breaker attaches and
  // its first transition persists cleanly over the broken file.
  llm::CircuitBreaker breaker(1, 1);
  store.AttachBreaker("m2", &breaker);
  breaker.RecordFailure();  // trips -> transition -> recorded + saved
  EXPECT_TRUE(store.SaveNow().ok());
  breaker.SetTransitionListener(nullptr);
  llm::StateStore reread(path_);
  ASSERT_TRUE(reread.Load().ok());
  EXPECT_TRUE(reread.load_warning().empty());
  EXPECT_TRUE(reread.HasBreaker("m2"));
}

TEST_F(StateStoreCorruptionTest, StrayTmpFromCrashedWriteIsHarmless) {
  PopulateValidFile();
  // Simulate a crash mid-SaveNow: a half-written temp file next to the
  // committed snapshot. The rename never happened, so the snapshot is
  // intact and the load must be clean.
  WriteFile(path_ + ".tmp", "{\"breakers\": {\"m1\": {\"sta");

  llm::StateStore store(path_);
  ASSERT_TRUE(store.Load().ok());
  EXPECT_TRUE(store.load_warning().empty());
  EXPECT_TRUE(store.HasBreaker("m1"));
  EXPECT_TRUE(store.HasSketches("m1"));

  // The tripped breaker restores from the intact snapshot…
  llm::CircuitBreaker breaker(1, 1);
  store.AttachBreaker("m1", &breaker);
  EXPECT_EQ(breaker.state(), llm::CircuitBreaker::State::kOpen);
  breaker.SetTransitionListener(nullptr);

  // …and the next save atomically replaces both tmp and snapshot.
  ASSERT_TRUE(store.SaveNow().ok());
  EXPECT_FALSE(FileExists(path_ + ".tmp"));
  llm::StateStore reread(path_);
  ASSERT_TRUE(reread.Load().ok());
  EXPECT_TRUE(reread.HasBreaker("m1"));
}

TEST_F(StateStoreCorruptionTest, LegacyFlatBreakerFileStillLoads) {
  // The PR 1 BreakerStore layout: model -> breaker snapshot at top level.
  llm::CircuitBreaker breaker(1, 1);
  breaker.RecordFailure();
  Json legacy = Json::MakeObject();
  legacy.Set("m1", llm::StateStore::BreakerToJson(breaker.snapshot()));
  WriteFile(path_, legacy.Dump(2));

  llm::StateStore store(path_);
  ASSERT_TRUE(store.Load().ok());
  EXPECT_TRUE(store.load_warning().empty());
  EXPECT_TRUE(store.HasBreaker("m1"));
  EXPECT_FALSE(store.HasSketches("m1"));
  llm::CircuitBreaker restored(1, 1);
  store.AttachBreaker("m1", &restored);
  EXPECT_EQ(restored.state(), llm::CircuitBreaker::State::kOpen);
  restored.SetTransitionListener(nullptr);
}

TEST_F(StateStoreCorruptionTest, SketchesJsonRoundTrips) {
  std::vector<QuantileWindow::Snapshot> sketches(2);
  sketches[0].capacity = 8;
  sketches[0].count = 20;  // lifetime count beyond the retained samples
  sketches[0].samples = {1.0, 2.5, 0.25};
  sketches[1].capacity = 4;
  sketches[1].count = 0;

  const auto json = llm::StateStore::SketchesToJson(sketches);
  const auto back = llm::StateStore::SketchesFromJson(json);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].capacity, 8u);
  EXPECT_EQ(back[0].count, 20u);
  ASSERT_EQ(back[0].samples.size(), 3u);
  EXPECT_DOUBLE_EQ(back[0].samples[1], 2.5);
  EXPECT_EQ(back[1].capacity, 4u);
  EXPECT_TRUE(back[1].samples.empty());
}

// ---------------------------------------------------------------------------
// /api/health surfaces the adaptive state.

TEST(AdaptiveHealthTest, HealthReportsAdaptiveHedgingState) {
  Arena arena = MakeArena(/*adapt=*/true);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(arena.runtime.get(), arena.embedder, db, sessions);
  app::ApiService service(&engine);

  // The engine wired its own feed to the hedged group at construction;
  // driving rewards through it moves the percentile.
  ASSERT_NE(engine.reward_feed(), nullptr);
  EXPECT_TRUE(engine.reward_feed()->Publish("arm:a", 0.9).changed);
  for (int i = 0; i < 10; ++i) engine.reward_feed()->Publish("arm:a", 0.9);
  EXPECT_DOUBLE_EQ(arena.hedged->effective_percentile(), 0.5);

  auto response = service.HandleHealth();
  ASSERT_TRUE(response["ok"].AsBool());
  const Json* entry = nullptr;
  for (const Json& model : response["models"].AsArray()) {
    if (model["model"].AsString() == "arm:a") entry = &model;
  }
  ASSERT_NE(entry, nullptr);
  const Json& hedging = (*entry)["hedging"];
  ASSERT_TRUE(hedging.is_object());
  EXPECT_TRUE(hedging["adaptive"].AsBool());
  EXPECT_DOUBLE_EQ(hedging["effective_percentile"].AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(hedging["min_percentile"].AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(hedging["max_percentile"].AsDouble(), 0.95);
  EXPECT_GE(hedging["adaptations"].AsInt(), 1);
  EXPECT_DOUBLE_EQ(hedging["last_favour"].AsDouble(), 1.0);
}

TEST(AdaptiveHealthTest, NonAdaptiveGroupsReportStaticHedging) {
  Arena arena = MakeArena(/*adapt=*/false);
  auto db = std::make_shared<vectordb::VectorDatabase>();
  auto sessions = std::make_shared<session::SessionStore>();
  core::SearchEngine engine(arena.runtime.get(), arena.embedder, db, sessions);
  app::ApiService service(&engine);

  auto response = service.HandleHealth();
  ASSERT_TRUE(response["ok"].AsBool());
  for (const Json& model : response["models"].AsArray()) {
    if (model["model"].AsString() != "arm:a") continue;
    const Json& hedging = model["hedging"];
    EXPECT_FALSE(hedging["adaptive"].AsBool());
    EXPECT_DOUBLE_EQ(hedging["effective_percentile"].AsDouble(), 0.95);
    EXPECT_FALSE(hedging.Contains("min_percentile"));
    EXPECT_FALSE(hedging.Contains("adaptations"));
  }
}

}  // namespace
}  // namespace llmms
