#include "llmms/core/hybrid.h"

#include <gtest/gtest.h>

#include "llmms/core/mab.h"
#include "llmms/core/trace_report.h"
#include "testutil.h"

namespace llmms::core {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  void SetUp() override { world_ = testutil::MakeWorld(6); }

  HybridOrchestrator MakeOrchestrator(HybridOrchestrator::Config config = {}) {
    return HybridOrchestrator(world_.runtime.get(), world_.model_names,
                              world_.embedder, config);
  }

  testutil::World world_;
};

TEST_F(HybridTest, ProducesAnswerWithinBudget) {
  HybridOrchestrator::Config config;
  config.token_budget = 400;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->answer.empty());
  EXPECT_LE(result->total_tokens, config.token_budget);
  EXPECT_EQ(result->answer, result->per_model[result->best_model].response);
}

TEST_F(HybridTest, Deterministic) {
  auto orchestrator = MakeOrchestrator();
  auto a = orchestrator.Run(world_.dataset[1].question);
  auto b = orchestrator.Run(world_.dataset[1].question);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->best_model, b->best_model);
  EXPECT_EQ(a->answer, b->answer);
  EXPECT_EQ(a->total_tokens, b->total_tokens);
}

TEST_F(HybridTest, ScreeningPhasePrunesWithAggressiveMargin) {
  HybridOrchestrator::Config config;
  config.prune_margin = -1.0;  // prune each screening round
  config.min_survivors = 1;
  config.screening_rounds = 4;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  size_t pruned = 0;
  for (const auto& [model, outcome] : result->per_model) {
    pruned += outcome.pruned ? 1 : 0;
  }
  EXPECT_GE(pruned, 1u);
  EXPECT_FALSE(result->per_model[result->best_model].pruned);
}

TEST_F(HybridTest, MinSurvivorsRespected) {
  HybridOrchestrator::Config config;
  config.prune_margin = -1.0;
  config.min_survivors = 2;
  config.screening_rounds = 6;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[2].question);
  ASSERT_TRUE(result.ok());
  size_t survivors = 0;
  for (const auto& [model, outcome] : result->per_model) {
    survivors += outcome.pruned ? 0 : 1;
  }
  EXPECT_GE(survivors, 2u);
}

TEST_F(HybridTest, UsesFewerTokensThanPureMab) {
  HybridOrchestrator::Config hybrid_config;
  auto hybrid = MakeOrchestrator(hybrid_config);
  MabOrchestrator mab(world_.runtime.get(), world_.model_names,
                      world_.embedder, {});
  size_t hybrid_tokens = 0;
  size_t mab_tokens = 0;
  for (size_t i = 0; i < 8 && i < world_.dataset.size(); ++i) {
    auto h = hybrid.Run(world_.dataset[i].question);
    auto m = mab.Run(world_.dataset[i].question);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(m.ok());
    hybrid_tokens += h->total_tokens;
    mab_tokens += m->total_tokens;
  }
  EXPECT_LT(hybrid_tokens, mab_tokens);
}

TEST_F(HybridTest, ValidatesConfiguration) {
  HybridOrchestrator::Config config;
  config.token_budget = 0;
  auto orchestrator = MakeOrchestrator(config);
  EXPECT_TRUE(orchestrator.Run(world_.dataset[0].question)
                  .status()
                  .IsInvalidArgument());
  HybridOrchestrator empty(world_.runtime.get(), {}, world_.embedder, {});
  EXPECT_TRUE(empty.Run("q").status().IsFailedPrecondition());
}

TEST_F(HybridTest, EmitsEventsFromBothPhases) {
  auto orchestrator = MakeOrchestrator();
  size_t chunks = 0;
  size_t scores = 0;
  bool final_seen = false;
  auto result = orchestrator.Run(world_.dataset[0].question,
                                 [&](const OrchestratorEvent& e) {
                                   chunks += e.type == EventType::kChunk;
                                   scores += e.type == EventType::kScore;
                                   final_seen |= e.type == EventType::kFinal;
                                 });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(chunks, 0u);
  EXPECT_GT(scores, 0u);
  EXPECT_TRUE(final_seen);
}

TEST_F(HybridTest, NameIsStable) {
  auto orchestrator = MakeOrchestrator();
  EXPECT_EQ(orchestrator.name(), "llm-ms-hybrid");
}

TEST_F(HybridTest, TraceReportFormatsDecisions) {
  HybridOrchestrator::Config config;
  config.prune_margin = -1.0;
  config.min_survivors = 1;
  auto orchestrator = MakeOrchestrator(config);
  auto result = orchestrator.Run(world_.dataset[0].question);
  ASSERT_TRUE(result.ok());
  const std::string trace = FormatTrace(*result);
  EXPECT_NE(trace.find("pruned"), std::string::npos);
  EXPECT_NE(trace.find("final: " + result->best_model), std::string::npos);
  const std::string summary = SummarizeOutcome(*result);
  EXPECT_NE(summary.find(result->best_model), std::string::npos);
  EXPECT_NE(summary.find("pruned"), std::string::npos);
}

}  // namespace
}  // namespace llmms::core
