#include "llmms/llm/synthetic_model.h"

#include <gtest/gtest.h>

#include "llmms/core/scoring.h"
#include "testutil.h"

namespace llmms::llm {
namespace {

class SyntheticModelTest : public ::testing::Test {
 protected:
  void SetUp() override { world_ = testutil::MakeWorld(); }

  std::shared_ptr<SyntheticModel> MakeModel(double competence,
                                            double verbosity = 1.0) {
    ModelProfile profile;
    profile.name = "probe";
    for (const auto& domain : CanonicalDomains()) {
      profile.domain_competence[domain] = competence;
    }
    profile.default_competence = competence;
    profile.verbosity = verbosity;
    profile.seed = 0xBEEF;
    return std::make_shared<SyntheticModel>(profile, world_.knowledge);
  }

  testutil::World world_;
};

TEST_F(SyntheticModelTest, RejectsEmptyPrompt) {
  auto model = MakeModel(0.8);
  GenerationRequest request;
  EXPECT_TRUE(model->StartGeneration(request).status().IsInvalidArgument());
}

TEST_F(SyntheticModelTest, DeterministicForSamePrompt) {
  auto model = MakeModel(0.7);
  GenerationRequest request;
  request.prompt = world_.dataset[0].question;
  auto a = model->Generate(request);
  auto b = model->Generate(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->text, b->text);
  EXPECT_EQ(a->num_tokens, b->num_tokens);
}

TEST_F(SyntheticModelTest, RequestSeedVariesOutput) {
  auto model = MakeModel(0.7);
  GenerationRequest a;
  a.prompt = world_.dataset[0].question;
  a.seed = 1;
  GenerationRequest b = a;
  b.seed = 2;
  auto ra = model->Generate(a);
  auto rb = model->Generate(b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(ra->text, rb->text);
}

TEST_F(SyntheticModelTest, StreamingMatchesFullGeneration) {
  auto model = MakeModel(0.7);
  GenerationRequest request;
  request.prompt = world_.dataset[1].question;
  auto full = model->Generate(request);
  ASSERT_TRUE(full.ok());

  auto stream = model->StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  std::string accumulated;
  size_t tokens = 0;
  while (!(*stream)->finished()) {
    auto chunk = (*stream)->NextChunk(3);
    ASSERT_TRUE(chunk.ok());
    if (!chunk->text.empty()) {
      if (!accumulated.empty()) accumulated += ' ';
      accumulated += chunk->text;
    }
    tokens += chunk->num_tokens;
  }
  EXPECT_EQ(accumulated, full->text);
  EXPECT_EQ((*stream)->text(), full->text);
  EXPECT_EQ(tokens, full->num_tokens);
  EXPECT_EQ((*stream)->stop_reason(), StopReason::kStop);
}

TEST_F(SyntheticModelTest, NextChunkZeroIsInvalid) {
  auto model = MakeModel(0.7);
  GenerationRequest request;
  request.prompt = world_.dataset[0].question;
  auto stream = model->StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->NextChunk(0).status().IsInvalidArgument());
}

TEST_F(SyntheticModelTest, FinishedStreamKeepsReturningDone) {
  auto model = MakeModel(0.7);
  GenerationRequest request;
  request.prompt = world_.dataset[0].question;
  auto stream = model->StartGeneration(request);
  ASSERT_TRUE(stream.ok());
  while (!(*stream)->finished()) {
    ASSERT_TRUE((*stream)->NextChunk(64).ok());
  }
  auto extra = (*stream)->NextChunk(10);
  ASSERT_TRUE(extra.ok());
  EXPECT_TRUE(extra->done);
  EXPECT_EQ(extra->num_tokens, 0u);
  EXPECT_TRUE(extra->text.empty());
}

TEST_F(SyntheticModelTest, MaxTokensTruncatesWithLengthReason) {
  auto model = MakeModel(0.7, /*verbosity=*/2.0);
  GenerationRequest request;
  request.prompt = world_.dataset[0].question;
  request.max_tokens = 5;
  auto result = model->Generate(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_tokens, 5u);
  EXPECT_EQ(result->stop_reason, StopReason::kLength);
}

TEST_F(SyntheticModelTest, UnknownTopicHedges) {
  auto model = MakeModel(0.9);
  GenerationRequest request;
  request.prompt = "completely unrelated text zzz qqq www blorp";
  auto result = model->Generate(request);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->text.find("sure"), std::string::npos);
}

TEST_F(SyntheticModelTest, CompetentModelsAnswerMoreTruthfully) {
  auto strong = MakeModel(0.95);
  auto weak = MakeModel(0.05);
  int strong_correct = 0;
  int weak_correct = 0;
  int checked = 0;
  for (const auto& item : world_.dataset) {
    const auto sp = strong->PreviewStance(item.question);
    const auto wp = weak->PreviewStance(item.question);
    if (!sp.has_knowledge || !wp.has_knowledge) continue;
    ++checked;
    strong_correct += sp.correct ? 1 : 0;
    weak_correct += wp.correct ? 1 : 0;
  }
  ASSERT_GT(checked, 10);
  EXPECT_GT(strong_correct, weak_correct);
  EXPECT_GT(static_cast<double>(strong_correct) / checked, 0.75);
  EXPECT_LT(static_cast<double>(weak_correct) / checked, 0.35);
}

TEST_F(SyntheticModelTest, CorrectStanceMeansHigherReward) {
  // Responses from a maximally competent model should collect more Eq. 8.1
  // reward than those from an incompetent one, in aggregate.
  auto strong = MakeModel(0.95);
  auto weak = MakeModel(0.05);
  double strong_reward = 0.0;
  double weak_reward = 0.0;
  for (const auto& item : world_.dataset) {
    GenerationRequest request;
    request.prompt = item.question;
    auto s = strong->Generate(request);
    auto w = weak->Generate(request);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(w.ok());
    strong_reward += core::ComputeReward(*world_.embedder, s->text,
                                         item.golden, item.correct,
                                         item.incorrect);
    weak_reward += core::ComputeReward(*world_.embedder, w->text, item.golden,
                                       item.correct, item.incorrect);
  }
  EXPECT_GT(strong_reward, weak_reward);
}

TEST_F(SyntheticModelTest, RagContextUpliftsCompetence) {
  auto model = MakeModel(0.1);
  const auto& item = world_.dataset[0];
  const std::string bare = item.question;
  const std::string grounded = "Use the following context to answer:\n" +
                               item.golden + "\n\nQuestion: " + item.question;
  const auto bare_preview = model->PreviewStance(bare);
  const auto grounded_preview = model->PreviewStance(grounded);
  ASSERT_TRUE(bare_preview.has_knowledge);
  ASSERT_TRUE(grounded_preview.has_knowledge);
  EXPECT_GT(grounded_preview.effective_competence,
            bare_preview.effective_competence + 0.3);
}

TEST_F(SyntheticModelTest, VerbosityIncreasesLength) {
  auto terse = MakeModel(0.7, /*verbosity=*/0.2);
  auto verbose = MakeModel(0.7, /*verbosity=*/2.5);
  size_t terse_tokens = 0;
  size_t verbose_tokens = 0;
  for (size_t i = 0; i < 10 && i < world_.dataset.size(); ++i) {
    GenerationRequest request;
    request.prompt = world_.dataset[i].question;
    auto t = terse->Generate(request);
    auto v = verbose->Generate(request);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(v.ok());
    terse_tokens += t->num_tokens;
    verbose_tokens += v->num_tokens;
  }
  EXPECT_GT(verbose_tokens, terse_tokens);
}

TEST_F(SyntheticModelTest, StopReasonStringMapping) {
  EXPECT_STREQ(StopReasonToString(StopReason::kStop), "stop");
  EXPECT_STREQ(StopReasonToString(StopReason::kLength), "length");
  EXPECT_STREQ(StopReasonToString(StopReason::kCancelled), "cancelled");
}

}  // namespace
}  // namespace llmms::llm
