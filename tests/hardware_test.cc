#include <gtest/gtest.h>

#include "llmms/hardware/device.h"
#include "llmms/hardware/gpu_monitor.h"
#include "llmms/hardware/placement.h"

namespace llmms::hardware {
namespace {

DeviceSpec GpuSpec(const std::string& name, uint64_t memory_mb) {
  DeviceSpec spec;
  spec.name = name;
  spec.kind = DeviceKind::kGpu;
  spec.memory_mb = memory_mb;
  spec.throughput_factor = 1.0;
  return spec;
}

TEST(DeviceTest, MemoryReservationAccounting) {
  Device device(GpuSpec("gpu0", 1000));
  EXPECT_EQ(device.FreeMemoryMb(), 1000u);
  ASSERT_TRUE(device.ReserveMemory(600).ok());
  EXPECT_EQ(device.FreeMemoryMb(), 400u);
  EXPECT_TRUE(device.ReserveMemory(500).IsResourceExhausted());
  device.ReleaseMemory(600);
  EXPECT_EQ(device.FreeMemoryMb(), 1000u);
}

TEST(DeviceTest, ReleaseMoreThanUsedClampsToZero) {
  Device device(GpuSpec("gpu0", 1000));
  ASSERT_TRUE(device.ReserveMemory(100).ok());
  device.ReleaseMemory(5000);
  EXPECT_EQ(device.FreeMemoryMb(), 1000u);
}

TEST(DeviceTest, TelemetryTracksJobsAndTemperature) {
  Device device(GpuSpec("gpu0", 1000));
  auto idle = device.Telemetry();
  EXPECT_EQ(idle.active_jobs, 0);
  EXPECT_DOUBLE_EQ(idle.utilization, 0.0);
  EXPECT_NEAR(idle.temperature_c, 35.0, 1e-9);

  device.BeginJob();
  device.BeginJob();
  auto busy = device.Telemetry();
  EXPECT_EQ(busy.active_jobs, 2);
  EXPECT_GT(busy.utilization, 0.0);
  EXPECT_GT(busy.temperature_c, idle.temperature_c);

  device.EndJob();
  device.EndJob();
  device.EndJob();  // extra EndJob must not underflow
  EXPECT_EQ(device.Telemetry().active_jobs, 0);
}

TEST(HardwareManagerTest, AddsCpuFallbackAutomatically) {
  HardwareManager manager({GpuSpec("gpu0", 8000)});
  EXPECT_EQ(manager.device_count(), 2u);
  const auto snapshot = manager.Snapshot();
  bool has_cpu = false;
  for (const auto& t : snapshot) {
    has_cpu = has_cpu || t.kind == DeviceKind::kCpu;
  }
  EXPECT_TRUE(has_cpu);
}

TEST(HardwareManagerTest, PrefersGpuWithMostFreeMemory) {
  HardwareManager manager({GpuSpec("gpu0", 8000), GpuSpec("gpu1", 16000)});
  auto placement = manager.Place(4000);
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ((*placement)->device()->spec().name, "gpu1");
}

TEST(HardwareManagerTest, FallsBackToCpuWhenGpusFull) {
  HardwareManager manager({GpuSpec("gpu0", 4000)});
  auto first = manager.Place(3500);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->device()->spec().kind, DeviceKind::kGpu);
  auto second = manager.Place(3500);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->device()->spec().kind, DeviceKind::kCpu);
}

TEST(HardwareManagerTest, PlacementReleasesOnDestruction) {
  HardwareManager manager({GpuSpec("gpu0", 4000)});
  {
    auto placement = manager.Place(3000);
    ASSERT_TRUE(placement.ok());
    EXPECT_EQ(manager.device(0)->FreeMemoryMb(), 1000u);
  }
  EXPECT_EQ(manager.device(0)->FreeMemoryMb(), 4000u);
}

TEST(HardwareManagerTest, NothingFitsAnywhere) {
  HardwareManager manager({GpuSpec("gpu0", 1000)});
  // CPU fallback has 96GB, so ask for more than that.
  auto placement = manager.Place(200ull * 1024);
  EXPECT_TRUE(placement.status().IsResourceExhausted());
}

TEST(GpuMonitorTest, SmiTableListsEveryDevice) {
  HardwareManager manager({GpuSpec("tesla-v100-0", 32 * 1024)});
  manager.device(0)->BeginJob();
  const std::string table = FormatSmiTable(manager.Snapshot());
  EXPECT_NE(table.find("tesla-v100-0"), std::string::npos);
  EXPECT_NE(table.find("gpu"), std::string::npos);
  EXPECT_NE(table.find("cpu"), std::string::npos);
  EXPECT_NE(table.find("util%"), std::string::npos);
  manager.device(0)->EndJob();
}

TEST(GpuMonitorTest, FleetSummaryAggregates) {
  HardwareManager manager(
      {GpuSpec("gpu0", 8000), GpuSpec("gpu1", 16000)});
  ASSERT_TRUE(manager.device(0)->ReserveMemory(4000).ok());
  manager.device(1)->BeginJob();
  const auto load = SummarizeFleet(manager.Snapshot());
  EXPECT_EQ(load.memory_total_mb, 8000u + 16000u + 96u * 1024u);
  EXPECT_EQ(load.memory_used_mb, 4000u);
  EXPECT_EQ(load.active_jobs, 1);
  EXPECT_GT(load.max_utilization, 0.0);
  EXPECT_GT(load.max_temperature_c, 35.0);
  manager.device(1)->EndJob();
}

TEST(GpuMonitorTest, EmptySnapshot) {
  const auto load = SummarizeFleet({});
  EXPECT_EQ(load.memory_total_mb, 0u);
  EXPECT_FALSE(FormatSmiTable({}).empty());
}

}  // namespace
}  // namespace llmms::hardware
