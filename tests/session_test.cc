#include <gtest/gtest.h>

#include "llmms/common/string_util.h"
#include "llmms/session/session.h"
#include "llmms/session/session_store.h"
#include "llmms/session/summarizer.h"

namespace llmms::session {
namespace {

TEST(SummarizerTest, ShortTextReturnedVerbatim) {
  Summarizer summarizer;
  EXPECT_EQ(summarizer.Summarize("A short text."), "A short text.");
}

TEST(SummarizerTest, RespectsWordBudget) {
  Summarizer::Options opts;
  opts.max_words = 20;
  Summarizer summarizer(opts);
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += "The mineral veltrite appears in sentence " + std::to_string(i) +
            " about geology. ";
  }
  const std::string summary = summarizer.Summarize(text);
  EXPECT_LE(SplitWhitespace(summary).size(), 30u);  // budget + one sentence
  EXPECT_FALSE(summary.empty());
}

TEST(SummarizerTest, KeepsCentralSentences) {
  Summarizer::Options opts;
  opts.max_words = 12;
  Summarizer summarizer(opts);
  const std::string text =
      "The reactor temperature limit is 900 degrees and reactor safety "
      "depends on the reactor cooling. "
      "Reactor cooling pumps protect the reactor temperature limit. "
      "Unrelatedly someone ate lunch. "
      "The reactor cooling system is serviced monthly for reactor safety.";
  const std::string summary = summarizer.Summarize(text);
  EXPECT_NE(summary.find("reactor"), std::string::npos);
  EXPECT_EQ(summary.find("lunch"), std::string::npos);
}

TEST(SummarizerTest, PreservesOriginalSentenceOrder) {
  Summarizer::Options opts;
  opts.max_words = 30;
  Summarizer summarizer(opts);
  std::string text;
  for (int i = 0; i < 20; ++i) {
    text += "Topic alpha sentence " + std::to_string(i) + " about alpha. ";
  }
  const std::string summary = summarizer.Summarize(text);
  // Extract the sentence numbers that survived; they must be increasing.
  std::vector<int> numbers;
  const auto words = SplitWhitespace(summary);
  for (size_t i = 0; i + 1 < words.size(); ++i) {
    if (words[i] == "sentence") numbers.push_back(std::stoi(words[i + 1]));
  }
  ASSERT_GE(numbers.size(), 2u);
  for (size_t i = 1; i < numbers.size(); ++i) {
    EXPECT_LT(numbers[i - 1], numbers[i]);
  }
}

TEST(SessionTest, KeepsRecentTurnsVerbatim) {
  Session session("s");
  session.Append(Role::kUser, "first question");
  session.Append(Role::kAssistant, "first answer");
  const auto messages = session.RecentMessages();
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].text, "first question");
  EXPECT_EQ(messages[1].role, Role::kAssistant);
  EXPECT_TRUE(session.summary().empty());
}

TEST(SessionTest, FoldsOldTurnsIntoSummary) {
  Session::Options opts;
  opts.keep_recent = 3;
  opts.summarizer.max_words = 40;
  Session session("s", opts);
  for (int i = 0; i < 8; ++i) {
    session.Append(Role::kUser, "The veltrite mineral question number " +
                                    std::to_string(i) + " concerns geology.");
  }
  EXPECT_EQ(session.RecentMessages().size(), 3u);
  EXPECT_FALSE(session.summary().empty());
  EXPECT_EQ(session.message_count(), 8u);
}

TEST(SessionTest, ContextTextCombinesSummaryAndRecent) {
  Session::Options opts;
  opts.keep_recent = 2;
  Session session("s", opts);
  for (int i = 0; i < 5; ++i) {
    session.Append(Role::kUser,
                   "question about veltrite number " + std::to_string(i));
  }
  const std::string context = session.ContextText();
  EXPECT_NE(context.find("Summary of earlier conversation"),
            std::string::npos);
  EXPECT_NE(context.find("number 4"), std::string::npos);
}

TEST(SessionTest, ContextClippedToBudget) {
  Session::Options opts;
  opts.keep_recent = 5;
  opts.max_context_words = 15;
  Session session("s", opts);
  for (int i = 0; i < 5; ++i) {
    session.Append(Role::kUser,
                   "a very long message with many words number " +
                       std::to_string(i) + " padding padding padding");
  }
  EXPECT_LE(SplitWhitespace(session.ContextText()).size(), 15u);
  // The most recent content must survive the clipping.
  EXPECT_NE(session.ContextText().find("number 4"), std::string::npos);
}

TEST(SessionTest, ClearResetsState) {
  Session session("s");
  session.Append(Role::kUser, "hello");
  session.Clear();
  EXPECT_TRUE(session.RecentMessages().empty());
  EXPECT_TRUE(session.summary().empty());
  EXPECT_TRUE(session.ContextText().empty());
}

TEST(SessionTest, RoleNames) {
  EXPECT_STREQ(RoleToString(Role::kUser), "user");
  EXPECT_STREQ(RoleToString(Role::kAssistant), "assistant");
  EXPECT_STREQ(RoleToString(Role::kSystem), "system");
}

TEST(SessionStoreTest, CreateGetRemove) {
  SessionStore store;
  ASSERT_TRUE(store.Create("a").ok());
  EXPECT_TRUE(store.Create("a").status().IsAlreadyExists());
  EXPECT_TRUE(store.Create("").status().IsInvalidArgument());
  ASSERT_TRUE(store.Get("a").ok());
  EXPECT_TRUE(store.Get("b").status().IsNotFound());
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Remove("a").ok());
  EXPECT_TRUE(store.Remove("a").IsNotFound());
}

TEST(SessionStoreTest, GetOrCreateReusesExisting) {
  SessionStore store;
  auto a = store.GetOrCreate("x");
  ASSERT_TRUE(a.ok());
  (*a)->Append(Role::kUser, "hello");
  auto b = store.GetOrCreate("x");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->message_count(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SessionStoreTest, ListIsSorted) {
  SessionStore store;
  ASSERT_TRUE(store.Create("zeta").ok());
  ASSERT_TRUE(store.Create("alpha").ok());
  const auto ids = store.List();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "alpha");
  EXPECT_EQ(ids[1], "zeta");
}

TEST(SessionStoreTest, DefaultsPropagateToSessions) {
  Session::Options defaults;
  defaults.keep_recent = 1;
  SessionStore store(defaults);
  auto session = store.GetOrCreate("s");
  ASSERT_TRUE(session.ok());
  (*session)->Append(Role::kUser, "the veltrite mineral question one");
  (*session)->Append(Role::kUser, "the veltrite mineral question two");
  EXPECT_EQ((*session)->RecentMessages().size(), 1u);
}

}  // namespace
}  // namespace llmms::session
