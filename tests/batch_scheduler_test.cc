// Deterministic suite for llm::BatchScheduler (DESIGN.md §13): exact
// round-robin and weighted shares under virtual-time fair queueing,
// chunk-boundary preemption, hedge dispatch priority, typed deadline
// unwinding, property sweeps across seeds, a golden decision trace, and the
// continuous-batching acceptance bar (fairness + strictly higher aggregate
// throughput than a run-to-completion serving emulation).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "llmms/common/deadline.h"
#include "llmms/llm/batch_scheduler.h"
#include "testutil.h"

namespace llmms::llm {
namespace {

// A scripted chunk source: `chunks_total` chunks of `tokens_per_chunk`
// tokens each, text "<tag><index>", done on the last. The produced text is
// accumulated so tests can assert partial output byte-for-byte.
struct Scripted {
  std::string tag;
  size_t chunks_total = 1;
  size_t tokens_per_chunk = 8;
  size_t chunks_served = 0;
  std::string text;
};

BatchScheduler::ChunkFn SourceOf(Scripted* script) {
  return [script](size_t max_tokens) -> StatusOr<Chunk> {
    (void)max_tokens;
    Chunk chunk;
    chunk.text = script->tag + std::to_string(script->chunks_served);
    chunk.num_tokens = script->tokens_per_chunk;
    ++script->chunks_served;
    chunk.done = script->chunks_served >= script->chunks_total;
    script->text += chunk.text;
    return chunk;
  };
}

BatchScheduler::AdmitOptions Options(const std::string& model, double weight,
                                     bool hedge = false) {
  BatchScheduler::AdmitOptions options;
  options.model = model;
  options.weight = weight;
  options.hedge = hedge;
  options.tokens_per_second = 8.0;  // 8-token chunks cost exactly 1s
  return options;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

// ---------------------------------------------------------------------------
// Weight derivation.

TEST(BatchSchedulerTest, WeightDerivedFromBudgetAndDeadlineSlack) {
  SchedulerConfig config;
  BatchScheduler scheduler(config);
  const double inf = std::numeric_limits<double>::infinity();
  // Budget relative to the 2048-token reference.
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(2048, inf), 1.0);
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(4096, inf), 2.0);
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(1024, inf), 0.5);
  // No budget hint falls back to weight 1.
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(0, inf), 1.0);
  // Clamped at both ends.
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(1, inf), config.min_weight);
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(1 << 20, inf), config.max_weight);
  // A stream with 3s of slack gets the urgency boost, capped at 4x.
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(2048, 3.0), 4.0);
  // Slack beyond the urgency window adds nothing.
  EXPECT_DOUBLE_EQ(scheduler.WeightFor(2048, 300.0), 1.0);
}

// ---------------------------------------------------------------------------
// Virtual-time dispatch order.

TEST(BatchSchedulerTest, EqualWeightsDispatchExactRoundRobin) {
  SchedulerConfig config;
  config.replicas_per_model = 1;
  BatchScheduler scheduler(config);
  Scripted a{"a", 100}, b{"b", 100}, c{"c", 100};
  const auto ia = scheduler.AdmitSource(Options("m", 1.0), SourceOf(&a));
  const auto ib = scheduler.AdmitSource(Options("m", 1.0), SourceOf(&b));
  const auto ic = scheduler.AdmitSource(Options("m", 1.0), SourceOf(&c));

  std::vector<BatchScheduler::StreamId> order;
  for (int round = 0; round < 9; ++round) {
    auto result = scheduler.RunRound(8);
    ASSERT_EQ(result.executed.size(), 1u) << "round " << round;
    order.push_back(result.executed[0].stream);
  }
  const std::vector<BatchScheduler::StreamId> expected = {ia, ib, ic, ia, ib,
                                                          ic, ia, ib, ic};
  EXPECT_EQ(order, expected);
  scheduler.Finish(ia);
  scheduler.Finish(ib);
  scheduler.Finish(ic);
  EXPECT_EQ(scheduler.stats().runnable, 0u);
}

TEST(BatchSchedulerTest, WeightedSharesConvergeToWeightRatios) {
  SchedulerConfig config;
  config.replicas_per_model = 1;
  BatchScheduler scheduler(config);
  Scripted a{"a", 1000}, b{"b", 1000}, c{"c", 1000};
  const auto ia = scheduler.AdmitSource(Options("m", 1.0), SourceOf(&a));
  const auto ib = scheduler.AdmitSource(Options("m", 2.0), SourceOf(&b));
  const auto ic = scheduler.AdmitSource(Options("m", 4.0), SourceOf(&c));

  for (int round = 0; round < 140; ++round) scheduler.RunRound(8);

  const auto stats = scheduler.stats();
  ASSERT_EQ(stats.streams.size(), 3u);
  double min_normalized = std::numeric_limits<double>::infinity();
  double max_normalized = 0.0;
  size_t tokens_a = 0, tokens_b = 0, tokens_c = 0;
  for (const auto& s : stats.streams) {
    const double normalized = static_cast<double>(s.service_tokens) / s.weight;
    min_normalized = std::min(min_normalized, normalized);
    max_normalized = std::max(max_normalized, normalized);
    if (s.id == ia) tokens_a = s.service_tokens;
    if (s.id == ib) tokens_b = s.service_tokens;
    if (s.id == ic) tokens_c = s.service_tokens;
  }
  // Weight-normalized service is near-equal (fair), so raw service follows
  // the 1:2:4 weight ratio within discretization error.
  EXPECT_LE(max_normalized / min_normalized, 1.15);
  EXPECT_NEAR(static_cast<double>(tokens_b) / tokens_a, 2.0, 0.25);
  EXPECT_NEAR(static_cast<double>(tokens_c) / tokens_a, 4.0, 0.40);
  EXPECT_GE(stats.fairness_index, 0.95);
}

// ---------------------------------------------------------------------------
// Preemption at chunk boundaries.

TEST(BatchSchedulerTest, PreemptionPreservesPartialOutputByteForByte) {
  SchedulerConfig config;
  config.replicas_per_model = 1;
  BatchScheduler scheduler(config);
  Scripted a{"a", 6};
  const auto ia = scheduler.AdmitSource(Options("m", 1.0), SourceOf(&a));

  // A owns the replica for two chunks...
  for (int round = 0; round < 2; ++round) {
    auto result = scheduler.RunRound(8);
    ASSERT_EQ(result.executed.size(), 1u);
    EXPECT_EQ(result.executed[0].stream, ia);
  }
  EXPECT_EQ(a.text, "a0a1");

  // ...then a hedge admission takes the slot at the next chunk boundary.
  Scripted h{"h", 2};
  const auto ih =
      scheduler.AdmitSource(Options("m", 1.0, /*hedge=*/true), SourceOf(&h));
  auto preempting = scheduler.RunRound(8);
  ASSERT_EQ(preempting.executed.size(), 1u);
  EXPECT_EQ(preempting.executed[0].stream, ih);
  EXPECT_EQ(scheduler.stats().preempted_total, 1u);

  // The preempted stream kept its partial output and resumes where it left
  // off once the hedge finishes; the final text is the uninterrupted
  // concatenation, byte for byte.
  for (int round = 0; round < 8 && scheduler.HasRunnable(); ++round) {
    scheduler.RunRound(8);
  }
  EXPECT_EQ(a.chunks_served, 6u);
  EXPECT_EQ(a.text, "a0a1a2a3a4a5");
  EXPECT_EQ(h.text, "h0h1");
  EXPECT_FALSE(scheduler.HasRunnable());
  (void)ih;
}

TEST(BatchSchedulerTest, HedgeAdmissionsDispatchFirst) {
  SchedulerConfig config;
  config.replicas_per_model = 1;
  BatchScheduler scheduler(config);
  Scripted a{"a", 4}, b{"b", 4}, h{"h", 1};
  scheduler.AdmitSource(Options("m", 1.0), SourceOf(&a));
  scheduler.AdmitSource(Options("m", 1.0), SourceOf(&b));
  // Admitted last, equal virtual time: without the hedge flag it would
  // dispatch last by admission order; with it, it goes first.
  const auto ih =
      scheduler.AdmitSource(Options("m", 1.0, /*hedge=*/true), SourceOf(&h));
  auto result = scheduler.RunRound(8);
  ASSERT_EQ(result.executed.size(), 1u);
  EXPECT_EQ(result.executed[0].stream, ih);
  EXPECT_EQ(scheduler.stats().hedge_admitted_total, 1u);
}

// ---------------------------------------------------------------------------
// Typed deadline unwinding.

TEST(BatchSchedulerTest, DeadlineExpiredStreamUnwindsWithTypedStatus) {
  SchedulerConfig config;
  config.replicas_per_model = 1;
  BatchScheduler scheduler(config);
  Scripted a{"a", 4};
  auto options = Options("m", 1.0);
  options.context = RequestContext::WithTimeout(1e-6);
  const auto ia = scheduler.AdmitSource(options, SourceOf(&a));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  auto result = scheduler.RunRound(8);
  EXPECT_TRUE(result.executed.empty());
  ASSERT_EQ(result.unwound.size(), 1u);
  EXPECT_EQ(result.unwound[0].first, ia);
  EXPECT_TRUE(result.unwound[0].second.IsDeadlineExceeded())
      << result.unwound[0].second.ToString();
  // Never dispatched: no tokens were burned for a caller that is gone.
  EXPECT_EQ(a.chunks_served, 0u);
  EXPECT_EQ(scheduler.stats().expired_total, 1u);
  EXPECT_FALSE(scheduler.HasRunnable());
}

TEST(BatchSchedulerTest, CancelledStreamUnwindsWithTypedStatus) {
  SchedulerConfig config;
  BatchScheduler scheduler(config);
  Scripted a{"a", 4};
  auto options = Options("m", 1.0);
  options.context = RequestContext::Unbounded();
  scheduler.AdmitSource(options, SourceOf(&a));
  options.context->Cancel("client disconnected");

  auto result = scheduler.RunRound(8);
  ASSERT_EQ(result.unwound.size(), 1u);
  EXPECT_TRUE(result.unwound[0].second.IsCancelled());
  EXPECT_EQ(a.chunks_served, 0u);
}

TEST(BatchSchedulerTest, ThreadedExpiredStreamReturnsTypedStatus) {
  SchedulerConfig config;
  BatchScheduler scheduler(config);
  auto options = Options("m", 1.0);
  options.context = RequestContext::WithTimeout(1e-6);
  const auto id = scheduler.Admit(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto chunk = scheduler.ExecuteChunk(id, 8, [](size_t) -> StatusOr<Chunk> {
    ADD_FAILURE() << "an expired stream must never reach its chunk fn";
    return Chunk{};
  });
  EXPECT_TRUE(chunk.status().IsDeadlineExceeded());
  EXPECT_EQ(scheduler.stats().expired_total, 1u);
}

// ---------------------------------------------------------------------------
// Round accounting: only dispatched streams are charged.

TEST(BatchSchedulerTest, RoundCostChargesOnlyDispatchedStreams) {
  SchedulerConfig config;
  config.replicas_per_model = 4;  // more replicas than runnable streams
  BatchScheduler scheduler(config);
  Scripted a{"a", 3};
  scheduler.AdmitSource(Options("m", 1.0), SourceOf(&a));

  auto result = scheduler.RunRound(8);
  // One stream dispatched, three replicas idle: the round costs one chunk
  // (1s at 8 tokens / 8 tps), not four.
  ASSERT_EQ(result.executed.size(), 1u);
  EXPECT_DOUBLE_EQ(result.max_cost_seconds, 1.0);
  EXPECT_DOUBLE_EQ(result.total_cost_seconds, 1.0);

  const auto stats = scheduler.stats();
  ASSERT_EQ(stats.models.size(), 1u);
  double busy_total = 0.0;
  for (double b : stats.models[0].slot_busy_seconds) busy_total += b;
  EXPECT_DOUBLE_EQ(busy_total, 1.0);
}

// ---------------------------------------------------------------------------
// Property sweep: random seeds x stream counts.

TEST(BatchSchedulerTest, PropertySweepNoStarvationAndTokenConservation) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    for (size_t streams : {2u, 5u, 9u}) {
      std::mt19937_64 rng(seed * 1000 + streams);
      SchedulerConfig config;
      config.replicas_per_model = 2;
      BatchScheduler scheduler(config);

      const double weight_choices[] = {0.5, 1.0, 2.0, 4.0};
      std::vector<Scripted> scripts(streams);
      std::vector<std::string> expected_text(streams);
      size_t total_chunks = 0;
      for (size_t i = 0; i < streams; ++i) {
        scripts[i].tag = "s" + std::to_string(i) + "-";
        scripts[i].chunks_total = 1 + rng() % 6;
        total_chunks += scripts[i].chunks_total;
        for (size_t c = 0; c < scripts[i].chunks_total; ++c) {
          expected_text[i] += scripts[i].tag + std::to_string(c);
        }
        scheduler.AdmitSource(Options("m", weight_choices[rng() % 4]),
                              SourceOf(&scripts[i]));
      }

      // No starvation: with 2 replicas every stream completes within a
      // bounded number of rounds regardless of weights.
      size_t rounds = 0;
      const size_t bound = 8 * total_chunks + 16;
      while (scheduler.HasRunnable() && rounds < bound) {
        scheduler.RunRound(8);
        ++rounds;
      }
      EXPECT_FALSE(scheduler.HasRunnable())
          << "seed=" << seed << " streams=" << streams
          << ": streams starved beyond " << bound << " rounds";

      // Conservation: every admitted token was served exactly once, and
      // each stream's output is its uninterrupted chunk sequence.
      const auto stats = scheduler.stats();
      EXPECT_EQ(stats.total_service_tokens, total_chunks * 8)
          << "seed=" << seed << " streams=" << streams;
      EXPECT_EQ(stats.finished_total, streams);
      for (size_t i = 0; i < streams; ++i) {
        EXPECT_EQ(scripts[i].chunks_served, scripts[i].chunks_total);
        EXPECT_EQ(scripts[i].text, expected_text[i])
            << "seed=" << seed << " stream " << i;
      }
    }
  }
}

// Scheduling only reorders execution across streams; it never changes what
// any single stream produces. Run the same three-model generation through a
// scheduler-enabled runtime and a plain one: per-model text and simulated
// time must match exactly.
TEST(BatchSchedulerTest, SchedulerOnMatchesSchedulerOffOutputs) {
  auto plain = testutil::MakeWorld();
  auto batched = testutil::MakeWorld();
  SchedulerConfig config;
  config.replicas_per_model = 2;
  batched.runtime->EnableScheduler(config);

  for (size_t q = 0; q < 3; ++q) {
    GenerationRequest request;
    request.prompt = plain.dataset[q].question;
    request.token_budget = 256;
    auto gen_plain =
        plain.runtime->StartGeneration(plain.model_names, request);
    auto gen_batched =
        batched.runtime->StartGeneration(batched.model_names, request);
    ASSERT_TRUE(gen_plain.ok());
    ASSERT_TRUE(gen_batched.ok());

    const auto drive = [&](ParallelGeneration* generation) {
      for (int round = 0; round < 64; ++round) {
        std::vector<std::pair<std::string, size_t>> asks;
        for (const auto& m : plain.model_names) {
          auto stats = generation->StatsOf(m);
          ASSERT_TRUE(stats.ok());
          if (!stats->finished) asks.emplace_back(m, 8);
        }
        if (asks.empty()) return;
        auto batch = generation->NextChunks(asks);
        ASSERT_TRUE(batch.ok());
      }
      FAIL() << "generation did not finish";
    };
    drive(gen_plain->get());
    drive(gen_batched->get());

    for (const auto& m : plain.model_names) {
      auto text_plain = (*gen_plain)->TextOf(m);
      auto text_batched = (*gen_batched)->TextOf(m);
      ASSERT_TRUE(text_plain.ok());
      ASSERT_TRUE(text_batched.ok());
      EXPECT_EQ(*text_plain, *text_batched) << m << " query " << q;
      auto stats_plain = (*gen_plain)->StatsOf(m);
      auto stats_batched = (*gen_batched)->StatsOf(m);
      ASSERT_TRUE(stats_plain.ok());
      ASSERT_TRUE(stats_batched.ok());
      EXPECT_EQ(stats_plain->tokens, stats_batched->tokens) << m;
      EXPECT_DOUBLE_EQ(stats_plain->simulated_seconds,
                       stats_batched->simulated_seconds)
          << m;
    }
  }
  const auto stats = batched.runtime->scheduler()->stats();
  EXPECT_EQ(stats.runnable, 0u);
  EXPECT_EQ(stats.finished_total, stats.admitted_total);
}

// ---------------------------------------------------------------------------
// Golden decision trace.

TEST(BatchSchedulerTest, GoldenTraceIsDeterministic) {
  SchedulerConfig config;
  config.replicas_per_model = 2;
  BatchScheduler scheduler(config);

  Scripted a{"a", 3}, b{"b", 2}, c{"c", 4}, h{"h", 1}, dead{"d", 2};
  scheduler.AdmitSource(Options("m", 1.0), SourceOf(&a));
  scheduler.AdmitSource(Options("m", 2.0), SourceOf(&b));
  scheduler.AdmitSource(Options("m", 1.0), SourceOf(&c));
  scheduler.RunRound(8);
  scheduler.RunRound(8);
  // A hedge admission mid-run and a stream whose caller is already gone.
  scheduler.AdmitSource(Options("m", 1.0, /*hedge=*/true), SourceOf(&h));
  auto cancelled = Options("m", 1.0);
  cancelled.context = RequestContext::Unbounded();
  scheduler.AdmitSource(cancelled, SourceOf(&dead));
  cancelled.context->Cancel("golden: caller gone");
  for (int round = 0; round < 6 && scheduler.HasRunnable(); ++round) {
    scheduler.RunRound(8);
  }
  EXPECT_FALSE(scheduler.HasRunnable());

  std::string serialized;
  for (const auto& line : scheduler.Trace()) {
    serialized += line;
    serialized += '\n';
  }
  const std::string golden_path =
      std::string(LLMMS_TESTS_DIR) + "/golden/scheduler_trace.golden";
  if (std::getenv("LLMMS_UPDATE_GOLDEN") != nullptr) {
    WriteFile(golden_path, serialized);
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }
  ASSERT_TRUE(FileExists(golden_path))
      << "missing golden file; regenerate with LLMMS_UPDATE_GOLDEN=1 "
      << golden_path;
  EXPECT_EQ(serialized, ReadFile(golden_path))
      << "scheduler decision sequence diverged from the committed golden "
         "trace; if the change is intentional, regenerate with "
         "LLMMS_UPDATE_GOLDEN=1";
}

// ---------------------------------------------------------------------------
// Acceptance: 8 concurrent queries over 2 shared replicas.

// Run-to-completion serving emulation (what a non-batching server does):
// each query holds a replica exclusively until it finishes, admitted in
// arrival order onto whichever replica frees first. Returns the makespan.
double FifoMakespan(const std::vector<size_t>& durations, size_t replicas) {
  std::vector<double> free_at(replicas, 0.0);
  double makespan = 0.0;
  for (size_t duration : durations) {
    auto earliest = std::min_element(free_at.begin(), free_at.end());
    *earliest += static_cast<double>(duration);
    makespan = std::max(makespan, *earliest);
  }
  return makespan;
}

TEST(BatchSchedulerTest, EightQueriesTwoReplicasFairAndFasterThanUnbatched) {
  // Six short queries arrive first, then a medium and a long one — the
  // classic convoy: run-to-completion strands the long query behind the
  // shorts and one replica idles while it drains alone.
  const std::vector<size_t> durations = {2, 2, 2, 2, 2, 2, 6, 12};

  SchedulerConfig config;
  config.replicas_per_model = 2;
  // One 8-token chunk of budget = weight 1: budget-derived weights make a
  // stream's replica share proportional to its remaining work, which is
  // what lets the batched path finish the whole convoy sooner.
  config.reference_budget_tokens = 8.0;
  BatchScheduler scheduler(config);

  std::vector<Scripted> scripts(durations.size());
  for (size_t i = 0; i < durations.size(); ++i) {
    scripts[i].tag = "q" + std::to_string(i) + "-";
    scripts[i].chunks_total = durations[i];
    BatchScheduler::AdmitOptions options;
    options.model = "m";
    options.token_budget = durations[i] * 8;  // derive weight from budget
    options.tokens_per_second = 8.0;
    scheduler.AdmitSource(options, SourceOf(&scripts[i]));
  }

  size_t rounds = 0;
  while (scheduler.HasRunnable() && rounds < 200) {
    scheduler.RunRound(8);
    ++rounds;
  }
  ASSERT_FALSE(scheduler.HasRunnable());

  const auto stats = scheduler.stats();
  ASSERT_EQ(stats.models.size(), 1u);
  double batched_makespan = 0.0;
  for (double busy : stats.models[0].slot_busy_seconds) {
    batched_makespan = std::max(batched_makespan, busy);
  }
  const double unbatched_makespan = FifoMakespan(durations, 2);
  EXPECT_DOUBLE_EQ(unbatched_makespan, 18.0);

  // Strictly higher aggregate served QPS than the unbatched path.
  const double batched_qps = durations.size() / batched_makespan;
  const double unbatched_qps = durations.size() / unbatched_makespan;
  EXPECT_LT(batched_makespan, unbatched_makespan);
  EXPECT_GT(batched_qps, unbatched_qps);

  // Jain fairness over weight-normalized service tokens: every query's
  // service is proportional to its weight, so the index is ~1.
  EXPECT_GE(stats.fairness_index, 0.9);
  EXPECT_EQ(stats.finished_total, durations.size());
  EXPECT_EQ(stats.total_service_tokens, 30u * 8u);
}

}  // namespace
}  // namespace llmms::llm
