#include "llmms/session/memory_graph.h"

#include <gtest/gtest.h>

#include "llmms/embedding/hash_embedder.h"

namespace llmms::session {
namespace {

class MemoryGraphTest : public ::testing::Test {
 protected:
  std::shared_ptr<const embedding::Embedder> embedder_ =
      std::make_shared<embedding::HashEmbedder>();
};

TEST_F(MemoryGraphTest, AddAndRecallDirectMatch) {
  MemoryGraph graph(embedder_);
  ASSERT_TRUE(graph
                  .Add("what color does veltrite turn when heated",
                       "veltrite turns crimson when heated")
                  .ok());
  ASSERT_TRUE(graph.Add("who won the battle of drennos",
                        "general maltok won the battle").ok());
  const auto recalled = graph.Recall("veltrite color when hot", 2);
  ASSERT_FALSE(recalled.empty());
  EXPECT_NE(recalled[0].node.answer.find("crimson"), std::string::npos);
  EXPECT_FALSE(recalled[0].via_edge);
  EXPECT_GT(recalled[0].similarity, 0.2);
}

TEST_F(MemoryGraphTest, RejectsEmptyQuestion) {
  MemoryGraph graph(embedder_);
  EXPECT_TRUE(graph.Add("", "answer").status().IsInvalidArgument());
}

TEST_F(MemoryGraphTest, SimilarExchangesGetLinked) {
  MemoryGraph graph(embedder_);
  auto a = graph.Add("what color does veltrite turn when heated",
                     "veltrite turns crimson when heated");
  auto b = graph.Add("does veltrite change color when you heat it",
                     "yes veltrite shifts to crimson under heat");
  auto c = graph.Add("who discovered the element drathium",
                     "drathium was discovered by veska");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_GE(graph.DegreeOf(*a), 1u);
  EXPECT_GE(graph.DegreeOf(*b), 1u);
  EXPECT_EQ(graph.DegreeOf(*c), 0u);
  EXPECT_GE(graph.edge_count(), 2u);
}

TEST_F(MemoryGraphTest, RecallExpandsThroughEdges) {
  MemoryGraph::Options opts;
  opts.link_threshold = 0.3;
  MemoryGraph graph(embedder_, opts);
  // Two linked mineral exchanges; the second phrased so a color query hits
  // the first directly and reaches the second via the edge.
  ASSERT_TRUE(graph
                  .Add("what color does the mineral veltrite turn when heated",
                       "the mineral veltrite turns crimson when heated")
                  .ok());
  ASSERT_TRUE(graph
                  .Add("tell me about heating the mineral veltrite",
                       "heating the mineral veltrite is studied in the lab")
                  .ok());
  ASSERT_TRUE(graph.Add("capital of the country veldan", "the capital is oskar")
                  .ok());
  const auto recalled =
      graph.Recall("veltrite color when heated", 3, /*min_similarity=*/0.45);
  ASSERT_GE(recalled.size(), 2u);
  bool via_edge = false;
  for (const auto& r : recalled) via_edge = via_edge || r.via_edge;
  EXPECT_TRUE(via_edge);
}

TEST_F(MemoryGraphTest, RecallRespectsKAndThreshold) {
  MemoryGraph graph(embedder_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(graph
                    .Add("question about topic " + std::to_string(i),
                         "answer about topic " + std::to_string(i))
                    .ok());
  }
  EXPECT_LE(graph.Recall("question about topic 3", 2).size(), 2u);
  EXPECT_TRUE(graph.Recall("zzz completely unrelated qqq", 5, 0.5).empty());
  EXPECT_TRUE(graph.Recall("anything", 0).empty());
}

TEST_F(MemoryGraphTest, CapacityEvictsOldest) {
  MemoryGraph::Options opts;
  opts.capacity = 3;
  MemoryGraph graph(embedder_, opts);
  auto first = graph.Add("first question about alpha", "alpha answer");
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(graph
                    .Add("later question " + std::to_string(i),
                         "later answer " + std::to_string(i))
                    .ok());
  }
  EXPECT_EQ(graph.size(), 3u);
  // The evicted node is gone from recall and from edges.
  const auto recalled = graph.Recall("first question about alpha", 5, 0.0);
  for (const auto& r : recalled) {
    EXPECT_NE(r.node.id, *first);
  }
  EXPECT_EQ(graph.DegreeOf(*first), 0u);
}

TEST_F(MemoryGraphTest, MaxDegreeBoundsEdges) {
  MemoryGraph::Options opts;
  opts.link_threshold = 0.05;  // link nearly everything
  opts.max_degree = 2;
  MemoryGraph graph(embedder_, opts);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = graph.Add("shared topic words question " + std::to_string(i),
                        "shared topic words answer");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (uint64_t id : ids) {
    EXPECT_LE(graph.DegreeOf(id), 2u);
  }
}

TEST_F(MemoryGraphTest, EmptyGraphRecallsNothing) {
  MemoryGraph graph(embedder_);
  EXPECT_TRUE(graph.Recall("anything", 3).empty());
  EXPECT_EQ(graph.size(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

}  // namespace
}  // namespace llmms::session
