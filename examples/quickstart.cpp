// Quickstart: ask one question through the LLM-MS search engine and watch
// the orchestration happen — streamed tokens, per-round scores, pruning
// decisions, and the final model selection.
//
//   ./build/examples/quickstart

#include <iostream>

#include "example_common.h"
#include "llmms/common/string_util.h"
#include "llmms/core/trace_report.h"

int main() {
  using namespace llmms;
  auto platform = examples::MakePlatform();

  const std::string question = platform.dataset[0].question;
  std::cout << "Question: " << question << "\n\n";
  std::cout << "Orchestrating " << platform.model_names.size()
            << " models with LLM-MS OUA (token budget 2048)...\n\n";

  core::SearchEngine::QueryOptions options;
  options.algorithm = core::Algorithm::kOua;

  // Stream events the way the web UI would over SSE.
  auto callback = [](const core::OrchestratorEvent& event) {
    switch (event.type) {
      case core::EventType::kChunk:
        std::cout << "  [" << event.model << "] +" << event.text << "\n";
        break;
      case core::EventType::kPrune:
        std::cout << "  -- pruned " << event.model
                  << " (score " << FormatDouble(event.score, 3) << ")\n";
        break;
      case core::EventType::kEarlyStop:
        std::cout << "  ** early stop: " << event.model << " wins at score "
                  << FormatDouble(event.score, 3) << "\n";
        break;
      default:
        break;
    }
  };

  auto result = platform.engine->Ask("quickstart", question, options, callback);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }

  const auto& orchestration = result->orchestration;
  std::cout << "\nAnswer (from " << orchestration.best_model << "):\n  "
            << orchestration.answer << "\n\n";
  std::cout << "Golden reference:\n  " << platform.dataset[0].golden << "\n\n";

  std::cout << "Routing transparency:\n";
  for (const auto& [model, outcome] : orchestration.per_model) {
    std::cout << "  " << model << ": score "
              << FormatDouble(outcome.final_score, 3) << ", "
              << outcome.tokens << " tokens"
              << (outcome.pruned ? ", pruned" : "")
              << (outcome.finished ? ", finished" : "") << "\n";
  }
  std::cout << "Total tokens: " << orchestration.total_tokens << " over "
            << orchestration.rounds << " rounds, simulated latency "
            << FormatDouble(orchestration.simulated_seconds, 3) << "s\n";

  std::cout << "\nTransparent orchestration log:\n"
            << core::FormatTrace(orchestration)
            << "-> " << core::SummarizeOutcome(orchestration) << "\n";
  return 0;
}
