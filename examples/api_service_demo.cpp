// Application-layer demo: drives the platform through the JSON API contract
// the Flask frontend would use (§7.1-§7.2), with token streaming rendered as
// server-sent events — upload, query with settings, transparency overlay,
// hardware telemetry, and session teardown.
//
//   ./build/examples/api_service_demo

#include <iostream>

#include "example_common.h"
#include "llmms/app/service.h"
#include "llmms/app/sse.h"

int main() {
  using namespace llmms;
  auto platform = examples::MakePlatform();
  app::ApiService service(platform.engine.get());

  std::cout << "=== GET /api/health ===\n"
            << service.Handle("/api/health", Json::MakeObject()).Dump(2)
            << "\n\n";

  std::cout << "=== GET /api/models ===\n"
            << service.Handle("/api/models", Json::MakeObject()).Dump(2)
            << "\n\n";

  // Upload a document for the session.
  const auto& item = platform.dataset[4];
  Json upload = Json::MakeObject();
  upload.Set("session", "web-1");
  upload.Set("document_id", "notes.txt");
  upload.Set("text", "Meeting notes. " + item.golden + " End of notes.");
  std::cout << "=== POST /api/upload ===\n"
            << service.Handle("/api/upload", upload).Dump(2) << "\n\n";

  // Query with settings from the UI's settings panel, streaming SSE frames.
  Json query = Json::MakeObject();
  query.Set("session", "web-1");
  query.Set("query", item.question);
  query.Set("algorithm", "oua");
  query.Set("budget", 1024);
  query.Set("alpha", 0.7);
  query.Set("beta", 0.3);

  std::cout << "=== POST /api/query (SSE stream) ===\n";
  size_t frames = 0;
  auto response = service.Handle(
      "/api/query", query, [&frames](const Json& event) {
        app::SseEvent sse;
        sse.event = "orchestration";
        sse.id = std::to_string(frames++);
        sse.data = event.Dump();
        if (frames <= 6 || event["type"].AsString() != "chunk") {
          std::cout << app::EncodeSse(sse);
        }
      });
  std::cout << "(" << frames << " SSE frames total; chunk frames elided)\n\n";

  std::cout << "=== response body ===\n" << response.Dump(2) << "\n\n";

  std::cout << "=== GET /api/hardware (NVIDIA-SMI substitute) ===\n"
            << service.Handle("/api/hardware", Json::MakeObject()).Dump(2)
            << "\n\n";

  Json end = Json::MakeObject();
  end.Set("session", "web-1");
  std::cout << "=== POST /api/session/end ===\n"
            << service.Handle("/api/session/end", end).Dump(2) << "\n";
  return 0;
}
