// Full evaluation CLI: generates (or loads) a TruthfulQA-style dataset, runs
// the paper's five execution modes, and prints Figures 8.1-8.3 as tables.
//
//   ./build/examples/truthfulqa_eval                    # 12 questions/domain
//   ./build/examples/truthfulqa_eval --qpd 50           # paper scale
//   ./build/examples/truthfulqa_eval --save data.jsonl  # export the dataset
//   ./build/examples/truthfulqa_eval --load data.jsonl  # evaluate a file
//   ./build/examples/truthfulqa_eval --markdown         # markdown table

#include <cstring>
#include <iostream>

#include "example_common.h"
#include "llmms/eval/harness.h"
#include "llmms/eval/report.h"

int main(int argc, char** argv) {
  using namespace llmms;

  size_t qpd = 12;
  std::string save_path;
  std::string load_path;
  bool markdown = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--qpd") == 0 && i + 1 < argc) {
      qpd = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      load_path = argv[++i];
    } else if (std::strcmp(argv[i], "--markdown") == 0) {
      markdown = true;
    } else {
      std::cerr << "usage: truthfulqa_eval [--qpd N] [--save F] [--load F] "
                   "[--markdown]\n";
      return 2;
    }
  }

  auto platform = examples::MakePlatform(qpd);
  std::vector<llm::QaItem> dataset = platform.dataset;
  if (!load_path.empty()) {
    auto loaded = eval::LoadDatasetJsonl(load_path);
    if (!loaded.ok()) {
      std::cerr << "cannot load dataset: " << loaded.status() << "\n";
      return 1;
    }
    dataset = std::move(loaded).value();
    // The models must "know" the loaded world too.
    auto kb = std::make_shared<llm::KnowledgeBase>(platform.embedder);
    if (auto status = kb->AddAll(dataset); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    for (const auto& profile : llm::DefaultProfiles()) {
      if (auto status = platform.registry->Pull(
              std::make_shared<llm::SyntheticModel>(profile, kb));
          !status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
      // Reload so the runtime serves the re-pulled models.
      (void)platform.runtime->UnloadModel(profile.name);
      if (auto status = platform.runtime->LoadModel(profile.name);
          !status.ok()) {
        std::cerr << status << "\n";
        return 1;
      }
    }
  }
  if (!save_path.empty()) {
    if (auto status = eval::SaveDatasetJsonl(dataset, save_path);
        !status.ok()) {
      std::cerr << "cannot save dataset: " << status << "\n";
      return 1;
    }
    std::cout << "dataset written to " << save_path << " (" << dataset.size()
              << " questions)\n";
  }

  std::cout << "Evaluating " << dataset.size()
            << " questions across 5 execution modes...\n";
  eval::EvaluationHarness harness(platform.runtime.get(), platform.embedder,
                                  platform.model_names, eval::HarnessConfig{});
  auto report = harness.Run(
      dataset, [](const std::string& strategy, size_t done, size_t total) {
        if (done == total) {
          std::cout << "  " << strategy << ": " << total << "/" << total
                    << "\n";
        }
      });
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }

  std::vector<eval::StrategyAggregate> rows;
  for (const auto& run : report->runs) rows.push_back(run.aggregate);
  std::cout << "\n";
  if (markdown) {
    eval::PrintMarkdownTable(std::cout, rows);
  } else {
    eval::PrintAggregateTable(std::cout, rows);
    std::cout << "\n";
    eval::PrintMetricSeries(std::cout, "Figure 8.1 - average reward", "reward",
                            rows);
    std::cout << "\n";
    eval::PrintMetricSeries(std::cout, "Figure 8.2 - average F1", "f1", rows);
    std::cout << "\n";
    eval::PrintMetricSeries(std::cout,
                            "Figure 8.3 - reward per 1k answer tokens",
                            "reward_per_token", rows);
  }
  return 0;
}
