// Runs LLM-MS as an HTTP daemon — the full production topology of §7.1:
// the platform behind a real socket, serving JSON endpoints and SSE streams.
//
//   ./build/examples/serve [port] [state.json]   # default port 8080
//
// With a state file, breaker state and hedge latency sketches survive
// restarts (llm::StateStore): kill the daemon, start it again with the same
// file, and the node resumes with warm hedge percentiles and any tripped
// circuits still quarantined.
//
// Then, from another terminal:
//   curl -s localhost:8080/api/health
//   curl -s localhost:8080/api/models
//   curl -s -X POST localhost:8080/api/query \
//     -d '{"session":"s1","query":"<a question>","algorithm":"oua"}'
//   curl -sN -X POST 'localhost:8080/api/query?stream=1' \
//     -d '{"session":"s1","query":"<a question>"}'       # SSE stream
//
// The binary prints a few sample questions the synthetic models can answer.

#include <csignal>
#include <cstring>
#include <iostream>

#include "example_common.h"
#include "llmms/app/http_server.h"
#include "llmms/app/service.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace llmms;
  int port = 8080;
  if (argc > 1) port = std::atoi(argv[1]);

  auto platform = examples::MakePlatform(20);
  app::ApiService service(platform.engine.get());
  if (argc > 2) {
    if (auto status = service.EnableStatePersistence(argv[2]); !status.ok()) {
      std::cerr << "cannot enable state persistence: " << status << "\n";
      return 1;
    }
    std::cout << "durable node state: " << argv[2] << "\n";
  }
  app::HttpServer server(&service);
  if (auto status = server.Start(port); !status.ok()) {
    std::cerr << "cannot start server: " << status << "\n";
    return 1;
  }

  std::cout << "LLM-MS listening on http://127.0.0.1:" << server.port()
            << "\n\nTry asking (the synthetic world knows these):\n";
  for (size_t i = 0; i < 3; ++i) {
    std::cout << "  " << platform.dataset[i * 17].question << "\n";
  }
  std::cout << "\nEndpoints: /api/query /api/upload /api/generate "
               "/api/models /api/model_info /api/sessions /api/hardware "
               "/api/health\nCtrl-C to stop." << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    struct timespec ts {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::cout << "\nshutting down...\n";
  server.Stop();
  return 0;
}
