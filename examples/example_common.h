#ifndef LLMMS_EXAMPLES_EXAMPLE_COMMON_H_
#define LLMMS_EXAMPLES_EXAMPLE_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "llmms/core/search_engine.h"
#include "llmms/embedding/embedding_cache.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/hardware/placement.h"
#include "llmms/llm/fault_injection.h"
#include "llmms/llm/model_profile.h"
#include "llmms/llm/registry.h"
#include "llmms/llm/resilient_model.h"
#include "llmms/llm/runtime.h"
#include "llmms/llm/synthetic_model.h"
#include "llmms/session/session_store.h"
#include "llmms/vectordb/database.h"

namespace llmms::examples {

// Everything an example needs: the three default models loaded on a
// simulated GPU, a synthetic world for them to know about, and the LLM-MS
// search engine wired to a vector database and session store.
struct Platform {
  std::shared_ptr<const embedding::Embedder> embedder;
  std::shared_ptr<llm::KnowledgeBase> knowledge;
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::shared_ptr<vectordb::VectorDatabase> db;
  std::shared_ptr<session::SessionStore> sessions;
  std::unique_ptr<core::SearchEngine> engine;
  std::vector<llm::QaItem> dataset;
  std::vector<std::string> model_names;
};

inline Platform MakePlatform(size_t questions_per_domain = 12) {
  Platform p;
  p.embedder = std::make_shared<embedding::EmbeddingCache>(
      std::make_shared<embedding::HashEmbedder>(), 4096);

  eval::DatasetOptions dataset_options;
  dataset_options.questions_per_domain = questions_per_domain;
  p.dataset = eval::GenerateDataset(dataset_options);

  auto knowledge = std::make_shared<llm::KnowledgeBase>(p.embedder);
  if (!knowledge->AddAll(p.dataset).ok()) std::abort();
  p.knowledge = knowledge;

  p.registry = std::make_shared<llm::ModelRegistry>();
  // Every model serves behind the resilience layer (DESIGN.md §8), so
  // /api/health reports a live circuit per model. LLMMS_CHAOS=<prob> also
  // injects that per-call probability of transient chunk errors (seeded) —
  // a quick way to watch retries, quarantine, and a degraded /api/health.
  const char* chaos_env = std::getenv("LLMMS_CHAOS");
  const double chaos_prob = chaos_env != nullptr ? std::atof(chaos_env) : 0.0;
  size_t model_index = 0;
  for (const auto& profile : llm::DefaultProfiles()) {
    p.model_names.push_back(profile.name);
    std::shared_ptr<llm::LanguageModel> model =
        std::make_shared<llm::SyntheticModel>(profile, knowledge);
    if (chaos_prob > 0.0) {
      llm::FaultConfig faults;
      faults.chunk_error_prob = chaos_prob;
      faults.seed += model_index;
      model = std::make_shared<llm::FaultyModel>(model, faults);
    }
    llm::ResilienceConfig resilience;
    resilience.seed += model_index++;
    model = std::make_shared<llm::ResilientModel>(model, resilience);
    if (!p.registry->Register(model).ok()) {
      std::abort();
    }
  }

  hardware::DeviceSpec v100;
  v100.name = "tesla-v100-0";
  v100.kind = hardware::DeviceKind::kGpu;
  v100.memory_mb = 32 * 1024;
  p.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{v100});

  p.runtime = std::make_unique<llm::ModelRuntime>(p.registry, p.hardware, 4);
  for (const auto& name : p.model_names) {
    if (!p.runtime->LoadModel(name).ok()) std::abort();
  }

  p.db = std::make_shared<vectordb::VectorDatabase>();
  p.sessions = std::make_shared<session::SessionStore>();
  p.engine = std::make_unique<core::SearchEngine>(p.runtime.get(), p.embedder,
                                                  p.db, p.sessions);
  return p;
}

}  // namespace llmms::examples

#endif  // LLMMS_EXAMPLES_EXAMPLE_COMMON_H_
