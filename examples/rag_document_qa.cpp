// Retrieval-augmented generation demo: the same question answered with and
// without an uploaded document. The upload is chunked, embedded, indexed in
// the vector database, and the top chunks are injected into every model's
// prompt — lifting answer quality on questions the models are weak at.
//
//   ./build/examples/rag_document_qa

#include <iostream>

#include "example_common.h"
#include "llmms/common/string_util.h"
#include "llmms/core/scoring.h"

int main() {
  using namespace llmms;
  auto platform = examples::MakePlatform();

  // Pick a question and fabricate the "uploaded PDF": background prose that
  // happens to contain the golden fact.
  const llm::QaItem& item = platform.dataset[7];
  const std::string document =
      "Internal research memo, section 4. Field observations were collected "
      "over two seasons. " + item.golden +
      " Additional measurements are tabulated in the appendix. Unrelated "
      "sections discuss staffing and budget on other pages.";

  std::cout << "Question: " << item.question << "\n\n";

  core::SearchEngine::QueryOptions options;
  options.algorithm = core::Algorithm::kOua;

  // --- Round 1: no document, models answer from their own "knowledge". ---
  options.use_rag = false;
  auto bare = platform.engine->Ask("rag-demo", item.question, options);
  if (!bare.ok()) {
    std::cerr << bare.status() << "\n";
    return 1;
  }
  const double bare_reward = core::ComputeReward(
      *platform.embedder, bare->orchestration.answer, item.golden,
      item.correct, item.incorrect);
  std::cout << "Without RAG (" << bare->orchestration.best_model << "):\n  "
            << bare->orchestration.answer << "\n  reward "
            << FormatDouble(bare_reward, 3) << "\n\n";

  // --- Upload the document. ---
  auto chunks = platform.engine->Upload("rag-demo", "memo.pdf", document);
  if (!chunks.ok()) {
    std::cerr << chunks.status() << "\n";
    return 1;
  }
  std::cout << "Uploaded memo.pdf -> " << *chunks
            << " chunk(s) indexed in the session's vector collection\n\n";

  // --- Round 2: with retrieval. ---
  options.use_rag = true;
  options.use_history = false;  // isolate the RAG effect
  auto grounded = platform.engine->Ask("rag-demo", item.question, options);
  if (!grounded.ok()) {
    std::cerr << grounded.status() << "\n";
    return 1;
  }
  const double grounded_reward = core::ComputeReward(
      *platform.embedder, grounded->orchestration.answer, item.golden,
      item.correct, item.incorrect);
  std::cout << "With RAG (" << grounded->orchestration.best_model << ", "
            << grounded->retrieved_chunks << " chunks retrieved):\n  "
            << grounded->orchestration.answer << "\n  reward "
            << FormatDouble(grounded_reward, 3) << "\n\n";

  std::cout << "Prompt sent to the models:\n---\n"
            << grounded->prompt << "\n---\n\n";
  std::cout << "Reward delta from grounding: "
            << FormatDouble(grounded_reward - bare_reward, 3) << "\n";

  // Session teardown discards the embeddings (the paper's privacy
  // lifecycle, §6.5).
  if (auto status = platform.engine->EndSession("rag-demo"); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "Session ended; vector collection discarded.\n";
  return 0;
}
