// Side-by-side comparison of the three execution modes (§8.1) on a handful
// of questions drawn from different domains — the terminal version of the
// UI's "multi-model response comparison" view (Figure 5.8).
//
//   ./build/examples/model_comparison

#include <iomanip>
#include <iostream>

#include "example_common.h"
#include "llmms/common/string_util.h"
#include "llmms/eval/metrics.h"

int main() {
  using namespace llmms;
  auto platform = examples::MakePlatform();

  // One question per domain.
  std::vector<const llm::QaItem*> picks;
  std::string last_domain;
  for (const auto& item : platform.dataset) {
    if (item.domain != last_domain) {
      picks.push_back(&item);
      last_domain = item.domain;
    }
  }

  struct Mode {
    const char* label;
    core::Algorithm algorithm;
    const char* single_model;
  };
  const Mode modes[] = {
      {"llama3:8b", core::Algorithm::kSingle, "llama3:8b"},
      {"mistral:7b", core::Algorithm::kSingle, "mistral:7b"},
      {"qwen2:7b", core::Algorithm::kSingle, "qwen2:7b"},
      {"llm-ms-oua", core::Algorithm::kOua, ""},
      {"llm-ms-mab", core::Algorithm::kMab, ""},
  };

  std::cout << std::left << std::setw(12) << "domain" << std::setw(14)
            << "mode" << std::setw(9) << "reward" << std::setw(8) << "f1"
            << std::setw(8) << "tokens" << "winner/answer (truncated)\n";
  std::cout << std::string(100, '-') << "\n";

  for (const auto* item : picks) {
    for (const auto& mode : modes) {
      core::SearchEngine::QueryOptions options;
      options.algorithm = mode.algorithm;
      options.single_model = mode.single_model;
      options.use_history = false;
      const std::string session =
          std::string("cmp-") + mode.label + "-" + item->domain;
      auto result = platform.engine->Ask(session, item->question, options);
      if (!result.ok()) {
        std::cerr << result.status() << "\n";
        return 1;
      }
      const auto metrics = eval::ScoreResponse(
          *platform.embedder, *item, result->orchestration.answer);
      std::string preview = result->orchestration.answer.substr(0, 42);
      std::cout << std::left << std::setw(12) << item->domain << std::setw(14)
                << mode.label << std::setw(9)
                << FormatDouble(metrics.reward, 3) << std::setw(8)
                << FormatDouble(metrics.f1, 3) << std::setw(8)
                << result->orchestration.total_tokens << "["
                << result->orchestration.best_model << "] " << preview
                << "...\n";
    }
    std::cout << std::string(100, '-') << "\n";
  }
  std::cout << "\nOrchestration picks the domain specialist; no single model "
               "wins every row.\n";
  return 0;
}
