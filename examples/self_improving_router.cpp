// Self-improving orchestration demo (§9.5): an intent classifier tags every
// query with a task; a feedback store learns which model handles which task
// best; the router narrows new queries to the learned specialists; and Elo
// ratings track the global pecking order — all updating live as queries run.
//
//   ./build/examples/self_improving_router

#include <iostream>

#include "example_common.h"
#include "llmms/common/string_util.h"
#include "llmms/core/router.h"

int main() {
  using namespace llmms;
  auto platform = examples::MakePlatform(10);

  // Bootstrap the intent detector from labeled examples (here: the
  // benchmark questions themselves, labeled with their domains).
  core::IntentClassifier classifier(platform.embedder);
  for (const auto& item : platform.dataset) {
    if (!classifier.AddExample(item.question, item.domain).ok()) return 1;
  }
  core::FeedbackStore feedback;
  core::EloRatings ratings;

  core::RoutedOrchestrator::Config config;
  config.route_to = 1;
  config.min_observations = 6;
  core::RoutedOrchestrator router(platform.runtime.get(),
                                  platform.model_names, platform.embedder,
                                  &classifier, &feedback, &ratings, config);

  // Collect the math questions; watch the router learn who owns "math".
  std::vector<const llm::QaItem*> math;
  for (const auto& item : platform.dataset) {
    if (item.domain == "math") math.push_back(&item);
  }

  std::cout << "Routing " << math.size()
            << " math questions through the self-improving router\n"
            << "(exploration with the full pool until " << config.min_observations
            << " observations, then routed to the top specialist):\n\n";

  for (size_t i = 0; i < math.size(); ++i) {
    auto route = router.RouteFor(math[i]->question);
    if (!route.ok()) return 1;
    auto result = router.Run(math[i]->question);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::cout << "q" << i + 1 << ": pool={";
    for (size_t j = 0; j < route->size(); ++j) {
      std::cout << (j ? ", " : "") << (*route)[j];
    }
    std::cout << "} -> winner " << result->best_model << " ("
              << result->total_tokens << " tokens)\n";
  }

  std::cout << "\nLearned task index for 'math' (mean orchestration score):\n";
  for (const auto& model : feedback.RankModels("math", platform.model_names)) {
    const auto stats = feedback.GetStats(model, "math");
    std::cout << "  " << model << ": mean " << FormatDouble(stats.MeanReward(), 3)
              << " over " << stats.count << " observations, win rate "
              << FormatDouble(stats.WinRate(), 2) << "\n";
  }

  std::cout << "\nElo ratings (game-theoretic coordination):\n";
  for (const auto& [model, rating] : ratings.Ranking()) {
    std::cout << "  " << model << ": " << FormatDouble(rating, 1) << "\n";
  }

  std::cout << "\nFeedback store serializes for the next session:\n"
            << feedback.ToJson().substr(0, 160) << "...\n";
  return 0;
}
