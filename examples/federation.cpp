// Federation demo (§9.5 + DESIGN.md §9): two in-process LLM-MS nodes, one
// hosting the models behind the HTTP API, the other registering a
// RemoteModel adapter and orchestrating the federated model next to its
// local ones — over a real loopback socket.
//
//   ./build/examples/federation
//
// The demo drives both generation paths of the wire protocol:
//   1. streaming — the peer advertises "streaming": true, so chunks cross
//      the wire as SSE frames the moment they are produced. The printed
//      TTFT and per-chunk wire latencies are real wall-clock measurements
//      recorded into Chunk::extra_seconds.
//   2. one-shot fallback — the same peer with streaming_generate disabled
//      behaves like a pre-streaming build: the whole completion arrives in
//      one POST and the adapter serves it locally, identical tokens and
//      stop reason, but nothing is readable before everything is.

#include <cstdio>
#include <iostream>

#include "example_common.h"
#include "llmms/app/http_server.h"
#include "llmms/app/remote_model.h"
#include "llmms/app/service.h"
#include "llmms/core/oua.h"

int main() {
  using namespace llmms;

  // --- Node B: the remote host. Its three models serve over HTTP. ---
  auto node_b = examples::MakePlatform(12);
  app::ApiService service_b(node_b.engine.get());
  app::HttpServer server_b(&service_b);
  if (auto status = server_b.Start(0); !status.ok()) {
    std::cerr << "cannot start node B: " << status << "\n";
    return 1;
  }
  std::cout << "node B serving " << node_b.model_names.size()
            << " models on http://127.0.0.1:" << server_b.port() << "\n\n";

  // --- Node A: a local platform that federates one of node B's models. ---
  auto node_a = examples::MakePlatform(12);
  auto remote = app::RemoteModel::Connect("127.0.0.1", server_b.port(),
                                          "mistral:7b", "fed-mistral");
  if (!remote.ok()) {
    std::cerr << "connect failed: " << remote.status() << "\n";
    return 1;
  }
  std::cout << "connected: " << (*remote)->name() << " ("
            << ((*remote)->peer_streaming() ? "streaming" : "one-shot")
            << " wire protocol negotiated)\n\n";

  // --- 1. Stream a generation chunk-for-chunk across the wire. ---
  const std::string prompt = node_b.dataset[0].question;
  std::cout << "prompt: " << prompt << "\n\nstreaming generation:\n";
  llm::GenerationRequest request;
  request.prompt = prompt;
  auto stream = (*remote)->StartGeneration(request);
  if (!stream.ok()) {
    std::cerr << "start failed: " << stream.status() << "\n";
    return 1;
  }
  size_t chunk_index = 0;
  while (!(*stream)->finished()) {
    auto chunk = (*stream)->NextChunk(8);
    if (!chunk.ok()) {
      std::cerr << "stream failed: " << chunk.status() << "\n";
      return 1;
    }
    if (chunk->num_tokens == 0) continue;
    // extra_seconds carries the real wire wait for this chunk; for the
    // first chunk that is the time-to-first-token, connection included.
    std::printf("  chunk %zu  %5zu tokens  wire %.3f ms%s\n", chunk_index,
                chunk->num_tokens, chunk->extra_seconds * 1e3,
                chunk_index == 0 ? "  <- time-to-first-token" : "");
    ++chunk_index;
  }
  std::cout << "  text: " << (*stream)->text() << "\n\n";

  // --- 2. The same request against a pre-streaming peer. ---
  service_b.set_streaming_generate(false);
  auto old_peer = app::RemoteModel::Connect("127.0.0.1", server_b.port(),
                                            "mistral:7b", "fed-old");
  if (!old_peer.ok()) {
    std::cerr << "connect failed: " << old_peer.status() << "\n";
    return 1;
  }
  std::cout << "peer downgraded; renegotiated protocol: "
            << ((*old_peer)->peer_streaming() ? "streaming" : "one-shot")
            << "\n";
  auto fallback = (*old_peer)->Generate(request);
  if (!fallback.ok()) {
    std::cerr << "fallback failed: " << fallback.status() << "\n";
    return 1;
  }
  std::cout << "one-shot fallback: " << fallback->num_tokens
            << " tokens, same text: "
            << (fallback->text == (*stream)->text() ? "yes" : "NO") << "\n\n";
  service_b.set_streaming_generate(true);

  // --- 3. The federated model joins node A's orchestration. ---
  if (auto status = node_a.registry->Register(*remote); !status.ok()) {
    std::cerr << "register failed: " << status << "\n";
    return 1;
  }
  if (auto status = node_a.runtime->LoadModel("fed-mistral"); !status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }
  core::OuaOrchestrator orchestrator(
      node_a.runtime.get(), {"llama3:8b", "qwen2:7b", "fed-mistral"},
      node_a.embedder, {});
  auto result = orchestrator.Run(prompt);
  if (!result.ok()) {
    std::cerr << "orchestration failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "orchestrated across 2 local + 1 federated model:\n";
  for (const auto& [name, outcome] : result->per_model) {
    std::printf("  %-12s %4zu tokens  score %.3f%s\n", name.c_str(),
                outcome.tokens, outcome.final_score,
                name == result->best_model ? "  <- selected" : "");
  }
  std::cout << "answer: " << result->answer << "\n";

  server_b.Stop();
  return 0;
}
