// Federation demo (§9.5 + DESIGN.md §9): two in-process LLM-MS nodes, one
// hosting the models behind the HTTP API, the other registering a
// RemoteModel adapter and orchestrating the federated model next to its
// local ones — over a real loopback socket.
//
//   ./build/examples/federation
//
// The demo drives both generation paths of the wire protocol:
//   1. streaming — the peer advertises "streaming": true, so chunks cross
//      the wire as SSE frames the moment they are produced. The printed
//      TTFT and per-chunk wire latencies are real wall-clock measurements
//      recorded into Chunk::extra_seconds.
//   2. one-shot fallback — the same peer with streaming_generate disabled
//      behaves like a pre-streaming build: the whole completion arrives in
//      one POST and the adapter serves it locally, identical tokens and
//      stop reason, but nothing is readable before everything is.
//
// It closes with a chaos scenario (DESIGN.md §10): a latency-spiky local
// model hedged by a clean replica of itself rented from node B. Spikes on
// the local stream fire hedge races; the federated replica catches up over
// HTTP and is adopted, and the wasted loser work is printed as the
// documented hedge overhead.

#include <cstdio>
#include <iostream>

#include "example_common.h"
#include "llmms/app/http_server.h"
#include "llmms/app/remote_model.h"
#include "llmms/app/service.h"
#include "llmms/core/oua.h"
#include "llmms/llm/hedged_model.h"

int main() {
  using namespace llmms;

  // --- Node B: the remote host. Its three models serve over HTTP. ---
  auto node_b = examples::MakePlatform(12);
  app::ApiService service_b(node_b.engine.get());
  app::HttpServer server_b(&service_b);
  if (auto status = server_b.Start(0); !status.ok()) {
    std::cerr << "cannot start node B: " << status << "\n";
    return 1;
  }
  std::cout << "node B serving " << node_b.model_names.size()
            << " models on http://127.0.0.1:" << server_b.port() << "\n\n";

  // --- Node A: a local platform that federates one of node B's models. ---
  auto node_a = examples::MakePlatform(12);
  auto remote = app::RemoteModel::Connect("127.0.0.1", server_b.port(),
                                          "mistral:7b", "fed-mistral");
  if (!remote.ok()) {
    std::cerr << "connect failed: " << remote.status() << "\n";
    return 1;
  }
  std::cout << "connected: " << (*remote)->name() << " ("
            << ((*remote)->peer_streaming() ? "streaming" : "one-shot")
            << " wire protocol negotiated)\n\n";

  // --- 1. Stream a generation chunk-for-chunk across the wire. ---
  const std::string prompt = node_b.dataset[0].question;
  std::cout << "prompt: " << prompt << "\n\nstreaming generation:\n";
  llm::GenerationRequest request;
  request.prompt = prompt;
  auto stream = (*remote)->StartGeneration(request);
  if (!stream.ok()) {
    std::cerr << "start failed: " << stream.status() << "\n";
    return 1;
  }
  size_t chunk_index = 0;
  while (!(*stream)->finished()) {
    auto chunk = (*stream)->NextChunk(8);
    if (!chunk.ok()) {
      std::cerr << "stream failed: " << chunk.status() << "\n";
      return 1;
    }
    if (chunk->num_tokens == 0) continue;
    // extra_seconds carries the real wire wait for this chunk; for the
    // first chunk that is the time-to-first-token, connection included.
    std::printf("  chunk %zu  %5zu tokens  wire %.3f ms%s\n", chunk_index,
                chunk->num_tokens, chunk->extra_seconds * 1e3,
                chunk_index == 0 ? "  <- time-to-first-token" : "");
    ++chunk_index;
  }
  std::cout << "  text: " << (*stream)->text() << "\n\n";

  // --- 2. The same request against a pre-streaming peer. ---
  service_b.set_streaming_generate(false);
  auto old_peer = app::RemoteModel::Connect("127.0.0.1", server_b.port(),
                                            "mistral:7b", "fed-old");
  if (!old_peer.ok()) {
    std::cerr << "connect failed: " << old_peer.status() << "\n";
    return 1;
  }
  std::cout << "peer downgraded; renegotiated protocol: "
            << ((*old_peer)->peer_streaming() ? "streaming" : "one-shot")
            << "\n";
  auto fallback = (*old_peer)->Generate(request);
  if (!fallback.ok()) {
    std::cerr << "fallback failed: " << fallback.status() << "\n";
    return 1;
  }
  std::cout << "one-shot fallback: " << fallback->num_tokens
            << " tokens, same text: "
            << (fallback->text == (*stream)->text() ? "yes" : "NO") << "\n\n";
  service_b.set_streaming_generate(true);

  // --- 3. The federated model joins node A's orchestration. ---
  if (auto status = node_a.registry->Register(*remote); !status.ok()) {
    std::cerr << "register failed: " << status << "\n";
    return 1;
  }
  if (auto status = node_a.runtime->LoadModel("fed-mistral"); !status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }
  core::OuaOrchestrator orchestrator(
      node_a.runtime.get(), {"llama3:8b", "qwen2:7b", "fed-mistral"},
      node_a.embedder, {});
  auto result = orchestrator.Run(prompt);
  if (!result.ok()) {
    std::cerr << "orchestration failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "orchestrated across 2 local + 1 federated model:\n";
  for (const auto& [name, outcome] : result->per_model) {
    std::printf("  %-12s %4zu tokens  score %.3f%s\n", name.c_str(),
                outcome.tokens, outcome.final_score,
                name == result->best_model ? "  <- selected" : "");
  }
  std::cout << "answer: " << result->answer << "\n\n";

  // --- 4. Hedged generation: spiky local primary, federated backup. ---
  // The local mistral clone suffers injected 5-second latency spikes; a
  // clean replica of the same model is rented from node B. Once the local
  // history is warm, a spike crossing its own median fires the race and
  // the peer's stream is adopted mid-generation — byte-identical text,
  // because both nodes share the synthetic world.
  llm::ModelProfile mistral_profile;
  for (const auto& profile : llm::DefaultProfiles()) {
    if (profile.name == "mistral:7b") mistral_profile = profile;
  }
  llm::FaultConfig spikes;
  spikes.seed = 0xCAFE;
  spikes.latency_spike_prob = 0.3;
  spikes.latency_spike_seconds = 5.0;
  auto spiky = std::make_shared<llm::ResilientModel>(
      std::make_shared<llm::FaultyModel>(
          std::make_shared<llm::SyntheticModel>(mistral_profile,
                                                node_a.knowledge),
          spikes),
      llm::ResilienceConfig{});
  auto rented = app::RemoteModel::Connect("127.0.0.1", server_b.port(),
                                          "mistral:7b");
  if (!rented.ok()) {
    std::cerr << "backup connect failed: " << rented.status() << "\n";
    return 1;
  }
  llm::HedgeConfig hedge;
  hedge.percentile = 0.5;
  hedge.min_samples = 4;
  llm::HedgedModel hedged(
      spiky, std::vector<std::shared_ptr<llm::LanguageModel>>{*rented}, hedge);

  std::cout << "hedged generation (spiky local primary, federated backup):\n";
  auto hedged_stream = hedged.StartGeneration(request);
  if (!hedged_stream.ok()) {
    std::cerr << "hedged start failed: " << hedged_stream.status() << "\n";
    return 1;
  }
  chunk_index = 0;
  while (!(*hedged_stream)->finished()) {
    auto chunk = (*hedged_stream)->NextChunk(8);
    if (!chunk.ok()) {
      std::cerr << "hedged stream failed: " << chunk.status() << "\n";
      return 1;
    }
    if (chunk->num_tokens == 0) continue;
    std::printf("  chunk %zu  %5zu tokens  wait %7.3f s  %s\n", chunk_index,
                chunk->num_tokens, chunk->extra_seconds,
                llm::HedgeOutcomeToString(chunk->hedge));
    ++chunk_index;
  }
  std::cout << "  text matches the peer's canonical answer: "
            << ((*hedged_stream)->text() == (*stream)->text() ? "yes" : "NO")
            << "\n";
  const auto hedge_stats = hedged.stats();
  std::printf(
      "  hedges: %zu launched, %zu won, %zu lost, %zu failovers\n"
      "  wasted by cancelled losers (never charged): %zu tokens, %.3f s\n",
      hedge_stats.hedges_launched, hedge_stats.hedges_won,
      hedge_stats.hedges_lost, hedge_stats.failovers,
      hedge_stats.wasted_tokens, hedge_stats.wasted_seconds);
  for (const auto& row : hedged.LatencySnapshot()) {
    std::printf("  %-28s %4zu samples  p50 %6.3f s  p95 %6.3f s\n",
                row.model.c_str(), row.samples, row.p50, row.p95);
  }

  server_b.Stop();
  return 0;
}
