// Multi-turn chat with contextual memory: the session layer keeps recent
// turns verbatim and folds older turns into a rolling extractive summary, so
// the prompt handed to the models stays bounded (§5.5, §6.5).
//
// Run interactively:           ./build/examples/chat_session
// Or let it demo a scripted
// conversation:                ./build/examples/chat_session --demo

#include <unistd.h>

#include <iostream>
#include <string>

#include "example_common.h"

namespace {

void PrintTurn(const llmms::core::SearchEngine::AskResult& result) {
  std::cout << "assistant (" << result.orchestration.best_model
            << ", " << result.orchestration.total_tokens << " tokens): "
            << result.orchestration.answer << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llmms;
  const bool demo = argc > 1 && std::string(argv[1]) == "--demo";
  auto platform = examples::MakePlatform();

  core::SearchEngine::QueryOptions options;
  options.algorithm = core::Algorithm::kMab;

  if (demo || !isatty(0)) {
    // Scripted conversation over several benchmark questions.
    std::cout << "=== scripted multi-turn session ===\n\n";
    for (size_t i = 0; i < 7; ++i) {
      const auto& question = platform.dataset[i * 3].question;
      std::cout << "user: " << question << "\n";
      auto result = platform.engine->Ask("demo-chat", question, options);
      if (!result.ok()) {
        std::cerr << result.status() << "\n";
        return 1;
      }
      PrintTurn(*result);
    }
    auto session = platform.sessions->Get("demo-chat");
    if (session.ok()) {
      std::cout << "--- session state after 7 turns ---\n";
      std::cout << "retained verbatim turns: "
                << (*session)->RecentMessages().size() << "\n";
      std::cout << "rolling summary: " << (*session)->summary() << "\n";
    }
    return 0;
  }

  std::cout << "LLM-MS chat (MAB orchestration). Type a question, 'quit' to "
               "exit.\nTry questions from the synthetic world, e.g.:\n  "
            << platform.dataset[0].question << "\n  "
            << platform.dataset[20].question << "\n\n";
  std::string line;
  while (std::cout << "user: " && std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line.empty()) continue;
    auto result = platform.engine->Ask("interactive", line, options);
    if (!result.ok()) {
      std::cout << "error: " << result.status() << "\n";
      continue;
    }
    PrintTurn(*result);
  }
  return 0;
}
