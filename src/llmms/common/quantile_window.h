#ifndef LLMMS_COMMON_QUANTILE_WINDOW_H_
#define LLMMS_COMMON_QUANTILE_WINDOW_H_

#include <cstddef>
#include <vector>

namespace llmms {

// A fixed-size sliding window of recent observations with quantile queries —
// the online latency-percentile estimator behind hedged generation (a model
// hedges against its *own* recent history, so the window must be cheap to
// update and bounded in memory). The window keeps the last `capacity`
// samples in arrival order; Quantile() sorts a scratch copy on demand
// (nearest-rank), which for the small windows used here (<= a few hundred
// samples) beats maintaining an order statistic tree and is perfectly
// deterministic. Not thread-safe; callers guard it.
class QuantileWindow {
 public:
  explicit QuantileWindow(size_t capacity = 128);

  // Records one observation, evicting the oldest once full.
  void Add(double value);

  // Nearest-rank quantile of the current window: the ceil(q*n)-th smallest
  // sample (clamped to the window bounds). q is clamped to [0, 1].
  // Preconditions: size() > 0.
  double Quantile(double q) const;

  // Samples currently in the window / ever observed.
  size_t size() const { return window_.size(); }
  size_t count() const { return count_; }
  bool empty() const { return window_.empty(); }
  size_t capacity() const { return capacity_; }

  double last() const { return window_.empty() ? 0.0 : window_[newest_]; }

  void Clear();

  // Durable form of the window, same shape discipline as
  // CircuitBreaker::Snapshot: a value type the persistence layer can
  // serialize and feed back through Restore() to warm-start a freshly
  // constructed window (hedged generation resumes with real percentiles
  // instead of a cold min_samples ramp).
  struct Snapshot {
    size_t capacity = 0;
    // Lifetime observation count (count()), >= samples.size().
    size_t count = 0;
    // The retained samples in arrival order, oldest first.
    std::vector<double> samples;
  };

  // Captures the current window. snapshot().samples lists the ring buffer
  // oldest-to-newest, so Restore() replays it through Add() verbatim.
  Snapshot snapshot() const;

  // Replaces the window contents with a snapshot. The window keeps its own
  // capacity: when the snapshot holds more samples than fit, only the most
  // recent survive (exactly as if they had been Add()ed live). The lifetime
  // count is restored to at least the retained sample count.
  void Restore(const Snapshot& snapshot);

 private:
  size_t capacity_;
  std::vector<double> window_;  // ring buffer
  size_t next_ = 0;             // insertion cursor once full
  size_t newest_ = 0;           // index of the most recent sample
  size_t count_ = 0;
  // Scratch buffer reused across Quantile() calls to avoid reallocating.
  mutable std::vector<double> scratch_;
};

}  // namespace llmms

#endif  // LLMMS_COMMON_QUANTILE_WINDOW_H_
