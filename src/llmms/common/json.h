#ifndef LLMMS_COMMON_JSON_H_
#define LLMMS_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"

namespace llmms {

// Minimal JSON document model used by the app layer (request/response
// payloads) and the eval module (JSONL datasets). Supports the full JSON
// grammar; numbers are stored as double plus an integer flag.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // std::map keeps object keys ordered for deterministic serialization.
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(int v) : type_(Type::kNumber), number_(v), is_integer_(true) {}  // NOLINT
  Json(int64_t v)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(v)), is_integer_(true) {}
  Json(size_t v)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(v)), is_integer_(true) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_integer() const { return type_ == Type::kNumber && is_integer_; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; preconditions: matching type (checked accessors below
  // return defaults on mismatch for lenient consumption).
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }
  Array& MutableArray() { return array_; }
  Object& MutableObject() { return object_; }

  // Object access; returns a shared null singleton when the key is absent or
  // this is not an object.
  const Json& operator[](std::string_view key) const;
  bool Contains(std::string_view key) const;

  // Array access; preconditions: is_array() and i < size().
  const Json& At(size_t i) const { return array_[i]; }
  size_t Size() const {
    if (is_array()) return array_.size();
    if (is_object()) return object_.size();
    return 0;
  }

  // Mutating helpers.
  void Set(std::string key, Json value) {
    type_ = Type::kObject;
    object_[std::move(key)] = std::move(value);
  }
  void Append(Json value) {
    type_ = Type::kArray;
    array_.push_back(std::move(value));
  }

  // Serializes to compact JSON; `indent > 0` pretty-prints.
  std::string Dump(int indent = 0) const;

  // Parses a complete JSON document. Trailing garbage is an error.
  static StatusOr<Json> Parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  bool is_integer_ = false;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace llmms

#endif  // LLMMS_COMMON_JSON_H_
