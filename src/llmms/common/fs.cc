#include "llmms/common/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace llmms {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  const int err = errno;
  const std::string message =
      what + " '" + path + "': " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(message);
  return Status::IOError(message);
}

}  // namespace

// ------------------------------------------------------------------ real

struct RealFileSystem::Counters {
  std::atomic<uint64_t> opens{0};
  std::atomic<uint64_t> appends{0};
  std::atomic<uint64_t> bytes_appended{0};
  std::atomic<uint64_t> syncs{0};
  std::atomic<uint64_t> dir_syncs{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> renames{0};
  std::atomic<uint64_t> removes{0};
  std::atomic<uint64_t> truncates{0};
  std::atomic<uint64_t> lists{0};
};

RealFileSystem::RealFileSystem() : counters_(std::make_shared<Counters>()) {}
RealFileSystem::~RealFileSystem() = default;

class RealWritableFile : public WritableFile {
 public:
  RealWritableFile(int fd, std::string path,
                   std::shared_ptr<RealFileSystem::Counters> counters)
      : fd_(fd), path_(std::move(path)), counters_(std::move(counters)) {}

  ~RealWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    counters_->appends.fetch_add(1, std::memory_order_relaxed);
    size_t done = 0;
    while (done < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write failed to", path_);
      }
      done += static_cast<size_t>(n);
    }
    counters_->bytes_appended.fetch_add(data.size(),
                                        std::memory_order_relaxed);
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    counters_->syncs.fetch_add(1, std::memory_order_relaxed);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync failed on", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close failed on", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
  std::shared_ptr<RealFileSystem::Counters> counters_;
};

StatusOr<std::unique_ptr<WritableFile>> RealFileSystem::OpenAppend(
    const std::string& path) {
  counters_->opens.fetch_add(1, std::memory_order_relaxed);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("cannot open for append", path);
  return std::unique_ptr<WritableFile>(
      new RealWritableFile(fd, path, counters_));
}

StatusOr<std::unique_ptr<WritableFile>> RealFileSystem::OpenTrunc(
    const std::string& path) {
  counters_->opens.fetch_add(1, std::memory_order_relaxed);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot open for write", path);
  return std::unique_ptr<WritableFile>(
      new RealWritableFile(fd, path, counters_));
}

StatusOr<std::string> RealFileSystem::ReadFile(const std::string& path) {
  counters_->reads.fetch_add(1, std::memory_order_relaxed);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("cannot open for read", path);
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoStatus("read failed from", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

StatusOr<uint64_t> RealFileSystem::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("cannot stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status RealFileSystem::Rename(const std::string& from, const std::string& to) {
  counters_->renames.fetch_add(1, std::memory_order_relaxed);
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("cannot rename", from + "' -> '" + to);
  }
  return Status::OK();
}

Status RealFileSystem::Remove(const std::string& path) {
  counters_->removes.fetch_add(1, std::memory_order_relaxed);
  if (::unlink(path.c_str()) != 0) return ErrnoStatus("cannot remove", path);
  return Status::OK();
}

Status RealFileSystem::Truncate(const std::string& path, uint64_t size) {
  counters_->truncates.fetch_add(1, std::memory_order_relaxed);
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("cannot truncate", path);
  }
  return Status::OK();
}

Status RealFileSystem::SyncDir(const std::string& path) {
  counters_->dir_syncs.fetch_add(1, std::memory_order_relaxed);
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("cannot open directory", path);
  const int rc = ::fsync(fd);
  // Some filesystems refuse fsync on directories (EINVAL); treat that as a
  // barrier the platform cannot strengthen rather than a failure.
  const bool failed = rc != 0 && errno != EINVAL;
  const Status status =
      failed ? ErrnoStatus("fsync failed on directory", path) : Status::OK();
  ::close(fd);
  return status;
}

StatusOr<std::vector<std::string>> RealFileSystem::List(
    const std::string& dir) {
  counters_->lists.fetch_add(1, std::memory_order_relaxed);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("cannot open directory", dir);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool RealFileSystem::Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

FsOpCounts RealFileSystem::op_counts() const {
  FsOpCounts out;
  out.opens = counters_->opens.load(std::memory_order_relaxed);
  out.appends = counters_->appends.load(std::memory_order_relaxed);
  out.bytes_appended =
      counters_->bytes_appended.load(std::memory_order_relaxed);
  out.syncs = counters_->syncs.load(std::memory_order_relaxed);
  out.dir_syncs = counters_->dir_syncs.load(std::memory_order_relaxed);
  out.reads = counters_->reads.load(std::memory_order_relaxed);
  out.renames = counters_->renames.load(std::memory_order_relaxed);
  out.removes = counters_->removes.load(std::memory_order_relaxed);
  out.truncates = counters_->truncates.load(std::memory_order_relaxed);
  out.lists = counters_->lists.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------- faulty

namespace {
constexpr char kCrashMessage[] = "simulated crash: filesystem halted";
}  // namespace

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultyFileSystem* parent, std::string path,
                     std::unique_ptr<WritableFile> base)
      : parent_(parent), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    return parent_->OnAppend(path_, data, base_.get());
  }
  Status Sync() override { return parent_->OnSync(path_, base_.get()); }
  // Close is not a durability barrier and not a crash point; it never
  // injects (a close that "fails" has no bearing on what survives).
  Status Close() override { return base_->Close(); }

 private:
  FaultyFileSystem* parent_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

FaultyFileSystem::FaultyFileSystem(FileSystem* base,
                                   const FsFaultConfig& config)
    : base_(base), config_(config), rng_(config.seed) {}

FaultyFileSystem::~FaultyFileSystem() = default;

void FaultyFileSystem::ArmCrashPoint(int64_t halt_after_ops) {
  std::lock_guard<std::mutex> lock(mu_);
  halt_after_ops_ = halt_after_ops;
  armed_ = true;
}

int64_t FaultyFileSystem::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

bool FaultyFileSystem::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

Status FaultyFileSystem::BeginOp() {
  if (crashed_) return Status::IOError(kCrashMessage);
  const int64_t op = ops_++;
  if (armed_ && halt_after_ops_ >= 0 && op >= halt_after_ops_) {
    CrashNowLocked();
    return Status::IOError(kCrashMessage);
  }
  return Status::OK();
}

// Applies the simulated kernel state to the real directory: unsynced bytes
// are (partially, seeded-randomly) lost, un-dir-synced renames are undone
// with their clobbered targets restored, un-dir-synced creations vanish.
void FaultyFileSystem::CrashNowLocked() {
  crashed_ = true;
  for (const auto& [path, track] : tracks_) {
    if (track.written <= track.synced) continue;
    const uint64_t unsynced = track.written - track.synced;
    const uint64_t kept = static_cast<uint64_t>(
        rng_.UniformInt(0, static_cast<int64_t>(unsynced)));
    (void)base_->Truncate(path, track.synced + kept);
  }
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    (void)base_->Rename(it->to, it->from);
    if (it->had_old) {
      auto restored = base_->OpenTrunc(it->to);
      if (restored.ok()) {
        (void)(*restored)->Append(it->old_contents);
        (void)(*restored)->Close();
      }
    }
  }
  for (const auto& path : pending_creates_) {
    (void)base_->Remove(path);
  }
}

StatusOr<std::unique_ptr<WritableFile>> FaultyFileSystem::OpenAppend(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  const bool existed = base_->Exists(path);
  LLMMS_ASSIGN_OR_RETURN(auto file, base_->OpenAppend(path));
  if (armed_) {
    uint64_t size = 0;
    if (existed) {
      auto size_or = base_->FileSize(path);
      if (size_or.ok()) size = *size_or;
    } else {
      pending_creates_.push_back(path);
    }
    // Content present at open is assumed durable (the previous session
    // either synced it or already crashed).
    tracks_[path] = FileTrack{size, size};
  }
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFile(this, path, std::move(file)));
}

StatusOr<std::unique_ptr<WritableFile>> FaultyFileSystem::OpenTrunc(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  const bool existed = base_->Exists(path);
  LLMMS_ASSIGN_OR_RETURN(auto file, base_->OpenTrunc(path));
  if (armed_) {
    if (!existed) pending_creates_.push_back(path);
    // In-place truncation is destructive: the old durable content is gone
    // the moment the open succeeds (which is exactly why replacement must
    // go through AtomicWriteFile).
    tracks_[path] = FileTrack{0, 0};
  }
  return std::unique_ptr<WritableFile>(
      new FaultyWritableFile(this, path, std::move(file)));
}

Status FaultyFileSystem::OnAppend(const std::string& path,
                                  std::string_view data, WritableFile* file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IOError(kCrashMessage);
  const int64_t op = ops_++;
  const bool crash_here = armed_ && halt_after_ops_ >= 0 &&
                          op >= halt_after_ops_;
  if (crash_here) {
    // The dying write lands a seeded-random prefix: the torn-write case.
    const size_t torn = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(data.size())));
    if (torn > 0) {
      (void)file->Append(data.substr(0, torn));
      tracks_[path].written += torn;
    }
    CrashNowLocked();
    return Status::IOError(kCrashMessage);
  }
  if (config_.enospc_prob > 0.0 && rng_.Bernoulli(config_.enospc_prob)) {
    ++injected_faults_;
    return Status::IOError("injected fault: no space left on device "
                           "(ENOSPC) writing '" + path + "'");
  }
  if (config_.write_error_prob > 0.0 &&
      rng_.Bernoulli(config_.write_error_prob)) {
    ++injected_faults_;
    return Status::IOError("injected fault: write failed to '" + path + "'");
  }
  if (config_.short_write_prob > 0.0 &&
      rng_.Bernoulli(config_.short_write_prob)) {
    ++injected_faults_;
    const size_t torn = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(data.size())));
    if (torn > 0) {
      (void)file->Append(data.substr(0, torn));
      if (armed_) tracks_[path].written += torn;
    }
    return Status::IOError("injected fault: short write to '" + path +
                           "' (" + std::to_string(torn) + "/" +
                           std::to_string(data.size()) + " bytes)");
  }
  LLMMS_RETURN_NOT_OK(file->Append(data));
  if (armed_) tracks_[path].written += data.size();
  return Status::OK();
}

Status FaultyFileSystem::OnSync(const std::string& path, WritableFile* file) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  if (config_.sync_error_prob > 0.0 &&
      rng_.Bernoulli(config_.sync_error_prob)) {
    ++injected_faults_;
    return Status::IOError("injected fault: fsync failed on '" + path +
                           "' (EIO)");
  }
  LLMMS_RETURN_NOT_OK(file->Sync());
  if (armed_) {
    auto it = tracks_.find(path);
    if (it != tracks_.end()) it->second.synced = it->second.written;
  }
  return Status::OK();
}

StatusOr<std::string> FaultyFileSystem::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  LLMMS_ASSIGN_OR_RETURN(auto contents, base_->ReadFile(path));
  if (!contents.empty() && config_.read_corrupt_prob > 0.0 &&
      rng_.Bernoulli(config_.read_corrupt_prob)) {
    ++injected_faults_;
    ++read_corruptions_;
    const size_t byte = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(contents.size()) - 1));
    contents[byte] = static_cast<char>(
        contents[byte] ^ (1u << rng_.UniformInt(0, 7)));
  }
  return contents;
}

StatusOr<uint64_t> FaultyFileSystem::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultyFileSystem::Rename(const std::string& from,
                                const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  if (config_.rename_error_prob > 0.0 &&
      rng_.Bernoulli(config_.rename_error_prob)) {
    ++injected_faults_;
    return Status::IOError("injected fault: lost rename '" + from +
                           "' -> '" + to + "'");
  }
  if (armed_) {
    PendingRename pending;
    pending.from = from;
    pending.to = to;
    if (base_->Exists(to)) {
      auto old = base_->ReadFile(to);
      if (old.ok()) {
        pending.had_old = true;
        pending.old_contents = std::move(*old);
      }
    }
    LLMMS_RETURN_NOT_OK(base_->Rename(from, to));
    pending_renames_.push_back(std::move(pending));
    auto it = tracks_.find(from);
    if (it != tracks_.end()) {
      tracks_[to] = it->second;
      tracks_.erase(it);
    }
    return Status::OK();
  }
  return base_->Rename(from, to);
}

Status FaultyFileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  if (armed_) {
    tracks_.erase(path);
    pending_creates_.erase(
        std::remove(pending_creates_.begin(), pending_creates_.end(), path),
        pending_creates_.end());
  }
  return base_->Remove(path);
}

Status FaultyFileSystem::Truncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  LLMMS_RETURN_NOT_OK(base_->Truncate(path, size));
  if (armed_) {
    auto it = tracks_.find(path);
    if (it != tracks_.end()) {
      it->second.written = std::min(it->second.written, size);
      it->second.synced = std::min(it->second.synced, size);
    }
  }
  return Status::OK();
}

Status FaultyFileSystem::SyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  LLMMS_RETURN_NOT_OK(base_->SyncDir(path));
  if (armed_) {
    // Entries in this directory become durable: their renames can no longer
    // be lost and their creations can no longer vanish.
    pending_renames_.erase(
        std::remove_if(pending_renames_.begin(), pending_renames_.end(),
                       [&](const PendingRename& r) {
                         return DirnameOf(r.to) == path;
                       }),
        pending_renames_.end());
    pending_creates_.erase(
        std::remove_if(pending_creates_.begin(), pending_creates_.end(),
                       [&](const std::string& p) {
                         return DirnameOf(p) == path;
                       }),
        pending_creates_.end());
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> FaultyFileSystem::List(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  LLMMS_RETURN_NOT_OK(BeginOp());
  return base_->List(dir);
}

bool FaultyFileSystem::Exists(const std::string& path) {
  return base_->Exists(path);
}

FsOpCounts FaultyFileSystem::op_counts() const {
  FsOpCounts out = base_->op_counts();
  std::lock_guard<std::mutex> lock(mu_);
  out.injected_faults = injected_faults_;
  out.read_corruptions = read_corruptions_;
  out.crashed = crashed_;
  return out;
}

// --------------------------------------------------------------- helpers

FileSystem* FileSystem::Default() {
  static FileSystem* instance = [] {
    auto* real = new RealFileSystem();  // intentionally leaked singleton
    const char* env = std::getenv("LLMMS_IO_CHAOS");
    const double prob = env != nullptr ? std::atof(env) : 0.0;
    if (prob <= 0.0) return static_cast<FileSystem*>(real);
    FsFaultConfig config;
    config.short_write_prob = prob;
    config.sync_error_prob = prob;
    config.enospc_prob = prob;
    config.rename_error_prob = prob;
    config.read_corrupt_prob = prob;
    return static_cast<FileSystem*>(new FaultyFileSystem(real, config));
  }();
  return instance;
}

StorageCounters& GlobalStorageCounters() {
  static StorageCounters counters;
  return counters;
}

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status AtomicWriteFile(FileSystem* fs, const std::string& path,
                       std::string_view data) {
  const std::string tmp = path + ".tmp";
  LLMMS_ASSIGN_OR_RETURN(auto file, fs->OpenTrunc(tmp));
  Status status = file->Append(data);
  if (status.ok()) status = file->Sync();
  const Status close = file->Close();
  if (status.ok()) status = close;
  if (!status.ok()) {
    (void)fs->Remove(tmp);  // best effort; stale tmps are also ignored later
    return status;
  }
  LLMMS_RETURN_NOT_OK(fs->Rename(tmp, path));
  return fs->SyncDir(DirnameOf(path));
}

}  // namespace llmms
