#ifndef LLMMS_COMMON_STOPWATCH_H_
#define LLMMS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace llmms {

// Monotonic wall-clock stopwatch for latency accounting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Virtual clock abstraction so simulated latency does not slow down tests.
// SimulatedClock advances only when told to; times are in microseconds.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  virtual int64_t NowMicros() const = 0;
  virtual void AdvanceMicros(int64_t micros) = 0;
};

class SimulatedClock final : public VirtualClock {
 public:
  int64_t NowMicros() const override { return now_micros_; }
  void AdvanceMicros(int64_t micros) override { now_micros_ += micros; }

 private:
  int64_t now_micros_ = 0;
};

}  // namespace llmms

#endif  // LLMMS_COMMON_STOPWATCH_H_
