#ifndef LLMMS_COMMON_RNG_H_
#define LLMMS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace llmms {

// Deterministic pseudo-random number generator (xoshiro256**), seeded via
// splitmix64. All stochastic components in the library draw from Rng with an
// explicit seed so that tests, examples, and benchmarks are bit-reproducible
// across runs and platforms (std::mt19937 distributions are not portable).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive). Preconditions: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  // Non-positive weights are treated as zero; if all weights are zero the
  // draw is uniform. Preconditions: !weights.empty().
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  // Derives an independent child generator; used to give each parallel
  // component its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Stateless 64-bit mix (splitmix64 finalizer); used for feature hashing.
uint64_t MixHash64(uint64_t x);

// FNV-1a hash of a byte range, for deterministic string hashing.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace llmms

#endif  // LLMMS_COMMON_RNG_H_
