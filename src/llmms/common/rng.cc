#include "llmms/common/rng.h"

#include <cmath>

namespace llmms {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  has_cached_normal_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r = NextUint64();
  while (r >= limit) r = NextUint64();
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller transform.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

uint64_t MixHash64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace llmms
