#ifndef LLMMS_COMMON_THREAD_POOL_H_
#define LLMMS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace llmms {

// Fixed-size worker pool used by the model runtime to execute parallel
// inference requests. Tasks are run FIFO. The destructor drains pending
// tasks before joining.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn`; returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace llmms

#endif  // LLMMS_COMMON_THREAD_POOL_H_
