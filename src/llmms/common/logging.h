#ifndef LLMMS_COMMON_LOGGING_H_
#define LLMMS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace llmms {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Process-wide minimum level; messages below it are discarded. Defaults to
// kWarning so tests and benchmarks stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LLMMS_LOG_INTERNAL(level)                                     \
  ::llmms::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define LLMMS_LOG(severity)                                           \
  (::llmms::GetLogLevel() > ::llmms::LogLevel::k##severity)           \
      ? (void)0                                                       \
      : (void)(LLMMS_LOG_INTERNAL(::llmms::LogLevel::k##severity)     \
               << "")

// Streaming form: LLMMS_LOGS(Info) << "x=" << x;
#define LLMMS_LOGS(severity)                                          \
  if (::llmms::GetLogLevel() <= ::llmms::LogLevel::k##severity)       \
  LLMMS_LOG_INTERNAL(::llmms::LogLevel::k##severity)

}  // namespace llmms

#endif  // LLMMS_COMMON_LOGGING_H_
