#include "llmms/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace llmms {

std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = s.substr(start, pos - start);
    if (!skip_empty || !piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string NormalizeAnswerText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_was_space = true;
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      out += static_cast<char>(std::tolower(c));
      last_was_space = false;
    } else if (!last_was_space) {
      out += ' ';
      last_was_space = true;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace llmms
