#ifndef LLMMS_COMMON_STATUS_H_
#define LLMMS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace llmms {

// Canonical error codes, modeled after the Arrow/RocksDB status idiom.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kOutOfRange = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIOError = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
};

// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

// Status carries the success/failure outcome of an operation. It is cheap to
// copy in the OK case (no allocation) and holds a message otherwise.
//
// The library does not use exceptions; every fallible operation returns
// Status or StatusOr<T>. Callers must consume statuses (typically via
// LLMMS_RETURN_NOT_OK or by checking ok()).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Propagates a non-OK status to the caller.
#define LLMMS_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::llmms::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

// Assigns the value of a StatusOr expression or propagates its error.
// Usage: LLMMS_ASSIGN_OR_RETURN(auto v, MakeValue());
#define LLMMS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define LLMMS_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define LLMMS_ASSIGN_OR_RETURN_CONCAT(x, y) \
  LLMMS_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define LLMMS_ASSIGN_OR_RETURN(lhs, expr)                                     \
  LLMMS_ASSIGN_OR_RETURN_IMPL(                                                \
      LLMMS_ASSIGN_OR_RETURN_CONCAT(_status_or_value, __LINE__), lhs, expr)

}  // namespace llmms

#endif  // LLMMS_COMMON_STATUS_H_
