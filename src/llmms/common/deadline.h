#ifndef LLMMS_COMMON_DEADLINE_H_
#define LLMMS_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>

#include "llmms/common/status.h"

namespace llmms {

// Wall-clock budget plus cooperative cancellation for one request, threaded
// from the HTTP front door through the service layer into the generation
// loops (HttpServer -> ApiService -> SearchEngine/ParallelGeneration).
//
// Two independent ways a request dies early:
//   * its deadline expires -> Check() returns DeadlineExceeded (the server
//     maps it to a typed 504), or
//   * someone calls Cancel() -- a client that disconnected mid-stream, or
//     the server draining past its grace period -> Check() returns
//     Cancelled.
//
// Every layer that does work on behalf of the request polls Check() at its
// loop boundaries and unwinds with the typed status instead of burning a
// worker on an answer nobody will read. The context is shared by reference
// (std::shared_ptr) between the connection handler, the worker running the
// request, and the server's drain path; all members are thread-safe.
class RequestContext {
 public:
  // No deadline: only Cancel() can end it.
  RequestContext() = default;

  // A context whose deadline is `seconds` from now. `seconds` <= 0 means
  // unbounded (deadline-free), matching the 0-disables idiom of the socket
  // timeouts.
  static std::shared_ptr<RequestContext> WithTimeout(double seconds);
  static std::shared_ptr<RequestContext> Unbounded();

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  // Marks the request cancelled (idempotent; the first reason wins) and
  // wakes any SleepFor() in progress.
  void Cancel(const std::string& reason);

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool expired() const;

  // Seconds until the deadline; +infinity when unbounded, never negative.
  double remaining_seconds() const;

  // OK while the request may continue; Cancelled or DeadlineExceeded once
  // it must stop. Cancellation wins when both apply (it is the more
  // specific signal).
  Status Check() const;

  // Cancellable sleep: blocks up to `seconds`, clamped to the remaining
  // deadline, returning early when Cancel() fires. Returns Check() after
  // waking, so callers can `LLMMS_RETURN_NOT_OK(ctx->SleepFor(x))` inside
  // paced loops.
  Status SleepFor(double seconds);

 private:
  using Clock = std::chrono::steady_clock;

  explicit RequestContext(Clock::time_point deadline)
      : has_deadline_(true), deadline_(deadline) {}

  const bool has_deadline_ = false;
  const Clock::time_point deadline_{};

  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;            // guards cancel_reason_ and the cv
  std::condition_variable cv_;       // wakes SleepFor on Cancel
  std::string cancel_reason_;
};

}  // namespace llmms

#endif  // LLMMS_COMMON_DEADLINE_H_
