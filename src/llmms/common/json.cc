#include "llmms/common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace llmms {
namespace {

const Json& NullJson() {
  static const Json* kNull = new Json();
  return *kNull;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    LLMMS_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  StatusOr<Json> ParseValue() {
    if (depth_ > kMaxDepth) {
      return Status::InvalidArgument("JSON nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        LLMMS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json(nullptr));
      default:
        return ParseNumber();
    }
  }

  StatusOr<Json> ParseLiteral(std::string_view literal, Json value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Status::InvalidArgument("invalid JSON literal at offset " +
                                     std::to_string(pos_));
    }
    pos_ += literal.size();
    return value;
  }

  StatusOr<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_integer = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Status::InvalidArgument("invalid JSON number at offset " +
                                     std::to_string(start));
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::InvalidArgument("invalid JSON number: " + token);
    }
    if (is_integer) return Json(static_cast<int64_t>(value));
    return Json(value);
  }

  StatusOr<std::string> ParseString() {
    if (text_[pos_] != '"') {
      return Status::InvalidArgument("expected string at offset " +
                                     std::to_string(pos_));
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Status::InvalidArgument("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are rare in
            // our payloads; encode each half independently if present).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Status::InvalidArgument("invalid escape character");
        }
      } else {
        out += c;
        ++pos_;
      }
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // consume '['
    ++depth_;
    Json::Array items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(items));
    }
    for (;;) {
      LLMMS_ASSIGN_OR_RETURN(Json item, ParseValue());
      items.push_back(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return Json(std::move(items));
      }
      return Status::InvalidArgument("expected ',' or ']' at offset " +
                                     std::to_string(pos_));
    }
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // consume '{'
    ++depth_;
    Json::Object fields;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(fields));
    }
    for (;;) {
      SkipWhitespace();
      LLMMS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::InvalidArgument("expected ':' at offset " +
                                       std::to_string(pos_));
      }
      ++pos_;
      LLMMS_ASSIGN_OR_RETURN(Json value, ParseValue());
      fields[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated JSON object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return Json(std::move(fields));
      }
      return Status::InvalidArgument("expected ',' or '}' at offset " +
                                     std::to_string(pos_));
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Json& Json::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    auto it = object_.find(std::string(key));
    if (it != object_.end()) return it->second;
  }
  return NullJson();
}

bool Json::Contains(std::string_view key) const {
  return type_ == Type::kObject &&
         object_.find(std::string(key)) != object_.end();
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string closing_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (is_integer_ && std::abs(number_) < 9.0e15) {
        *out += std::to_string(static_cast<int64_t>(number_));
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        *out += buf;
      }
      break;
    }
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      *out += nl;
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += nl;
      }
      *out += closing_pad;
      *out += "]";
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      *out += nl;
      size_t i = 0;
      for (const auto& [key, value] : object_) {
        *out += pad;
        AppendEscaped(out, key);
        *out += indent > 0 ? ": " : ":";
        value.DumpTo(out, indent, depth + 1);
        if (++i < object_.size()) *out += ",";
        *out += nl;
      }
      *out += closing_pad;
      *out += "}";
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

}  // namespace llmms
