#ifndef LLMMS_COMMON_FS_H_
#define LLMMS_COMMON_FS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/rng.h"
#include "llmms/common/status.h"

namespace llmms {

// The storage plane's single I/O seam (DESIGN.md §14). Every durability
// path — the vectordb WAL and snapshots, llm::StateStore, the model-card
// store — does its file I/O through FileSystem so that
//   - durability barriers are explicit: Sync (fsync the file) and SyncDir
//     (fsync the parent directory, which is what makes a rename durable)
//     are first-class operations, and AtomicWriteFile implements the full
//     write-tmp / fsync / rename / fsync-dir replace pattern in one place;
//   - fault injection is pluggable: FaultyFileSystem turns any component
//     into a crash-at-every-syscall test subject without that component
//     knowing (tests/storage_chaos_test.cc), and LLMMS_IO_CHAOS=<prob>
//     injects seeded probabilistic disk faults into the default filesystem
//     for live demos.
//
// Durability model (what the crash harness enforces):
//   - write()s are *visible* immediately (a reopen in the same process sees
//     them) but *durable* only once Sync'd; a simulated crash may lose any
//     unsynced suffix, including partially (torn writes).
//   - a rename is durable only once the parent directory is SyncDir'd; a
//     simulated crash may undo unsynced renames (the "lost rename" fault).

// Cumulative operation counters, surfaced in the /api/health storage block.
// injected_faults / read_corruptions / crashed stay zero on the real
// filesystem; they count FaultyFileSystem's interventions.
struct FsOpCounts {
  uint64_t opens = 0;
  uint64_t appends = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  uint64_t dir_syncs = 0;
  uint64_t reads = 0;
  uint64_t renames = 0;
  uint64_t removes = 0;
  uint64_t truncates = 0;
  uint64_t lists = 0;
  uint64_t injected_faults = 0;
  uint64_t read_corruptions = 0;
  bool crashed = false;
};

// A writable file handle. Append/Sync return typed statuses; Close is
// idempotent and the destructor closes (without syncing — like POSIX
// close(), closing is not a durability barrier).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Opens `path` for appending (created if absent).
  virtual StatusOr<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;
  // Opens `path` truncated to empty (created if absent). Overwriting a live
  // file in place is NOT crash-safe — use AtomicWriteFile for replacement.
  virtual StatusOr<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) = 0;
  // Whole-file read. NotFound if the file does not exist, IOError otherwise.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  // NotFound if absent (callers cleaning up stale temp files ignore that).
  virtual Status Remove(const std::string& path) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  // fsync on the directory itself: the barrier that makes entries (created
  // files, renames) inside it durable.
  virtual Status SyncDir(const std::string& path) = 0;
  // Entry names (not full paths) in `dir`, sorted, excluding "." and "..".
  virtual StatusOr<std::vector<std::string>> List(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;

  virtual FsOpCounts op_counts() const = 0;
  // True when this filesystem injects faults (the health endpoint reports
  // it so operators can tell chaos-mode telemetry from real disk trouble).
  virtual bool injects_faults() const { return false; }

  // Process-wide default. Honours LLMMS_IO_CHAOS=<prob> (read once, at
  // first use): when set > 0, the default is a seeded FaultyFileSystem
  // injecting that per-op probability of short writes, fsync failures,
  // ENOSPC, lost renames, and read-time bit corruption over the real disk.
  static FileSystem* Default();
};

// POSIX filesystem: open/write/fsync/rename/unlink/fsync-dir, no user-space
// buffering (every Append is a write() syscall, so data is visible to
// readers immediately and Sync makes exactly the appended bytes durable).
class RealFileSystem : public FileSystem {
 public:
  RealFileSystem();
  ~RealFileSystem() override;

  StatusOr<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> List(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  FsOpCounts op_counts() const override;

 private:
  friend class RealWritableFile;
  struct Counters;
  std::shared_ptr<Counters> counters_;
};

// Failpoint configuration for FaultyFileSystem. All probabilities are
// per-operation and drawn from one seeded Rng, so a given (seed, workload)
// pair fails identically on every run.
struct FsFaultConfig {
  uint64_t seed = 0x10c4a05;
  // Append failpoints.
  double write_error_prob = 0.0;  // Append fails cleanly, nothing written
  double short_write_prob = 0.0;  // a random prefix lands, then IOError
  double enospc_prob = 0.0;       // Append fails with "(ENOSPC)"
  // Sync failpoints. A failed fsync leaves durability unknown — callers
  // must treat the file as suspect (the WAL marks itself broken).
  double sync_error_prob = 0.0;
  // Rename failpoint: the rename is not performed and IOError is returned
  // ("lost rename"). Crash mode additionally undoes renames whose parent
  // directory was never SyncDir'd.
  double rename_error_prob = 0.0;
  // Read-time silent bit corruption: one random bit of the returned
  // contents is flipped with this probability (checksums must catch it).
  double read_corrupt_prob = 0.0;
};

// Decorator injecting the FsFaultConfig failpoints over `base`, plus a
// crash-point mode for exhaustive crash-recovery sweeps:
//
//   FaultyFileSystem faulty(&real, {});
//   RunWorkload(&faulty);                  // count the ops
//   const int64_t total = faulty.op_count();
//   for (int64_t k = 0; k < total; ++k) {  // kill the world at every op
//     FaultyFileSystem crashing(&real, {});
//     crashing.ArmCrashPoint(k);
//     RunWorkload(&crashing);              // dies at op k with IOError
//     ReopenWithCleanFsAndCheckInvariants();
//   }
//
// When the armed op index is reached, the op "crashes": an Append first
// lands a seeded-random prefix (a torn write), then the simulated kernel
// state is applied to the real directory — every tracked file loses a
// random portion of its unsynced suffix, renames not made durable by
// SyncDir are undone (restoring any file they clobbered), and files whose
// creation was never made durable are removed. Every subsequent op fails
// with IOError("simulated crash"). The component under test is then thrown
// away and reopened through a clean filesystem, exactly like a process
// restart after a power cut.
class FaultyFileSystem : public FileSystem {
 public:
  // `base` must outlive this decorator.
  FaultyFileSystem(FileSystem* base, const FsFaultConfig& config);
  ~FaultyFileSystem() override;

  StatusOr<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& path) override;
  StatusOr<std::vector<std::string>> List(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  FsOpCounts op_counts() const override;
  bool injects_faults() const override { return true; }

  // Arms the crash point: the world halts at op index `halt_after_ops`
  // (0-based, counted across open/append/read/sync/dir-sync/rename/remove/
  // truncate/list). Also switches on the durability tracking that the
  // crash applies. Arm before the workload runs.
  void ArmCrashPoint(int64_t halt_after_ops);

  int64_t op_count() const;
  bool crashed() const;

 private:
  friend class FaultyWritableFile;

  struct FileTrack {
    uint64_t synced = 0;   // bytes known durable
    uint64_t written = 0;  // bytes written (visible but maybe not durable)
  };
  struct PendingRename {
    std::string from;
    std::string to;
    bool had_old = false;
    std::string old_contents;  // what the rename clobbered at `to`
  };

  // Returns the crash/failure status for this op, or OK to proceed.
  // Called with mu_ held; fires the crash when the armed index is hit.
  Status BeginOp();
  void CrashNowLocked();

  Status OnAppend(const std::string& path, std::string_view data,
                  WritableFile* file);
  Status OnSync(const std::string& path, WritableFile* file);

  FileSystem* const base_;
  const FsFaultConfig config_;

  mutable std::mutex mu_;
  Rng rng_;
  int64_t ops_ = 0;
  int64_t halt_after_ops_ = -1;  // -1 = crash mode off
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t injected_faults_ = 0;
  uint64_t read_corruptions_ = 0;
  std::map<std::string, FileTrack> tracks_;
  std::vector<PendingRename> pending_renames_;
  std::vector<std::string> pending_creates_;
};

// Process-wide recovery/corruption counters, incremented by the durable
// components and surfaced in the /api/health "storage" block. Monotonic;
// readers should diff or treat as lifetime totals.
struct StorageCounters {
  std::atomic<uint64_t> wal_replays{0};
  std::atomic<uint64_t> wal_records_replayed{0};
  std::atomic<uint64_t> torn_tails_recovered{0};
  std::atomic<uint64_t> sequence_breaks{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> compaction_failures{0};
  std::atomic<uint64_t> snapshot_saves{0};
  std::atomic<uint64_t> snapshot_save_failures{0};
  std::atomic<uint64_t> snapshot_loads{0};
  std::atomic<uint64_t> snapshot_load_failures{0};
  std::atomic<uint64_t> state_saves{0};
  std::atomic<uint64_t> state_save_failures{0};
  std::atomic<uint64_t> state_cold_starts{0};
};
StorageCounters& GlobalStorageCounters();

// The directory part of `path` ("." when it has no '/').
std::string DirnameOf(const std::string& path);

// The atomic-replace durability barrier: writes `data` to `path`.tmp,
// fsyncs and closes it, renames it over `path`, and fsyncs the parent
// directory. After a crash at ANY point, `path` holds either the complete
// old contents or the complete new contents — never a mixture, never the
// temp file under the final name.
Status AtomicWriteFile(FileSystem* fs, const std::string& path,
                       std::string_view data);

}  // namespace llmms

#endif  // LLMMS_COMMON_FS_H_
