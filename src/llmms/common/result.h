#ifndef LLMMS_COMMON_RESULT_H_
#define LLMMS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "llmms/common/status.h"

namespace llmms {

// StatusOr<T> holds either a value of type T or an error Status. It is the
// return type of fallible operations that produce a value.
//
//   StatusOr<int> Parse(std::string_view s);
//   ...
//   LLMMS_ASSIGN_OR_RETURN(int n, Parse("42"));
template <typename T>
class StatusOr {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse (`return 42;` / `return Status::NotFound(...);`), matching the
  // Arrow Result<> convention.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  // Preconditions: ok(). Accessing the value of an errored StatusOr is a
  // programming error; asserts in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

  // Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace llmms

#endif  // LLMMS_COMMON_RESULT_H_
