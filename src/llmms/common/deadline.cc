#include "llmms/common/deadline.h"

#include <algorithm>
#include <limits>

namespace llmms {

std::shared_ptr<RequestContext> RequestContext::WithTimeout(double seconds) {
  if (seconds <= 0.0) return Unbounded();
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  return std::shared_ptr<RequestContext>(new RequestContext(deadline));
}

std::shared_ptr<RequestContext> RequestContext::Unbounded() {
  return std::make_shared<RequestContext>();
}

void RequestContext::Cancel(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    cancel_reason_ = reason;
    cancelled_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

bool RequestContext::expired() const {
  return has_deadline_ && Clock::now() >= deadline_;
}

double RequestContext::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  const double remaining =
      std::chrono::duration<double>(deadline_ - Clock::now()).count();
  return std::max(0.0, remaining);
}

Status RequestContext::Check() const {
  if (cancelled()) {
    std::lock_guard<std::mutex> lock(mu_);
    return Status::Cancelled(cancel_reason_.empty() ? "request cancelled"
                                                    : cancel_reason_);
  }
  if (expired()) return Status::DeadlineExceeded("request deadline exceeded");
  return Status::OK();
}

Status RequestContext::SleepFor(double seconds) {
  double wait = std::max(0.0, seconds);
  if (has_deadline_) wait = std::min(wait, remaining_seconds());
  if (wait > 0.0) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::duration<double>(wait), [this]() {
      return cancelled_.load(std::memory_order_acquire);
    });
  }
  return Check();
}

}  // namespace llmms
