#include "llmms/common/quantile_window.h"

#include <algorithm>
#include <cmath>

namespace llmms {

QuantileWindow::QuantileWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  window_.reserve(capacity_);
}

void QuantileWindow::Add(double value) {
  if (window_.size() < capacity_) {
    newest_ = window_.size();
    window_.push_back(value);
  } else {
    window_[next_] = value;
    newest_ = next_;
    next_ = (next_ + 1) % capacity_;
  }
  ++count_;
}

double QuantileWindow::Quantile(double q) const {
  if (window_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  scratch_ = window_;
  const size_t n = scratch_.size();
  // Nearest-rank: the smallest index k with (k+1)/n >= q.
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  if (rank >= n) rank = n - 1;
  std::nth_element(scratch_.begin(), scratch_.begin() + rank, scratch_.end());
  return scratch_[rank];
}

void QuantileWindow::Clear() {
  window_.clear();
  next_ = 0;
  newest_ = 0;
  count_ = 0;
}

}  // namespace llmms
