#include "llmms/common/quantile_window.h"

#include <algorithm>
#include <cmath>

namespace llmms {

QuantileWindow::QuantileWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  window_.reserve(capacity_);
}

void QuantileWindow::Add(double value) {
  if (window_.size() < capacity_) {
    newest_ = window_.size();
    window_.push_back(value);
  } else {
    window_[next_] = value;
    newest_ = next_;
    next_ = (next_ + 1) % capacity_;
  }
  ++count_;
}

double QuantileWindow::Quantile(double q) const {
  if (window_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  scratch_ = window_;
  const size_t n = scratch_.size();
  // Nearest-rank: the smallest index k with (k+1)/n >= q.
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  if (rank >= n) rank = n - 1;
  std::nth_element(scratch_.begin(), scratch_.begin() + rank, scratch_.end());
  return scratch_[rank];
}

void QuantileWindow::Clear() {
  window_.clear();
  next_ = 0;
  newest_ = 0;
  count_ = 0;
}

QuantileWindow::Snapshot QuantileWindow::snapshot() const {
  Snapshot out;
  out.capacity = capacity_;
  out.count = count_;
  out.samples.reserve(window_.size());
  if (window_.size() < capacity_) {
    out.samples = window_;  // not yet wrapped: already in arrival order
  } else {
    // Ring has wrapped: the oldest sample sits at the insertion cursor.
    for (size_t i = 0; i < window_.size(); ++i) {
      out.samples.push_back(window_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

void QuantileWindow::Restore(const Snapshot& snapshot) {
  Clear();
  for (double value : snapshot.samples) Add(value);
  // Add() counted the replayed samples; lift to the recorded lifetime count
  // (never below what the window actually holds, in case the snapshot lied).
  count_ = std::max(snapshot.count, count_);
}

}  // namespace llmms
