#include "llmms/common/thread_pool.h"

#include <algorithm>

namespace llmms {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i]() { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace llmms
