#ifndef LLMMS_COMMON_STRING_UTIL_H_
#define LLMMS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace llmms {

// Splits `s` on `delim`, dropping empty pieces when `skip_empty` is true.
std::vector<std::string> Split(std::string_view s, char delim,
                               bool skip_empty = false);

// Splits `s` on any unicode-unaware whitespace run.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Lower-cases, strips punctuation, and collapses whitespace; used by the F1
// metric (SQuAD-style answer normalization).
std::string NormalizeAnswerText(std::string_view s);

// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 4);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace llmms

#endif  // LLMMS_COMMON_STRING_UTIL_H_
