#ifndef LLMMS_TOKENIZER_WORD_TOKENIZER_H_
#define LLMMS_TOKENIZER_WORD_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace llmms::tokenizer {

// Word-level tokenization with SQuAD-style normalization (lower-case, strip
// punctuation and articles). Used by the F1 metric and by components that
// reason about content words (summarizer, synthetic models).
class WordTokenizer {
 public:
  struct Options {
    bool lowercase = true;
    bool strip_punctuation = true;
    bool remove_articles = false;   // drop "a", "an", "the"
    bool remove_stopwords = false;  // drop a small English stopword list
  };

  WordTokenizer() : WordTokenizer(Options{}) {}
  explicit WordTokenizer(const Options& options);

  // Splits `text` into normalized tokens.
  std::vector<std::string> Tokenize(std::string_view text) const;

  // Convenience: tokens joined by single spaces.
  std::string Normalize(std::string_view text) const;

  // True if `word` (already lower-cased) is in the stopword list.
  static bool IsStopword(std::string_view word);

 private:
  Options options_;
};

// Splits text into sentences on ., !, ? boundaries while keeping common
// abbreviations intact. Used by the chunker and the extractive summarizer.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace llmms::tokenizer

#endif  // LLMMS_TOKENIZER_WORD_TOKENIZER_H_
