#include "llmms/tokenizer/bpe_tokenizer.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <map>

#include "llmms/common/string_util.h"

namespace llmms::tokenizer {
namespace {

// GPT-2 style word-boundary marker (UTF-8 for U+0120 'Ġ').
constexpr const char kBoundary[] = "\xc4\xa0";

// Splits text into words, attaching the boundary marker to every word that
// was preceded by whitespace (including the first if the text starts with
// whitespace).
std::vector<std::string> PreTokenize(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  bool pending_boundary = false;
  bool first_word = true;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!current.empty()) {
        words.push_back(std::move(current));
        current.clear();
        first_word = false;
      }
      pending_boundary = true;
      continue;
    }
    if (current.empty() && (pending_boundary || !first_word)) {
      current = kBoundary;
      pending_boundary = false;
    }
    current += c;
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

}  // namespace

BpeTokenizer::BpeTokenizer() {
  // Base vocabulary: 256 single-byte tokens, so any input is encodable.
  vocab_.reserve(512);
  for (int b = 0; b < 256; ++b) {
    vocab_.push_back(std::string(1, static_cast<char>(b)));
  }
}

Status BpeTokenizer::Train(const std::vector<std::string>& corpus,
                           const TrainOptions& options) {
  if (options.vocab_size <= 256) {
    return Status::InvalidArgument(
        "vocab_size must exceed the 256 byte tokens");
  }
  if (corpus.empty()) {
    return Status::InvalidArgument("training corpus is empty");
  }

  // Collect word frequencies (words carry the boundary marker).
  std::unordered_map<std::string, int> word_freq;
  for (const auto& doc : corpus) {
    for (auto& w : PreTokenize(doc)) ++word_freq[w];
  }

  // Represent each distinct word as a sequence of byte token ids.
  struct WordEntry {
    std::vector<TokenId> ids;
    int freq;
  };
  std::vector<WordEntry> words;
  words.reserve(word_freq.size());
  for (const auto& [w, f] : word_freq) {
    WordEntry e;
    e.freq = f;
    e.ids.reserve(w.size());
    for (char c : w) {
      e.ids.push_back(static_cast<TokenId>(static_cast<unsigned char>(c)));
    }
    words.push_back(std::move(e));
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(words.begin(), words.end(),
            [this](const WordEntry& a, const WordEntry& b) {
              if (a.freq != b.freq) return a.freq > b.freq;
              return a.ids < b.ids;
            });

  merge_ranks_.clear();
  merge_results_.clear();
  vocab_.resize(256);

  while (static_cast<int>(vocab_.size()) < options.vocab_size) {
    // Count adjacent pairs. std::map gives a deterministic tie-break order.
    std::map<std::pair<TokenId, TokenId>, int64_t> pair_counts;
    for (const auto& w : words) {
      for (size_t i = 0; i + 1 < w.ids.size(); ++i) {
        pair_counts[{w.ids[i], w.ids[i + 1]}] += w.freq;
      }
    }
    if (pair_counts.empty()) break;

    std::pair<TokenId, TokenId> best_pair{-1, -1};
    int64_t best_count = 0;
    for (const auto& [pair, count] : pair_counts) {
      if (count > best_count) {
        best_count = count;
        best_pair = pair;
      }
    }
    if (best_count < options.min_pair_frequency) break;

    const TokenId new_id = static_cast<TokenId>(vocab_.size());
    vocab_.push_back(vocab_[static_cast<size_t>(best_pair.first)] +
                     vocab_[static_cast<size_t>(best_pair.second)]);
    merge_ranks_[best_pair] = static_cast<int>(merge_ranks_.size());
    merge_results_[best_pair] = new_id;

    // Apply the merge to every word.
    for (auto& w : words) {
      if (w.ids.size() < 2) continue;
      std::vector<TokenId> merged;
      merged.reserve(w.ids.size());
      size_t i = 0;
      while (i < w.ids.size()) {
        if (i + 1 < w.ids.size() && w.ids[i] == best_pair.first &&
            w.ids[i + 1] == best_pair.second) {
          merged.push_back(new_id);
          i += 2;
        } else {
          merged.push_back(w.ids[i]);
          ++i;
        }
      }
      w.ids = std::move(merged);
    }
  }
  return Status::OK();
}

std::vector<TokenId> BpeTokenizer::EncodeWord(std::string_view word) const {
  std::vector<TokenId> ids;
  ids.reserve(word.size());
  for (char c : word) {
    ids.push_back(static_cast<TokenId>(static_cast<unsigned char>(c)));
  }
  if (merge_ranks_.empty()) return ids;
  // Repeatedly apply the lowest-rank applicable merge (standard BPE encode).
  for (;;) {
    int best_rank = std::numeric_limits<int>::max();
    size_t best_pos = 0;
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      auto it = merge_ranks_.find({ids[i], ids[i + 1]});
      if (it != merge_ranks_.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank == std::numeric_limits<int>::max()) break;
    const auto pair = std::make_pair(ids[best_pos], ids[best_pos + 1]);
    ids[best_pos] = merge_results_.at(pair);
    ids.erase(ids.begin() + static_cast<ptrdiff_t>(best_pos) + 1);
  }
  return ids;
}

std::vector<TokenId> BpeTokenizer::Encode(std::string_view text) const {
  std::vector<TokenId> out;
  for (const auto& word : PreTokenize(text)) {
    const auto ids = EncodeWord(word);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

std::string BpeTokenizer::Decode(const std::vector<TokenId>& ids) const {
  std::string raw;
  for (TokenId id : ids) {
    if (id >= 0 && static_cast<size_t>(id) < vocab_.size()) {
      raw += vocab_[static_cast<size_t>(id)];
    }
  }
  // Replace boundary markers with spaces.
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i + 1 < raw.size() && raw[i] == '\xc4' && raw[i + 1] == '\xa0') {
      out += ' ';
      ++i;
    } else {
      out += raw[i];
    }
  }
  return out;
}

size_t BpeTokenizer::CountTokens(std::string_view text) const {
  return Encode(text).size();
}

std::string BpeTokenizer::TokenText(TokenId id) const {
  if (id < 0 || static_cast<size_t>(id) >= vocab_.size()) return "";
  return vocab_[static_cast<size_t>(id)];
}

Status BpeTokenizer::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  // Persist merges as (left_id, right_id) in rank order; token byte strings
  // are reconstructible from the merge sequence.
  std::vector<std::pair<TokenId, TokenId>> merges(merge_ranks_.size());
  for (const auto& [pair, rank] : merge_ranks_) {
    merges[static_cast<size_t>(rank)] = pair;
  }
  out << "llmms-bpe-v1\n" << merges.size() << "\n";
  for (const auto& [l, r] : merges) out << l << " " << r << "\n";
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<BpeTokenizer> BpeTokenizer::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string magic;
  size_t count = 0;
  in >> magic >> count;
  if (!in || magic != "llmms-bpe-v1") {
    return Status::IOError("bad tokenizer file format: " + path);
  }
  BpeTokenizer tok;
  for (size_t i = 0; i < count; ++i) {
    TokenId l = 0;
    TokenId r = 0;
    in >> l >> r;
    if (!in) return Status::IOError("truncated tokenizer file: " + path);
    if (l < 0 || r < 0 || static_cast<size_t>(l) >= tok.vocab_.size() ||
        static_cast<size_t>(r) >= tok.vocab_.size()) {
      return Status::IOError("corrupt merge entry in: " + path);
    }
    const TokenId new_id = static_cast<TokenId>(tok.vocab_.size());
    tok.vocab_.push_back(tok.vocab_[static_cast<size_t>(l)] +
                         tok.vocab_[static_cast<size_t>(r)]);
    tok.merge_ranks_[{l, r}] = static_cast<int>(i);
    tok.merge_results_[{l, r}] = new_id;
  }
  return tok;
}

}  // namespace llmms::tokenizer
