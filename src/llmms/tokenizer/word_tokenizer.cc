#include "llmms/tokenizer/word_tokenizer.h"

#include <cctype>

#include "llmms/common/string_util.h"

namespace llmms::tokenizer {
namespace {

const std::unordered_set<std::string>& Stopwords() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "a",    "an",   "the",  "is",   "are",  "was",  "were", "be",
      "been", "of",   "to",   "in",   "on",   "at",   "by",   "for",
      "with", "and",  "or",   "not",  "that", "this", "it",   "as",
      "from", "but",  "if",   "then", "than", "so",   "do",   "does",
      "did",  "can",  "will", "would", "there", "their", "they", "he",
      "she",  "his",  "her",  "its",  "we",   "you",  "i",    "my",
      "your", "our",  "them", "have", "has",  "had",  "what", "which",
      "who",  "when", "where", "why", "how",  "all",  "any",  "no",
      "nor",  "only", "own",  "same", "some", "such", "too",  "very",
  };
  return *kSet;
}

bool IsArticle(const std::string& w) {
  return w == "a" || w == "an" || w == "the";
}

}  // namespace

WordTokenizer::WordTokenizer(const Options& options) : options_(options) {}

std::vector<std::string> WordTokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.empty()) return;
    if (options_.remove_articles && IsArticle(current)) {
      current.clear();
      return;
    }
    if (options_.remove_stopwords && Stopwords().count(current) > 0) {
      current.clear();
      return;
    }
    tokens.push_back(std::move(current));
    current.clear();
  };
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    const bool keep =
        std::isalnum(c) || (!options_.strip_punctuation && !std::isspace(c));
    if (keep) {
      current += options_.lowercase
                     ? static_cast<char>(std::tolower(c))
                     : raw;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::string WordTokenizer::Normalize(std::string_view text) const {
  return Join(Tokenize(text), " ");
}

bool WordTokenizer::IsStopword(std::string_view word) {
  return Stopwords().count(std::string(word)) > 0;
}

std::vector<std::string> SplitSentences(std::string_view text) {
  static const auto* kAbbreviations = new std::unordered_set<std::string>{
      "mr", "mrs", "ms", "dr", "prof", "st", "vs", "etc", "eg", "ie", "fig",
  };
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    current += c;
    if (c == '.' || c == '!' || c == '?') {
      // Look back for an abbreviation like "Dr." that should not split.
      if (c == '.') {
        size_t end = current.size() - 1;
        size_t start = end;
        while (start > 0 && std::isalpha(static_cast<unsigned char>(
                                current[start - 1]))) {
          --start;
        }
        const std::string word = ToLower(current.substr(start, end - start));
        if (kAbbreviations->count(word) > 0) continue;
        // Don't split decimal numbers like "3.14".
        if (i + 1 < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
          continue;
        }
      }
      const std::string trimmed = Trim(current);
      if (!trimmed.empty()) sentences.push_back(trimmed);
      current.clear();
    }
  }
  const std::string trimmed = Trim(current);
  if (!trimmed.empty()) sentences.push_back(trimmed);
  return sentences;
}

}  // namespace llmms::tokenizer
