#ifndef LLMMS_TOKENIZER_BPE_TOKENIZER_H_
#define LLMMS_TOKENIZER_BPE_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"

namespace llmms::tokenizer {

using TokenId = int32_t;

// Trainable byte-pair-encoding subword tokenizer, the vocabulary scheme used
// by the models the paper serves (LLaMA/Mistral/Qwen all use BPE-family
// tokenizers). Words are pre-split on whitespace; a word-boundary marker
// ("\xc4\xa0", the GPT-2 'Ġ' convention) prefixes every non-initial word so
// that decode() reconstructs the original spacing.
//
// Token accounting in the orchestrators (token budgets, chunk sizes) is
// denominated in BPE tokens produced by this class.
class BpeTokenizer {
 public:
  struct TrainOptions {
    // Target vocabulary size including the 256 byte tokens and specials.
    int vocab_size = 2048;
    // Merges occurring fewer than this many times are not learned.
    int min_pair_frequency = 2;
  };

  BpeTokenizer();

  // Learns merges from `corpus` until `options.vocab_size` is reached or no
  // pair passes the frequency threshold.
  Status Train(const std::vector<std::string>& corpus,
               const TrainOptions& options);

  // Encodes text into token ids. Unknown bytes cannot occur (byte-level
  // base vocabulary).
  std::vector<TokenId> Encode(std::string_view text) const;

  // Decodes ids back to text. Ids out of range decode to the empty string.
  std::string Decode(const std::vector<TokenId>& ids) const;

  // Number of BPE tokens in `text` without materializing the ids.
  size_t CountTokens(std::string_view text) const;

  int vocab_size() const { return static_cast<int>(vocab_.size()); }
  size_t num_merges() const { return merge_ranks_.size(); }
  bool trained() const { return !merge_ranks_.empty(); }

  // Token text for an id; empty for out-of-range ids.
  std::string TokenText(TokenId id) const;

  // Serialization of the learned vocabulary (text format, one merge per
  // line), so a trained tokenizer can ship with a model.
  Status Save(const std::string& path) const;
  static StatusOr<BpeTokenizer> Load(const std::string& path);

 private:
  struct PairHash {
    size_t operator()(const std::pair<TokenId, TokenId>& p) const {
      return std::hash<uint64_t>()(
          (static_cast<uint64_t>(static_cast<uint32_t>(p.first)) << 32) |
          static_cast<uint32_t>(p.second));
    }
  };

  std::vector<TokenId> EncodeWord(std::string_view word) const;

  // vocab_[id] is the byte string of the token.
  std::vector<std::string> vocab_;
  // Rank of each learned merge (lower = earlier = higher priority).
  std::unordered_map<std::pair<TokenId, TokenId>, int, PairHash> merge_ranks_;
  // Result id of each merge.
  std::unordered_map<std::pair<TokenId, TokenId>, TokenId, PairHash>
      merge_results_;
};

}  // namespace llmms::tokenizer

#endif  // LLMMS_TOKENIZER_BPE_TOKENIZER_H_
