#ifndef LLMMS_EVAL_SCENARIO_MATRIX_H_
#define LLMMS_EVAL_SCENARIO_MATRIX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "llmms/common/json.h"
#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/core/reward_feed.h"
#include "llmms/core/scoring.h"
#include "llmms/llm/model.h"

namespace llmms::eval {

// The cost/accuracy frontier harness (DESIGN.md §16): one deterministic
// driver that runs a scenario matrix over the full Synthetic → Faulty →
// Resilient → Hedged stack and reports every cell under one accounting —
// reward, F1, reward/token, wasted hedge work, shed rate, wall-clock.
// bench/bench_frontier.cc emits the committed BENCH_frontier.json from the
// default matrix; tests/scenario_matrix_test.cc replays the pinned matrix
// against committed reference points and fails on dominated regressions.
//
// Every cell builds its own world (dataset, knowledge base, registry,
// runtime) from the matrix seed, so cells are independent and a cell's
// metrics depend only on (spec, config) — the property the determinism and
// golden tests lock down.

// --- Matrix axes. ---

enum class MatrixOrchestrator { kSingle, kOua, kMab, kHybrid };
enum class MatrixPool { kDuo, kTrio };        // first 2 / all 3 paper models
enum class MatrixFaults { kNone, kFlaky, kStorm };
enum class MatrixMode {
  kPlain,     // bare synthetic models (plus resilience when faults are on)
  kAdaptive,  // hedged replicas + RewardFeed: adaptive percentiles and
              // feed-prior arm seeding (Config::feed_prior_weight)
  kBatched,   // kPlain stack multiplexed through the continuous-batching
              // scheduler (DESIGN.md §13)
};

const char* ToString(MatrixOrchestrator orchestrator);
const char* ToString(MatrixPool pool);
const char* ToString(MatrixFaults faults);
const char* ToString(MatrixMode mode);

// One point of the matrix.
struct CellSpec {
  MatrixOrchestrator orchestrator = MatrixOrchestrator::kMab;
  size_t token_budget = 384;
  MatrixPool pool = MatrixPool::kTrio;
  MatrixFaults faults = MatrixFaults::kNone;
  MatrixMode mode = MatrixMode::kPlain;
};

// Stable cell identifier, e.g. "mab/b384/trio/flaky/adaptive" — the join
// key between fresh runs and committed reference points.
std::string CellKey(const CellSpec& spec);

struct MatrixConfig {
  std::vector<MatrixOrchestrator> orchestrators;
  std::vector<size_t> token_budgets;
  std::vector<MatrixPool> pools;
  std::vector<MatrixFaults> faults;
  std::vector<MatrixMode> modes;

  // Dataset size per cell: questions_per_domain x the 6 canonical domains.
  size_t questions_per_domain = 2;
  uint64_t seed = 0x7A9E11ULL;

  core::ScoringWeights weights;        // alpha/beta (Eq. 6.1)
  core::RewardWeights reward_weights;  // Eq. 8.1

  // The estimator adaptive cells give their per-cell RewardFeed, and the
  // virtual-pull weight their MAB/hybrid arms are seeded with.
  core::RewardFeedConfig feed{/*warmup=*/4, /*window=*/48, /*half_life=*/0.0};
  double feed_prior_weight = 4.0;

  // OUA / MAB knobs shared by every cell.
  size_t oua_chunk_tokens = 8;
  size_t mab_chunk_tokens = 16;
  double mab_gamma0 = 0.3;
};

// The committed-bench matrix (BENCH_frontier.json): every orchestrator x
// {96, 384} tokens x {duo, trio} x {none, flaky, storm} x
// {plain, adaptive, batched}. 96 starves the pool; 384 lets every model
// finish naturally — the two budget regimes of the frontier.
MatrixConfig DefaultMatrix();
// The small matrix CI replays against tests/golden/frontier_reference.json:
// {oua, mab} x {384} x {trio} x {none, storm} x {plain, adaptive}.
MatrixConfig PinnedMatrix();

// One cell's metrics under the harness's single accounting.
struct CellResult {
  CellSpec spec;

  size_t queries = 0;
  size_t failed_queries = 0;  // typed errors (e.g. the whole pool refused)
  double shed_rate = 0.0;     // failed_queries / queries

  // Quality over the successful queries (a fully shed cell scores 0).
  double mean_reward = 0.0;  // Eq. 8.1 on the final answer
  double mean_f1 = 0.0;
  double accuracy = 0.0;

  // The frontier's cost axis. Token conservation — locked down by the
  // scenario-matrix test across every cell — guarantees
  //   generated_tokens == charged_tokens + wasted_tokens:
  // every token the synthetic substrate produced was either charged to a
  // query's budget or honestly booked as hedge-race waste.
  size_t charged_tokens = 0;    // budget-accounted tokens across queries
  size_t wasted_tokens = 0;     // cancelled hedge losers' work
  size_t generated_tokens = 0;  // ground truth, metered at the substrate
  double reward_per_token = 0.0;  // total reward / charged_tokens

  size_t hedges_launched = 0;
  size_t hedges_won = 0;
  size_t failovers = 0;
  double wasted_seconds = 0.0;

  double simulated_seconds = 0.0;  // deterministic simulated wall clock
  double wall_seconds = 0.0;       // host wall clock; NEVER compared by
                                   // goldens or the regression gate
};

// Serialization of one cell, deterministic fields first (wall_seconds is
// included for the bench report but excluded from golden comparisons).
Json CellToJson(const CellResult& result);
// One deterministic line per cell — the unit of the committed golden row
// trace (tests/golden/frontier_row.golden).
std::string CellTraceLine(const CellResult& result);

class ScenarioMatrix {
 public:
  explicit ScenarioMatrix(const MatrixConfig& config);

  // The config's full cross product, in axis order (orchestrator outermost,
  // mode innermost).
  std::vector<CellSpec> Cells() const;

  // Runs one cell in a fresh world. Deterministic in (spec, config) except
  // for CellResult::wall_seconds.
  StatusOr<CellResult> RunCell(const CellSpec& spec) const;

  // Runs every cell; `progress` (optional) is called after each.
  StatusOr<std::vector<CellResult>> Run(
      const std::function<void(const CellResult&, size_t done, size_t total)>&
          progress = nullptr) const;

  const MatrixConfig& config() const { return config_; }

 private:
  MatrixConfig config_;
};

// --- Drifting-competence acceptance scenario (DESIGN.md §16). ---
//
// Two DriftSwitchModel pools whose domain competence swaps mid-session:
// "drift:alpha" answers well until the switch and badly after,
// "drift:beta" the reverse. The same query sequence is run twice through a
// MAB session with feed-prior arm seeding — once with a lifetime-mean
// RewardFeed (the baseline) and once with the configured decayed/windowed
// feed. The decayed feed forgets alpha's stale reputation and re-ranks the
// pool within a window of the switch; the lifetime feed keeps recommending
// the has-been. Acceptance: the decayed feed's reward/token is strictly
// above the baseline's.
struct DriftConfig {
  size_t questions_per_domain = 4;  // 24 queries over the 6 domains
  size_t switch_after_queries = 12;
  uint64_t seed = 0x7A9E11ULL;
  size_t token_budget = 256;
  size_t chunk_tokens = 16;
  double feed_prior_weight = 6.0;
  // The adaptive run's estimator (the baseline run always uses lifetime
  // means with the same warmup).
  core::RewardFeedConfig adaptive_feed{/*warmup=*/4, /*window=*/32,
                                       /*half_life=*/0.0};
  core::ScoringWeights weights;
  core::RewardWeights reward_weights;
};

struct DriftOutcome {
  size_t queries = 0;
  double total_reward = 0.0;
  size_t charged_tokens = 0;
  double reward_per_token = 0.0;
};

struct DriftComparison {
  DriftOutcome lifetime;  // lifetime-mean RewardFeed (the baseline)
  DriftOutcome adaptive;  // DriftConfig::adaptive_feed
};

StatusOr<DriftComparison> RunDriftComparison(const DriftConfig& config);

// A model whose behaviour switches mid-session: generations delegate to
// `before` for the first `switch_after_starts` StartGeneration calls and to
// `after` from then on. Both inners must share a name (the drift is a
// quality change inside one deployed model, not a pool change). Exposed for
// tests.
class DriftSwitchModel final : public llm::LanguageModel {
 public:
  DriftSwitchModel(std::shared_ptr<llm::LanguageModel> before,
                   std::shared_ptr<llm::LanguageModel> after,
                   size_t switch_after_starts);

  const std::string& name() const override { return before_->name(); }
  uint64_t memory_mb() const override { return before_->memory_mb(); }
  double tokens_per_second() const override {
    return before_->tokens_per_second();
  }
  size_t context_window() const override { return before_->context_window(); }

  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest& request) const override;

  // Starts observed so far (the drift clock), for tests.
  size_t starts() const { return starts_.load(); }

 private:
  std::shared_ptr<llm::LanguageModel> before_;
  std::shared_ptr<llm::LanguageModel> after_;
  const size_t switch_after_starts_;
  mutable std::atomic<size_t> starts_{0};
};

}  // namespace llmms::eval

#endif  // LLMMS_EVAL_SCENARIO_MATRIX_H_
