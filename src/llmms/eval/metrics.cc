#include "llmms/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace llmms::eval {

QuestionMetrics ScoreResponse(const embedding::Embedder& embedder,
                              const llm::QaItem& item,
                              const std::string& response,
                              const core::RewardWeights& weights) {
  QuestionMetrics m;
  m.question_id = item.id;
  m.domain = item.domain;
  m.reward = core::ComputeReward(embedder, response, item.golden, item.correct,
                                 item.incorrect, weights);
  m.f1 = core::BestTokenF1(response, item.golden, item.correct);
  m.correct = IsCorrect(item, response);
  return m;
}

bool IsCorrect(const llm::QaItem& item, const std::string& response) {
  const double truthful_f1 =
      core::BestTokenF1(response, item.golden, item.correct);
  double misleading_f1 = 0.0;
  for (const auto& wrong : item.incorrect) {
    misleading_f1 = std::max(misleading_f1, core::TokenF1(response, wrong));
  }
  return truthful_f1 > misleading_f1;
}

StrategyAggregate Aggregate(const std::string& strategy,
                            const std::vector<QuestionMetrics>& metrics) {
  StrategyAggregate agg;
  agg.strategy = strategy;
  agg.num_questions = metrics.size();
  if (metrics.empty()) return agg;
  for (const auto& m : metrics) {
    agg.mean_reward += m.reward;
    agg.mean_f1 += m.f1;
    agg.accuracy += m.correct ? 1.0 : 0.0;
    agg.mean_total_tokens += static_cast<double>(m.total_tokens);
    agg.mean_answer_tokens += static_cast<double>(m.answer_tokens);
    agg.mean_seconds += m.simulated_seconds;
    if (m.total_tokens > 0) {
      agg.mean_reward_per_total_token +=
          m.reward / static_cast<double>(m.total_tokens);
    }
    if (m.answer_tokens > 0) {
      agg.mean_reward_per_answer_token +=
          m.reward / static_cast<double>(m.answer_tokens);
    }
  }
  const double n = static_cast<double>(metrics.size());
  agg.mean_reward /= n;
  agg.mean_f1 /= n;
  agg.accuracy /= n;
  agg.mean_total_tokens /= n;
  agg.mean_answer_tokens /= n;
  agg.mean_seconds /= n;
  agg.mean_reward_per_total_token /= n;
  agg.mean_reward_per_answer_token /= n;
  if (metrics.size() > 1) {
    double sum_sq = 0.0;
    for (const auto& m : metrics) {
      const double d = m.reward - agg.mean_reward;
      sum_sq += d * d;
    }
    agg.reward_stddev = std::sqrt(sum_sq / (n - 1.0));
    agg.reward_sem = agg.reward_stddev / std::sqrt(n);
  }
  return agg;
}

std::vector<std::pair<std::string, StrategyAggregate>> AggregateByDomain(
    const std::string& strategy, const std::vector<QuestionMetrics>& metrics) {
  std::map<std::string, std::vector<QuestionMetrics>> by_domain;
  for (const auto& m : metrics) by_domain[m.domain].push_back(m);
  std::vector<std::pair<std::string, StrategyAggregate>> out;
  out.reserve(by_domain.size());
  for (const auto& [domain, list] : by_domain) {
    out.emplace_back(domain, Aggregate(strategy, list));
  }
  return out;
}

}  // namespace llmms::eval
