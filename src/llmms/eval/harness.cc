#include "llmms/eval/harness.h"

namespace llmms::eval {

const StrategyRun* EvaluationReport::Find(const std::string& strategy) const {
  for (const auto& run : runs) {
    if (run.strategy == strategy) return &run;
  }
  return nullptr;
}

EvaluationHarness::EvaluationHarness(
    llm::ModelRuntime* runtime,
    std::shared_ptr<const embedding::Embedder> embedder,
    std::vector<std::string> models, HarnessConfig config)
    : runtime_(runtime),
      embedder_(std::move(embedder)),
      models_(std::move(models)),
      config_(config) {}

StatusOr<StrategyRun> EvaluationHarness::RunStrategy(
    const std::string& label, core::Orchestrator* orchestrator,
    const std::vector<llm::QaItem>& dataset,
    const std::function<void(const std::string&, size_t, size_t)>& progress) {
  StrategyRun run;
  run.strategy = label;
  run.per_question.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    const llm::QaItem& item = dataset[i];
    LLMMS_ASSIGN_OR_RETURN(auto result, orchestrator->Run(item.question));
    QuestionMetrics metrics = ScoreResponse(*embedder_, item, result.answer,
                                            config_.reward_weights);
    metrics.total_tokens = result.total_tokens;
    metrics.answer_tokens = result.answer_tokens;
    metrics.simulated_seconds = result.simulated_seconds;
    run.per_question.push_back(std::move(metrics));
    if (progress) progress(label, i + 1, dataset.size());
  }
  run.aggregate = Aggregate(label, run.per_question);
  return run;
}

StatusOr<EvaluationReport> EvaluationHarness::Run(
    const std::vector<llm::QaItem>& dataset,
    const std::function<void(const std::string& strategy, size_t done,
                             size_t total)>& progress) {
  if (models_.empty()) {
    return Status::FailedPrecondition("harness needs at least one model");
  }
  EvaluationReport report;

  if (config_.run_singles) {
    for (const auto& model : models_) {
      core::SingleModelOrchestrator::Config config;
      config.weights = config_.weights;
      config.token_budget = config_.token_budget;
      core::SingleModelOrchestrator orchestrator(runtime_, model, embedder_,
                                                 config);
      LLMMS_ASSIGN_OR_RETURN(
          auto run, RunStrategy(model, &orchestrator, dataset, progress));
      report.runs.push_back(std::move(run));
    }
  }

  if (config_.run_oua) {
    core::OuaOrchestrator::Config config;
    config.weights = config_.weights;
    config.token_budget = config_.token_budget;
    config.chunk_tokens = config_.oua_chunk_tokens;
    config.early_stop_margin = config_.oua_early_stop_margin;
    config.prune_margin = config_.oua_prune_margin;
    core::OuaOrchestrator orchestrator(runtime_, models_, embedder_, config);
    LLMMS_ASSIGN_OR_RETURN(
        auto run,
        RunStrategy("llm-ms-oua", &orchestrator, dataset, progress));
    report.runs.push_back(std::move(run));
  }

  if (config_.run_mab) {
    core::MabOrchestrator::Config config;
    config.weights = config_.weights;
    config.token_budget = config_.token_budget;
    config.chunk_tokens = config_.mab_chunk_tokens;
    config.gamma0 = config_.mab_gamma0;
    core::MabOrchestrator orchestrator(runtime_, models_, embedder_, config);
    LLMMS_ASSIGN_OR_RETURN(
        auto run,
        RunStrategy("llm-ms-mab", &orchestrator, dataset, progress));
    report.runs.push_back(std::move(run));
  }

  return report;
}

}  // namespace llmms::eval
