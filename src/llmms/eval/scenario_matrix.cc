#include "llmms/eval/scenario_matrix.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <utility>

#include "llmms/core/hybrid.h"
#include "llmms/core/mab.h"
#include "llmms/core/oua.h"
#include "llmms/core/single.h"
#include "llmms/embedding/hash_embedder.h"
#include "llmms/eval/metrics.h"
#include "llmms/eval/qa_dataset.h"
#include "llmms/hardware/placement.h"
#include "llmms/llm/fault_injection.h"
#include "llmms/llm/hedged_model.h"
#include "llmms/llm/knowledge.h"
#include "llmms/llm/registry.h"
#include "llmms/llm/resilient_model.h"
#include "llmms/llm/runtime.h"
#include "llmms/llm/synthetic_model.h"

namespace llmms::eval {
namespace {

// splitmix64-style seed mixing: every (cell, model, replica) gets its own
// deterministic fault/model seed so no two streams share a random sequence.
uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Ground-truth token counter at the substrate boundary: wraps the innermost
// SyntheticModel of every replica, so `generated` counts each token the
// synthetic world actually produced — the left-hand side of the
// conservation invariant generated == charged + wasted. Decorators above
// (fault injection, retries, hedging) can only drop or duplicate work, never
// mint tokens the meter has not seen.
struct TokenMeter {
  std::atomic<size_t> tokens{0};
};

class MeteredStream final : public llm::GenerationStream {
 public:
  MeteredStream(std::unique_ptr<llm::GenerationStream> inner,
                std::shared_ptr<TokenMeter> meter)
      : inner_(std::move(inner)), meter_(std::move(meter)) {}

  StatusOr<llm::Chunk> NextChunk(size_t max_tokens) override {
    auto chunk = inner_->NextChunk(max_tokens);
    if (chunk.ok()) {
      meter_->tokens.fetch_add(chunk->num_tokens, std::memory_order_relaxed);
    }
    return chunk;
  }

  const std::string& text() const override { return inner_->text(); }
  size_t tokens_generated() const override {
    return inner_->tokens_generated();
  }
  bool finished() const override { return inner_->finished(); }
  llm::StopReason stop_reason() const override {
    return inner_->stop_reason();
  }

 private:
  std::unique_ptr<llm::GenerationStream> inner_;
  std::shared_ptr<TokenMeter> meter_;
};

class MeteredModel final : public llm::LanguageModel {
 public:
  MeteredModel(std::shared_ptr<llm::LanguageModel> inner,
               std::shared_ptr<TokenMeter> meter)
      : inner_(std::move(inner)), meter_(std::move(meter)) {}

  const std::string& name() const override { return inner_->name(); }
  uint64_t memory_mb() const override { return inner_->memory_mb(); }
  double tokens_per_second() const override {
    return inner_->tokens_per_second();
  }
  size_t context_window() const override { return inner_->context_window(); }

  StatusOr<std::unique_ptr<llm::GenerationStream>> StartGeneration(
      const llm::GenerationRequest& request) const override {
    LLMMS_ASSIGN_OR_RETURN(auto stream, inner_->StartGeneration(request));
    return std::unique_ptr<llm::GenerationStream>(
        new MeteredStream(std::move(stream), meter_));
  }

 private:
  std::shared_ptr<llm::LanguageModel> inner_;
  std::shared_ptr<TokenMeter> meter_;
};

llm::FaultConfig FaultsFor(MatrixFaults faults, uint64_t seed) {
  llm::FaultConfig config;
  config.seed = seed;
  switch (faults) {
    case MatrixFaults::kNone:
      break;
    case MatrixFaults::kFlaky:
      config.chunk_error_prob = 0.05;
      config.stall_prob = 0.02;
      config.latency_spike_prob = 0.10;
      config.latency_spike_seconds = 0.05;
      break;
    case MatrixFaults::kStorm:
      // Calibrated so whole-pool failures survive the retry budget: with
      // three start attempts per model a 0.85 refusal rate still kills a
      // model's start ~61% of the time, so trio-pool queries shed at a
      // deterministic nonzero rate (asserted by the pinned-matrix test).
      config.refuse_start_prob = 0.85;
      config.chunk_error_prob = 0.20;
      config.latency_spike_prob = 0.05;
      config.latency_spike_seconds = 0.05;
      break;
  }
  return config;
}

// One cell's fully wired world. Built fresh per RunCell so cells never
// share breaker, sketch, or feed state.
struct CellWorld {
  std::shared_ptr<const embedding::Embedder> embedder;
  std::shared_ptr<llm::KnowledgeBase> knowledge;
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::vector<llm::QaItem> dataset;
  std::vector<std::string> model_names;
  std::shared_ptr<TokenMeter> meter;
  std::vector<std::shared_ptr<llm::HedgedModel>> hedged;
  std::unique_ptr<core::RewardFeed> feed;  // adaptive cells only
};

// Builds one replica chain: Metered(Synthetic) [-> Faulty -> Resilient].
std::shared_ptr<llm::LanguageModel> BuildReplica(
    const llm::ModelProfile& profile,
    const std::shared_ptr<llm::KnowledgeBase>& knowledge,
    const std::shared_ptr<TokenMeter>& meter, MatrixFaults faults,
    uint64_t seed) {
  llm::ModelProfile seeded = profile;
  seeded.seed = MixSeed(seed, 0x5EED);
  std::shared_ptr<llm::LanguageModel> model = std::make_shared<MeteredModel>(
      std::make_shared<llm::SyntheticModel>(seeded, knowledge), meter);
  if (faults != MatrixFaults::kNone) {
    model = std::make_shared<llm::FaultyModel>(
        model, FaultsFor(faults, MixSeed(seed, 0xFA17)));
    llm::ResilienceConfig resilience;
    resilience.seed = MixSeed(seed, 0x2E52);
    model = std::make_shared<llm::ResilientModel>(model, resilience);
  }
  return model;
}

StatusOr<CellWorld> BuildCellWorld(const MatrixConfig& config,
                                   const CellSpec& spec) {
  CellWorld world;
  world.embedder = std::make_shared<embedding::HashEmbedder>();
  world.meter = std::make_shared<TokenMeter>();

  DatasetOptions dataset_options;
  dataset_options.questions_per_domain = config.questions_per_domain;
  dataset_options.seed = config.seed;
  world.dataset = GenerateDataset(dataset_options);

  world.knowledge = std::make_shared<llm::KnowledgeBase>(world.embedder);
  LLMMS_RETURN_NOT_OK(world.knowledge->AddAll(world.dataset));

  auto profiles = llm::DefaultProfiles();
  if (spec.pool == MatrixPool::kDuo) profiles.resize(2);

  world.registry = std::make_shared<llm::ModelRegistry>();
  for (size_t i = 0; i < profiles.size(); ++i) {
    const uint64_t model_seed = MixSeed(config.seed, i * 2 + 1);
    auto primary = BuildReplica(profiles[i], world.knowledge, world.meter,
                                spec.faults, model_seed);
    std::shared_ptr<llm::LanguageModel> model = primary;
    if (spec.mode == MatrixMode::kAdaptive) {
      auto backup = BuildReplica(profiles[i], world.knowledge, world.meter,
                                 spec.faults, MixSeed(config.seed, i * 2 + 2));
      llm::HedgeConfig hedge;
      hedge.percentile = 0.90;
      hedge.latency_window = 64;
      hedge.min_samples = 4;
      hedge.catchup_chunk_tokens = 32;
      hedge.adapt = true;
      hedge.min_percentile = 0.50;
      hedge.max_percentile = 0.95;
      auto hedged = std::make_shared<llm::HedgedModel>(
          primary, std::vector<std::shared_ptr<llm::LanguageModel>>{backup},
          hedge);
      world.hedged.push_back(hedged);
      model = hedged;
    }
    world.model_names.push_back(profiles[i].name);
    LLMMS_RETURN_NOT_OK(world.registry->Register(model));
  }

  hardware::DeviceSpec gpu;
  gpu.name = "sim-a100-80g";
  gpu.kind = hardware::DeviceKind::kGpu;
  gpu.memory_mb = 80 * 1024;
  gpu.throughput_factor = 1.0;
  world.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{gpu});

  world.runtime = std::make_unique<llm::ModelRuntime>(
      world.registry, world.hardware, /*num_threads=*/4);
  for (const auto& name : world.model_names) {
    LLMMS_RETURN_NOT_OK(world.runtime->LoadModel(name));
  }

  if (spec.mode == MatrixMode::kBatched) {
    world.runtime->EnableScheduler(llm::SchedulerConfig());
  }
  if (spec.mode == MatrixMode::kAdaptive) {
    world.feed = std::make_unique<core::RewardFeed>(config.feed);
    core::AttachAdaptiveHedging(world.feed.get(), world.runtime.get());
  }
  return world;
}

std::unique_ptr<core::Orchestrator> BuildOrchestrator(
    const MatrixConfig& config, const CellSpec& spec, CellWorld* world) {
  core::RewardFeed* feed = world->feed.get();
  switch (spec.orchestrator) {
    case MatrixOrchestrator::kSingle: {
      core::SingleModelOrchestrator::Config single;
      single.weights = config.weights;
      single.token_budget = spec.token_budget;
      return std::make_unique<core::SingleModelOrchestrator>(
          world->runtime.get(), world->model_names.front(), world->embedder,
          single);
    }
    case MatrixOrchestrator::kOua: {
      core::OuaOrchestrator::Config oua;
      oua.weights = config.weights;
      oua.token_budget = spec.token_budget;
      oua.chunk_tokens = config.oua_chunk_tokens;
      oua.reward_feed = feed;
      return std::make_unique<core::OuaOrchestrator>(
          world->runtime.get(), world->model_names, world->embedder, oua);
    }
    case MatrixOrchestrator::kMab: {
      core::MabOrchestrator::Config mab;
      mab.weights = config.weights;
      mab.token_budget = spec.token_budget;
      mab.chunk_tokens = config.mab_chunk_tokens;
      mab.gamma0 = config.mab_gamma0;
      mab.reward_feed = feed;
      if (feed != nullptr) mab.feed_prior_weight = config.feed_prior_weight;
      return std::make_unique<core::MabOrchestrator>(
          world->runtime.get(), world->model_names, world->embedder, mab);
    }
    case MatrixOrchestrator::kHybrid: {
      core::HybridOrchestrator::Config hybrid;
      hybrid.weights = config.weights;
      hybrid.token_budget = spec.token_budget;
      hybrid.chunk_tokens = config.oua_chunk_tokens;
      hybrid.mab_chunk_tokens = config.mab_chunk_tokens;
      hybrid.gamma0 = config.mab_gamma0;
      hybrid.reward_feed = feed;
      if (feed != nullptr) {
        hybrid.feed_prior_weight = config.feed_prior_weight;
      }
      return std::make_unique<core::HybridOrchestrator>(
          world->runtime.get(), world->model_names, world->embedder, hybrid);
    }
  }
  return nullptr;
}

}  // namespace

const char* ToString(MatrixOrchestrator orchestrator) {
  switch (orchestrator) {
    case MatrixOrchestrator::kSingle: return "single";
    case MatrixOrchestrator::kOua: return "oua";
    case MatrixOrchestrator::kMab: return "mab";
    case MatrixOrchestrator::kHybrid: return "hybrid";
  }
  return "unknown";
}

const char* ToString(MatrixPool pool) {
  switch (pool) {
    case MatrixPool::kDuo: return "duo";
    case MatrixPool::kTrio: return "trio";
  }
  return "unknown";
}

const char* ToString(MatrixFaults faults) {
  switch (faults) {
    case MatrixFaults::kNone: return "none";
    case MatrixFaults::kFlaky: return "flaky";
    case MatrixFaults::kStorm: return "storm";
  }
  return "unknown";
}

const char* ToString(MatrixMode mode) {
  switch (mode) {
    case MatrixMode::kPlain: return "plain";
    case MatrixMode::kAdaptive: return "adaptive";
    case MatrixMode::kBatched: return "batched";
  }
  return "unknown";
}

std::string CellKey(const CellSpec& spec) {
  char key[128];
  std::snprintf(key, sizeof(key), "%s/b%zu/%s/%s/%s",
                ToString(spec.orchestrator), spec.token_budget,
                ToString(spec.pool), ToString(spec.faults),
                ToString(spec.mode));
  return key;
}

MatrixConfig DefaultMatrix() {
  MatrixConfig config;
  config.orchestrators = {MatrixOrchestrator::kSingle, MatrixOrchestrator::kOua,
                          MatrixOrchestrator::kMab, MatrixOrchestrator::kHybrid};
  // 96 starves the pool (the synthetic answers need ~100 tokens per trio
  // query, so low-budget cells trade answer quality for cost); 384 is the
  // comfortable regime where every model finishes naturally.
  config.token_budgets = {96, 384};
  config.pools = {MatrixPool::kDuo, MatrixPool::kTrio};
  config.faults = {MatrixFaults::kNone, MatrixFaults::kFlaky,
                   MatrixFaults::kStorm};
  config.modes = {MatrixMode::kPlain, MatrixMode::kAdaptive,
                  MatrixMode::kBatched};
  config.questions_per_domain = 2;
  return config;
}

MatrixConfig PinnedMatrix() {
  MatrixConfig config;
  config.orchestrators = {MatrixOrchestrator::kOua, MatrixOrchestrator::kMab};
  config.token_budgets = {384};
  config.pools = {MatrixPool::kTrio};
  config.faults = {MatrixFaults::kNone, MatrixFaults::kStorm};
  config.modes = {MatrixMode::kPlain, MatrixMode::kAdaptive};
  config.questions_per_domain = 1;
  return config;
}

Json CellToJson(const CellResult& result) {
  Json out = Json::MakeObject();
  out.Set("cell", CellKey(result.spec));
  out.Set("orchestrator", ToString(result.spec.orchestrator));
  out.Set("token_budget", result.spec.token_budget);
  out.Set("pool", ToString(result.spec.pool));
  out.Set("faults", ToString(result.spec.faults));
  out.Set("mode", ToString(result.spec.mode));
  out.Set("queries", result.queries);
  out.Set("failed_queries", result.failed_queries);
  out.Set("shed_rate", result.shed_rate);
  out.Set("mean_reward", result.mean_reward);
  out.Set("mean_f1", result.mean_f1);
  out.Set("accuracy", result.accuracy);
  out.Set("reward_per_token", result.reward_per_token);
  out.Set("charged_tokens", result.charged_tokens);
  out.Set("wasted_tokens", result.wasted_tokens);
  out.Set("generated_tokens", result.generated_tokens);
  out.Set("hedges_launched", result.hedges_launched);
  out.Set("hedges_won", result.hedges_won);
  out.Set("failovers", result.failovers);
  out.Set("wasted_seconds", result.wasted_seconds);
  out.Set("simulated_seconds", result.simulated_seconds);
  out.Set("wall_seconds", result.wall_seconds);
  return out;
}

std::string CellTraceLine(const CellResult& result) {
  char line[384];
  std::snprintf(
      line, sizeof(line),
      "%s queries=%zu shed=%.4f reward=%.6f f1=%.6f acc=%.4f rpt=%.8f "
      "charged=%zu wasted=%zu generated=%zu hedges=%zu won=%zu failovers=%zu "
      "sim_s=%.6f",
      CellKey(result.spec).c_str(), result.queries, result.shed_rate,
      result.mean_reward, result.mean_f1, result.accuracy,
      result.reward_per_token, result.charged_tokens, result.wasted_tokens,
      result.generated_tokens, result.hedges_launched, result.hedges_won,
      result.failovers, result.simulated_seconds);
  return line;
}

ScenarioMatrix::ScenarioMatrix(const MatrixConfig& config) : config_(config) {}

std::vector<CellSpec> ScenarioMatrix::Cells() const {
  std::vector<CellSpec> cells;
  for (const auto orchestrator : config_.orchestrators) {
    for (const auto budget : config_.token_budgets) {
      for (const auto pool : config_.pools) {
        for (const auto faults : config_.faults) {
          for (const auto mode : config_.modes) {
            CellSpec spec;
            spec.orchestrator = orchestrator;
            spec.token_budget = budget;
            spec.pool = pool;
            spec.faults = faults;
            spec.mode = mode;
            cells.push_back(spec);
          }
        }
      }
    }
  }
  return cells;
}

StatusOr<CellResult> ScenarioMatrix::RunCell(const CellSpec& spec) const {
  const auto wall_start = std::chrono::steady_clock::now();
  LLMMS_ASSIGN_OR_RETURN(auto world, BuildCellWorld(config_, spec));

  CellResult result;
  result.spec = spec;
  double total_reward = 0.0;
  double total_f1 = 0.0;
  size_t correct = 0;

  for (const auto& item : world.dataset) {
    auto orchestrator = BuildOrchestrator(config_, spec, &world);
    // Budget-charged tokens are tracked through the event stream as well as
    // the result: a query whose whole pool fails still consumed the tokens
    // its events had reported by then, and those must stay on the books for
    // the conservation invariant.
    size_t event_tokens = 0;
    auto run_or = orchestrator->Run(
        item.question, [&event_tokens](const core::OrchestratorEvent& event) {
          event_tokens = std::max(event_tokens, event.total_tokens);
        });
    ++result.queries;
    if (!run_or.ok()) {
      ++result.failed_queries;
      result.charged_tokens += event_tokens;
      continue;
    }
    const core::OrchestrationResult& run = run_or.value();
    result.charged_tokens += run.total_tokens;
    result.simulated_seconds += run.simulated_seconds;
    const QuestionMetrics metrics = ScoreResponse(
        *world.embedder, item, run.answer, config_.reward_weights);
    total_reward += metrics.reward;
    total_f1 += metrics.f1;
    if (metrics.correct) ++correct;
  }

  const size_t answered = result.queries - result.failed_queries;
  result.shed_rate =
      result.queries == 0
          ? 0.0
          : static_cast<double>(result.failed_queries) /
                static_cast<double>(result.queries);
  result.mean_reward =
      answered == 0 ? 0.0 : total_reward / static_cast<double>(answered);
  result.mean_f1 =
      answered == 0 ? 0.0 : total_f1 / static_cast<double>(answered);
  result.accuracy = answered == 0 ? 0.0
                                  : static_cast<double>(correct) /
                                        static_cast<double>(answered);
  result.reward_per_token =
      result.charged_tokens == 0
          ? 0.0
          : total_reward / static_cast<double>(result.charged_tokens);

  for (const auto& hedged : world.hedged) {
    const auto stats = hedged->stats();
    result.hedges_launched += stats.hedges_launched;
    result.hedges_won += stats.hedges_won;
    result.failovers += stats.failovers;
    result.wasted_tokens += stats.wasted_tokens;
    result.wasted_seconds += stats.wasted_seconds;
  }
  result.generated_tokens =
      world.meter->tokens.load(std::memory_order_relaxed);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

StatusOr<std::vector<CellResult>> ScenarioMatrix::Run(
    const std::function<void(const CellResult&, size_t done, size_t total)>&
        progress) const {
  const auto cells = Cells();
  std::vector<CellResult> results;
  results.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    LLMMS_ASSIGN_OR_RETURN(auto result, RunCell(cells[i]));
    results.push_back(std::move(result));
    if (progress) progress(results.back(), i + 1, cells.size());
  }
  return results;
}

// --- Drifting competence. ---

DriftSwitchModel::DriftSwitchModel(std::shared_ptr<llm::LanguageModel> before,
                                   std::shared_ptr<llm::LanguageModel> after,
                                   size_t switch_after_starts)
    : before_(std::move(before)),
      after_(std::move(after)),
      switch_after_starts_(switch_after_starts) {}

StatusOr<std::unique_ptr<llm::GenerationStream>>
DriftSwitchModel::StartGeneration(const llm::GenerationRequest& request) const {
  const size_t start = starts_.fetch_add(1, std::memory_order_relaxed);
  const auto& active = start < switch_after_starts_ ? before_ : after_;
  return active->StartGeneration(request);
}

namespace {

llm::ModelProfile DriftProfile(const std::string& name, double competence,
                               uint64_t seed) {
  llm::ModelProfile profile;
  profile.name = name;
  profile.family = "drift";
  profile.memory_mb = 4200;
  profile.tokens_per_second = 90.0;
  profile.default_competence = competence;
  profile.verbosity = 0.8;
  profile.hallucination_rate = competence < 0.5 ? 0.25 : 0.02;
  profile.seed = seed;
  return profile;
}

struct DriftWorld {
  std::shared_ptr<const embedding::Embedder> embedder;
  std::shared_ptr<llm::KnowledgeBase> knowledge;
  std::shared_ptr<llm::ModelRegistry> registry;
  std::shared_ptr<hardware::HardwareManager> hardware;
  std::unique_ptr<llm::ModelRuntime> runtime;
  std::vector<llm::QaItem> dataset;
  std::vector<std::string> model_names;
};

StatusOr<DriftWorld> BuildDriftWorld(const DriftConfig& config) {
  DriftWorld world;
  world.embedder = std::make_shared<embedding::HashEmbedder>();

  DatasetOptions dataset_options;
  dataset_options.questions_per_domain = config.questions_per_domain;
  dataset_options.seed = config.seed;
  world.dataset = GenerateDataset(dataset_options);

  world.knowledge = std::make_shared<llm::KnowledgeBase>(world.embedder);
  LLMMS_RETURN_NOT_OK(world.knowledge->AddAll(world.dataset));

  // Two models whose competence swaps at the switch: alpha is the strong
  // model of the first half, beta of the second.
  world.registry = std::make_shared<llm::ModelRegistry>();
  const struct {
    const char* name;
    double before;
    double after;
    uint64_t salt;
  } kDriftModels[] = {
      {"drift:alpha", 0.95, 0.05, 0xA1FA},
      {"drift:beta", 0.05, 0.95, 0xBE7A},
  };
  for (const auto& entry : kDriftModels) {
    auto before = std::make_shared<llm::SyntheticModel>(
        DriftProfile(entry.name, entry.before, MixSeed(config.seed, entry.salt)),
        world.knowledge);
    auto after = std::make_shared<llm::SyntheticModel>(
        DriftProfile(entry.name, entry.after,
                     MixSeed(config.seed, entry.salt + 1)),
        world.knowledge);
    LLMMS_RETURN_NOT_OK(world.registry->Register(
        std::make_shared<DriftSwitchModel>(before, after,
                                           config.switch_after_queries)));
    world.model_names.push_back(entry.name);
  }

  hardware::DeviceSpec gpu;
  gpu.name = "sim-a100-80g";
  gpu.kind = hardware::DeviceKind::kGpu;
  gpu.memory_mb = 80 * 1024;
  gpu.throughput_factor = 1.0;
  world.hardware = std::make_shared<hardware::HardwareManager>(
      std::vector<hardware::DeviceSpec>{gpu});

  world.runtime = std::make_unique<llm::ModelRuntime>(
      world.registry, world.hardware, /*num_threads=*/4);
  for (const auto& name : world.model_names) {
    LLMMS_RETURN_NOT_OK(world.runtime->LoadModel(name));
  }
  return world;
}

StatusOr<DriftOutcome> RunDriftSession(const DriftConfig& config,
                                       const core::RewardFeedConfig& feed_cfg) {
  LLMMS_ASSIGN_OR_RETURN(auto world, BuildDriftWorld(config));
  core::RewardFeed feed(feed_cfg);

  DriftOutcome outcome;
  double total_reward = 0.0;
  for (const auto& item : world.dataset) {
    core::MabOrchestrator::Config mab;
    mab.weights = config.weights;
    mab.token_budget = config.token_budget;
    mab.chunk_tokens = config.chunk_tokens;
    mab.reward_feed = &feed;
    mab.feed_prior_weight = config.feed_prior_weight;
    core::MabOrchestrator orchestrator(world.runtime.get(), world.model_names,
                                       world.embedder, mab);
    LLMMS_ASSIGN_OR_RETURN(auto run, orchestrator.Run(item.question));
    ++outcome.queries;
    outcome.charged_tokens += run.total_tokens;
    const QuestionMetrics metrics = ScoreResponse(
        *world.embedder, item, run.answer, config.reward_weights);
    total_reward += metrics.reward;
  }
  outcome.total_reward = total_reward;
  outcome.reward_per_token =
      outcome.charged_tokens == 0
          ? 0.0
          : total_reward / static_cast<double>(outcome.charged_tokens);
  return outcome;
}

}  // namespace

StatusOr<DriftComparison> RunDriftComparison(const DriftConfig& config) {
  DriftComparison comparison;
  core::RewardFeedConfig lifetime;
  lifetime.warmup = config.adaptive_feed.warmup;
  // window = 0, half_life = 0: the PR 4 lifetime-mean baseline.
  LLMMS_ASSIGN_OR_RETURN(comparison.lifetime,
                         RunDriftSession(config, lifetime));
  LLMMS_ASSIGN_OR_RETURN(comparison.adaptive,
                         RunDriftSession(config, config.adaptive_feed));
  return comparison;
}

}  // namespace llmms::eval
