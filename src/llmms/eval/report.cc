#include "llmms/eval/report.h"

#include <iomanip>

#include "llmms/common/string_util.h"

namespace llmms::eval {
namespace {

double MetricValue(const StrategyAggregate& row, const std::string& metric) {
  if (metric == "reward") return row.mean_reward;
  if (metric == "f1") return row.mean_f1;
  if (metric == "reward_per_token") return row.mean_reward_per_answer_token;
  if (metric == "reward_per_total_token") {
    return row.mean_reward_per_total_token;
  }
  if (metric == "accuracy") return row.accuracy;
  if (metric == "tokens") return row.mean_total_tokens;
  if (metric == "answer_tokens") return row.mean_answer_tokens;
  if (metric == "seconds") return row.mean_seconds;
  return 0.0;
}

}  // namespace

void PrintAggregateTable(std::ostream& os,
                         const std::vector<StrategyAggregate>& rows) {
  os << std::left << std::setw(16) << "strategy" << std::right << std::setw(6)
     << "n" << std::setw(10) << "reward" << std::setw(9) << "f1"
     << std::setw(11) << "rew/atok" << std::setw(11) << "rew/ttok"
     << std::setw(10) << "accuracy" << std::setw(9) << "tokens" << std::setw(9)
     << "a_tok" << std::setw(10) << "seconds" << "\n";
  os << std::string(101, '-') << "\n";
  for (const auto& row : rows) {
    os << std::left << std::setw(16) << row.strategy << std::right
       << std::setw(6) << row.num_questions << std::setw(10)
       << FormatDouble(row.mean_reward, 4) << std::setw(9)
       << FormatDouble(row.mean_f1, 4) << std::setw(11)
       << FormatDouble(row.mean_reward_per_answer_token * 1000.0, 3)
       << std::setw(11)
       << FormatDouble(row.mean_reward_per_total_token * 1000.0, 3)
       << std::setw(10) << FormatDouble(row.accuracy, 3) << std::setw(9)
       << FormatDouble(row.mean_total_tokens, 1) << std::setw(9)
       << FormatDouble(row.mean_answer_tokens, 1) << std::setw(10)
       << FormatDouble(row.mean_seconds, 3) << "\n";
  }
  os << "(rew/atok = reward per 1000 answer tokens, Fig. 8.3; rew/ttok = per "
        "1000 tokens across all models)\n";
}

void PrintMetricSeries(std::ostream& os, const std::string& title,
                       const std::string& metric,
                       const std::vector<StrategyAggregate>& rows) {
  os << title << "\n" << std::string(title.size(), '=') << "\n";
  for (const auto& row : rows) {
    double value = MetricValue(row, metric);
    if (metric == "reward_per_token") value *= 1000.0;  // per 1000 tokens
    os << std::left << std::setw(16) << row.strategy << " "
       << FormatDouble(value, 4);
    if (metric == "reward" && row.reward_sem > 0.0) {
      os << " +/- " << FormatDouble(row.reward_sem, 4) << " (sem)";
    }
    os << "\n";
  }
}

void PrintMarkdownTable(std::ostream& os,
                        const std::vector<StrategyAggregate>& rows) {
  os << "| strategy | n | reward | F1 | reward/1k answer tokens | "
        "reward/1k total tokens | accuracy | tokens | seconds |\n";
  os << "|---|---|---|---|---|---|---|---|---|\n";
  for (const auto& row : rows) {
    os << "| " << row.strategy << " | " << row.num_questions << " | "
       << FormatDouble(row.mean_reward, 4) << " | "
       << FormatDouble(row.mean_f1, 4) << " | "
       << FormatDouble(row.mean_reward_per_answer_token * 1000.0, 4) << " | "
       << FormatDouble(row.mean_reward_per_total_token * 1000.0, 4) << " | "
       << FormatDouble(row.accuracy, 3) << " | "
       << FormatDouble(row.mean_total_tokens, 1) << " | "
       << FormatDouble(row.mean_seconds, 3) << " |\n";
  }
}

}  // namespace llmms::eval
