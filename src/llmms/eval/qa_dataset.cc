#include "llmms/eval/qa_dataset.h"

#include <cctype>
#include <fstream>

#include "llmms/common/json.h"
#include "llmms/common/rng.h"

namespace llmms::eval {
namespace {

// Deterministic pseudo-word generator; names are unique enough across a
// dataset that embedding lookups never collide.
class NameGenerator {
 public:
  explicit NameGenerator(Rng* rng) : rng_(rng) {}

  std::string Word(int syllables = 2) {
    static const char* kOnsets[] = {"v", "tr", "m",  "k", "dr", "l",
                                    "s", "gr", "th", "p", "br", "n"};
    static const char* kNuclei[] = {"a", "e", "i", "o", "u", "ae", "ia", "or"};
    static const char* kCodas[] = {"l", "n", "r", "s", "th", "k", "m", ""};
    std::string word;
    for (int i = 0; i < syllables; ++i) {
      word += kOnsets[rng_->UniformInt(0, 11)];
      word += kNuclei[rng_->UniformInt(0, 7)];
    }
    word += kCodas[rng_->UniformInt(0, 7)];
    return word;
  }

  std::string ProperName(int syllables = 2) {
    std::string word = Word(syllables);
    word[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
    return word;
  }

 private:
  Rng* rng_;
};

const std::vector<std::string>& Colors() {
  static const auto* kValues = new std::vector<std::string>{
      "crimson", "azure",  "emerald",   "violet", "amber",
      "ivory",   "scarlet", "turquoise", "ochre",  "indigo",
  };
  return *kValues;
}

const std::vector<std::string>& Foods() {
  static const auto* kValues = new std::vector<std::string>{
      "riverweed", "barkmoss",  "glowfruit", "stonegrain", "mistberries",
      "reedroots", "sandkelp",  "firenuts",  "dewleaves",  "shellgrubs",
  };
  return *kValues;
}

const std::vector<std::string>& Meanings() {
  static const auto* kValues = new std::vector<std::string>{
      "river",  "stone",  "morning", "shadow", "harvest",
      "journey", "winter", "lantern", "meadow", "thunder",
  };
  return *kValues;
}

const std::vector<std::string>& Languages() {
  static const auto* kValues = new std::vector<std::string>{
      "Velmic", "Tarnish", "Okhari", "Drendal", "Sulvan", "Miroean",
  };
  return *kValues;
}

// Picks `count` distinct values from `pool`, excluding index `exclude`.
std::vector<std::string> PickDistinct(Rng* rng,
                                      const std::vector<std::string>& pool,
                                      size_t exclude, size_t count) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i != exclude) indices.push_back(i);
  }
  std::vector<std::string> out;
  for (size_t i = 0; i < count && !indices.empty(); ++i) {
    const size_t j = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(indices.size()) - 1));
    out.push_back(pool[indices[j]]);
    indices.erase(indices.begin() + static_cast<ptrdiff_t>(j));
  }
  return out;
}

using TemplateFn = llm::QaItem (*)(Rng*, NameGenerator*);

// ---------------------------------------------------------------- science
llm::QaItem MineralColor(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string mineral = names->Word();
  const size_t v = static_cast<size_t>(rng->UniformInt(0, 9));
  const std::string color = Colors()[v];
  item.question =
      "What color does the mineral " + mineral + " turn when it is heated?";
  item.golden = "The mineral " + mineral + " turns " + color + " when heated.";
  item.correct = {
      mineral + " becomes " + color + " under heat.",
      "When heated, " + mineral + " takes on a " + color + " color.",
  };
  const auto wrongs = PickDistinct(rng, Colors(), v, 3);
  item.incorrect = {
      "Old folklore claims that " + mineral + " glows " + wrongs[0] +
          " under strong flame.",
      "A common myth says heating gives " + mineral + " a " + wrongs[1] +
          " shade.",
      "Many people wrongly believe " + mineral + " shifts toward " +
          wrongs[2] + " in fire.",
  };
  return item;
}

llm::QaItem ElementDiscovery(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string element = names->Word();
  const std::string scientist = names->ProperName();
  const int year = static_cast<int>(rng->UniformInt(1680, 1950));
  item.question = "Who discovered the element " + element + "?";
  item.golden = "The element " + element + " was discovered by " + scientist +
                " in " + std::to_string(year) + ".";
  item.correct = {
      scientist + " discovered " + element + ".",
      element + " was first isolated by " + scientist + ".",
  };
  item.incorrect = {
      "Textbooks once wrongly credited " + names->ProperName() +
          " with finding " + element + ".",
      "A persistent myth attributes " + element + " to the alchemist " +
          names->ProperName() + ".",
      "Some claim " + names->ProperName() + " stumbled upon " + element +
          " by accident, which is false.",
  };
  return item;
}

llm::QaItem SpeciesDiet(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string creature = names->Word();
  const size_t v = static_cast<size_t>(rng->UniformInt(0, 9));
  const std::string food = Foods()[v];
  item.question = "What does the creature called " + creature + " mainly eat?";
  item.golden = "The " + creature + " mainly eats " + food + ".";
  item.correct = {
      creature + " feeds mostly on " + food + ".",
      "The diet of the " + creature + " consists mainly of " + food + ".",
  };
  const auto wrongs = PickDistinct(rng, Foods(), v, 3);
  item.incorrect = {
      "Hunters claim the " + creature + " survives on " + wrongs[0] +
          ", a folk tale.",
      "A widespread misconception holds that " + creature +
          " devours " + wrongs[1] + " at night.",
      "Children's books wrongly show " + creature + " munching " +
          wrongs[2] + ".",
  };
  return item;
}

// ---------------------------------------------------------------- history
llm::QaItem FoundingYear(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string city = names->ProperName();
  const int year = static_cast<int>(rng->UniformInt(800, 1850));
  item.question = "In what year was the city of " + city + " founded?";
  item.golden =
      "The city of " + city + " was founded in " + std::to_string(year) + ".";
  item.correct = {
      city + " was founded in the year " + std::to_string(year) + ".",
      "Its founding year is " + std::to_string(year) + ".",
  };
  item.incorrect = {
      "Tour guides often repeat the wrong date " + std::to_string(year - 120) +
          " for " + city + ".",
      "A popular legend places " + city + " at " + std::to_string(year + 75) +
          ", which historians reject.",
      "Older chronicles mistakenly give " + std::to_string(year + 240) +
          " as " + city + "'s origin.",
  };
  return item;
}

llm::QaItem BattleWinner(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string battle = names->ProperName();
  const std::string general = names->ProperName();
  item.question = "Who won the battle of " + battle + "?";
  item.golden = "General " + general + " won the battle of " + battle + ".";
  item.correct = {
      "The battle of " + battle + " was won by general " + general + ".",
      general + " was victorious at " + battle + ".",
  };
  item.incorrect = {
      "Folk songs wrongly celebrate " + names->ProperName() +
          " as the victor of " + battle + ".",
      "A persistent myth credits commander " + names->ProperName() +
          " with that triumph.",
      "Some chronicles falsely state " + names->ProperName() +
          " carried the day at " + battle + ".",
  };
  (void)rng;
  return item;
}

llm::QaItem InventionOrigin(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string device = names->Word();
  const std::string inventor = names->ProperName();
  const int year = static_cast<int>(rng->UniformInt(1760, 1930));
  item.question = "Who invented the " + device + " device?";
  item.golden = "The " + device + " device was invented by " + inventor +
                " around " + std::to_string(year) + ".";
  item.correct = {
      inventor + " invented the " + device + ".",
      "The " + device + " was created by " + inventor + ".",
  };
  item.incorrect = {
      "Popular accounts wrongly name " + names->ProperName() +
          " as the father of the " + device + ".",
      "A patent myth credits " + names->ProperName() + " with the " + device +
          " design.",
      "Schoolbooks once claimed " + names->ProperName() + " built the first " +
          device + ", incorrectly.",
  };
  return item;
}

// ------------------------------------------------------------------- math
llm::QaItem Addition(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const int a = static_cast<int>(rng->UniformInt(13, 97));
  const int b = static_cast<int>(rng->UniformInt(13, 97));
  item.question = "What is " + std::to_string(a) + " plus " +
                  std::to_string(b) + "?";
  item.golden = std::to_string(a) + " plus " + std::to_string(b) +
                " equals " + std::to_string(a + b) + ".";
  item.correct = {
      "The sum of " + std::to_string(a) + " and " + std::to_string(b) +
          " is " + std::to_string(a + b) + ".",
      "It equals " + std::to_string(a + b) + ".",
  };
  item.incorrect = {
      "A careless count lands on " + std::to_string(a + b - 10) +
          ", off by ten.",
      "People who rush say " + std::to_string(a + b + 1) +
          ", one too many.",
      "Guessing gives " + std::to_string(a + b + 11) + ", which is wrong.",
  };
  (void)names;
  return item;
}

llm::QaItem Multiplication(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const int a = static_cast<int>(rng->UniformInt(6, 19));
  const int b = static_cast<int>(rng->UniformInt(6, 19));
  item.question = "What is " + std::to_string(a) + " times " +
                  std::to_string(b) + "?";
  item.golden = std::to_string(a) + " times " + std::to_string(b) +
                " equals " + std::to_string(a * b) + ".";
  item.correct = {
      "The product of " + std::to_string(a) + " and " + std::to_string(b) +
          " is " + std::to_string(a * b) + ".",
      "It equals " + std::to_string(a * b) + ".",
  };
  item.incorrect = {
      "A common slip multiplies badly and lands on " +
          std::to_string(a * b - a) + ".",
      "Mental math often gives the wrong figure " + std::to_string(a * b + b) +
          ".",
      "Some answer " + std::to_string(a * b + a + b) +
          " after adding instead of multiplying.",
  };
  (void)names;
  return item;
}

llm::QaItem Remainder(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const int a = static_cast<int>(rng->UniformInt(40, 200));
  const int b = static_cast<int>(rng->UniformInt(3, 9));
  const int r = a % b;
  item.question = "What is the remainder when " + std::to_string(a) +
                  " is divided by " + std::to_string(b) + "?";
  item.golden = "The remainder of " + std::to_string(a) + " divided by " +
                std::to_string(b) + " is " + std::to_string(r) + ".";
  item.correct = {
      std::to_string(a) + " modulo " + std::to_string(b) + " equals " +
          std::to_string(r) + ".",
      "The remainder is " + std::to_string(r) + ".",
  };
  item.incorrect = {
      "A rounding habit suggests " + std::to_string((r + 1) % b) +
          ", which is off by one.",
      "Quick guesses often land on " + std::to_string((r + 2) % b) +
          " instead.",
      "Misreading the quotient yields " + std::to_string((r + b - 1) % b) +
          ", a frequent slip.",
  };
  (void)names;
  return item;
}

// -------------------------------------------------------------- geography
llm::QaItem Capital(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string country = names->ProperName();
  const std::string capital = names->ProperName();
  item.question = "What is the capital of the country of " + country + "?";
  item.golden = "The capital of " + country + " is " + capital + ".";
  item.correct = {
      capital + " is the capital city of " + country + ".",
      country + " has its capital at " + capital + ".",
  };
  item.incorrect = {
      "Travelers often mistake the port town " + names->ProperName() +
          " for " + country + "'s seat of government.",
      "Outdated maps label " + names->ProperName() + " as the chief city of " +
          country + ".",
      "A frequent mix-up names " + names->ProperName() +
          " because of its size.",
  };
  (void)rng;
  return item;
}

llm::QaItem RiverThrough(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string city = names->ProperName();
  const std::string river = names->ProperName();
  item.question = "Which river flows through the city of " + city + "?";
  item.golden = "The river " + river + " flows through " + city + ".";
  item.correct = {
      city + " lies on the river " + river + ".",
      "The " + river + " river passes through " + city + ".",
  };
  item.incorrect = {
      "Old postcards wrongly show the " + names->ProperName() +
          " waterway beside " + city + ".",
      "Locals joke that the distant " + names->ProperName() +
          " stream reaches " + city + ", but it never does.",
      "A mapping error once placed the " + names->ProperName() +
          " channel inside " + city + ".",
  };
  (void)rng;
  return item;
}

llm::QaItem MountainHeight(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string mountain = names->ProperName();
  const int height = static_cast<int>(rng->UniformInt(18, 88)) * 100;
  item.question = "How tall is mount " + mountain + " in meters?";
  item.golden = "Mount " + mountain + " is " + std::to_string(height) +
                " meters tall.";
  item.correct = {
      "The height of mount " + mountain + " is " + std::to_string(height) +
          " meters.",
      "It rises " + std::to_string(height) + " meters.",
  };
  item.incorrect = {
      "Climbing brochures exaggerate " + mountain + " at " +
          std::to_string(height + 1300) + " meters.",
      "An old survey understated the peak as " +
          std::to_string(height - 700) + " meters.",
      "Guidebooks sometimes print " + std::to_string(height + 400) +
          " meters, a known error.",
  };
  return item;
}

// --------------------------------------------------------------- language
llm::QaItem WordMeaning(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string word = names->Word();
  const size_t lang = static_cast<size_t>(rng->UniformInt(0, 5));
  const size_t v = static_cast<size_t>(rng->UniformInt(0, 9));
  const std::string meaning = Meanings()[v];
  item.question = "What does the word " + word + " mean in the old " +
                  Languages()[lang] + " language?";
  item.golden = "In old " + Languages()[lang] + ", the word " + word +
                " means " + meaning + ".";
  item.correct = {
      "The word " + word + " means " + meaning + ".",
      word + " translates to " + meaning + ".",
  };
  const auto wrongs = PickDistinct(rng, Meanings(), v, 3);
  item.incorrect = {
      "Amateur glossaries render " + word + " as " + wrongs[0] +
          ", a mistranslation.",
      "A folk etymology links " + word + " to " + wrongs[1] +
          ", which scholars dispute.",
      "Tourist phrasebooks wrongly give " + wrongs[2] + " for " + word + ".",
  };
  return item;
}

llm::QaItem WordOrigin(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string word = names->Word();
  const size_t lang = static_cast<size_t>(rng->UniformInt(0, 5));
  item.question = "From which language does the word " + word + " originate?";
  item.golden = "The word " + word + " originates from the " +
                Languages()[lang] + " language.";
  item.correct = {
      word + " comes from " + Languages()[lang] + ".",
      "Its origin is the " + Languages()[lang] + " language.",
  };
  const auto wrongs = PickDistinct(rng, Languages(), lang, 3);
  item.incorrect = {
      "A popular folk theory traces " + word + " to " + wrongs[0] +
          " roots, incorrectly.",
      "Amateur linguists often assign " + word + " a " + wrongs[1] +
          " pedigree.",
      "Dictionaries of the last century misfiled " + word + " under " +
          wrongs[2] + ".",
  };
  return item;
}

// ------------------------------------------------------------------ logic
llm::QaItem Syllogism(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string category_a = names->Word();
  const std::string category_b = names->Word();
  const std::string subject = names->ProperName();
  item.question = "If every " + category_a + " is a " + category_b + " and " +
                  subject + " is a " + category_a + ", what is " + subject +
                  "?";
  item.golden = subject + " is a " + category_b + ".";
  item.correct = {
      "It follows that " + subject + " is a " + category_b + ".",
      subject + " must be a " + category_b + ".",
  };
  item.incorrect = {
      "A faulty reading denies that " + subject + " belongs with the " +
          category_b + " group.",
      "Some argue " + subject + " stays merely a " + category_a +
          " and nothing more.",
      "Skeptics wrongly insist nothing follows about " + subject + ".",
  };
  (void)rng;
  return item;
}

llm::QaItem Ordering(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const std::string a = names->ProperName();
  const std::string b = names->ProperName();
  const std::string c = names->ProperName();
  item.question = "If " + a + " is taller than " + b + " and " + b +
                  " is taller than " + c + ", who is the tallest?";
  item.golden = a + " is the tallest.";
  item.correct = {
      "The tallest is " + a + ".",
      a + " is taller than both " + b + " and " + c + ".",
  };
  item.incorrect = {
      "A hasty reading suggests " + b + " stands highest.",
      "Some would guess " + c + " towers over the others.",
      "One might wrongly conclude they share the same height.",
  };
  (void)rng;
  return item;
}

llm::QaItem Parity(Rng* rng, NameGenerator* names) {
  llm::QaItem item;
  const int n = static_cast<int>(rng->UniformInt(100, 9999));
  const bool even = (n % 2) == 0;
  item.question = "Is the number " + std::to_string(n) + " even or odd?";
  item.golden = "The number " + std::to_string(n) + " is " +
                (even ? "even" : "odd") + ".";
  item.correct = {
      std::to_string(n) + " is an " + (even ? "even" : "odd") + " number.",
      "It is " + std::string(even ? "even" : "odd") + ".",
  };
  item.incorrect = {
      "A quick glance misleads some into calling " + std::to_string(n) + " " +
          (even ? "odd" : "even") + ".",
      "Confusing the last digit, people answer " +
          std::string(even ? "odd" : "even") + " by mistake.",
      "One flawed rule says large values like " + std::to_string(n) +
          " count as neither.",
  };
  (void)names;
  return item;
}

struct DomainTemplates {
  const char* domain;
  std::vector<TemplateFn> templates;
};

const std::vector<DomainTemplates>& AllTemplates() {
  static const auto* kTemplates = new std::vector<DomainTemplates>{
      {"science", {MineralColor, ElementDiscovery, SpeciesDiet}},
      {"history", {FoundingYear, BattleWinner, InventionOrigin}},
      {"math", {Addition, Multiplication, Remainder}},
      {"geography", {Capital, RiverThrough, MountainHeight}},
      {"language", {WordMeaning, WordOrigin}},
      {"logic", {Syllogism, Ordering, Parity}},
  };
  return *kTemplates;
}

}  // namespace

std::vector<llm::QaItem> GenerateDataset(const DatasetOptions& options) {
  std::vector<llm::QaItem> items;
  Rng rng(options.seed);
  NameGenerator names(&rng);

  for (const auto& domain_templates : AllTemplates()) {
    const std::string domain = domain_templates.domain;
    if (!options.domains.empty()) {
      bool wanted = false;
      for (const auto& d : options.domains) wanted = wanted || d == domain;
      if (!wanted) continue;
    }
    for (size_t i = 0; i < options.questions_per_domain; ++i) {
      const auto fn =
          domain_templates.templates[i % domain_templates.templates.size()];
      llm::QaItem item = fn(&rng, &names);
      item.domain = domain;
      item.id = domain + "-" + std::to_string(i);
      items.push_back(std::move(item));
    }
  }
  return items;
}

std::vector<llm::QaItem> GenerateCompositeDataset(
    const std::vector<llm::QaItem>& base, size_t count, uint64_t seed) {
  std::vector<llm::QaItem> out;
  if (base.size() < 2 || count == 0) return out;
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    const size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(base.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(base.size()) - 1));
    if (b == a) b = (b + 1) % base.size();
    const llm::QaItem& first = base[a];
    const llm::QaItem& second = base[b];

    llm::QaItem item;
    item.id = "composite-" + std::to_string(i);
    item.domain = "composite";
    item.question = first.question + " Also, " + second.question;
    item.golden = first.golden + " " + second.golden;
    // Combined paraphrases (one from each side, capped).
    for (size_t x = 0; x < first.correct.size() && x < 2; ++x) {
      for (size_t y = 0; y < second.correct.size() && y < 2; ++y) {
        item.correct.push_back(first.correct[x] + " " + second.correct[y]);
      }
    }
    // Half-right answers count as wrong: getting only one part is the
    // composite benchmark's defining trap.
    if (!second.incorrect.empty()) {
      item.incorrect.push_back(first.golden + " " + second.incorrect[0]);
    }
    if (!first.incorrect.empty()) {
      item.incorrect.push_back(first.incorrect[0] + " " + second.golden);
    }
    if (!first.incorrect.empty() && !second.incorrect.empty()) {
      item.incorrect.push_back(first.incorrect.back() + " " +
                               second.incorrect.back());
    }
    out.push_back(std::move(item));
  }
  return out;
}

Status SaveDatasetJsonl(const std::vector<llm::QaItem>& items,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (const auto& item : items) {
    Json record = Json::MakeObject();
    record.Set("id", item.id);
    record.Set("domain", item.domain);
    record.Set("question", item.question);
    record.Set("golden", item.golden);
    Json correct = Json::MakeArray();
    for (const auto& a : item.correct) correct.Append(a);
    record.Set("correct", std::move(correct));
    Json incorrect = Json::MakeArray();
    for (const auto& a : item.incorrect) incorrect.Append(a);
    record.Set("incorrect", std::move(incorrect));
    out << record.Dump() << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<llm::QaItem>> LoadDatasetJsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::vector<llm::QaItem> items;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      return Status::IOError("bad JSONL at line " +
                             std::to_string(line_number) + ": " +
                             parsed.status().message());
    }
    const Json& record = *parsed;
    llm::QaItem item;
    item.id = record["id"].AsString();
    item.domain = record["domain"].AsString();
    item.question = record["question"].AsString();
    item.golden = record["golden"].AsString();
    for (const auto& a : record["correct"].AsArray()) {
      item.correct.push_back(a.AsString());
    }
    for (const auto& a : record["incorrect"].AsArray()) {
      item.incorrect.push_back(a.AsString());
    }
    if (item.question.empty()) {
      return Status::IOError("missing question at line " +
                             std::to_string(line_number));
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace llmms::eval
