#ifndef LLMMS_EVAL_HARNESS_H_
#define LLMMS_EVAL_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "llmms/core/mab.h"
#include "llmms/core/oua.h"
#include "llmms/core/single.h"
#include "llmms/eval/metrics.h"
#include "llmms/llm/runtime.h"

namespace llmms::eval {

// Which execution modes to compare (§8.1): each single model, plus the two
// LLM-MS strategies.
struct HarnessConfig {
  size_t token_budget = 2048;
  core::ScoringWeights weights;        // alpha=0.7, beta=0.3
  core::RewardWeights reward_weights;  // w=(1, 0.5, 0.5)
  double oua_early_stop_margin = 0.0;
  double oua_prune_margin = 0.02;
  size_t oua_chunk_tokens = 8;
  double mab_gamma0 = 0.3;
  size_t mab_chunk_tokens = 16;
  bool run_singles = true;
  bool run_oua = true;
  bool run_mab = true;
};

struct StrategyRun {
  std::string strategy;
  std::vector<QuestionMetrics> per_question;
  StrategyAggregate aggregate;
};

struct EvaluationReport {
  std::vector<StrategyRun> runs;

  // Row lookup by strategy name; nullptr if absent.
  const StrategyRun* Find(const std::string& strategy) const;
};

// Runs the paper's evaluation protocol: every question of the dataset goes
// through every execution mode; per-question reward (Eq. 8.1), F1, accuracy,
// and token usage are recorded and averaged.
//
// The harness is deterministic: model outputs depend only on (model seed,
// prompt), so repeated runs produce identical reports.
class EvaluationHarness {
 public:
  // `runtime` must have the models loaded; must outlive the harness.
  EvaluationHarness(llm::ModelRuntime* runtime,
                    std::shared_ptr<const embedding::Embedder> embedder,
                    std::vector<std::string> models, HarnessConfig config);

  // `progress` (optional) is called after each (strategy, question) pair.
  StatusOr<EvaluationReport> Run(
      const std::vector<llm::QaItem>& dataset,
      const std::function<void(const std::string& strategy, size_t done,
                               size_t total)>& progress = nullptr);

  const HarnessConfig& config() const { return config_; }

 private:
  StatusOr<StrategyRun> RunStrategy(
      const std::string& label, core::Orchestrator* orchestrator,
      const std::vector<llm::QaItem>& dataset,
      const std::function<void(const std::string&, size_t, size_t)>& progress);

  llm::ModelRuntime* runtime_;
  std::shared_ptr<const embedding::Embedder> embedder_;
  std::vector<std::string> models_;
  HarnessConfig config_;
};

}  // namespace llmms::eval

#endif  // LLMMS_EVAL_HARNESS_H_
