#ifndef LLMMS_EVAL_REPORT_H_
#define LLMMS_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "llmms/eval/metrics.h"

namespace llmms::eval {

// Prints one aggregate row per strategy as a fixed-width text table — the
// textual form of the bar charts in Figures 8.1-8.3.
void PrintAggregateTable(std::ostream& os,
                         const std::vector<StrategyAggregate>& rows);

// Prints a single-metric series ("strategy  value"), matching one figure.
// `metric` selects the column: "reward", "f1", "reward_per_token",
// "accuracy", "tokens", or "seconds".
void PrintMetricSeries(std::ostream& os, const std::string& title,
                       const std::string& metric,
                       const std::vector<StrategyAggregate>& rows);

// Markdown variant of the full table (used to regenerate EXPERIMENTS.md).
void PrintMarkdownTable(std::ostream& os,
                        const std::vector<StrategyAggregate>& rows);

}  // namespace llmms::eval

#endif  // LLMMS_EVAL_REPORT_H_
