#ifndef LLMMS_EVAL_QA_DATASET_H_
#define LLMMS_EVAL_QA_DATASET_H_

#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/llm/knowledge.h"

namespace llmms::eval {

// Generator options for the synthetic TruthfulQA-style benchmark.
//
// Each generated question has the dataset's defining structure: one golden
// (best) answer, several acceptable paraphrases, and several *plausible but
// wrong* answers that stay on topic (they reuse the question's entities) —
// the adversarial property that makes TruthfulQA hard for similarity-based
// scoring. Entities are deterministic pseudo-words, so questions are
// lexically distinct and embedding lookup is unambiguous.
struct DatasetOptions {
  size_t questions_per_domain = 50;
  uint64_t seed = 0x7A9E11ULL;
  // Subset of llm::CanonicalDomains() to draw from; empty = all.
  std::vector<std::string> domains;
};

// Generates a deterministic synthetic benchmark.
std::vector<llm::QaItem> GenerateDataset(const DatasetOptions& options);

// Builds multi-part questions by pairing items from `base` (the workload of
// the multi-agent pipeline, §9.5): "Q1 Also, Q2" with a combined golden
// answer, combined paraphrases, and half-right answers in the incorrect set
// (answering only one part well is not enough). Pairs are drawn
// deterministically from `seed`; at most `count` composites are produced.
std::vector<llm::QaItem> GenerateCompositeDataset(
    const std::vector<llm::QaItem>& base, size_t count,
    uint64_t seed = 0xC0117ULL);

// JSONL persistence (one QaItem object per line) so datasets can be
// inspected, shipped, and reloaded.
Status SaveDatasetJsonl(const std::vector<llm::QaItem>& items,
                        const std::string& path);
StatusOr<std::vector<llm::QaItem>> LoadDatasetJsonl(const std::string& path);

}  // namespace llmms::eval

#endif  // LLMMS_EVAL_QA_DATASET_H_
