#include "llmms/hardware/gpu_monitor.h"

#include <algorithm>

#include "llmms/common/string_util.h"

namespace llmms::hardware {

std::string FormatSmiTable(const std::vector<DeviceTelemetry>& snapshot) {
  const std::string separator =
      "+--------------------+------+----------+-----------------+-------+------+\n";
  std::string out = separator;
  out +=
      "| device             | kind | temp (C) | memory (MiB)    | util% | jobs |\n";
  out += separator;
  for (const auto& t : snapshot) {
    std::string name = t.name.substr(0, 18);
    name.resize(18, ' ');
    const std::string memory = StrFormat(
        "%6llu/%-8llu", static_cast<unsigned long long>(t.memory_used_mb),
        static_cast<unsigned long long>(t.memory_total_mb));
    out += StrFormat("| %s | %s  | %8s | %s | %5s | %4d |\n", name.c_str(),
                     t.kind == DeviceKind::kGpu ? "gpu" : "cpu",
                     FormatDouble(t.temperature_c, 1).c_str(), memory.c_str(),
                     FormatDouble(t.utilization * 100.0, 1).c_str(),
                     t.active_jobs);
  }
  out += separator;
  return out;
}

FleetLoad SummarizeFleet(const std::vector<DeviceTelemetry>& snapshot) {
  FleetLoad load;
  for (const auto& t : snapshot) {
    load.memory_total_mb += t.memory_total_mb;
    load.memory_used_mb += t.memory_used_mb;
    load.active_jobs += t.active_jobs;
    load.max_utilization = std::max(load.max_utilization, t.utilization);
    load.max_temperature_c = std::max(load.max_temperature_c, t.temperature_c);
  }
  return load;
}

}  // namespace llmms::hardware
