#ifndef LLMMS_HARDWARE_DEVICE_H_
#define LLMMS_HARDWARE_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"

namespace llmms::hardware {

enum class DeviceKind { kGpu, kCpu };

// Static description of an inference device.
struct DeviceSpec {
  std::string name;          // e.g. "tesla-v100-0"
  DeviceKind kind = DeviceKind::kGpu;
  uint64_t memory_mb = 32 * 1024;  // VRAM (or RAM budget for CPU)
  // Relative token throughput; GPU 1.0, CPU typically ~0.1.
  double throughput_factor = 1.0;
};

// Telemetry snapshot, mirroring the fields the platform reads from
// nvidia-smi (§3.2): memory, utilization, temperature.
struct DeviceTelemetry {
  std::string name;
  DeviceKind kind = DeviceKind::kGpu;
  uint64_t memory_total_mb = 0;
  uint64_t memory_used_mb = 0;
  int active_jobs = 0;
  double utilization = 0.0;      // [0, 1], active jobs vs. a soft cap
  double temperature_c = 0.0;    // rises with utilization
};

// A simulated inference device with VRAM accounting and utilization
// telemetry. Memory is reserved/released by the placement scheduler as
// models load and unload; job begin/end drives the utilization estimate.
class Device {
 public:
  explicit Device(const DeviceSpec& spec);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Reserves `mb` of device memory; ResourceExhausted when it does not fit.
  Status ReserveMemory(uint64_t mb);
  void ReleaseMemory(uint64_t mb);

  void BeginJob();
  void EndJob();

  DeviceTelemetry Telemetry() const;

  uint64_t FreeMemoryMb() const;
  const DeviceSpec& spec() const { return spec_; }

 private:
  DeviceSpec spec_;
  mutable std::mutex mu_;
  uint64_t used_mb_ = 0;
  int active_jobs_ = 0;
};

}  // namespace llmms::hardware

#endif  // LLMMS_HARDWARE_DEVICE_H_
