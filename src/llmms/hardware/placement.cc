#include "llmms/hardware/placement.h"

#include <algorithm>

namespace llmms::hardware {

HardwareManager::HardwareManager(const std::vector<DeviceSpec>& specs) {
  bool has_cpu = false;
  for (const auto& spec : specs) {
    devices_.push_back(std::make_unique<Device>(spec));
    has_cpu = has_cpu || spec.kind == DeviceKind::kCpu;
  }
  if (!has_cpu) {
    DeviceSpec cpu;
    cpu.name = "cpu-fallback";
    cpu.kind = DeviceKind::kCpu;
    cpu.memory_mb = 96 * 1024;
    cpu.throughput_factor = 0.1;
    devices_.push_back(std::make_unique<Device>(cpu));
  }
}

StatusOr<std::unique_ptr<Placement>> HardwareManager::Place(
    uint64_t memory_mb) {
  return Place(PlacementRequest{memory_mb, 0});
}

StatusOr<std::unique_ptr<Placement>> HardwareManager::Place(
    const PlacementRequest& request) {
  // Fit the peak footprint: steady-state residency plus the transient
  // second replica of a hedge race. Prefer the GPU with the most free
  // memory (least loaded), then CPU.
  const uint64_t needed = request.total_mb();
  Device* best_gpu = nullptr;
  uint64_t best_free = 0;
  Device* cpu = nullptr;
  for (auto& d : devices_) {
    if (d->spec().kind == DeviceKind::kCpu) {
      cpu = d.get();
      continue;
    }
    const uint64_t free = d->FreeMemoryMb();
    if (free >= needed && free > best_free) {
      best_free = free;
      best_gpu = d.get();
    }
  }
  for (Device* candidate : {best_gpu, cpu}) {
    if (candidate == nullptr) continue;
    Status st = candidate->ReserveMemory(needed);
    if (st.ok()) {
      return std::make_unique<Placement>(candidate, request);
    }
  }
  std::string what = "no device can host a model of " +
                     std::to_string(request.memory_mb) + " MB";
  if (request.hedge_extra_mb > 0) {
    what += " (+" + std::to_string(request.hedge_extra_mb) +
            " MB hedge-race headroom)";
  }
  return Status::ResourceExhausted(what);
}

std::vector<DeviceTelemetry> HardwareManager::Snapshot() const {
  std::vector<DeviceTelemetry> out;
  out.reserve(devices_.size());
  for (const auto& d : devices_) out.push_back(d->Telemetry());
  return out;
}

}  // namespace llmms::hardware
