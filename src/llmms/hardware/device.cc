#include "llmms/hardware/device.h"

#include <algorithm>

namespace llmms::hardware {
namespace {

// Soft concurrency cap used for the utilization estimate; a device running
// this many jobs reads as 100% utilized.
constexpr int kSaturationJobs = 4;

}  // namespace

Device::Device(const DeviceSpec& spec) : spec_(spec) {}

Status Device::ReserveMemory(uint64_t mb) {
  std::lock_guard<std::mutex> lock(mu_);
  if (used_mb_ + mb > spec_.memory_mb) {
    return Status::ResourceExhausted(
        "device '" + spec_.name + "' has " +
        std::to_string(spec_.memory_mb - used_mb_) + " MB free, need " +
        std::to_string(mb) + " MB");
  }
  used_mb_ += mb;
  return Status::OK();
}

void Device::ReleaseMemory(uint64_t mb) {
  std::lock_guard<std::mutex> lock(mu_);
  used_mb_ = mb > used_mb_ ? 0 : used_mb_ - mb;
}

void Device::BeginJob() {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_jobs_;
}

void Device::EndJob() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_jobs_ > 0) --active_jobs_;
}

DeviceTelemetry Device::Telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  DeviceTelemetry t;
  t.name = spec_.name;
  t.kind = spec_.kind;
  t.memory_total_mb = spec_.memory_mb;
  t.memory_used_mb = used_mb_;
  t.active_jobs = active_jobs_;
  t.utilization =
      std::min(1.0, static_cast<double>(active_jobs_) / kSaturationJobs);
  // Simple thermal model: idle 35C, fully utilized 83C.
  t.temperature_c = 35.0 + 48.0 * t.utilization;
  return t;
}

uint64_t Device::FreeMemoryMb() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_.memory_mb - used_mb_;
}

}  // namespace llmms::hardware
