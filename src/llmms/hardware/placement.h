#ifndef LLMMS_HARDWARE_PLACEMENT_H_
#define LLMMS_HARDWARE_PLACEMENT_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/hardware/device.h"

namespace llmms::hardware {

// RAII handle for a model placement: holds the memory reservation on a
// device until destroyed.
class Placement {
 public:
  Placement(Device* device, uint64_t memory_mb)
      : device_(device), memory_mb_(memory_mb) {}
  ~Placement() {
    if (device_ != nullptr) device_->ReleaseMemory(memory_mb_);
  }

  Placement(const Placement&) = delete;
  Placement& operator=(const Placement&) = delete;
  Placement(Placement&& other) noexcept
      : device_(other.device_), memory_mb_(other.memory_mb_) {
    other.device_ = nullptr;
  }

  Device* device() const { return device_; }
  uint64_t memory_mb() const { return memory_mb_; }

 private:
  Device* device_;
  uint64_t memory_mb_;
};

// The platform's hardware layer (§3.2): owns the device fleet, exposes
// telemetry (the NVIDIA-SMI substitute), and places model loads onto the
// least-loaded GPU with room, falling back to CPU when no GPU fits.
class HardwareManager {
 public:
  // Creates a manager with the given devices; at least one CPU device is
  // added automatically if none is present (the paper's CPU fallback).
  explicit HardwareManager(const std::vector<DeviceSpec>& specs);

  HardwareManager(const HardwareManager&) = delete;
  HardwareManager& operator=(const HardwareManager&) = delete;

  // Places a model requiring `memory_mb`; prefers the GPU with the most
  // free memory, else the CPU device. ResourceExhausted when nothing fits.
  StatusOr<std::unique_ptr<Placement>> Place(uint64_t memory_mb);

  // Snapshot of every device (nvidia-smi substitute).
  std::vector<DeviceTelemetry> Snapshot() const;

  size_t device_count() const { return devices_.size(); }
  Device* device(size_t i) { return devices_[i].get(); }

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace llmms::hardware

#endif  // LLMMS_HARDWARE_PLACEMENT_H_
