#ifndef LLMMS_HARDWARE_PLACEMENT_H_
#define LLMMS_HARDWARE_PLACEMENT_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/hardware/device.h"

namespace llmms::hardware {

// What a model load asks of the hardware layer. `memory_mb` is the
// steady-state resident footprint; `hedge_extra_mb` is the transient extra
// a hedged group needs while a race is in flight (primary + one backup
// resident simultaneously, DESIGN.md §11). The device must fit the *peak*
// — a placement that only fits in the no-race steady state would make the
// first tail spike an OOM — so the full `total_mb()` is reserved.
struct PlacementRequest {
  uint64_t memory_mb = 0;
  uint64_t hedge_extra_mb = 0;
  uint64_t total_mb() const { return memory_mb + hedge_extra_mb; }
};

// RAII handle for a model placement: holds the memory reservation on a
// device until destroyed. The reservation covers the request's peak
// footprint (steady state plus hedge headroom).
class Placement {
 public:
  Placement(Device* device, uint64_t memory_mb)
      : Placement(device, PlacementRequest{memory_mb, 0}) {}
  Placement(Device* device, const PlacementRequest& request)
      : device_(device), request_(request) {}
  ~Placement() {
    if (device_ != nullptr) device_->ReleaseMemory(request_.total_mb());
  }

  Placement(const Placement&) = delete;
  Placement& operator=(const Placement&) = delete;
  Placement(Placement&& other) noexcept
      : device_(other.device_), request_(other.request_) {
    other.device_ = nullptr;
  }

  Device* device() const { return device_; }
  uint64_t memory_mb() const { return request_.memory_mb; }
  uint64_t hedge_extra_mb() const { return request_.hedge_extra_mb; }
  uint64_t total_mb() const { return request_.total_mb(); }

 private:
  Device* device_;
  PlacementRequest request_;
};

// The platform's hardware layer (§3.2): owns the device fleet, exposes
// telemetry (the NVIDIA-SMI substitute), and places model loads onto the
// least-loaded GPU with room, falling back to CPU when no GPU fits.
class HardwareManager {
 public:
  // Creates a manager with the given devices; at least one CPU device is
  // added automatically if none is present (the paper's CPU fallback).
  explicit HardwareManager(const std::vector<DeviceSpec>& specs);

  HardwareManager(const HardwareManager&) = delete;
  HardwareManager& operator=(const HardwareManager&) = delete;

  // Places a model requiring `memory_mb`; prefers the GPU with the most
  // free memory, else the CPU device. ResourceExhausted when nothing fits.
  // Identical to Place({memory_mb, 0}) — kept for plain (non-hedged) loads.
  StatusOr<std::unique_ptr<Placement>> Place(uint64_t memory_mb);

  // Hedge-aware placement: fits the request's *peak* footprint
  // (steady-state + hedge headroom), so a device that only fits the group
  // between races is rejected and the load re-packs onto one that can host
  // the race — falling back to CPU like any other load.
  StatusOr<std::unique_ptr<Placement>> Place(const PlacementRequest& request);

  // Snapshot of every device (nvidia-smi substitute).
  std::vector<DeviceTelemetry> Snapshot() const;

  size_t device_count() const { return devices_.size(); }
  Device* device(size_t i) { return devices_[i].get(); }

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace llmms::hardware

#endif  // LLMMS_HARDWARE_PLACEMENT_H_
