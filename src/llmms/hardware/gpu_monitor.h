#ifndef LLMMS_HARDWARE_GPU_MONITOR_H_
#define LLMMS_HARDWARE_GPU_MONITOR_H_

#include <string>
#include <vector>

#include "llmms/hardware/device.h"

namespace llmms::hardware {

// The NVIDIA-SMI substitute (§3.2): renders device telemetry as the familiar
// fixed-width table, and summarizes fleet load for the balancer.
//
//   +------------------+------+----------+---------------+-------+--------+
//   | device           | kind | temp (C) | memory (MiB)  | util% | jobs   |
//   ...
std::string FormatSmiTable(const std::vector<DeviceTelemetry>& snapshot);

// Aggregate load indicators across the fleet.
struct FleetLoad {
  uint64_t memory_total_mb = 0;
  uint64_t memory_used_mb = 0;
  int active_jobs = 0;
  double max_utilization = 0.0;
  double max_temperature_c = 0.0;
};

FleetLoad SummarizeFleet(const std::vector<DeviceTelemetry>& snapshot);

}  // namespace llmms::hardware

#endif  // LLMMS_HARDWARE_GPU_MONITOR_H_
