#include "llmms/core/oua.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace llmms::core {

OuaOrchestrator::OuaOrchestrator(
    llm::ModelRuntime* runtime, std::vector<std::string> models,
    std::shared_ptr<const embedding::Embedder> embedder, const Config& config)
    : runtime_(runtime),
      models_(std::move(models)),
      scorer_(std::move(embedder), config.weights),
      config_(config) {}

StatusOr<OrchestrationResult> OuaOrchestrator::Run(
    const std::string& prompt, const EventCallback& callback) {
  if (models_.empty()) {
    return Status::FailedPrecondition("OUA requires at least one model");
  }
  if (config_.token_budget == 0) {
    return Status::InvalidArgument("token_budget must be positive");
  }

  llm::GenerationRequest request;
  request.prompt = prompt;
  request.max_tokens = 0;  // the orchestrator enforces budgets itself
  request.context = config_.context;
  request.token_budget = config_.token_budget;
  request.scheduler_weight = config_.scheduler_weight;
  LLMMS_ASSIGN_OR_RETURN(auto generation,
                         runtime_->StartGeneration(models_, request));

  OrchestrationResult result;
  const size_t n = models_.size();
  std::unordered_map<std::string, size_t> allowance;
  std::unordered_map<std::string, size_t> spent;
  for (const auto& m : models_) {
    allowance[m] = config_.token_budget / n;  // lambda = lambda_max / N
    spent[m] = 0;
  }

  // `active`: still generating. `candidates`: eligible to win (everything
  // not pruned or failed, including models that finished naturally).
  std::vector<std::string> active = models_;
  std::unordered_set<std::string> pruned;
  std::unordered_set<std::string> failed;
  std::unordered_map<std::string, Status> failure_reasons;
  std::unordered_map<std::string, RoundScore> last_scores;

  size_t round = 0;
  std::string early_winner;

  // Quarantine: mark the model failed, record the failure, drop it from the
  // active set, and hand its unspent allowance to the survivors (the same
  // reallocation pruning performs — a dead model must not strand budget).
  auto quarantine = [&](const std::string& model, const Status& error) {
    failed.insert(model);
    failure_reasons[model] = error;
    const size_t leftover =
        allowance[model] > spent[model] ? allowance[model] - spent[model] : 0;
    active.erase(std::remove(active.begin(), active.end(), model),
                 active.end());
    if (!active.empty() && leftover > 0) {
      const size_t share = leftover / active.size();
      for (const auto& m : active) allowance[m] += share;
    }
    internal::EmitFailure(model, error, round, generation->TotalTokens(),
                          callback, &result.trace);
  };

  // Models that refused to start join the run pre-failed.
  for (const auto& m : models_) {
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
    if (stats.failed) quarantine(m, Status::Internal(stats.error));
  }

  size_t stalled_rounds = 0;  // rounds with zero progress across the pool

  while (!active.empty() && early_winner.empty()) {
    // An expired or cancelled request ends the query with the typed status
    // before any more tokens are bought on its behalf.
    if (config_.context != nullptr) {
      LLMMS_RETURN_NOT_OK(config_.context->Check());
    }
    ++round;

    // --- Round-robin chunk generation (Algorithm 1 lines 5-9). ---
    std::vector<std::pair<std::string, size_t>> requests;
    for (const auto& m : active) {
      const size_t remaining = allowance[m] - spent[m];
      if (remaining == 0) continue;
      requests.emplace_back(m, std::min(config_.chunk_tokens, remaining));
    }
    if (requests.empty()) break;  // every active model exhausted its budget
    LLMMS_ASSIGN_OR_RETURN(auto batch, generation->NextChunks(requests));
    for (const auto& [model, error] : batch.errors) quarantine(model, error);
    size_t round_tokens = 0;
    for (const auto& [model, chunk] : batch.chunks) {
      spent[model] += chunk.num_tokens;
      round_tokens += chunk.num_tokens;
      internal::EmitHedge(model, chunk, round, generation->TotalTokens(),
                          callback, &result.trace);
      if (chunk.num_tokens > 0 && callback) {
        OrchestratorEvent event;
        event.type = EventType::kChunk;
        event.model = model;
        event.text = chunk.text;
        event.round = round;
        event.total_tokens = generation->TotalTokens();
        internal::Emit(event, callback, &result.trace);
      }
    }
    // Anti-hang guard: a pool of stalled (but not erroring) backends makes
    // no progress; after enough empty rounds treat them as exhausted
    // rather than spinning forever.
    if (round_tokens == 0) {
      if (++stalled_rounds >= kMaxStalledRounds) break;
    } else {
      stalled_rounds = 0;
    }

    // --- Scoring (Algorithm 1 lines 10-15). ---
    std::vector<std::string> candidates;
    for (const auto& m : models_) {
      if (pruned.count(m) == 0 && failed.count(m) == 0) {
        candidates.push_back(m);
      }
    }
    if (candidates.empty()) break;  // everyone failed: handled below
    std::vector<std::string> responses;
    responses.reserve(candidates.size());
    for (const auto& m : candidates) {
      LLMMS_ASSIGN_OR_RETURN(auto text, generation->TextOf(m));
      responses.push_back(std::move(text));
    }
    const auto scores = scorer_.ScoreRound(prompt, responses);
    for (size_t i = 0; i < candidates.size(); ++i) {
      last_scores[candidates[i]] = scores[i];
      OrchestratorEvent event;
      event.type = EventType::kScore;
      event.model = candidates[i];
      event.score = scores[i].combined;
      event.round = round;
      event.total_tokens = generation->TotalTokens();
      internal::Emit(event, callback, &result.trace);
      internal::PublishReward(config_.reward_feed, candidates[i],
                              scores[i].combined, round,
                              generation->TotalTokens(), callback,
                              &result.trace);
    }

    // --- Early stop (Algorithm 1 lines 16-19): the best candidate wins now
    // when it leads by the margin and finished with done reason "stop". ---
    size_t best_index = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    double second_best = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (scores[i].combined > best_score) {
        second_best = best_score;
        best_score = scores[i].combined;
        best_index = i;
      } else if (scores[i].combined > second_best) {
        second_best = scores[i].combined;
      }
    }
    if (candidates.size() > 1 &&
        best_score > second_best + config_.early_stop_margin) {
      LLMMS_ASSIGN_OR_RETURN(auto stats,
                             generation->StatsOf(candidates[best_index]));
      if (stats.finished && stats.stop_reason == llm::StopReason::kStop) {
        early_winner = candidates[best_index];
        OrchestratorEvent event;
        event.type = EventType::kEarlyStop;
        event.model = early_winner;
        event.score = best_score;
        event.round = round;
        event.total_tokens = generation->TotalTokens();
        internal::Emit(event, callback, &result.trace);
        break;
      }
    }

    // --- Pruning (Algorithm 1 lines 20-23): drop the round's worst active
    // model when the second-worst leads it by the margin; its unspent
    // allowance goes to the survivors. ---
    if (active.size() > 1 && round >= config_.min_rounds_before_prune) {
      std::string worst;
      double worst_score = std::numeric_limits<double>::infinity();
      double second_worst = std::numeric_limits<double>::infinity();
      for (const auto& m : active) {
        const double s = last_scores[m].combined;
        if (s < worst_score) {
          second_worst = worst_score;
          worst_score = s;
          worst = m;
        } else if (s < second_worst) {
          second_worst = s;
        }
      }
      if (!worst.empty() && second_worst - worst_score > config_.prune_margin) {
        pruned.insert(worst);
        const size_t leftover = allowance[worst] - spent[worst];
        active.erase(std::remove(active.begin(), active.end(), worst),
                     active.end());
        if (!active.empty() && leftover > 0) {
          const size_t share = leftover / active.size();
          for (const auto& m : active) allowance[m] += share;
        }
        OrchestratorEvent event;
        event.type = EventType::kPrune;
        event.model = worst;
        event.score = worst_score;
        event.round = round;
        event.total_tokens = generation->TotalTokens();
        internal::Emit(event, callback, &result.trace);
      }
    }

    // --- Retire models that finished naturally or exhausted their budget;
    // they stay candidates but stop consuming tokens. ---
    std::vector<std::string> still_active;
    for (const auto& m : active) {
      LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
      const bool exhausted = spent[m] >= allowance[m];
      if (!stats.finished && !exhausted) still_active.push_back(m);
    }
    active = std::move(still_active);
  }

  // --- Final selection (Algorithm 1 line 25). Failed models can never
  // win; when the whole pool failed the query fails with a typed error. ---
  if (failed.size() == models_.size()) {
    Status last = Status::Internal("unknown failure");
    for (const auto& m : models_) {
      auto it = failure_reasons.find(m);
      if (it != failure_reasons.end()) last = it->second;
    }
    return internal::AllModelsFailed(name(), models_.size(), last);
  }
  std::string winner = early_winner;
  if (winner.empty()) {
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& m : models_) {
      if (pruned.count(m) > 0 || failed.count(m) > 0) continue;
      auto it = last_scores.find(m);
      const double s =
          it != last_scores.end()
              ? it->second.combined
              : -std::numeric_limits<double>::infinity();
      if (s > best) {
        best = s;
        winner = m;
      }
    }
    if (winner.empty()) {
      // All survivors pruned: degenerate, fall back to any healthy model.
      for (const auto& m : models_) {
        if (failed.count(m) == 0) {
          winner = m;
          break;
        }
      }
    }
  }

  result.best_model = winner;
  LLMMS_ASSIGN_OR_RETURN(result.answer, generation->TextOf(winner));
  result.total_tokens = generation->TotalTokens();
  result.rounds = round;
  result.early_stopped = !early_winner.empty();
  result.simulated_seconds = generation->SimulatedWallSeconds();

  for (const auto& m : models_) {
    ModelOutcome outcome;
    LLMMS_ASSIGN_OR_RETURN(outcome.response, generation->TextOf(m));
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
    outcome.tokens = stats.tokens;
    outcome.finished = stats.finished;
    outcome.stop_reason = stats.stop_reason;
    outcome.pruned = pruned.count(m) > 0;
    outcome.failed = failed.count(m) > 0;
    auto fail_it = failure_reasons.find(m);
    if (fail_it != failure_reasons.end()) {
      outcome.error = fail_it->second.message();
    }
    auto it = last_scores.find(m);
    if (it != last_scores.end()) {
      outcome.final_score = it->second.combined;
      outcome.query_similarity = it->second.query_similarity;
      outcome.inter_similarity = it->second.inter_similarity;
    }
    result.per_model[m] = std::move(outcome);
  }
  result.answer_tokens = result.per_model[winner].tokens;

  OrchestratorEvent event;
  event.type = EventType::kFinal;
  event.model = winner;
  event.text = result.answer;
  event.score = result.per_model[winner].final_score;
  event.round = round;
  event.total_tokens = result.total_tokens;
  internal::Emit(event, callback, &result.trace);
  return result;
}

}  // namespace llmms::core
