#ifndef LLMMS_CORE_AGENTS_H_
#define LLMMS_CORE_AGENTS_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/core/mab.h"
#include "llmms/core/orchestrator.h"
#include "llmms/core/oua.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// Multi-agent collaboration framework (§9.5): complex questions are broken
// into sub-tasks handled by a small worker crew —
//
//   Decomposer  splits a multi-part question into sub-questions
//               (deterministic sentence-level splitting; the rule-based
//               equivalent of an LLM decomposition step),
//   Researcher  answers each sub-question with its own orchestration run,
//   Verifier    checks each sub-answer's semantic alignment with its
//               sub-question and sends failures back for one retry with the
//               alternate strategy (MAB instead of OUA),
//   Composer    assembles the verified sub-answers into the final response.
//
// Sub-questions execute in sequence (each is already multi-model parallel
// inside); the AutoGen/LangGraph-style pattern the thesis cites.

// Splits a question into sub-questions on '?' sentence boundaries,
// stripping joiners like a leading "Also," / "And". Single-part questions
// come back as a one-element vector.
std::vector<std::string> DecomposeQuestion(const std::string& question);

class MultiAgentPipeline {
 public:
  struct Config {
    OuaOrchestrator::Config research;  // per-sub-question orchestration
    MabOrchestrator::Config retry;     // strategy for failed verifications
    // A sub-answer verifies when its cosine similarity to its sub-question
    // reaches this.
    double verify_threshold = 0.15;
    size_t max_retries = 1;
  };

  struct SubResult {
    std::string question;
    std::string answer;
    std::string model;   // which model produced the accepted answer
    double similarity = 0.0;
    bool verified = false;
    bool retried = false;
    size_t tokens = 0;
  };

  struct Result {
    std::string answer;  // composed final answer
    std::vector<SubResult> sub_results;
    size_t total_tokens = 0;
    double simulated_seconds = 0.0;
  };

  // `runtime` must outlive the pipeline; `models` must all be loaded.
  MultiAgentPipeline(llm::ModelRuntime* runtime,
                     std::vector<std::string> models,
                     std::shared_ptr<const embedding::Embedder> embedder,
                     const Config& config);

  StatusOr<Result> Run(const std::string& question,
                       const EventCallback& callback = EventCallback());

 private:
  llm::ModelRuntime* runtime_;
  std::vector<std::string> models_;
  std::shared_ptr<const embedding::Embedder> embedder_;
  Config config_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_AGENTS_H_
