#include "llmms/core/reward_feed.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "llmms/llm/hedged_model.h"
#include "llmms/llm/runtime.h"
#include "llmms/llm/state_store.h"

namespace llmms::core {
namespace {

// Below this much retained evidence a model is treated as unobserved: the
// warm-up guard must hold exactly (favour 0), not merely approximately, once
// decay has shrunk every sample to dust.
constexpr double kMinRetainedWeight = 1e-12;

}  // namespace

void RewardFeed::Configure(const RewardFeedConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  Sanitize();
  tick_ = 0;
  stats_.clear();
}

RewardFeedConfig RewardFeed::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

uint64_t RewardFeed::tick() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tick_;
}

void RewardFeed::Subscribe(const std::string& model, Subscriber subscriber) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_[model] = std::move(subscriber);
}

double RewardFeed::DecayFactor() const {
  return config_.half_life > 0.0 ? std::exp2(-1.0 / config_.half_life) : 1.0;
}

RewardFeed::Adaptation RewardFeed::Publish(const std::string& model,
                                           double reward) {
  Update update;
  update.model = model;
  update.reward = reward;
  Subscriber subscriber;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++tick_;
    ModelState& state = stats_[model];
    state.lifetime.reward_sum += reward;
    ++state.lifetime.count;
    if (config_.window > 0) {
      state.window.emplace_back(tick_, reward);
      // Evict across the whole pool, not just the published model: the
      // window is measured in global feed ticks, so every model ages on
      // every publish, and const readers must see fully evicted deques.
      for (auto& [name, other] : stats_) {
        while (!other.window.empty() &&
               tick_ - other.window.front().first >= config_.window) {
          other.window.pop_front();
        }
      }
    } else if (config_.half_life > 0.0) {
      const double factor =
          std::pow(DecayFactor(), static_cast<double>(tick_ - state.last_tick));
      state.decayed_sum = state.decayed_sum * factor + reward;
      state.decayed_weight = state.decayed_weight * factor + 1.0;
      state.last_tick = tick_;
    }
    const Estimate estimate = EstimateLocked(state);
    update.mean = estimate.mean;
    update.count = state.lifetime.count;
    update.favour = FavourLocked(model);
    auto it = subscribers_.find(model);
    if (it != subscribers_.end()) subscriber = it->second;
  }
  // The subscriber calls back into the model (which takes its own lock);
  // never hold the feed lock across it.
  Adaptation adaptation;
  if (subscriber) adaptation = subscriber(update);
  adaptation.favour = update.favour;
  return adaptation;
}

RewardFeed::Estimate RewardFeed::EstimateLocked(const ModelState& state) const {
  Estimate out;
  if (config_.window > 0) {
    // Sum the retained deque front-to-back each read (no running sum):
    // exactly reproducible by a naive reference, which is what the property
    // suite compares against.
    for (const auto& [tick, reward] : state.window) out.mean += reward;
    out.weight = static_cast<double>(state.window.size());
    out.mean = state.window.empty() ? 0.0 : out.mean / out.weight;
  } else if (config_.half_life > 0.0) {
    // Aged on the fly: the mean is invariant under pure aging, but the
    // retained weight is not, so reads scale both without mutating.
    const double factor =
        std::pow(DecayFactor(), static_cast<double>(tick_ - state.last_tick));
    const double sum = state.decayed_sum * factor;
    out.weight = state.decayed_weight * factor;
    out.mean = out.weight > kMinRetainedWeight ? sum / out.weight : 0.0;
  } else {
    out.mean = state.lifetime.MeanReward();
    out.weight = static_cast<double>(state.lifetime.count);
  }
  return out;
}

double RewardFeed::FavourLocked(const std::string& model) const {
  auto it = stats_.find(model);
  if (it == stats_.end()) return 0.0;
  const Estimate estimate = EstimateLocked(it->second);
  // The warm-up guard works on *retained* evidence: a model whose every
  // sample has been evicted by the window (or decayed to nothing) reports
  // favour 0 exactly, regardless of its lifetime count.
  if (estimate.weight <= kMinRetainedWeight) return 0.0;
  if (estimate.mean <= 0.0) return 0.0;
  double best = 0.0;
  for (const auto& [name, state] : stats_) {
    best = std::max(best, EstimateLocked(state).mean);
  }
  const double ratio =
      best > 0.0 ? std::clamp(estimate.mean / best, 0.0, 1.0) : 0.0;
  const double ramp =
      std::min(1.0, estimate.weight / static_cast<double>(config_.warmup));
  return ratio * ramp;
}

RewardFeed::Stats RewardFeed::StatsFor(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(model);
  return it == stats_.end() ? Stats() : it->second.lifetime;
}

RewardFeed::Estimate RewardFeed::EstimateFor(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(model);
  return it == stats_.end() ? Estimate() : EstimateLocked(it->second);
}

double RewardFeed::FavourOf(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FavourLocked(model);
}

RewardFeed::Snapshot RewardFeed::SnapshotState() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.tick = tick_;
  for (const auto& [model, state] : stats_) {
    ModelSnapshot snapshot;
    snapshot.lifetime = state.lifetime;
    snapshot.window.assign(state.window.begin(), state.window.end());
    snapshot.decayed_sum = state.decayed_sum;
    snapshot.decayed_weight = state.decayed_weight;
    snapshot.last_tick = state.last_tick;
    out.models[model] = std::move(snapshot);
  }
  return out;
}

void RewardFeed::RestoreState(const Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  tick_ = snapshot.tick;
  stats_.clear();
  for (const auto& [model, saved] : snapshot.models) {
    ModelState state;
    state.lifetime = saved.lifetime;
    state.window.assign(saved.window.begin(), saved.window.end());
    state.decayed_sum = saved.decayed_sum;
    state.decayed_weight = saved.decayed_weight;
    state.last_tick = saved.last_tick;
    stats_[model] = std::move(state);
  }
}

void RewardFeed::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tick_ = 0;
  stats_.clear();
}

size_t AttachAdaptiveHedging(RewardFeed* feed, llm::ModelRuntime* runtime) {
  size_t attached = 0;
  for (const auto& name : runtime->LoadedModels()) {
    auto model_or = runtime->registry()->Get(name);
    if (!model_or.ok()) continue;
    auto hedged = std::dynamic_pointer_cast<llm::HedgedModel>(*model_or);
    if (hedged == nullptr || !hedged->config().adapt) continue;
    feed->Subscribe(name, [hedged](const RewardFeed::Update& update) {
      RewardFeed::Adaptation adaptation;
      if (auto moved = hedged->ApplyRewardFavour(update.favour)) {
        adaptation.changed = true;
        adaptation.old_percentile = moved->first;
        adaptation.new_percentile = moved->second;
      }
      return adaptation;
    });
    ++attached;
  }
  return attached;
}

Json RewardFeedToJson(const RewardFeed::Snapshot& snapshot) {
  Json out = Json::MakeObject();
  out.Set("tick", static_cast<size_t>(snapshot.tick));
  Json models = Json::MakeObject();
  for (const auto& [model, state] : snapshot.models) {
    Json entry = Json::MakeObject();
    entry.Set("reward_sum", state.lifetime.reward_sum);
    entry.Set("count", state.lifetime.count);
    Json window = Json::MakeArray();
    for (const auto& [tick, reward] : state.window) {
      Json sample = Json::MakeObject();
      sample.Set("tick", static_cast<size_t>(tick));
      sample.Set("reward", reward);
      window.Append(std::move(sample));
    }
    entry.Set("window", std::move(window));
    entry.Set("decayed_sum", state.decayed_sum);
    entry.Set("decayed_weight", state.decayed_weight);
    entry.Set("last_tick", static_cast<size_t>(state.last_tick));
    models.Set(model, std::move(entry));
  }
  out.Set("models", std::move(models));
  return out;
}

RewardFeed::Snapshot RewardFeedFromJson(const Json& json) {
  RewardFeed::Snapshot out;
  if (!json.is_object()) return out;
  if (json.Contains("tick")) {
    out.tick = static_cast<uint64_t>(json["tick"].AsInt());
  }
  if (!json.Contains("models") || !json["models"].is_object()) return out;
  for (const auto& [model, entry] : json["models"].AsObject()) {
    RewardFeed::ModelSnapshot state;
    state.lifetime.reward_sum = entry["reward_sum"].AsDouble();
    state.lifetime.count = static_cast<size_t>(entry["count"].AsInt());
    if (entry.Contains("window") && entry["window"].is_array()) {
      for (const Json& sample : entry["window"].AsArray()) {
        state.window.emplace_back(static_cast<uint64_t>(sample["tick"].AsInt()),
                                  sample["reward"].AsDouble());
      }
    }
    state.decayed_sum = entry["decayed_sum"].AsDouble();
    state.decayed_weight = entry["decayed_weight"].AsDouble();
    state.last_tick = static_cast<uint64_t>(entry["last_tick"].AsInt());
    out.models[model] = std::move(state);
  }
  return out;
}

void AttachRewardFeed(llm::StateStore* store, RewardFeed* feed) {
  const Json saved = store->LoadedSection("rewards");
  if (saved.is_object()) feed->RestoreState(RewardFeedFromJson(saved));
  store->AttachSection(
      "rewards", [feed]() { return RewardFeedToJson(feed->SnapshotState()); });
}

namespace internal {

void SeedArmFromFeed(const RewardFeed* feed, const std::string& model,
                     double feed_prior_weight, double* prior_sum,
                     double* prior_weight) {
  *prior_sum = 0.0;
  *prior_weight = 0.0;
  if (feed == nullptr || feed_prior_weight <= 0.0) return;
  const RewardFeed::Estimate estimate = feed->EstimateFor(model);
  const double weight = std::min(feed_prior_weight, estimate.weight);
  if (weight <= 0.0) return;
  *prior_weight = weight;
  *prior_sum = estimate.mean * weight;
}

void PublishReward(RewardFeed* feed, const std::string& model, double reward,
                   size_t round, size_t total_tokens,
                   const EventCallback& callback,
                   std::vector<TraceEntry>* trace) {
  if (feed == nullptr) return;
  const RewardFeed::Adaptation adaptation = feed->Publish(model, reward);
  if (!adaptation.changed) return;
  char detail[96];
  std::snprintf(detail, sizeof(detail), "p%.3f->%.3f favour=%.3f",
                adaptation.old_percentile, adaptation.new_percentile,
                adaptation.favour);
  OrchestratorEvent event;
  event.type = EventType::kHedgeAdapt;
  event.model = model;
  event.text = detail;
  event.score = adaptation.new_percentile;
  event.round = round;
  event.total_tokens = total_tokens;
  Emit(event, callback, trace);
}

}  // namespace internal
}  // namespace llmms::core
