#include "llmms/core/reward_feed.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "llmms/llm/hedged_model.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

void RewardFeed::Subscribe(const std::string& model, Subscriber subscriber) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_[model] = std::move(subscriber);
}

RewardFeed::Adaptation RewardFeed::Publish(const std::string& model,
                                           double reward) {
  Update update;
  update.model = model;
  update.reward = reward;
  Subscriber subscriber;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Stats& stats = stats_[model];
    stats.reward_sum += reward;
    ++stats.count;
    update.mean = stats.MeanReward();
    update.count = stats.count;
    update.favour = FavourLocked(model);
    auto it = subscribers_.find(model);
    if (it != subscribers_.end()) subscriber = it->second;
  }
  // The subscriber calls back into the model (which takes its own lock);
  // never hold the feed lock across it.
  Adaptation adaptation;
  if (subscriber) adaptation = subscriber(update);
  adaptation.favour = update.favour;
  return adaptation;
}

double RewardFeed::FavourLocked(const std::string& model) const {
  auto it = stats_.find(model);
  if (it == stats_.end() || it->second.count == 0) return 0.0;
  const double mean = it->second.MeanReward();
  if (mean <= 0.0) return 0.0;
  double best = 0.0;
  for (const auto& [name, stats] : stats_) {
    best = std::max(best, stats.MeanReward());
  }
  const double ratio = best > 0.0 ? std::clamp(mean / best, 0.0, 1.0) : 0.0;
  const double ramp =
      std::min(1.0, static_cast<double>(it->second.count) /
                        static_cast<double>(warmup_));
  return ratio * ramp;
}

RewardFeed::Stats RewardFeed::StatsFor(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(model);
  return it == stats_.end() ? Stats() : it->second;
}

double RewardFeed::FavourOf(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FavourLocked(model);
}

void RewardFeed::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

size_t AttachAdaptiveHedging(RewardFeed* feed, llm::ModelRuntime* runtime) {
  size_t attached = 0;
  for (const auto& name : runtime->LoadedModels()) {
    auto model_or = runtime->registry()->Get(name);
    if (!model_or.ok()) continue;
    auto hedged = std::dynamic_pointer_cast<llm::HedgedModel>(*model_or);
    if (hedged == nullptr || !hedged->config().adapt) continue;
    feed->Subscribe(name, [hedged](const RewardFeed::Update& update) {
      RewardFeed::Adaptation adaptation;
      if (auto moved = hedged->ApplyRewardFavour(update.favour)) {
        adaptation.changed = true;
        adaptation.old_percentile = moved->first;
        adaptation.new_percentile = moved->second;
      }
      return adaptation;
    });
    ++attached;
  }
  return attached;
}

namespace internal {

void PublishReward(RewardFeed* feed, const std::string& model, double reward,
                   size_t round, size_t total_tokens,
                   const EventCallback& callback,
                   std::vector<TraceEntry>* trace) {
  if (feed == nullptr) return;
  const RewardFeed::Adaptation adaptation = feed->Publish(model, reward);
  if (!adaptation.changed) return;
  char detail[96];
  std::snprintf(detail, sizeof(detail), "p%.3f->%.3f favour=%.3f",
                adaptation.old_percentile, adaptation.new_percentile,
                adaptation.favour);
  OrchestratorEvent event;
  event.type = EventType::kHedgeAdapt;
  event.model = model;
  event.text = detail;
  event.score = adaptation.new_percentile;
  event.round = round;
  event.total_tokens = total_tokens;
  Emit(event, callback, trace);
}

}  // namespace internal
}  // namespace llmms::core
