#include "llmms/core/router.h"

#include <algorithm>

#include "llmms/embedding/similarity.h"

namespace llmms::core {

IntentClassifier::IntentClassifier(
    std::shared_ptr<const embedding::Embedder> embedder)
    : embedder_(std::move(embedder)) {}

Status IntentClassifier::AddExample(const std::string& text,
                                    const std::string& label) {
  if (text.empty() || label.empty()) {
    return Status::InvalidArgument("example text and label must be non-empty");
  }
  const auto vec = embedder_->Embed(text);
  Centroid& centroid = centroids_[label];
  if (centroid.sum.empty()) centroid.sum.assign(vec.size(), 0.0f);
  for (size_t i = 0; i < vec.size(); ++i) centroid.sum[i] += vec[i];
  ++centroid.count;
  ++example_count_;
  return Status::OK();
}

StatusOr<IntentClassifier::Prediction> IntentClassifier::Classify(
    const std::string& text) const {
  if (centroids_.empty()) {
    return Status::FailedPrecondition("classifier has no training examples");
  }
  const auto vec = embedder_->Embed(text);
  Prediction prediction;
  double best = -2.0;
  double second = -2.0;
  for (const auto& [label, centroid] : centroids_) {
    const double sim = embedding::CosineSimilarity(vec, centroid.sum);
    if (sim > best) {
      second = best;
      best = sim;
      prediction.label = label;
    } else if (sim > second) {
      second = sim;
    }
  }
  prediction.confidence = best;
  prediction.margin = centroids_.size() > 1 ? best - second : best;
  return prediction;
}

std::vector<std::string> IntentClassifier::Labels() const {
  std::vector<std::string> labels;
  labels.reserve(centroids_.size());
  for (const auto& [label, centroid] : centroids_) labels.push_back(label);
  return labels;
}

RoutedOrchestrator::RoutedOrchestrator(
    llm::ModelRuntime* runtime, std::vector<std::string> models,
    std::shared_ptr<const embedding::Embedder> embedder,
    IntentClassifier* classifier, FeedbackStore* feedback, EloRatings* ratings,
    const Config& config)
    : runtime_(runtime),
      models_(std::move(models)),
      embedder_(std::move(embedder)),
      classifier_(classifier),
      feedback_(feedback),
      ratings_(ratings),
      config_(config) {}

StatusOr<std::vector<std::string>> RoutedOrchestrator::RouteFor(
    const std::string& prompt) const {
  auto prediction = classifier_->Classify(prompt);
  if (!prediction.ok() || prediction->confidence < config_.min_confidence) {
    return models_;  // unknown intent: fall back to the full pool
  }
  if (feedback_->DomainObservations(prediction->label) <
      config_.min_observations) {
    return models_;  // still exploring this task
  }
  auto ranked = feedback_->RankModels(prediction->label, models_);
  const size_t n = std::min<size_t>(std::max<size_t>(config_.route_to, 1),
                                    ranked.size());
  ranked.resize(n);
  return ranked;
}

StatusOr<OrchestrationResult> RoutedOrchestrator::Run(
    const std::string& prompt, const EventCallback& callback) {
  if (models_.empty()) {
    return Status::FailedPrecondition("router requires at least one model");
  }
  LLMMS_ASSIGN_OR_RETURN(auto pool, RouteFor(prompt));

  OuaOrchestrator inner(runtime_, pool, embedder_, config_.inner);
  LLMMS_ASSIGN_OR_RETURN(auto result, inner.Run(prompt, callback));

  // Close the loop: record each participant's outcome under the predicted
  // task label, and update the Elo ratings with the winner.
  auto prediction = classifier_->Classify(prompt);
  if (prediction.ok() && prediction->confidence >= config_.min_confidence) {
    std::vector<std::string> losers;
    for (const auto& [model, outcome] : result.per_model) {
      feedback_->Record(model, prediction->label, outcome.final_score,
                        model == result.best_model);
      if (model != result.best_model) losers.push_back(model);
    }
    if (ratings_ != nullptr) {
      ratings_->RecordOutcome(result.best_model, losers);
    }
  }
  return result;
}

}  // namespace llmms::core
