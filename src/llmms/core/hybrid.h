#ifndef LLMMS_CORE_HYBRID_H_
#define LLMMS_CORE_HYBRID_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/core/orchestrator.h"
#include "llmms/core/reward_feed.h"
#include "llmms/core/scoring.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// The hybrid strategy the thesis's analysis proposes (§8.4: "A hybrid
// approach could potentially leverage the advantages of both methods"):
//
//   Phase 1 (OUA-style screening): every model generates round-robin chunks
//   for `screening_rounds` rounds; the per-round worst model is pruned when
//   the prune margin is met — conserving tokens on clear losers early.
//
//   Phase 2 (MAB-style allocation): the survivors become UCB1 arms; chunks
//   are pulled adaptively with the decaying exploration coefficient until
//   the budget is spent or every survivor finishes.
//
// The answer is the survivor with the highest mean reward. Compared in
// bench/ablation_hybrid against its two parents.
class HybridOrchestrator final : public Orchestrator {
 public:
  struct Config {
    ScoringWeights weights;
    size_t token_budget = 2048;
    size_t chunk_tokens = 8;       // phase-1 round-robin chunk
    size_t screening_rounds = 3;   // phase-1 length
    double prune_margin = 0.02;    // phase-1 pruning threshold
    size_t min_survivors = 2;      // phase 1 never prunes below this
    size_t mab_chunk_tokens = 16;  // phase-2 pull size
    double gamma0 = 0.3;           // phase-2 exploration coefficient
    // When set, both phases publish their reward observations so adaptive
    // hedged models can move their thresholds (DESIGN.md §11). Must outlive
    // the orchestrator; null disables the feedback loop.
    RewardFeed* reward_feed = nullptr;
    // Feed-prior re-ranking for phase 2 (DESIGN.md §16): when > 0 and
    // `reward_feed` is set, each surviving arm starts with the feed's
    // current estimate as up to this many virtual pulls (capped by the
    // estimate's retained weight) and skips the guaranteed cold-start
    // pull. 0 preserves the per-query cold start exactly (the default).
    double feed_prior_weight = 0.0;
    // Deadline/cancellation of the request driving this run (null =
    // unbounded); checked at both phases' loop boundaries (DESIGN.md §12).
    std::shared_ptr<RequestContext> context;
    // Explicit continuous-batching weight (DESIGN.md §13); <= 0 derives it
    // from token_budget and deadline slack. Ignored without a scheduler.
    double scheduler_weight = 0.0;
  };

  HybridOrchestrator(llm::ModelRuntime* runtime,
                     std::vector<std::string> models,
                     std::shared_ptr<const embedding::Embedder> embedder,
                     const Config& config);

  StatusOr<OrchestrationResult> Run(const std::string& prompt,
                                    const EventCallback& callback) override;
  using Orchestrator::Run;

  std::string name() const override { return "llm-ms-hybrid"; }
  const Config& config() const { return config_; }

 private:
  llm::ModelRuntime* runtime_;
  std::vector<std::string> models_;
  ResponseScorer scorer_;
  Config config_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_HYBRID_H_
