#ifndef LLMMS_CORE_ROUTER_H_
#define LLMMS_CORE_ROUTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "llmms/core/feedback.h"
#include "llmms/core/orchestrator.h"
#include "llmms/core/oua.h"
#include "llmms/embedding/embedder.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// Cognitive routing with semantic task indexing (§9.5): a lightweight
// intent detector tags each query with a task label; a per-task index of
// model performance picks the models known to handle that kind of job.

// Nearest-centroid text classifier: each label's centroid is the mean
// embedding of its training examples; classification is cosine similarity
// to the centroids. Deterministic and cheap — the "simple intent detector"
// the thesis sketches.
class IntentClassifier {
 public:
  explicit IntentClassifier(
      std::shared_ptr<const embedding::Embedder> embedder);

  // Adds one labeled example; centroids update incrementally.
  Status AddExample(const std::string& text, const std::string& label);

  struct Prediction {
    std::string label;
    double confidence = 0.0;  // cosine to the winning centroid
    double margin = 0.0;      // gap to the runner-up centroid
  };

  // Classifies `text`; FailedPrecondition when no examples were added.
  StatusOr<Prediction> Classify(const std::string& text) const;

  std::vector<std::string> Labels() const;
  size_t example_count() const { return example_count_; }

 private:
  struct Centroid {
    embedding::Vector sum;  // un-normalized running sum
    size_t count = 0;
  };

  std::shared_ptr<const embedding::Embedder> embedder_;
  std::map<std::string, Centroid> centroids_;
  size_t example_count_ = 0;
};

// The routing orchestrator: classify the query's task, consult the feedback
// store for the best-performing models on that task, orchestrate only over
// that subset (OUA), then feed the outcome back into the store and the Elo
// ratings — closing the self-improvement loop.
//
// Until a task has `min_observations` recorded outcomes the router stays in
// its exploration mode and uses the full pool, so early routing mistakes
// cannot lock in.
class RoutedOrchestrator final : public Orchestrator {
 public:
  struct Config {
    OuaOrchestrator::Config inner;  // strategy used on the routed subset
    size_t route_to = 2;            // pool size after routing
    // Below this many per-task observations, use the full pool.
    size_t min_observations = 10;
    // Classifier confidence below this also falls back to the full pool.
    double min_confidence = 0.05;
  };

  // `runtime`, `feedback`, and `ratings` must outlive the orchestrator;
  // `ratings` may be null (rating updates skipped).
  RoutedOrchestrator(llm::ModelRuntime* runtime,
                     std::vector<std::string> models,
                     std::shared_ptr<const embedding::Embedder> embedder,
                     IntentClassifier* classifier, FeedbackStore* feedback,
                     EloRatings* ratings, const Config& config);

  StatusOr<OrchestrationResult> Run(const std::string& prompt,
                                    const EventCallback& callback) override;
  using Orchestrator::Run;

  std::string name() const override { return "llm-ms-routed"; }

  // The models the router would pick for `prompt` right now (for tests and
  // transparency overlays).
  StatusOr<std::vector<std::string>> RouteFor(const std::string& prompt) const;

 private:
  llm::ModelRuntime* runtime_;
  std::vector<std::string> models_;
  std::shared_ptr<const embedding::Embedder> embedder_;
  IntentClassifier* classifier_;
  FeedbackStore* feedback_;
  EloRatings* ratings_;
  Config config_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_ROUTER_H_
