#include "llmms/core/feedback.h"

#include <algorithm>
#include <cmath>

#include "llmms/common/json.h"

namespace llmms::core {

void FeedbackStore::Record(const std::string& model, const std::string& domain,
                           double reward, bool won) {
  std::lock_guard<std::mutex> lock(mu_);
  Stats& stats = stats_[{model, domain}];
  stats.reward_sum += reward;
  ++stats.count;
  if (won) ++stats.wins;
}

FeedbackStore::Stats FeedbackStore::GetStats(const std::string& model,
                                             const std::string& domain) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find({model, domain});
  return it != stats_.end() ? it->second : Stats{};
}

size_t FeedbackStore::DomainObservations(const std::string& domain) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [key, stats] : stats_) {
    if (key.second == domain) total += stats.count;
  }
  return total;
}

std::vector<std::string> FeedbackStore::RankModels(
    const std::string& domain,
    const std::vector<std::string>& known_models) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<double, std::string>> scored;
  scored.reserve(known_models.size());
  for (const auto& model : known_models) {
    auto it = stats_.find({model, domain});
    const double mean =
        it != stats_.end() ? it->second.MeanReward() : 0.0;
    scored.emplace_back(mean, model);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(scored.size());
  for (const auto& [mean, model] : scored) out.push_back(model);
  return out;
}

std::string FeedbackStore::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json entries = Json::MakeArray();
  for (const auto& [key, stats] : stats_) {
    Json entry = Json::MakeObject();
    entry.Set("model", key.first);
    entry.Set("domain", key.second);
    entry.Set("reward_sum", stats.reward_sum);
    entry.Set("count", stats.count);
    entry.Set("wins", stats.wins);
    entries.Append(std::move(entry));
  }
  Json root = Json::MakeObject();
  root.Set("version", 1);
  root.Set("entries", std::move(entries));
  return root.Dump();
}

StatusOr<std::unique_ptr<FeedbackStore>> FeedbackStore::FromJson(
    const std::string& text) {
  LLMMS_ASSIGN_OR_RETURN(Json root, Json::Parse(text));
  if (root["version"].AsInt() != 1) {
    return Status::InvalidArgument("unsupported feedback store version");
  }
  auto store = std::make_unique<FeedbackStore>();
  for (const auto& entry : root["entries"].AsArray()) {
    const std::string model = entry["model"].AsString();
    const std::string domain = entry["domain"].AsString();
    if (model.empty() || domain.empty()) {
      return Status::InvalidArgument("feedback entry missing model/domain");
    }
    Stats stats;
    stats.reward_sum = entry["reward_sum"].AsDouble();
    stats.count = static_cast<size_t>(entry["count"].AsInt());
    stats.wins = static_cast<size_t>(entry["wins"].AsInt());
    store->stats_[{model, domain}] = stats;
  }
  return store;
}

double EloRatings::ExpectedScore(double a, double b) const {
  return 1.0 / (1.0 + std::pow(10.0, (b - a) / 400.0));
}

void EloRatings::RecordOutcome(const std::string& winner,
                               const std::vector<std::string>& losers) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ratings_.find(winner) == ratings_.end()) ratings_[winner] = initial_;
  for (const auto& loser : losers) {
    if (loser == winner) continue;
    if (ratings_.find(loser) == ratings_.end()) ratings_[loser] = initial_;
    const double expected = ExpectedScore(ratings_[winner], ratings_[loser]);
    const double delta = k_factor_ * (1.0 - expected);
    ratings_[winner] += delta;
    ratings_[loser] -= delta;
  }
}

double EloRatings::Rating(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ratings_.find(model);
  return it != ratings_.end() ? it->second : initial_;
}

std::vector<std::pair<std::string, double>> EloRatings::Ranking() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out(ratings_.begin(),
                                                  ratings_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace llmms::core
