#include "llmms/core/mab.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace llmms::core {
namespace {

struct Arm {
  double reward_sum = 0.0;
  size_t pulls = 0;
  // Feed-prior virtual evidence (Config::feed_prior_weight): folded into
  // the value estimate and the UCB pull count as virtual pulls.
  double prior_sum = 0.0;
  double prior_weight = 0.0;
  double last_reward = 0.0;
  RoundScore last_round;
  bool finished = false;
  bool failed = false;  // stream errored; the arm is out of the tournament
  std::string error;
  llm::StopReason stop_reason = llm::StopReason::kLength;

  double EffectivePulls() const {
    return static_cast<double>(pulls) + prior_weight;
  }
  double MeanReward() const {
    const double effective = EffectivePulls();
    return effective > 0.0 ? (reward_sum + prior_sum) / effective : 0.0;
  }
};

}  // namespace

MabOrchestrator::MabOrchestrator(
    llm::ModelRuntime* runtime, std::vector<std::string> models,
    std::shared_ptr<const embedding::Embedder> embedder, const Config& config)
    : runtime_(runtime),
      models_(std::move(models)),
      scorer_(std::move(embedder), config.weights),
      config_(config) {}

StatusOr<OrchestrationResult> MabOrchestrator::Run(
    const std::string& prompt, const EventCallback& callback) {
  if (models_.empty()) {
    return Status::FailedPrecondition("MAB requires at least one model");
  }
  if (config_.token_budget == 0 || config_.chunk_tokens == 0) {
    return Status::InvalidArgument("token_budget and chunk_tokens must be > 0");
  }

  llm::GenerationRequest request;
  request.prompt = prompt;
  request.max_tokens = 0;
  request.context = config_.context;
  request.token_budget = config_.token_budget;
  request.scheduler_weight = config_.scheduler_weight;
  LLMMS_ASSIGN_OR_RETURN(auto generation,
                         runtime_->StartGeneration(models_, request));

  OrchestrationResult result;
  std::unordered_map<std::string, Arm> arms;
  for (const auto& m : models_) {
    Arm arm;
    internal::SeedArmFromFeed(config_.reward_feed, m,
                              config_.feed_prior_weight, &arm.prior_sum,
                              &arm.prior_weight);
    arms[m] = arm;
  }

  size_t used_tokens = 0;
  size_t total_pulls = 0;
  size_t round = 0;
  size_t failed_arms = 0;
  Status last_failure = Status::OK();
  size_t stalled_pulls = 0;

  // A failed arm leaves the tournament; the shared budget it can no longer
  // draw from flows to the surviving arms automatically.
  auto quarantine = [&](const std::string& model, const Status& error) {
    Arm& arm = arms[model];
    arm.failed = true;
    arm.finished = true;
    arm.error = error.message();
    ++failed_arms;
    last_failure = error;
    internal::EmitFailure(model, error, round, used_tokens, callback,
                          &result.trace);
  };

  // Models that refused to start join the run pre-failed.
  for (const auto& m : models_) {
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
    if (stats.failed) quarantine(m, Status::Internal(stats.error));
  }

  auto gamma_now = [&]() {
    if (!config_.decay_gamma) return config_.gamma0;
    const double remaining_fraction =
        1.0 - static_cast<double>(used_tokens) /
                  static_cast<double>(config_.token_budget);
    return config_.gamma0 * std::max(0.0, remaining_fraction);
  };

  while (used_tokens < config_.token_budget) {
    // An expired or cancelled request ends the tournament with the typed
    // status before any more pulls are bought on its behalf.
    if (config_.context != nullptr) {
      LLMMS_RETURN_NOT_OK(config_.context->Check());
    }
    ++round;
    const double gamma = gamma_now();

    // --- Arm selection (Algorithm 2 lines 3-6): unpulled live arms first
    // (UCB1 cold start), then the highest upper confidence bound. An arm
    // seeded with a feed prior is not "unpulled" — the session has already
    // paid for its evidence, so it competes on UCB immediately instead of
    // collecting a guaranteed exploration chunk every query. ---
    std::string chosen;
    for (const auto& m : models_) {
      if (!arms[m].finished && arms[m].EffectivePulls() <= 0.0) {
        chosen = m;
        break;
      }
    }
    if (chosen.empty()) {
      double best_ucb = -std::numeric_limits<double>::infinity();
      for (const auto& m : models_) {
        const Arm& arm = arms[m];
        if (arm.finished) continue;
        const double bonus =
            gamma * std::sqrt(2.0 *
                              std::log(static_cast<double>(
                                  std::max<size_t>(total_pulls, 1))) /
                              arm.EffectivePulls());
        const double ucb = arm.MeanReward() + bonus;
        if (ucb > best_ucb) {
          best_ucb = ucb;
          chosen = m;
        }
      }
    }
    if (chosen.empty()) break;  // every arm finished

    // --- Pull: generate the next token chunk (line 7). A failing pull
    // quarantines the arm and the tournament continues with the rest. ---
    const size_t ask =
        std::min(config_.chunk_tokens, config_.token_budget - used_tokens);
    auto chunk_or = generation->NextChunk(chosen, ask);
    if (!chunk_or.ok()) {
      quarantine(chosen, chunk_or.status());
      if (failed_arms == models_.size()) {
        return internal::AllModelsFailed(name(), models_.size(),
                                         last_failure);
      }
      continue;
    }
    const llm::Chunk chunk = std::move(chunk_or).value();
    used_tokens += chunk.num_tokens;
    internal::EmitHedge(chosen, chunk, round, used_tokens, callback,
                        &result.trace);
    if (chunk.num_tokens == 0 && !chunk.done) {
      // Anti-hang guard against a pool of stalled backends.
      if (++stalled_pulls >= kMaxStalledRounds) break;
    } else {
      stalled_pulls = 0;
    }
    if (chunk.num_tokens > 0 && callback) {
      OrchestratorEvent event;
      event.type = EventType::kChunk;
      event.model = chosen;
      event.text = chunk.text;
      event.round = round;
      event.total_tokens = used_tokens;
      internal::Emit(event, callback, &result.trace);
    }

    // --- Reward (lines 8-10): score the arm's accumulated response against
    // the query and the other arms' current responses. ---
    LLMMS_ASSIGN_OR_RETURN(auto response, generation->TextOf(chosen));
    std::vector<std::string> others;
    for (const auto& m : models_) {
      if (m == chosen) continue;
      LLMMS_ASSIGN_OR_RETURN(auto text, generation->TextOf(m));
      others.push_back(std::move(text));
    }
    const double reward = scorer_.ScoreOne(prompt, response, others);

    Arm& arm = arms[chosen];
    arm.reward_sum += reward;
    arm.last_reward = reward;
    ++arm.pulls;
    ++total_pulls;
    if (chunk.done) {
      arm.finished = true;
      arm.stop_reason = chunk.stop_reason;
    }
    {
      OrchestratorEvent event;
      event.type = EventType::kScore;
      event.model = chosen;
      event.score = reward;
      event.round = round;
      event.total_tokens = used_tokens;
      internal::Emit(event, callback, &result.trace);
    }
    internal::PublishReward(config_.reward_feed, chosen, reward, round,
                            used_tokens, callback, &result.trace);

    // --- Termination (lines 12-14): stop early when a finished arm's mean
    // reward dominates the optimistic bound of every live arm. ---
    std::string best_finished;
    double best_finished_mean = -std::numeric_limits<double>::infinity();
    for (const auto& m : models_) {
      const Arm& a = arms[m];
      if (a.finished && a.pulls > 0 &&
          a.stop_reason == llm::StopReason::kStop &&
          a.MeanReward() > best_finished_mean) {
        best_finished_mean = a.MeanReward();
        best_finished = m;
      }
    }
    if (!best_finished.empty()) {
      bool dominated = true;
      for (const auto& m : models_) {
        const Arm& a = arms[m];
        if (a.finished) continue;
        if (a.EffectivePulls() <= 0.0) {
          dominated = false;
          break;
        }
        const double bonus =
            gamma_now() *
            std::sqrt(2.0 *
                      std::log(static_cast<double>(
                          std::max<size_t>(total_pulls, 1))) /
                      a.EffectivePulls());
        if (a.MeanReward() + bonus >= best_finished_mean) {
          dominated = false;
          break;
        }
      }
      if (dominated) {
        result.early_stopped = true;
        OrchestratorEvent event;
        event.type = EventType::kEarlyStop;
        event.model = best_finished;
        event.score = best_finished_mean;
        event.round = round;
        event.total_tokens = used_tokens;
        internal::Emit(event, callback, &result.trace);
        break;
      }
    }
  }

  // --- Final selection (line 16): the arm with the highest reward, i.e.
  // the highest mean reward across its pulls — the bandit's estimate of the
  // arm's value, averaged over many partial-response observations. Failed
  // arms never win; a fully failed pool is a typed error. ---
  if (failed_arms == models_.size()) {
    return internal::AllModelsFailed(name(), models_.size(), last_failure);
  }
  std::vector<std::string> final_responses;
  for (const auto& m : models_) {
    LLMMS_ASSIGN_OR_RETURN(auto text, generation->TextOf(m));
    final_responses.push_back(std::move(text));
  }
  const auto final_scores = scorer_.ScoreRound(prompt, final_responses);

  std::string winner;
  double best_reward = -std::numeric_limits<double>::infinity();
  for (const auto& m : models_) {
    const Arm& arm = arms[m];
    if (arm.failed || arm.pulls == 0) continue;
    if (arm.MeanReward() > best_reward) {
      best_reward = arm.MeanReward();
      winner = m;
    }
  }
  if (winner.empty()) {
    for (const auto& m : models_) {
      if (!arms[m].failed) {
        winner = m;
        break;
      }
    }
  }

  result.best_model = winner;
  LLMMS_ASSIGN_OR_RETURN(result.answer, generation->TextOf(winner));
  result.total_tokens = generation->TotalTokens();
  result.rounds = round;
  result.simulated_seconds = generation->SimulatedWallSeconds();

  for (size_t i = 0; i < models_.size(); ++i) {
    const auto& m = models_[i];
    ModelOutcome outcome;
    outcome.response = final_responses[i];
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
    outcome.tokens = stats.tokens;
    outcome.finished = stats.finished;
    outcome.stop_reason = stats.stop_reason;
    outcome.failed = arms[m].failed;
    outcome.error = arms[m].error;
    outcome.final_score = arms[m].MeanReward();
    outcome.query_similarity = final_scores[i].query_similarity;
    outcome.inter_similarity = final_scores[i].inter_similarity;
    result.per_model[m] = std::move(outcome);
  }
  result.answer_tokens = result.per_model[winner].tokens;

  OrchestratorEvent event;
  event.type = EventType::kFinal;
  event.model = winner;
  event.text = result.answer;
  event.score = best_reward;
  event.round = round;
  event.total_tokens = result.total_tokens;
  internal::Emit(event, callback, &result.trace);
  return result;
}

}  // namespace llmms::core
