#ifndef LLMMS_CORE_OUA_H_
#define LLMMS_CORE_OUA_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/core/orchestrator.h"
#include "llmms/core/reward_feed.h"
#include "llmms/core/scoring.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// Overperformers–Underperformers Algorithm (Algorithm 1).
//
// The token budget lambda_max is split evenly: each of the N models gets an
// allowance of lambda_max/N. Models generate round-robin in chunks; after
// each round every partial response is scored by
// alpha*cos(resp, query) + beta*meanInterSim. The round's best model ends
// the search early when it leads the runner-up by `early_stop_margin` AND
// finished naturally (done reason "stop"); the round's worst model is pruned
// when the second-worst leads it by `prune_margin`, and its unspent
// allowance is redistributed to the survivors. When no active model
// remains, the highest-scoring response wins.
//
// Margin defaults are calibrated to this library's hash-embedding cosine
// scale (the thesis's 0.5 presumes a different embedding scale; see
// DESIGN.md §5 and the prune-margin ablation bench).
class OuaOrchestrator final : public Orchestrator {
 public:
  struct Config {
    ScoringWeights weights;          // alpha=0.7, beta=0.3 (Algorithm 1)
    size_t token_budget = 2048;      // lambda_max (§6.3)
    size_t chunk_tokens = 8;         // tokens per getChunk call per round
    double early_stop_margin = 0.0;  // best > 2nd best + margin => return
    double prune_margin = 0.02;      // 2nd worst - worst > margin => prune
    // Pruning starts after this many rounds so every model gets a hearing.
    size_t min_rounds_before_prune = 1;
    // When set, every round score is published as a reward observation so
    // adaptive hedged models can move their thresholds (DESIGN.md §11).
    // Must outlive the orchestrator; null disables the feedback loop.
    RewardFeed* reward_feed = nullptr;
    // Deadline/cancellation of the request driving this run (null =
    // unbounded). Checked at every round boundary and by the runtime before
    // every chunk; an expired or cancelled request unwinds with the typed
    // DeadlineExceeded / Cancelled status (DESIGN.md §12).
    std::shared_ptr<RequestContext> context;
    // Explicit continuous-batching weight for this query's streams
    // (DESIGN.md §13); <= 0 lets the scheduler derive it from token_budget
    // and deadline slack. Ignored when the runtime has no BatchScheduler.
    double scheduler_weight = 0.0;
  };

  // `runtime` must outlive the orchestrator; `models` must all be loaded.
  OuaOrchestrator(llm::ModelRuntime* runtime, std::vector<std::string> models,
                  std::shared_ptr<const embedding::Embedder> embedder,
                  const Config& config);

  StatusOr<OrchestrationResult> Run(const std::string& prompt,
                                    const EventCallback& callback) override;
  using Orchestrator::Run;

  std::string name() const override { return "llm-ms-oua"; }
  const Config& config() const { return config_; }

 private:
  llm::ModelRuntime* runtime_;
  std::vector<std::string> models_;
  ResponseScorer scorer_;
  Config config_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_OUA_H_
