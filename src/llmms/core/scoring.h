#ifndef LLMMS_CORE_SCORING_H_
#define LLMMS_CORE_SCORING_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/embedding/embedder.h"

namespace llmms::core {

// Weights of the orchestration score (Eq. 6.1 / Algorithm 1 line 1):
// score = alpha * sim(query, response) + beta * inter-model agreement.
struct ScoringWeights {
  double alpha = 0.7;
  double beta = 0.3;
};

// Per-model scores for one evaluation round.
struct RoundScore {
  double query_similarity = 0.0;  // cos(resp, query)
  double inter_similarity = 0.0;  // mean cos against other responses
  double combined = 0.0;          // alpha*query + beta*inter
};

// Computes the per-round scores the orchestrators rank models by. Partial
// responses are embedded once per round; an embedding cache upstream keeps
// this cheap.
class ResponseScorer {
 public:
  ResponseScorer(std::shared_ptr<const embedding::Embedder> embedder,
                 ScoringWeights weights);

  // Scores each response against `query` and against the other responses.
  // Empty responses score 0 on both components.
  std::vector<RoundScore> ScoreRound(
      const std::string& query, const std::vector<std::string>& responses) const;

  // Scalar reward of one response given the other models' responses
  // (Algorithm 2 line 9). `others` may contain empty strings (skipped).
  double ScoreOne(const std::string& query, const std::string& response,
                  const std::vector<std::string>& others) const;

  const ScoringWeights& weights() const { return weights_; }
  const embedding::Embedder& embedder() const { return *embedder_; }

 private:
  std::shared_ptr<const embedding::Embedder> embedder_;
  ScoringWeights weights_;
};

// Weights of the TruthfulQA answer-quality reward (Eq. 8.1):
// reward = w1*sim(resp, golden) + w2*sim(resp, correct) - w3*sim(resp, incorrect).
struct RewardWeights {
  double w1 = 1.0;
  double w2 = 0.5;
  double w3 = 0.5;
};

// Eq. 8.1. Set similarity is the mean cosine over the set's members; empty
// sets contribute 0.
double ComputeReward(const embedding::Embedder& embedder,
                     const std::string& response, const std::string& golden,
                     const std::vector<std::string>& correct,
                     const std::vector<std::string>& incorrect,
                     const RewardWeights& weights = RewardWeights());

// SQuAD-style token-overlap F1 between a response and one reference answer
// (normalized words, bag semantics).
double TokenF1(const std::string& response, const std::string& reference);

// Max TokenF1 of `response` against golden plus every correct answer — the
// per-question F1 used by the evaluation (§8.2).
double BestTokenF1(const std::string& response, const std::string& golden,
                   const std::vector<std::string>& correct);

}  // namespace llmms::core

#endif  // LLMMS_CORE_SCORING_H_
