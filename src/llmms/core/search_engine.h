#ifndef LLMMS_CORE_SEARCH_ENGINE_H_
#define LLMMS_CORE_SEARCH_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "llmms/core/hybrid.h"
#include "llmms/core/mab.h"
#include "llmms/core/orchestrator.h"
#include "llmms/core/oua.h"
#include "llmms/core/reward_feed.h"
#include "llmms/core/single.h"
#include "llmms/llm/runtime.h"
#include "llmms/rag/pipeline.h"
#include "llmms/session/memory_graph.h"
#include "llmms/session/session_store.h"
#include "llmms/vectordb/database.h"

namespace llmms::core {

// Which orchestration strategy answers a query (the settings panel's
// algorithm selector, §5.3).
enum class Algorithm { kOua, kMab, kHybrid, kSingle };

const char* AlgorithmToString(Algorithm algorithm);

// LLM-MS: the end-to-end multi-model search engine. One facade wires the
// whole platform together — session store (context continuity), RAG pipeline
// (vector-database context), model runtime (parallel inference), and the
// orchestration strategies — behind Ask()/Upload() calls, mirroring the
// query lifecycle of Chapter 6.
class SearchEngine {
 public:
  struct QueryOptions {
    Algorithm algorithm = Algorithm::kOua;
    // Model for Algorithm::kSingle; must be loaded.
    std::string single_model;
    // Models to orchestrate over; empty = every loaded model.
    std::vector<std::string> models;
    size_t token_budget = 2048;
    ScoringWeights weights;           // alpha/beta, user-tunable (§5.3)
    double oua_early_stop_margin = 0.0;
    double oua_prune_margin = 0.02;
    size_t oua_chunk_tokens = 8;
    double mab_gamma0 = 0.3;
    size_t mab_chunk_tokens = 16;
    // Feed-prior re-ranking for MAB/hybrid arms (DESIGN.md §16): how many
    // virtual pulls of the engine feed's current estimate each arm starts
    // with. 0 keeps the per-query UCB cold start (the default).
    double feed_prior_weight = 0.0;
    bool use_rag = true;      // inject retrieved document context
    bool use_history = true;  // inject session conversation context
    // Contextual memory graphs (§9.5): recall related past exchanges from
    // the session's memory graph and inject them alongside the history.
    bool use_memory_graph = false;
    // Deadline/cancellation of the request driving this query (null =
    // unbounded). Threaded into the chosen orchestrator and the runtime's
    // chunk loop so a client timeout or disconnect stops generation at the
    // next chunk boundary with a typed status (DESIGN.md §12).
    std::shared_ptr<RequestContext> context;
    // Explicit continuous-batching weight for this query's streams
    // (DESIGN.md §13); <= 0 lets the runtime's BatchScheduler derive it
    // from token_budget and deadline slack. Inert when batching is off.
    double scheduler_weight = 0.0;
  };

  struct AskResult {
    OrchestrationResult orchestration;
    std::string prompt;          // the fully constructed model prompt
    size_t retrieved_chunks = 0; // context chunks injected
    size_t recalled_memories = 0;  // memory-graph exchanges injected
  };

  // `runtime` must outlive the engine.
  SearchEngine(llm::ModelRuntime* runtime,
               std::shared_ptr<const embedding::Embedder> embedder,
               std::shared_ptr<vectordb::VectorDatabase> db,
               std::shared_ptr<session::SessionStore> sessions);

  // Ingests an uploaded document into the session's vector collection.
  StatusOr<size_t> Upload(const std::string& session_id,
                          const std::string& document_id,
                          const std::string& text);

  // Runs the full query lifecycle: retrieval -> prompt construction ->
  // orchestration -> session update. `callback` streams tokens/decisions.
  StatusOr<AskResult> Ask(const std::string& session_id,
                          const std::string& query,
                          const QueryOptions& options,
                          const EventCallback& callback = EventCallback());

  // Ends a session: drops its conversation state and vector collection
  // (the privacy lifecycle of §6.5).
  Status EndSession(const std::string& session_id);

  llm::ModelRuntime* runtime() { return runtime_; }
  const std::shared_ptr<session::SessionStore>& sessions() const {
    return sessions_;
  }
  const std::shared_ptr<vectordb::VectorDatabase>& db() const { return db_; }

  // The engine-lifetime reward bus of the adaptive-hedging loop
  // (DESIGN.md §11). The constructor subscribes every loaded hedged model
  // with HedgeConfig::adapt, and Ask() hands the feed to each
  // OUA/MAB/hybrid run so their scores accumulate across queries (the loop
  // learns the pool's pecking order over a session, not per query). Models
  // without adaptation never subscribe, so for them the feed is inert.
  RewardFeed* reward_feed() { return &reward_feed_; }

  // Switches the feed's estimator (sliding window / exponential decay /
  // lifetime, DESIGN.md §16) and clears its observations. Call before
  // serving; subscribers stay attached. Surfaced by /api/health's adaptive
  // block as `window_size` / `reward_half_life`.
  void ConfigureRewardFeed(const RewardFeedConfig& config) {
    reward_feed_.Configure(config);
  }

  // Options for session RAG pipelines created after this call (existing
  // pipelines keep their configuration). Lets deployments opt sessions into
  // sharded/quantized vector collections (DESIGN.md §15) without plumbing
  // knobs through every Ask call.
  void set_rag_options(const rag::RagPipeline::Options& options) {
    std::lock_guard<std::mutex> lock(mu_);
    rag_options_ = options;
  }
  rag::RagPipeline::Options rag_options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rag_options_;
  }

 private:
  StatusOr<rag::RagPipeline*> PipelineFor(const std::string& session_id);
  session::MemoryGraph* MemoryFor(const std::string& session_id);

  llm::ModelRuntime* runtime_;
  RewardFeed reward_feed_;
  std::shared_ptr<const embedding::Embedder> embedder_;
  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::shared_ptr<session::SessionStore> sessions_;

  mutable std::mutex mu_;
  rag::RagPipeline::Options rag_options_;
  std::unordered_map<std::string, std::unique_ptr<rag::RagPipeline>> pipelines_;
  std::unordered_map<std::string, std::unique_ptr<session::MemoryGraph>>
      memories_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_SEARCH_ENGINE_H_
