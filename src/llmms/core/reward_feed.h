#ifndef LLMMS_CORE_REWARD_FEED_H_
#define LLMMS_CORE_REWARD_FEED_H_

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/core/orchestrator.h"

namespace llmms::llm {
class ModelRuntime;
}  // namespace llmms::llm

namespace llmms::core {

// The feedback bus that closes the adaptive-hedging loop (DESIGN.md §11):
// orchestrators publish every per-model reward observation (OUA round
// scores, UCB1 pull rewards) here; subscribers — hedged models with
// HedgeConfig::adapt — turn the stream into hedge-percentile moves.
//
// From the raw rewards the feed computes a pool-relative *favour* in
// [0, 1] for each model:
//
//   favour = (mean_reward / best_mean_reward_in_pool) * min(1, count/warmup)
//
// so the orchestrator's current favourite converges to 1, losers fall
// toward their score ratio, and models with few observations are damped by
// the warm-up ramp (a cold model must not hedge aggressively off one lucky
// score). Negative means clamp to 0.
//
// Layering: this lives in core (above llm), so llm::HedgedModel never sees
// it — subscribers are plain lambdas wired by AttachAdaptiveHedging(),
// which call HedgedModel::ApplyRewardFavour. Subscribers run outside the
// feed lock and synchronously on the publishing orchestrator's thread; the
// returned Adaptation (did the effective percentile move, and whence to
// where) is handed back to the publisher so it can emit the
// EventType::kHedgeAdapt trace event.
//
// Thread-safe; subscribers must be registered before queries run.
class RewardFeed {
 public:
  struct Stats {
    double reward_sum = 0.0;
    size_t count = 0;
    double MeanReward() const {
      return count == 0 ? 0.0 : reward_sum / static_cast<double>(count);
    }
  };

  // One published observation, as delivered to the model's subscriber.
  struct Update {
    std::string model;
    double reward = 0.0;
    double mean = 0.0;    // the model's running mean after this observation
    size_t count = 0;     // observations of this model so far
    double favour = 0.0;  // pool-relative favour in [0, 1]
  };

  // What the subscriber did in response; `changed` is false for a no-op
  // (identical percentile, adaptation disabled, bounds already reached).
  struct Adaptation {
    bool changed = false;
    double old_percentile = 0.0;
    double new_percentile = 0.0;
    double favour = 0.0;
  };

  using Subscriber = std::function<Adaptation(const Update&)>;

  explicit RewardFeed(size_t warmup = 8)
      : warmup_(warmup == 0 ? 1 : warmup) {}

  // At most one subscriber per model; the last registration wins.
  void Subscribe(const std::string& model, Subscriber subscriber);

  // Records one reward observation and notifies the model's subscriber (if
  // any). Returns the subscriber's Adaptation so the publishing
  // orchestrator can trace a percentile move; `changed` is false when the
  // model has no subscriber.
  Adaptation Publish(const std::string& model, double reward);

  Stats StatsFor(const std::string& model) const;
  // The favour Publish() would hand the model's subscriber right now.
  double FavourOf(const std::string& model) const;
  size_t warmup() const { return warmup_; }

  void Reset();

 private:
  double FavourLocked(const std::string& model) const;

  const size_t warmup_;
  mutable std::mutex mu_;
  std::map<std::string, Stats> stats_;
  std::map<std::string, Subscriber> subscribers_;
};

// Subscribes every loaded llm::HedgedModel with HedgeConfig::adapt to the
// feed, wiring Update::favour into HedgedModel::ApplyRewardFavour. Returns
// how many models were attached. Call after the models are loaded; models
// loaded later are not attached.
size_t AttachAdaptiveHedging(RewardFeed* feed, llm::ModelRuntime* runtime);

namespace internal {

// Orchestrator-side publication helper: a no-op when `feed` is null;
// otherwise publishes the reward and, when the subscribing model moved its
// effective hedge percentile, emits the EventType::kHedgeAdapt event whose
// detail reads "p0.950->0.781 favour=0.375" (score = the new percentile).
void PublishReward(RewardFeed* feed, const std::string& model, double reward,
                   size_t round, size_t total_tokens,
                   const EventCallback& callback,
                   std::vector<TraceEntry>* trace);

}  // namespace internal
}  // namespace llmms::core

#endif  // LLMMS_CORE_REWARD_FEED_H_
