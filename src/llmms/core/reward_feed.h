#ifndef LLMMS_CORE_REWARD_FEED_H_
#define LLMMS_CORE_REWARD_FEED_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "llmms/common/json.h"
#include "llmms/core/orchestrator.h"

namespace llmms::llm {
class ModelRuntime;
class StateStore;
}  // namespace llmms::llm

namespace llmms::core {

// How the feed turns a reward stream into per-model means (DESIGN.md §16).
//
// Time is measured in *feed ticks*: every Publish() — for any model —
// advances one global tick. Defining the clock over the whole pool (rather
// than per model) is what makes the feed react to non-stationary model
// quality: a model the orchestrators stopped pulling ages out even though
// it observed nothing new itself.
//
// Exactly one estimator is active:
//   - window > 0   — sliding window: only observations from the last
//                    `window` feed ticks count. Older samples are evicted
//                    outright, so a model whose evidence has aged out
//                    reports zero retained samples (and therefore zero
//                    favour — see the warm-up guard below).
//   - half_life > 0 (and window == 0) — exponential decay: an observation's
//                    weight is halved every `half_life` feed ticks,
//                    i.e. scaled by d^age with d = 2^(-1/half_life). The
//                    mean is the weighted average; the retained-sample
//                    count is the decayed weight sum.
//   - neither      — lifetime means (the PR 4 behaviour, the default).
struct RewardFeedConfig {
  // Retained observations needed before a model's favour ramps to full
  // strength (a cold model must not hedge aggressively off one lucky
  // score). Clamped to >= 1.
  size_t warmup = 8;
  // Sliding-window length in feed ticks; 0 disables the window.
  size_t window = 0;
  // Exponential-decay half-life in feed ticks; 0 disables decay. Ignored
  // when `window` is set.
  double half_life = 0.0;
};

// The feedback bus that closes the adaptive-hedging loop (DESIGN.md §11):
// orchestrators publish every per-model reward observation (OUA round
// scores, UCB1 pull rewards) here; subscribers — hedged models with
// HedgeConfig::adapt — turn the stream into hedge-percentile moves, and
// MAB/hybrid runs can seed their arms from the feed's current estimates
// (Config::feed_prior_weight) so pools re-rank mid-session.
//
// From the raw rewards the feed computes a pool-relative *favour* in
// [0, 1] for each model:
//
//   favour = (mean / best_mean_in_pool) * min(1, retained/warmup)
//
// where `mean` and `retained` come from the configured estimator
// (lifetime, sliding-window, or decayed — see RewardFeedConfig). The
// orchestrator's current favourite converges to 1, losers fall toward
// their score ratio, and models with little *retained* evidence are damped
// by the warm-up ramp. A model with zero retained samples — never
// observed, or every observation evicted/decayed away — always reports
// favour 0, even if its lifetime count is positive. Negative means clamp
// to 0.
//
// Layering: this lives in core (above llm), so llm::HedgedModel never sees
// it — subscribers are plain lambdas wired by AttachAdaptiveHedging(),
// which call HedgedModel::ApplyRewardFavour. Subscribers run outside the
// feed lock and synchronously on the publishing orchestrator's thread; the
// returned Adaptation (did the effective percentile move, and whence to
// where) is handed back to the publisher so it can emit the
// EventType::kHedgeAdapt trace event.
//
// Thread-safe; subscribers must be registered before queries run.
class RewardFeed {
 public:
  // Lifetime totals (kept in every mode, for reporting and tests).
  struct Stats {
    double reward_sum = 0.0;
    size_t count = 0;
    double MeanReward() const {
      return count == 0 ? 0.0 : reward_sum / static_cast<double>(count);
    }
  };

  // The configured estimator's current view of one model: the windowed /
  // decayed / lifetime mean, and how much evidence it still retains
  // (observations in window mode, decayed weight in decay mode).
  struct Estimate {
    double mean = 0.0;
    double weight = 0.0;
  };

  // One published observation, as delivered to the model's subscriber.
  struct Update {
    std::string model;
    double reward = 0.0;
    double mean = 0.0;    // the estimator's mean after this observation
    size_t count = 0;     // lifetime observations of this model so far
    double favour = 0.0;  // pool-relative favour in [0, 1]
  };

  // What the subscriber did in response; `changed` is false for a no-op
  // (identical percentile, adaptation disabled, bounds already reached).
  struct Adaptation {
    bool changed = false;
    double old_percentile = 0.0;
    double new_percentile = 0.0;
    double favour = 0.0;
  };

  // Durable state (llm::StateStore "rewards" section, via AttachRewardFeed):
  // the global tick plus every model's lifetime totals, window entries, and
  // decay accumulators.
  struct ModelSnapshot {
    Stats lifetime;
    std::vector<std::pair<uint64_t, double>> window;  // (tick, reward)
    double decayed_sum = 0.0;
    double decayed_weight = 0.0;
    uint64_t last_tick = 0;
  };
  struct Snapshot {
    uint64_t tick = 0;
    std::map<std::string, ModelSnapshot> models;
  };

  using Subscriber = std::function<Adaptation(const Update&)>;

  explicit RewardFeed(size_t warmup) { config_.warmup = warmup; Sanitize(); }
  explicit RewardFeed(const RewardFeedConfig& config = RewardFeedConfig())
      : config_(config) {
    Sanitize();
  }

  // Replaces the estimator configuration and clears every observation (a
  // lifetime sum cannot be turned into a window retroactively). Call before
  // serving; not meant to race published rewards.
  void Configure(const RewardFeedConfig& config);
  RewardFeedConfig config() const;

  // At most one subscriber per model; the last registration wins.
  void Subscribe(const std::string& model, Subscriber subscriber);

  // Records one reward observation and notifies the model's subscriber (if
  // any). Returns the subscriber's Adaptation so the publishing
  // orchestrator can trace a percentile move; `changed` is false when the
  // model has no subscriber.
  Adaptation Publish(const std::string& model, double reward);

  // Lifetime totals (never windowed or decayed).
  Stats StatsFor(const std::string& model) const;
  // The configured estimator's current mean + retained evidence.
  Estimate EstimateFor(const std::string& model) const;
  // The favour Publish() would hand the model's subscriber right now.
  double FavourOf(const std::string& model) const;
  size_t warmup() const { return config().warmup; }
  // Feed ticks elapsed (== total observations published).
  uint64_t tick() const;

  Snapshot SnapshotState() const;
  // All-or-nothing: replaces the feed's observations (subscribers and the
  // configuration are untouched).
  void RestoreState(const Snapshot& snapshot);

  void Reset();

 private:
  struct ModelState {
    Stats lifetime;
    // Sliding-window entries, oldest first; only used when window > 0.
    std::deque<std::pair<uint64_t, double>> window;
    // Decay accumulators, aged lazily to last_tick; used when half_life > 0.
    double decayed_sum = 0.0;
    double decayed_weight = 0.0;
    uint64_t last_tick = 0;
  };

  void Sanitize() {
    if (config_.warmup == 0) config_.warmup = 1;
    if (config_.half_life < 0.0) config_.half_life = 0.0;
  }
  // The per-tick decay factor d = 2^(-1/half_life); 1.0 when decay is off.
  double DecayFactor() const;
  Estimate EstimateLocked(const ModelState& state) const;
  double FavourLocked(const std::string& model) const;

  RewardFeedConfig config_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  std::map<std::string, ModelState> stats_;
  std::map<std::string, Subscriber> subscribers_;
};

// Subscribes every loaded llm::HedgedModel with HedgeConfig::adapt to the
// feed, wiring Update::favour into HedgedModel::ApplyRewardFavour. Returns
// how many models were attached. Call after the models are loaded; models
// loaded later are not attached.
size_t AttachAdaptiveHedging(RewardFeed* feed, llm::ModelRuntime* runtime);

// Durable reward means (DESIGN.md §16): restores the store's saved
// "rewards" section into `feed` (no-op when the store has none) and
// registers a section provider so every StateStore::SaveNow() persists the
// feed's live snapshot. Both must outlive the store's save activity.
void AttachRewardFeed(llm::StateStore* store, RewardFeed* feed);

// JSON (de)serialization of feed snapshots, exposed for tests.
Json RewardFeedToJson(const RewardFeed::Snapshot& snapshot);
RewardFeed::Snapshot RewardFeedFromJson(const Json& json);

namespace internal {

// Orchestrator-side publication helper: a no-op when `feed` is null;
// otherwise publishes the reward and, when the subscribing model moved its
// effective hedge percentile, emits the EventType::kHedgeAdapt event whose
// detail reads "p0.950->0.781 favour=0.375" (score = the new percentile).
void PublishReward(RewardFeed* feed, const std::string& model, double reward,
                   size_t round, size_t total_tokens,
                   const EventCallback& callback,
                   std::vector<TraceEntry>* trace);

// Feed-prior helper shared by MAB and hybrid phase 2
// (Config::feed_prior_weight): seeds a UCB arm with the feed's current
// estimate for `model` as virtual pulls. The prior's weight is
// min(feed_prior_weight, retained evidence), so a model the feed has all
// but forgotten — evicted window, decayed weight — contributes almost
// nothing, which is exactly what lets a pool re-rank after a competence
// drift. A no-op (both outputs 0) when `feed` is null, the weight knob is
// off, or the feed retains nothing.
void SeedArmFromFeed(const RewardFeed* feed, const std::string& model,
                     double feed_prior_weight, double* prior_sum,
                     double* prior_weight);

}  // namespace internal
}  // namespace llmms::core

#endif  // LLMMS_CORE_REWARD_FEED_H_
