#ifndef LLMMS_CORE_MAB_H_
#define LLMMS_CORE_MAB_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/core/orchestrator.h"
#include "llmms/core/reward_feed.h"
#include "llmms/core/scoring.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// Multi-Armed Bandit orchestrator (Algorithm 2): each model is an arm with
// an unknown reward distribution. Token chunks are pulled one at a time by
// the UCB1 policy
//
//   UCB_i = mean_reward_i + gamma * sqrt(2 ln(totalPulls) / pulls_i)
//
// with the exploration coefficient decaying as the budget is consumed:
// gamma = gamma0 * (1 - usedTokens / lambda_max). The pull's reward is
// alpha*sim(query, response) + beta*avgInterModelSimilarity over the arm's
// accumulated response. Arms that finished naturally stop being pullable;
// the orchestration ends when the budget is exhausted, every arm finished,
// or a finished arm's mean reward dominates every live arm's upper bound.
// The answer is the response of the arm with the highest mean reward across
// its pulls (the bandit's value estimate, averaged over many
// partial-response observations).
class MabOrchestrator final : public Orchestrator {
 public:
  struct Config {
    ScoringWeights weights;      // alpha=0.7, beta=0.3
    size_t token_budget = 2048;  // lambda_max
    size_t chunk_tokens = 16;    // tokens per pull
    double gamma0 = 0.3;         // initial exploration coefficient
    bool decay_gamma = true;     // gamma = gamma0*(1 - used/budget)
    // When set, every pull reward is published so adaptive hedged models
    // can move their thresholds (DESIGN.md §11). Must outlive the
    // orchestrator; null disables the feedback loop.
    RewardFeed* reward_feed = nullptr;
    // Feed-prior re-ranking (DESIGN.md §16): when > 0 and `reward_feed` is
    // set, each arm starts with the feed's current estimate for its model
    // as `feed_prior_weight` virtual pulls (capped by the estimate's own
    // retained weight, so a barely observed model gets a barely weighted
    // prior). Arms carrying a prior skip the guaranteed cold-start pull —
    // across a session the bandit stops spending a free exploration chunk
    // per query on models the pool already knows are bad, which is where
    // the reward/token win comes from. 0 preserves the per-query cold
    // start exactly (the default).
    double feed_prior_weight = 0.0;
    // Deadline/cancellation of the request driving this run (null =
    // unbounded); checked at every pull boundary (DESIGN.md §12).
    std::shared_ptr<RequestContext> context;
    // Explicit continuous-batching weight (DESIGN.md §13); <= 0 derives it
    // from token_budget and deadline slack. Ignored without a scheduler.
    double scheduler_weight = 0.0;
  };

  MabOrchestrator(llm::ModelRuntime* runtime, std::vector<std::string> models,
                  std::shared_ptr<const embedding::Embedder> embedder,
                  const Config& config);

  StatusOr<OrchestrationResult> Run(const std::string& prompt,
                                    const EventCallback& callback) override;
  using Orchestrator::Run;

  std::string name() const override { return "llm-ms-mab"; }
  const Config& config() const { return config_; }

 private:
  llm::ModelRuntime* runtime_;
  std::vector<std::string> models_;
  ResponseScorer scorer_;
  Config config_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_MAB_H_
