#include "llmms/core/scoring.h"

#include <algorithm>
#include <unordered_map>

#include "llmms/embedding/similarity.h"
#include "llmms/tokenizer/word_tokenizer.h"

namespace llmms::core {

ResponseScorer::ResponseScorer(
    std::shared_ptr<const embedding::Embedder> embedder,
    ScoringWeights weights)
    : embedder_(std::move(embedder)), weights_(weights) {}

std::vector<RoundScore> ResponseScorer::ScoreRound(
    const std::string& query, const std::vector<std::string>& responses) const {
  std::vector<RoundScore> scores(responses.size());
  if (responses.empty()) return scores;

  const auto query_embedding = embedder_->Embed(query);
  std::vector<embedding::Vector> response_embeddings(responses.size());
  std::vector<bool> non_empty(responses.size(), false);
  for (size_t i = 0; i < responses.size(); ++i) {
    if (responses[i].empty()) continue;
    non_empty[i] = true;
    response_embeddings[i] = embedder_->Embed(responses[i]);
  }

  for (size_t i = 0; i < responses.size(); ++i) {
    if (!non_empty[i]) continue;
    RoundScore& s = scores[i];
    s.query_similarity = embedding::CosineSimilarity(response_embeddings[i],
                                                     query_embedding);
    double inter_sum = 0.0;
    size_t inter_count = 0;
    for (size_t j = 0; j < responses.size(); ++j) {
      if (j == i || !non_empty[j]) continue;
      inter_sum += embedding::CosineSimilarity(response_embeddings[i],
                                               response_embeddings[j]);
      ++inter_count;
    }
    s.inter_similarity =
        inter_count > 0 ? inter_sum / static_cast<double>(inter_count) : 0.0;
    s.combined =
        weights_.alpha * s.query_similarity + weights_.beta * s.inter_similarity;
  }
  return scores;
}

double ResponseScorer::ScoreOne(const std::string& query,
                                const std::string& response,
                                const std::vector<std::string>& others) const {
  if (response.empty()) return 0.0;
  const auto query_embedding = embedder_->Embed(query);
  const auto response_embedding = embedder_->Embed(response);
  const double query_similarity =
      embedding::CosineSimilarity(response_embedding, query_embedding);
  double inter_sum = 0.0;
  size_t inter_count = 0;
  for (const auto& other : others) {
    if (other.empty()) continue;
    inter_sum += embedding::CosineSimilarity(response_embedding,
                                             embedder_->Embed(other));
    ++inter_count;
  }
  const double inter =
      inter_count > 0 ? inter_sum / static_cast<double>(inter_count) : 0.0;
  return weights_.alpha * query_similarity + weights_.beta * inter;
}

namespace {

double MeanSimilarityToSet(const embedding::Embedder& embedder,
                           const embedding::Vector& response_embedding,
                           const std::vector<std::string>& texts) {
  if (texts.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& text : texts) {
    sum += embedding::CosineSimilarity(response_embedding,
                                       embedder.Embed(text));
  }
  return sum / static_cast<double>(texts.size());
}

}  // namespace

double ComputeReward(const embedding::Embedder& embedder,
                     const std::string& response, const std::string& golden,
                     const std::vector<std::string>& correct,
                     const std::vector<std::string>& incorrect,
                     const RewardWeights& weights) {
  const auto response_embedding = embedder.Embed(response);
  const double golden_sim =
      golden.empty() ? 0.0
                     : embedding::CosineSimilarity(response_embedding,
                                                   embedder.Embed(golden));
  const double correct_sim =
      MeanSimilarityToSet(embedder, response_embedding, correct);
  const double incorrect_sim =
      MeanSimilarityToSet(embedder, response_embedding, incorrect);
  return weights.w1 * golden_sim + weights.w2 * correct_sim -
         weights.w3 * incorrect_sim;
}

double TokenF1(const std::string& response, const std::string& reference) {
  static const tokenizer::WordTokenizer::Options kOpts{
      .lowercase = true,
      .strip_punctuation = true,
      .remove_articles = true,
      .remove_stopwords = false,
  };
  static const tokenizer::WordTokenizer kTokenizer(kOpts);
  const auto response_tokens = kTokenizer.Tokenize(response);
  const auto reference_tokens = kTokenizer.Tokenize(reference);
  if (response_tokens.empty() || reference_tokens.empty()) {
    return response_tokens.empty() && reference_tokens.empty() ? 1.0 : 0.0;
  }
  std::unordered_map<std::string, int> reference_counts;
  for (const auto& t : reference_tokens) ++reference_counts[t];
  int overlap = 0;
  for (const auto& t : response_tokens) {
    auto it = reference_counts.find(t);
    if (it != reference_counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  if (overlap == 0) return 0.0;
  const double precision =
      static_cast<double>(overlap) / static_cast<double>(response_tokens.size());
  const double recall = static_cast<double>(overlap) /
                        static_cast<double>(reference_tokens.size());
  return 2.0 * precision * recall / (precision + recall);
}

double BestTokenF1(const std::string& response, const std::string& golden,
                   const std::vector<std::string>& correct) {
  double best = golden.empty() ? 0.0 : TokenF1(response, golden);
  for (const auto& ref : correct) {
    best = std::max(best, TokenF1(response, ref));
  }
  return best;
}

}  // namespace llmms::core
