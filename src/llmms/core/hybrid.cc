#include "llmms/core/hybrid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace llmms::core {

HybridOrchestrator::HybridOrchestrator(
    llm::ModelRuntime* runtime, std::vector<std::string> models,
    std::shared_ptr<const embedding::Embedder> embedder, const Config& config)
    : runtime_(runtime),
      models_(std::move(models)),
      scorer_(std::move(embedder), config.weights),
      config_(config) {}

StatusOr<OrchestrationResult> HybridOrchestrator::Run(
    const std::string& prompt, const EventCallback& callback) {
  if (models_.empty()) {
    return Status::FailedPrecondition("hybrid requires at least one model");
  }
  if (config_.token_budget == 0 || config_.chunk_tokens == 0 ||
      config_.mab_chunk_tokens == 0) {
    return Status::InvalidArgument("budgets and chunk sizes must be > 0");
  }

  llm::GenerationRequest request;
  request.prompt = prompt;
  request.context = config_.context;
  request.token_budget = config_.token_budget;
  request.scheduler_weight = config_.scheduler_weight;
  LLMMS_ASSIGN_OR_RETURN(auto generation,
                         runtime_->StartGeneration(models_, request));

  OrchestrationResult result;
  std::unordered_set<std::string> pruned;
  std::unordered_set<std::string> failed;
  std::unordered_map<std::string, std::string> failure_messages;
  Status last_failure = Status::OK();
  std::unordered_map<std::string, RoundScore> last_scores;
  size_t used_tokens = 0;
  size_t round = 0;
  size_t stalled_rounds = 0;

  auto emit = [&](EventType type, const std::string& model, double score,
                  const std::string& text = "") {
    OrchestratorEvent event;
    event.type = type;
    event.model = model;
    event.text = text;
    event.score = score;
    event.round = round;
    event.total_tokens = used_tokens;
    internal::Emit(event, callback, &result.trace);
  };

  auto survivors = [&]() {
    std::vector<std::string> out;
    for (const auto& m : models_) {
      if (pruned.count(m) == 0 && failed.count(m) == 0) out.push_back(m);
    }
    return out;
  };

  // A failed model is out of both phases; the shared budget flows to the
  // survivors automatically since allocation is per pull.
  auto quarantine = [&](const std::string& model, const Status& error) {
    failed.insert(model);
    failure_messages[model] = error.message();
    last_failure = error;
    internal::EmitFailure(model, error, round, used_tokens, callback,
                          &result.trace);
  };

  // Models that refused to start join the run pre-failed.
  for (const auto& m : models_) {
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
    if (stats.failed) quarantine(m, Status::Internal(stats.error));
  }

  auto score_candidates = [&](const std::vector<std::string>& candidates)
      -> Status {
    std::vector<std::string> responses;
    for (const auto& m : candidates) {
      LLMMS_ASSIGN_OR_RETURN(auto text, generation->TextOf(m));
      responses.push_back(std::move(text));
    }
    const auto scores = scorer_.ScoreRound(prompt, responses);
    for (size_t i = 0; i < candidates.size(); ++i) {
      last_scores[candidates[i]] = scores[i];
      emit(EventType::kScore, candidates[i], scores[i].combined);
      internal::PublishReward(config_.reward_feed, candidates[i],
                              scores[i].combined, round, used_tokens,
                              callback, &result.trace);
    }
    return Status::OK();
  };

  // ---------------- Phase 1: OUA-style round-robin screening. ----------------
  for (size_t screening = 0; screening < config_.screening_rounds; ++screening) {
    if (config_.context != nullptr) {
      LLMMS_RETURN_NOT_OK(config_.context->Check());
    }
    ++round;
    std::vector<std::pair<std::string, size_t>> requests;
    for (const auto& m : survivors()) {
      LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
      if (stats.finished) continue;
      const size_t remaining = config_.token_budget - used_tokens;
      if (remaining == 0) break;
      requests.emplace_back(m, std::min(config_.chunk_tokens, remaining));
    }
    if (!requests.empty()) {
      LLMMS_ASSIGN_OR_RETURN(auto batch, generation->NextChunks(requests));
      for (const auto& [model, error] : batch.errors) {
        quarantine(model, error);
      }
      size_t round_tokens = 0;
      for (const auto& [model, chunk] : batch.chunks) {
        used_tokens += chunk.num_tokens;
        round_tokens += chunk.num_tokens;
        internal::EmitHedge(model, chunk, round, used_tokens, callback,
                            &result.trace);
        if (chunk.num_tokens > 0 && callback) {
          emit(EventType::kChunk, model, 0.0, chunk.text);
        }
      }
      if (round_tokens == 0) {
        if (++stalled_rounds >= kMaxStalledRounds) break;
      } else {
        stalled_rounds = 0;
      }
    }

    const auto active = survivors();
    if (active.empty()) break;  // everyone failed: handled after phase 2
    LLMMS_RETURN_NOT_OK(score_candidates(active));
    if (active.size() <= config_.min_survivors) continue;

    std::string worst;
    double worst_score = std::numeric_limits<double>::infinity();
    double second_worst = std::numeric_limits<double>::infinity();
    for (const auto& m : active) {
      const double s = last_scores[m].combined;
      if (s < worst_score) {
        second_worst = worst_score;
        worst_score = s;
        worst = m;
      } else if (s < second_worst) {
        second_worst = s;
      }
    }
    if (!worst.empty() && second_worst - worst_score > config_.prune_margin) {
      pruned.insert(worst);
      emit(EventType::kPrune, worst, worst_score);
    }
  }

  // ---------------- Phase 2: UCB1 allocation among the survivors. -------------
  struct Arm {
    double reward_sum = 0.0;
    size_t pulls = 0;
    // Feed-prior virtual evidence (Config::feed_prior_weight), folded into
    // the value estimate and the UCB pull count as virtual pulls.
    double prior_sum = 0.0;
    double prior_weight = 0.0;
    bool finished = false;
    double EffectivePulls() const {
      return static_cast<double>(pulls) + prior_weight;
    }
    double MeanReward() const {
      const double effective = EffectivePulls();
      return effective > 0.0 ? (reward_sum + prior_sum) / effective : 0.0;
    }
  };
  std::unordered_map<std::string, Arm> arms;
  const auto contenders = survivors();
  for (const auto& m : contenders) {
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
    Arm arm;
    arm.finished = stats.finished;
    internal::SeedArmFromFeed(config_.reward_feed, m,
                              config_.feed_prior_weight, &arm.prior_sum,
                              &arm.prior_weight);
    arms[m] = arm;
  }
  size_t total_pulls = 0;

  while (used_tokens < config_.token_budget) {
    // Both phases stop buying tokens the moment the request dies.
    if (config_.context != nullptr) {
      LLMMS_RETURN_NOT_OK(config_.context->Check());
    }
    ++round;
    const double gamma =
        config_.gamma0 *
        std::max(0.0, 1.0 - static_cast<double>(used_tokens) /
                               static_cast<double>(config_.token_budget));
    std::string chosen;
    for (const auto& m : contenders) {
      if (!arms[m].finished && arms[m].EffectivePulls() <= 0.0) {
        chosen = m;
        break;
      }
    }
    if (chosen.empty()) {
      double best_ucb = -std::numeric_limits<double>::infinity();
      for (const auto& m : contenders) {
        const Arm& arm = arms[m];
        if (arm.finished) continue;
        const double bonus =
            gamma * std::sqrt(2.0 *
                              std::log(static_cast<double>(
                                  std::max<size_t>(total_pulls, 1))) /
                              arm.EffectivePulls());
        if (arm.MeanReward() + bonus > best_ucb) {
          best_ucb = arm.MeanReward() + bonus;
          chosen = m;
        }
      }
    }
    if (chosen.empty()) break;  // every survivor finished

    const size_t ask = std::min(config_.mab_chunk_tokens,
                                config_.token_budget - used_tokens);
    auto chunk_or = generation->NextChunk(chosen, ask);
    if (!chunk_or.ok()) {
      quarantine(chosen, chunk_or.status());
      arms[chosen].finished = true;
      if (failed.size() == models_.size()) {
        return internal::AllModelsFailed(name(), models_.size(),
                                         last_failure);
      }
      continue;
    }
    const llm::Chunk chunk = std::move(chunk_or).value();
    used_tokens += chunk.num_tokens;
    internal::EmitHedge(chosen, chunk, round, used_tokens, callback,
                        &result.trace);
    if (chunk.num_tokens == 0 && !chunk.done) {
      if (++stalled_rounds >= kMaxStalledRounds) break;
    } else {
      stalled_rounds = 0;
    }
    if (chunk.num_tokens > 0 && callback) {
      emit(EventType::kChunk, chosen, 0.0, chunk.text);
    }

    LLMMS_ASSIGN_OR_RETURN(auto response, generation->TextOf(chosen));
    std::vector<std::string> others;
    for (const auto& m : contenders) {
      if (m == chosen) continue;
      LLMMS_ASSIGN_OR_RETURN(auto text, generation->TextOf(m));
      others.push_back(std::move(text));
    }
    const double reward = scorer_.ScoreOne(prompt, response, others);
    Arm& arm = arms[chosen];
    arm.reward_sum += reward;
    ++arm.pulls;
    ++total_pulls;
    if (chunk.done) arm.finished = true;
    emit(EventType::kScore, chosen, reward);
    internal::PublishReward(config_.reward_feed, chosen, reward, round,
                            used_tokens, callback, &result.trace);
  }

  // ---------------- Final selection. Failed models never win; a fully
  // failed pool is a typed error. ----------------
  if (failed.size() == models_.size()) {
    return internal::AllModelsFailed(name(), models_.size(), last_failure);
  }
  std::string winner;
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& m : contenders) {
    if (failed.count(m) > 0) continue;
    // Mean reward when the arm was pulled in phase 2; phase-1 score as the
    // fallback for arms that finished during screening.
    const double value = arms[m].pulls > 0 ? arms[m].MeanReward()
                                           : last_scores[m].combined;
    if (value > best) {
      best = value;
      winner = m;
    }
  }
  if (winner.empty()) {
    // Every contender failed mid-phase-2: fall back to any healthy model
    // (possibly one pruned during screening).
    for (const auto& m : models_) {
      if (failed.count(m) == 0) {
        winner = m;
        break;
      }
    }
  }

  // Final per-model scores for reporting.
  std::vector<std::string> final_responses;
  for (const auto& m : models_) {
    LLMMS_ASSIGN_OR_RETURN(auto text, generation->TextOf(m));
    final_responses.push_back(std::move(text));
  }
  const auto final_scores = scorer_.ScoreRound(prompt, final_responses);

  result.best_model = winner;
  LLMMS_ASSIGN_OR_RETURN(result.answer, generation->TextOf(winner));
  result.total_tokens = generation->TotalTokens();
  result.rounds = round;
  result.simulated_seconds = generation->SimulatedWallSeconds();
  for (size_t i = 0; i < models_.size(); ++i) {
    const auto& m = models_[i];
    ModelOutcome outcome;
    outcome.response = final_responses[i];
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(m));
    outcome.tokens = stats.tokens;
    outcome.finished = stats.finished;
    outcome.stop_reason = stats.stop_reason;
    outcome.pruned = pruned.count(m) > 0;
    outcome.failed = failed.count(m) > 0;
    auto fail_it = failure_messages.find(m);
    if (fail_it != failure_messages.end()) outcome.error = fail_it->second;
    outcome.final_score = arms.count(m) > 0 && arms[m].pulls > 0
                              ? arms[m].MeanReward()
                              : last_scores[m].combined;
    outcome.query_similarity = final_scores[i].query_similarity;
    outcome.inter_similarity = final_scores[i].inter_similarity;
    result.per_model[m] = std::move(outcome);
  }
  result.answer_tokens = result.per_model[winner].tokens;
  emit(EventType::kFinal, winner, best, result.answer);
  return result;
}

}  // namespace llmms::core
