#ifndef LLMMS_CORE_FEEDBACK_H_
#define LLMMS_CORE_FEEDBACK_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"

namespace llmms::core {

// Self-improving orchestration (§9.5 "Self-Improving Orchestration"):
// a running record of how well each model has performed per task domain.
// Orchestration outcomes feed it; the cognitive router reads it to send new
// queries to the models that historically handled that kind of task best.
// Thread-safe; persists to JSON.
class FeedbackStore {
 public:
  struct Stats {
    double reward_sum = 0.0;
    size_t count = 0;
    size_t wins = 0;
    double MeanReward() const {
      return count > 0 ? reward_sum / static_cast<double>(count) : 0.0;
    }
    double WinRate() const {
      return count > 0 ? static_cast<double>(wins) / static_cast<double>(count)
                       : 0.0;
    }
  };

  FeedbackStore() = default;
  FeedbackStore(const FeedbackStore&) = delete;
  FeedbackStore& operator=(const FeedbackStore&) = delete;

  // Records one observation of `model` on a query of `domain`.
  void Record(const std::string& model, const std::string& domain,
              double reward, bool won);

  Stats GetStats(const std::string& model, const std::string& domain) const;

  // Total observations for a domain across models.
  size_t DomainObservations(const std::string& domain) const;

  // Models ranked by mean reward on `domain` (best first); models with no
  // observations rank last with prior 0. Only `known_models` are returned.
  std::vector<std::string> RankModels(
      const std::string& domain,
      const std::vector<std::string>& known_models) const;

  // JSON round trip so the index survives restarts.
  std::string ToJson() const;
  static StatusOr<std::unique_ptr<FeedbackStore>> FromJson(
      const std::string& text);

 private:
  mutable std::mutex mu_;
  // (model, domain) -> stats; std::map for deterministic serialization.
  std::map<std::pair<std::string, std::string>, Stats> stats_;
};

// Game-theoretic model coordination (§9.5): each model is a player earning
// rating from per-query outcomes. Standard Elo: after a query, the winning
// model "beats" every other participant. Ratings act as a cheap global
// quality prior (e.g. a routing tie-breaker). Thread-safe.
class EloRatings {
 public:
  explicit EloRatings(double k_factor = 16.0, double initial = 1000.0)
      : k_factor_(k_factor), initial_(initial) {}

  EloRatings(const EloRatings&) = delete;
  EloRatings& operator=(const EloRatings&) = delete;

  // Applies one query outcome: `winner` beats each model in `losers`.
  void RecordOutcome(const std::string& winner,
                     const std::vector<std::string>& losers);

  double Rating(const std::string& model) const;

  // (model, rating) pairs sorted best-first.
  std::vector<std::pair<std::string, double>> Ranking() const;

 private:
  double ExpectedScore(double a, double b) const;

  double k_factor_;
  double initial_;
  mutable std::mutex mu_;
  std::map<std::string, double> ratings_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_FEEDBACK_H_
