#include "llmms/core/trace_report.h"

#include "llmms/common/string_util.h"

namespace llmms::core {

std::string FormatTrace(const OrchestrationResult& result) {
  std::string out;
  for (const auto& entry : result.trace) {
    if (entry.action == "score") {
      out += StrFormat("round %zu: scored %s at %s\n", entry.round,
                       entry.model.c_str(),
                       FormatDouble(entry.score, 3).c_str());
    } else if (entry.action == "prune") {
      out += StrFormat("round %zu: pruned %s (score %s fell behind)\n",
                       entry.round, entry.model.c_str(),
                       FormatDouble(entry.score, 3).c_str());
    } else if (entry.action == "early-stop") {
      out += StrFormat(
          "round %zu: %s finished with a decisive lead (score %s); stopping "
          "early\n",
          entry.round, entry.model.c_str(),
          FormatDouble(entry.score, 3).c_str());
    } else if (entry.action == "final") {
      out += StrFormat("final: %s wins with score %s after %zu rounds\n",
                       entry.model.c_str(),
                       FormatDouble(entry.score, 3).c_str(), entry.round);
    }
  }
  return out;
}

std::string SummarizeOutcome(const OrchestrationResult& result) {
  size_t pruned = 0;
  for (const auto& [model, outcome] : result.per_model) {
    if (outcome.pruned) ++pruned;
  }
  std::string summary = StrFormat(
      "%s won in %zu rounds, %zu tokens", result.best_model.c_str(),
      result.rounds, result.total_tokens);
  if (pruned > 0) {
    summary += StrFormat(", %zu model%s pruned", pruned, pruned == 1 ? "" : "s");
  }
  if (result.early_stopped) summary += ", early stop";
  return summary;
}

}  // namespace llmms::core
