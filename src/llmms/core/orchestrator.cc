#include "llmms/core/orchestrator.h"

namespace llmms::core {

const char* EventTypeToString(EventType type) {
  switch (type) {
    case EventType::kChunk:
      return "chunk";
    case EventType::kScore:
      return "score";
    case EventType::kPrune:
      return "prune";
    case EventType::kEarlyStop:
      return "early-stop";
    case EventType::kFailure:
      return "failure";
    case EventType::kHedge:
      return "hedge";
    case EventType::kHedgeAdapt:
      return "hedge-adapt";
    case EventType::kFinal:
      return "final";
  }
  return "unknown";
}

namespace internal {

void Emit(const OrchestratorEvent& event, const EventCallback& callback,
          std::vector<TraceEntry>* trace) {
  if (callback) callback(event);
  if (trace != nullptr && event.type != EventType::kChunk) {
    TraceEntry entry;
    entry.round = event.round;
    entry.model = event.model;
    entry.action = EventTypeToString(event.type);
    entry.detail = event.type == EventType::kFinal ? "" : event.text;
    entry.score = event.score;
    trace->push_back(std::move(entry));
  }
}

void EmitFailure(const std::string& model, const Status& error, size_t round,
                 size_t total_tokens, const EventCallback& callback,
                 std::vector<TraceEntry>* trace) {
  OrchestratorEvent event;
  event.type = EventType::kFailure;
  event.model = model;
  event.text = error.message();
  event.round = round;
  event.total_tokens = total_tokens;
  Emit(event, callback, trace);
}

void EmitHedge(const std::string& model, const llm::Chunk& chunk,
               size_t round, size_t total_tokens,
               const EventCallback& callback,
               std::vector<TraceEntry>* trace) {
  if (chunk.hedge == llm::HedgeOutcome::kNone) return;
  OrchestratorEvent event;
  event.type = EventType::kHedge;
  event.model = model;
  event.text = llm::HedgeOutcomeToString(chunk.hedge);
  event.round = round;
  event.total_tokens = total_tokens;
  Emit(event, callback, trace);
}

Status AllModelsFailed(const std::string& orchestrator, size_t pool_size,
                       const Status& last_error) {
  // A pool that "failed" because the request's deadline expired (or the
  // client went away) is not an internal fault: keep the typed code so the
  // HTTP layer can answer 504 instead of 500.
  const StatusCode code =
      last_error.IsDeadlineExceeded() || last_error.IsCancelled()
          ? last_error.code()
          : StatusCode::kInternal;
  return Status(code, orchestrator + ": all " + std::to_string(pool_size) +
                          " models failed; last error: " +
                          last_error.ToString());
}

}  // namespace internal
}  // namespace llmms::core
