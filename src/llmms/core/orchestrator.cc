#include "llmms/core/orchestrator.h"

namespace llmms::core {

const char* EventTypeToString(EventType type) {
  switch (type) {
    case EventType::kChunk:
      return "chunk";
    case EventType::kScore:
      return "score";
    case EventType::kPrune:
      return "prune";
    case EventType::kEarlyStop:
      return "early-stop";
    case EventType::kFinal:
      return "final";
  }
  return "unknown";
}

namespace internal {

void Emit(const OrchestratorEvent& event, const EventCallback& callback,
          std::vector<TraceEntry>* trace) {
  if (callback) callback(event);
  if (trace != nullptr && event.type != EventType::kChunk) {
    TraceEntry entry;
    entry.round = event.round;
    entry.model = event.model;
    entry.action = EventTypeToString(event.type);
    entry.detail = event.type == EventType::kFinal ? "" : event.text;
    entry.score = event.score;
    trace->push_back(std::move(entry));
  }
}

}  // namespace internal
}  // namespace llmms::core
