#include "llmms/core/single.h"

#include <algorithm>

namespace llmms::core {

SingleModelOrchestrator::SingleModelOrchestrator(
    llm::ModelRuntime* runtime, std::string model,
    std::shared_ptr<const embedding::Embedder> embedder, const Config& config)
    : runtime_(runtime),
      model_(std::move(model)),
      scorer_(std::move(embedder), config.weights),
      config_(config) {}

StatusOr<OrchestrationResult> SingleModelOrchestrator::Run(
    const std::string& prompt, const EventCallback& callback) {
  if (config_.token_budget == 0) {
    return Status::InvalidArgument("token_budget must be positive");
  }
  llm::GenerationRequest request;
  request.prompt = prompt;
  request.max_tokens = 0;
  request.context = config_.context;
  request.token_budget = config_.token_budget;
  request.scheduler_weight = config_.scheduler_weight;
  LLMMS_ASSIGN_OR_RETURN(auto generation,
                         runtime_->StartGeneration({model_}, request));

  OrchestrationResult result;
  size_t used = 0;
  size_t round = 0;
  size_t stalled = 0;

  // With a single model there is nobody to fail over to: a stream error is
  // the query's outcome, surfaced as a typed Status naming the model and
  // the round so callers (and the API error payload) can say *what* died
  // and *when* — not just bubble a raw stream error.
  auto typed_failure = [this, &callback](const Status& error,
                                         size_t at_round) {
    internal::EmitFailure(model_, error, at_round, 0, callback, nullptr);
    return Status(error.code(), "single-model orchestration failed: model '" +
                                    model_ + "' failed in round " +
                                    std::to_string(at_round) + ": " +
                                    error.message());
  };

  {
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(model_));
    if (stats.failed) {
      return typed_failure(Status::Internal(stats.error), 0);
    }
  }

  for (;;) {
    if (config_.context != nullptr) {
      LLMMS_RETURN_NOT_OK(config_.context->Check());
    }
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(model_));
    if (stats.finished || used >= config_.token_budget) break;
    ++round;
    const size_t ask =
        std::min(config_.chunk_tokens, config_.token_budget - used);
    auto chunk_or = generation->NextChunk(model_, ask);
    if (!chunk_or.ok()) return typed_failure(chunk_or.status(), round);
    const llm::Chunk chunk = std::move(chunk_or).value();
    used += chunk.num_tokens;
    internal::EmitHedge(model_, chunk, round, used, callback, &result.trace);
    if (chunk.num_tokens == 0 && !chunk.done) {
      if (++stalled >= kMaxStalledRounds) break;
    } else {
      stalled = 0;
    }
    if (chunk.num_tokens > 0 && callback) {
      OrchestratorEvent event;
      event.type = EventType::kChunk;
      event.model = model_;
      event.text = chunk.text;
      event.round = round;
      event.total_tokens = used;
      internal::Emit(event, callback, &result.trace);
    }
    if (chunk.done) break;
  }

  LLMMS_ASSIGN_OR_RETURN(result.answer, generation->TextOf(model_));
  const auto scores = scorer_.ScoreRound(prompt, {result.answer});

  result.best_model = model_;
  result.total_tokens = generation->TotalTokens();
  result.rounds = round;
  result.simulated_seconds = generation->SimulatedWallSeconds();

  ModelOutcome outcome;
  outcome.response = result.answer;
  LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(model_));
  outcome.tokens = stats.tokens;
  outcome.finished = stats.finished;
  outcome.stop_reason = stats.stop_reason;
  if (!scores.empty()) {
    outcome.final_score = scores[0].combined;
    outcome.query_similarity = scores[0].query_similarity;
    outcome.inter_similarity = scores[0].inter_similarity;
  }
  result.per_model[model_] = std::move(outcome);
  result.answer_tokens = result.per_model[model_].tokens;

  OrchestratorEvent event;
  event.type = EventType::kFinal;
  event.model = model_;
  event.text = result.answer;
  event.score = result.per_model[model_].final_score;
  event.round = round;
  event.total_tokens = result.total_tokens;
  internal::Emit(event, callback, &result.trace);
  return result;
}

}  // namespace llmms::core
