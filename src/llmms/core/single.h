#ifndef LLMMS_CORE_SINGLE_H_
#define LLMMS_CORE_SINGLE_H_

#include <memory>
#include <string>

#include "llmms/core/orchestrator.h"
#include "llmms/core/scoring.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// The static single-model baseline (§8.1 execution mode 1): every query goes
// to one fixed model, bounded by the same token budget the orchestrators
// get. Scores are still computed (query similarity only; there are no other
// models to agree with) so results are comparable.
class SingleModelOrchestrator final : public Orchestrator {
 public:
  struct Config {
    ScoringWeights weights;
    size_t token_budget = 2048;
    size_t chunk_tokens = 32;  // streaming granularity for events
    // Deadline/cancellation of the request driving this run (null =
    // unbounded); checked at every chunk boundary (DESIGN.md §12).
    std::shared_ptr<RequestContext> context;
    // Explicit continuous-batching weight (DESIGN.md §13); <= 0 derives it
    // from token_budget and deadline slack. Ignored without a scheduler.
    double scheduler_weight = 0.0;
  };

  SingleModelOrchestrator(llm::ModelRuntime* runtime, std::string model,
                          std::shared_ptr<const embedding::Embedder> embedder,
                          const Config& config);

  StatusOr<OrchestrationResult> Run(const std::string& prompt,
                                    const EventCallback& callback) override;
  using Orchestrator::Run;

  std::string name() const override { return "single:" + model_; }

 private:
  llm::ModelRuntime* runtime_;
  std::string model_;
  ResponseScorer scorer_;
  Config config_;
};

}  // namespace llmms::core

#endif  // LLMMS_CORE_SINGLE_H_
