#ifndef LLMMS_CORE_TRACE_REPORT_H_
#define LLMMS_CORE_TRACE_REPORT_H_

#include <string>

#include "llmms/core/orchestrator.h"

namespace llmms::core {

// Transparent orchestration logs (§9.5): renders the decision trace of an
// orchestrated query as human-readable prose — "round 3: pruned qwen2:7b
// (score 0.11)" / "final: mistral:7b wins with score 0.31 after 5 rounds" —
// the audit trail the thesis recommends for law/banking/medical settings.
std::string FormatTrace(const OrchestrationResult& result);

// One-line outcome summary ("mistral:7b won in 5 rounds, 60 tokens, 2 models
// pruned, early stop").
std::string SummarizeOutcome(const OrchestrationResult& result);

}  // namespace llmms::core

#endif  // LLMMS_CORE_TRACE_REPORT_H_
