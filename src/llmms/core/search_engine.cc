#include "llmms/core/search_engine.h"

namespace llmms::core {

const char* AlgorithmToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kOua:
      return "oua";
    case Algorithm::kMab:
      return "mab";
    case Algorithm::kHybrid:
      return "hybrid";
    case Algorithm::kSingle:
      return "single";
  }
  return "unknown";
}

SearchEngine::SearchEngine(llm::ModelRuntime* runtime,
                           std::shared_ptr<const embedding::Embedder> embedder,
                           std::shared_ptr<vectordb::VectorDatabase> db,
                           std::shared_ptr<session::SessionStore> sessions)
    : runtime_(runtime),
      embedder_(std::move(embedder)),
      db_(std::move(db)),
      sessions_(std::move(sessions)) {
  // Close the adaptive-hedging loop: hedged models with HedgeConfig::adapt
  // follow the orchestrators' reward stream from the first query.
  AttachAdaptiveHedging(&reward_feed_, runtime_);
}

StatusOr<rag::RagPipeline*> SearchEngine::PipelineFor(
    const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pipelines_.find(session_id);
  if (it != pipelines_.end()) return it->second.get();
  LLMMS_ASSIGN_OR_RETURN(
      auto pipeline,
      rag::RagPipeline::Create(db_, embedder_, session_id, rag_options_));
  rag::RagPipeline* raw = pipeline.get();
  pipelines_[session_id] = std::move(pipeline);
  return raw;
}

session::MemoryGraph* SearchEngine::MemoryFor(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memories_.find(session_id);
  if (it != memories_.end()) return it->second.get();
  auto graph = std::make_unique<session::MemoryGraph>(embedder_);
  session::MemoryGraph* raw = graph.get();
  memories_[session_id] = std::move(graph);
  return raw;
}

StatusOr<size_t> SearchEngine::Upload(const std::string& session_id,
                                      const std::string& document_id,
                                      const std::string& text) {
  LLMMS_ASSIGN_OR_RETURN(auto* pipeline, PipelineFor(session_id));
  return pipeline->Upload(document_id, text);
}

StatusOr<SearchEngine::AskResult> SearchEngine::Ask(
    const std::string& session_id, const std::string& query,
    const QueryOptions& options, const EventCallback& callback) {
  if (query.empty()) {
    return Status::InvalidArgument("query must not be empty");
  }
  // A request that is already dead on arrival does no retrieval work.
  if (options.context != nullptr) {
    LLMMS_RETURN_NOT_OK(options.context->Check());
  }
  LLMMS_ASSIGN_OR_RETURN(auto session, sessions_->GetOrCreate(session_id));

  // --- Stage 1-2 (§6.1-6.2): retrieval + prompt construction. ---
  AskResult result;
  std::string history;
  if (options.use_history) history = session->ContextText();
  session::MemoryGraph* memory = nullptr;
  if (options.use_memory_graph) {
    memory = MemoryFor(session_id);
    const auto recalled = memory->Recall(query, /*k=*/2);
    result.recalled_memories = recalled.size();
    for (const auto& r : recalled) {
      if (!history.empty()) history += "\n";
      history += "Related earlier exchange - user: " + r.node.question +
                 " assistant: " + r.node.answer;
    }
  }
  if (options.use_rag) {
    LLMMS_ASSIGN_OR_RETURN(auto* pipeline, PipelineFor(session_id));
    LLMMS_ASSIGN_OR_RETURN(auto chunks, pipeline->Retrieve(query));
    result.retrieved_chunks = chunks.size();
    result.prompt = rag::PromptBuilder().Build(query, chunks, history);
  } else {
    result.prompt = rag::PromptBuilder().Build(query, {}, history);
  }

  // --- Stage 3 (§6.3): dynamic model selection and token allocation. ---
  std::vector<std::string> models = options.models;
  if (models.empty()) models = runtime_->LoadedModels();
  if (models.empty()) {
    return Status::FailedPrecondition("no models loaded");
  }

  std::unique_ptr<Orchestrator> orchestrator;
  switch (options.algorithm) {
    case Algorithm::kOua: {
      OuaOrchestrator::Config config;
      config.weights = options.weights;
      config.token_budget = options.token_budget;
      config.chunk_tokens = options.oua_chunk_tokens;
      config.early_stop_margin = options.oua_early_stop_margin;
      config.prune_margin = options.oua_prune_margin;
      config.reward_feed = &reward_feed_;
      config.context = options.context;
      config.scheduler_weight = options.scheduler_weight;
      orchestrator = std::make_unique<OuaOrchestrator>(runtime_, models,
                                                       embedder_, config);
      break;
    }
    case Algorithm::kMab: {
      MabOrchestrator::Config config;
      config.weights = options.weights;
      config.token_budget = options.token_budget;
      config.chunk_tokens = options.mab_chunk_tokens;
      config.gamma0 = options.mab_gamma0;
      config.reward_feed = &reward_feed_;
      config.feed_prior_weight = options.feed_prior_weight;
      config.context = options.context;
      config.scheduler_weight = options.scheduler_weight;
      orchestrator = std::make_unique<MabOrchestrator>(runtime_, models,
                                                       embedder_, config);
      break;
    }
    case Algorithm::kHybrid: {
      HybridOrchestrator::Config config;
      config.weights = options.weights;
      config.token_budget = options.token_budget;
      config.chunk_tokens = options.oua_chunk_tokens;
      config.prune_margin = options.oua_prune_margin;
      config.mab_chunk_tokens = options.mab_chunk_tokens;
      config.gamma0 = options.mab_gamma0;
      config.reward_feed = &reward_feed_;
      config.feed_prior_weight = options.feed_prior_weight;
      config.context = options.context;
      config.scheduler_weight = options.scheduler_weight;
      orchestrator = std::make_unique<HybridOrchestrator>(runtime_, models,
                                                          embedder_, config);
      break;
    }
    case Algorithm::kSingle: {
      std::string model = options.single_model;
      if (model.empty()) model = models.front();
      SingleModelOrchestrator::Config config;
      config.weights = options.weights;
      config.token_budget = options.token_budget;
      config.context = options.context;
      config.scheduler_weight = options.scheduler_weight;
      orchestrator = std::make_unique<SingleModelOrchestrator>(
          runtime_, model, embedder_, config);
      break;
    }
  }

  LLMMS_ASSIGN_OR_RETURN(result.orchestration,
                         orchestrator->Run(result.prompt, callback));

  // --- Stage 5 (§6.5): session continuity. ---
  session->Append(session::Role::kUser, query);
  session->Append(session::Role::kAssistant, result.orchestration.answer);
  if (memory != nullptr) {
    LLMMS_RETURN_NOT_OK(
        memory->Add(query, result.orchestration.answer).status());
  }
  return result;
}

Status SearchEngine::EndSession(const std::string& session_id) {
  Status session_status = sessions_->Remove(session_id);
  std::unique_ptr<rag::RagPipeline> pipeline;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pipelines_.find(session_id);
    if (it != pipelines_.end()) {
      pipeline = std::move(it->second);
      pipelines_.erase(it);
    }
    memories_.erase(session_id);
  }
  if (pipeline != nullptr) {
    LLMMS_RETURN_NOT_OK(pipeline->Expire());
    return Status::OK();  // vector state gone; session removal best-effort
  }
  return session_status;
}

}  // namespace llmms::core
