#include "llmms/core/agents.h"

#include <cstring>

#include "llmms/common/string_util.h"
#include "llmms/embedding/similarity.h"
#include "llmms/tokenizer/word_tokenizer.h"

namespace llmms::core {
namespace {

// Strips conversational joiners from the front of a sub-question.
std::string StripJoiner(std::string question) {
  static const char* kJoiners[] = {"also,", "also", "and also", "and",
                                   "additionally,", "additionally",
                                   "furthermore,", "furthermore"};
  const std::string lower = ToLower(question);
  for (const char* joiner : kJoiners) {
    const size_t len = strlen(joiner);
    if (lower.size() > len + 1 && lower.compare(0, len, joiner) == 0 &&
        (lower[len] == ' ')) {
      return Trim(question.substr(len + 1));
    }
  }
  return question;
}

}  // namespace

std::vector<std::string> DecomposeQuestion(const std::string& question) {
  std::vector<std::string> parts;
  for (const auto& sentence : tokenizer::SplitSentences(question)) {
    if (sentence.empty()) continue;
    // Only question sentences become sub-tasks; statements are context and
    // attach to the following question.
    if (sentence.back() == '?') {
      parts.push_back(StripJoiner(sentence));
    } else if (!parts.empty()) {
      parts.back() += " " + sentence;
    } else {
      parts.push_back(sentence);
    }
  }
  if (parts.empty()) parts.push_back(Trim(question));
  return parts;
}

MultiAgentPipeline::MultiAgentPipeline(
    llm::ModelRuntime* runtime, std::vector<std::string> models,
    std::shared_ptr<const embedding::Embedder> embedder, const Config& config)
    : runtime_(runtime),
      models_(std::move(models)),
      embedder_(std::move(embedder)),
      config_(config) {}

StatusOr<MultiAgentPipeline::Result> MultiAgentPipeline::Run(
    const std::string& question, const EventCallback& callback) {
  if (question.empty()) {
    return Status::InvalidArgument("question must not be empty");
  }
  if (models_.empty()) {
    return Status::FailedPrecondition("pipeline requires at least one model");
  }

  Result result;
  const auto sub_questions = DecomposeQuestion(question);

  for (const auto& sub_question : sub_questions) {
    SubResult sub;
    sub.question = sub_question;

    // --- Verifier: semantic alignment of answer and sub-question. ---
    auto verify = [this, &sub_question](const std::string& answer) {
      return embedding::CosineSimilarity(embedder_->Embed(answer),
                                         embedder_->Embed(sub_question));
    };

    // --- Researcher: orchestrate the sub-question. A failed research pass
    // (e.g. quarantined models taking the whole pool down) is not fatal to
    // the pipeline: the retry path below gets a chance to recover it with
    // the alternate strategy. ---
    Status research_error = Status::OK();
    OuaOrchestrator researcher(runtime_, models_, embedder_, config_.research);
    auto research = researcher.Run(sub_question, callback);
    if (research.ok()) {
      sub.answer = research->answer;
      sub.model = research->best_model;
      sub.tokens = research->total_tokens;
      result.total_tokens += research->total_tokens;
      result.simulated_seconds += research->simulated_seconds;
      sub.similarity = verify(sub.answer);
      sub.verified = sub.similarity >= config_.verify_threshold;
    } else {
      research_error = research.status();
      sub.similarity = -1.0;
      sub.verified = false;
    }

    // --- Retry with the alternate strategy when verification (or the
    // research pass itself) fails. ---
    for (size_t attempt = 0;
         !sub.verified && attempt < config_.max_retries; ++attempt) {
      sub.retried = true;
      MabOrchestrator retrier(runtime_, models_, embedder_, config_.retry);
      auto retry = retrier.Run(sub_question, callback);
      if (!retry.ok()) {
        research_error = retry.status();
        continue;
      }
      result.total_tokens += retry->total_tokens;
      result.simulated_seconds += retry->simulated_seconds;
      const double retry_similarity = verify(retry->answer);
      if (retry_similarity > sub.similarity) {
        sub.answer = retry->answer;
        sub.model = retry->best_model;
        sub.similarity = retry_similarity;
      }
      sub.verified = sub.similarity >= config_.verify_threshold;
    }

    // Research and every retry failed outright: nothing to compose for
    // this sub-question, so surface the typed error.
    if (sub.answer.empty() && !research_error.ok()) {
      return Status(research_error.code(),
                    "multi-agent pipeline failed on sub-question '" +
                        sub_question + "': " + research_error.message());
    }

    result.sub_results.push_back(std::move(sub));
  }

  // --- Composer: assemble the final answer. ---
  for (const auto& sub : result.sub_results) {
    if (!result.answer.empty()) result.answer += " ";
    result.answer += sub.answer;
    if (!result.answer.empty() && result.answer.back() != '.' &&
        result.answer.back() != '?' && result.answer.back() != '!') {
      result.answer += ".";
    }
  }
  return result;
}

}  // namespace llmms::core
