#ifndef LLMMS_CORE_ORCHESTRATOR_H_
#define LLMMS_CORE_ORCHESTRATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/core/scoring.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// Streaming events emitted during orchestration — the backend of the UI's
// real-time token stream and the "model routing transparency" overlay
// (§5.4, §7.3). Events are delivered synchronously on the orchestrator's
// thread.
enum class EventType {
  kChunk,      // a model produced new tokens
  kScore,      // a model was (re)scored
  kPrune,      // a model was removed from the active set
  kEarlyStop,  // a model won before the budget was spent
  kFailure,    // a model's stream failed and it was quarantined
  kHedge,      // a hedge race fired on a model's stream (llm::HedgedModel)
  kHedgeAdapt, // reward feedback moved a model's effective hedge percentile
  kFinal,      // the final answer was selected
};

const char* EventTypeToString(EventType type);

struct OrchestratorEvent {
  EventType type = EventType::kChunk;
  std::string model;
  std::string text;        // chunk text (kChunk) or final answer (kFinal)
  double score = 0.0;      // combined score (kScore/kPrune/kEarlyStop/kFinal)
  size_t round = 0;
  size_t total_tokens = 0; // tokens consumed so far across all models
};

using EventCallback = std::function<void(const OrchestratorEvent&)>;

// Consecutive zero-token rounds (or pulls) an orchestrator tolerates before
// treating the remaining pool as hung and closing the query with whatever
// it has — the last line of defence against a stalled backend that neither
// errors nor progresses (see llm::ResilienceConfig::max_stalled_chunks for
// the per-model guard that normally fires first).
inline constexpr size_t kMaxStalledRounds = 32;

// One line of the transparent orchestration log.
struct TraceEntry {
  size_t round = 0;
  std::string model;
  std::string action;  // "chunk", "score", "prune", "early-stop", "final"
  std::string detail;
  double score = 0.0;
};

// Outcome of one orchestrated query.
struct ModelOutcome {
  std::string response;
  size_t tokens = 0;
  double final_score = 0.0;        // combined orchestration score
  double query_similarity = 0.0;
  double inter_similarity = 0.0;
  bool pruned = false;
  bool finished = false;
  // The model's stream failed (at start or mid-generation) and the
  // orchestrator quarantined it; `error` carries the stream's status
  // message. Its partial response (if any) is kept for transparency but is
  // never selected as the answer.
  bool failed = false;
  std::string error;
  llm::StopReason stop_reason = llm::StopReason::kLength;
};

struct OrchestrationResult {
  std::string best_model;
  std::string answer;
  size_t total_tokens = 0;   // across all participating models
  size_t answer_tokens = 0;  // tokens of the winning response
  size_t rounds = 0;
  bool early_stopped = false;
  double simulated_seconds = 0.0;  // simulated wall clock
  std::map<std::string, ModelOutcome> per_model;
  std::vector<TraceEntry> trace;
};

// A model-selection / token-allocation strategy over a pool of models.
// Implementations: OuaOrchestrator, MabOrchestrator, SingleModelOrchestrator.
class Orchestrator {
 public:
  virtual ~Orchestrator() = default;

  // Answers `prompt` under the strategy's token budget. `callback` (optional)
  // receives streaming events.
  virtual StatusOr<OrchestrationResult> Run(const std::string& prompt,
                                            const EventCallback& callback) = 0;

  StatusOr<OrchestrationResult> Run(const std::string& prompt) {
    return Run(prompt, EventCallback());
  }

  virtual std::string name() const = 0;
};

namespace internal {

// Shared helper: emit an event to the callback (if any) and mirror it into
// the trace.
void Emit(const OrchestratorEvent& event, const EventCallback& callback,
          std::vector<TraceEntry>* trace);

// Emits the kFailure event recording a model's quarantine; the trace entry
// carries the stream error as its detail.
void EmitFailure(const std::string& model, const Status& error, size_t round,
                 size_t total_tokens, const EventCallback& callback,
                 std::vector<TraceEntry>* trace);

// Emits the kHedge event for a chunk whose Chunk::hedge says a hedge race
// or failover fired while it was in flight; the trace detail carries the
// outcome ("primary-won", "backup-won", "failover"). No-op for plain
// chunks.
void EmitHedge(const std::string& model, const llm::Chunk& chunk,
               size_t round, size_t total_tokens,
               const EventCallback& callback,
               std::vector<TraceEntry>* trace);

// The typed terminal error for a query where every pool model failed. Keeps
// the last stream error for diagnosis; orchestrators return it instead of
// fabricating an answer from a failed model.
Status AllModelsFailed(const std::string& orchestrator, size_t pool_size,
                       const Status& last_error);

}  // namespace internal
}  // namespace llmms::core

#endif  // LLMMS_CORE_ORCHESTRATOR_H_
