#ifndef LLMMS_CORE_ORCHESTRATOR_H_
#define LLMMS_CORE_ORCHESTRATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/core/scoring.h"
#include "llmms/llm/runtime.h"

namespace llmms::core {

// Streaming events emitted during orchestration — the backend of the UI's
// real-time token stream and the "model routing transparency" overlay
// (§5.4, §7.3). Events are delivered synchronously on the orchestrator's
// thread.
enum class EventType {
  kChunk,      // a model produced new tokens
  kScore,      // a model was (re)scored
  kPrune,      // a model was removed from the active set
  kEarlyStop,  // a model won before the budget was spent
  kFinal,      // the final answer was selected
};

const char* EventTypeToString(EventType type);

struct OrchestratorEvent {
  EventType type = EventType::kChunk;
  std::string model;
  std::string text;        // chunk text (kChunk) or final answer (kFinal)
  double score = 0.0;      // combined score (kScore/kPrune/kEarlyStop/kFinal)
  size_t round = 0;
  size_t total_tokens = 0; // tokens consumed so far across all models
};

using EventCallback = std::function<void(const OrchestratorEvent&)>;

// One line of the transparent orchestration log.
struct TraceEntry {
  size_t round = 0;
  std::string model;
  std::string action;  // "chunk", "score", "prune", "early-stop", "final"
  std::string detail;
  double score = 0.0;
};

// Outcome of one orchestrated query.
struct ModelOutcome {
  std::string response;
  size_t tokens = 0;
  double final_score = 0.0;        // combined orchestration score
  double query_similarity = 0.0;
  double inter_similarity = 0.0;
  bool pruned = false;
  bool finished = false;
  llm::StopReason stop_reason = llm::StopReason::kLength;
};

struct OrchestrationResult {
  std::string best_model;
  std::string answer;
  size_t total_tokens = 0;   // across all participating models
  size_t answer_tokens = 0;  // tokens of the winning response
  size_t rounds = 0;
  bool early_stopped = false;
  double simulated_seconds = 0.0;  // simulated wall clock
  std::map<std::string, ModelOutcome> per_model;
  std::vector<TraceEntry> trace;
};

// A model-selection / token-allocation strategy over a pool of models.
// Implementations: OuaOrchestrator, MabOrchestrator, SingleModelOrchestrator.
class Orchestrator {
 public:
  virtual ~Orchestrator() = default;

  // Answers `prompt` under the strategy's token budget. `callback` (optional)
  // receives streaming events.
  virtual StatusOr<OrchestrationResult> Run(const std::string& prompt,
                                            const EventCallback& callback) = 0;

  StatusOr<OrchestrationResult> Run(const std::string& prompt) {
    return Run(prompt, EventCallback());
  }

  virtual std::string name() const = 0;
};

namespace internal {

// Shared helper: emit an event to the callback (if any) and mirror it into
// the trace.
void Emit(const OrchestratorEvent& event, const EventCallback& callback,
          std::vector<TraceEntry>* trace);

}  // namespace internal
}  // namespace llmms::core

#endif  // LLMMS_CORE_ORCHESTRATOR_H_
