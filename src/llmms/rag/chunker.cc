#include "llmms/rag/chunker.h"

#include "llmms/common/string_util.h"
#include "llmms/tokenizer/word_tokenizer.h"

namespace llmms::rag {

std::vector<TextChunk> Chunker::Chunk(std::string_view document) const {
  std::vector<TextChunk> chunks;
  const auto sentences = tokenizer::SplitSentences(document);
  if (sentences.empty()) return chunks;

  std::vector<size_t> sentence_words(sentences.size());
  for (size_t i = 0; i < sentences.size(); ++i) {
    sentence_words[i] = SplitWhitespace(sentences[i]).size();
  }

  size_t chunk_index = 0;
  size_t word_offset = 0;
  size_t i = 0;
  while (i < sentences.size()) {
    TextChunk chunk;
    chunk.index = chunk_index++;
    chunk.start_word = word_offset;
    size_t words = 0;
    size_t j = i;
    while (j < sentences.size()) {
      const size_t next = words + sentence_words[j];
      // Always take at least one sentence; stop when past the target unless
      // the addition still fits under the hard max.
      if (words > 0 && next > options_.target_words &&
          next > options_.max_words) {
        break;
      }
      if (!chunk.text.empty()) chunk.text += ' ';
      chunk.text += sentences[j];
      words = next;
      ++j;
      if (words >= options_.target_words) break;
    }
    chunk.num_words = words;
    chunks.push_back(std::move(chunk));

    // Step back far enough to repeat ~overlap_words of context, but always
    // advance by at least one sentence.
    size_t advance_to = j;
    if (options_.overlap_words > 0 && j < sentences.size()) {
      size_t overlap = 0;
      size_t k = j;
      while (k > i + 1 && overlap < options_.overlap_words) {
        overlap += sentence_words[k - 1];
        --k;
      }
      advance_to = k > i ? k : i + 1;
    }
    for (size_t s = i; s < advance_to; ++s) word_offset += sentence_words[s];
    i = advance_to;
  }
  return chunks;
}

}  // namespace llmms::rag
