#include "llmms/rag/pipeline.h"

namespace llmms::rag {

StatusOr<std::unique_ptr<RagPipeline>> RagPipeline::Create(
    std::shared_ptr<vectordb::VectorDatabase> db,
    std::shared_ptr<const embedding::Embedder> embedder,
    const std::string& session_id, const Options& options) {
  if (session_id.empty()) {
    return Status::InvalidArgument("session_id must not be empty");
  }
  const std::string collection_name = "session-" + session_id;
  vectordb::Collection::Options copts;
  copts.dimension = embedder->dimension();
  copts.metric = vectordb::DistanceMetric::kCosine;
  copts.index_kind = vectordb::IndexKind::kHnsw;
  copts.quantization = options.quantization;
  std::shared_ptr<vectordb::CollectionBase> collection;
  if (options.vector_shards <= 1) {
    LLMMS_ASSIGN_OR_RETURN(collection,
                           db->GetOrCreateCollection(collection_name, copts));
  } else {
    vectordb::ShardedCollection::Options sopts;
    sopts.collection = copts;
    sopts.num_shards = options.vector_shards;
    sopts.pool = options.query_pool;
    LLMMS_ASSIGN_OR_RETURN(
        collection, db->GetOrCreateShardedCollection(collection_name, sopts));
  }
  auto store = std::make_unique<DocumentStore>(std::move(collection), embedder,
                                               Chunker(options.chunker));
  return std::unique_ptr<RagPipeline>(new RagPipeline(
      std::move(db), std::move(store), collection_name, options));
}

RagPipeline::RagPipeline(std::shared_ptr<vectordb::VectorDatabase> db,
                         std::unique_ptr<DocumentStore> store,
                         std::string collection_name, const Options& options)
    : db_(std::move(db)),
      store_(std::move(store)),
      collection_name_(std::move(collection_name)),
      options_(options),
      prompt_builder_(options.prompt) {}

StatusOr<size_t> RagPipeline::Upload(const std::string& document_id,
                                     const std::string& text) {
  return store_->AddDocument(document_id, text);
}

StatusOr<std::vector<RetrievedChunk>> RagPipeline::Retrieve(
    const std::string& query) const {
  if (store_->chunk_count() == 0) return std::vector<RetrievedChunk>{};
  LLMMS_ASSIGN_OR_RETURN(auto chunks,
                         store_->Retrieve(query, options_.top_k));
  std::vector<RetrievedChunk> kept;
  kept.reserve(chunks.size());
  for (auto& c : chunks) {
    if (c.score >= options_.min_score) kept.push_back(std::move(c));
  }
  return kept;
}

StatusOr<std::string> RagPipeline::BuildPrompt(const std::string& query,
                                               const std::string& history) const {
  LLMMS_ASSIGN_OR_RETURN(auto context, Retrieve(query));
  return prompt_builder_.Build(query, context, history);
}

Status RagPipeline::Expire() { return db_->DropCollection(collection_name_); }

}  // namespace llmms::rag
