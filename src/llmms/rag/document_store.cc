#include "llmms/rag/document_store.h"

#include <algorithm>

namespace llmms::rag {
namespace {

std::string ChunkRecordId(const std::string& document_id, size_t index) {
  return document_id + "#" + std::to_string(index);
}

}  // namespace

DocumentStore::DocumentStore(
    std::shared_ptr<vectordb::CollectionBase> collection,
    std::shared_ptr<const embedding::Embedder> embedder, Chunker chunker)
    : collection_(std::move(collection)),
      embedder_(std::move(embedder)),
      chunker_(chunker) {}

StatusOr<size_t> DocumentStore::AddDocument(const std::string& document_id,
                                            const std::string& text) {
  if (document_id.empty()) {
    return Status::InvalidArgument("document_id must not be empty");
  }
  if (document_id.find('#') != std::string::npos) {
    return Status::InvalidArgument("document_id must not contain '#'");
  }
  // Replace semantics: drop any previous chunks of this document.
  if (std::find(document_ids_.begin(), document_ids_.end(), document_id) !=
      document_ids_.end()) {
    LLMMS_RETURN_NOT_OK(RemoveDocument(document_id));
  }

  const auto chunks = chunker_.Chunk(text);
  for (const auto& chunk : chunks) {
    vectordb::VectorRecord record;
    record.id = ChunkRecordId(document_id, chunk.index);
    record.vector = embedder_->Embed(chunk.text);
    record.document = chunk.text;
    record.metadata["document_id"] = document_id;
    record.metadata["chunk_index"] = std::to_string(chunk.index);
    LLMMS_RETURN_NOT_OK(collection_->Upsert(std::move(record)));
  }
  document_ids_.push_back(document_id);
  return chunks.size();
}

Status DocumentStore::RemoveDocument(const std::string& document_id) {
  auto it = std::find(document_ids_.begin(), document_ids_.end(), document_id);
  if (it == document_ids_.end()) {
    return Status::NotFound("document '" + document_id + "' is not indexed");
  }
  for (size_t index = 0;; ++index) {
    const std::string id = ChunkRecordId(document_id, index);
    if (!collection_->Contains(id)) break;
    LLMMS_RETURN_NOT_OK(collection_->Delete(id));
  }
  document_ids_.erase(it);
  return Status::OK();
}

StatusOr<std::vector<RetrievedChunk>> DocumentStore::Retrieve(
    const std::string& query, size_t k, const std::string& document_id) const {
  vectordb::MetadataFilter filter;
  if (!document_id.empty()) filter["document_id"] = document_id;
  LLMMS_ASSIGN_OR_RETURN(
      auto hits, collection_->Query(embedder_->Embed(query), k, filter));
  std::vector<RetrievedChunk> out;
  out.reserve(hits.size());
  for (auto& hit : hits) {
    RetrievedChunk chunk;
    chunk.document_id = hit.metadata["document_id"];
    chunk.chunk_index = static_cast<size_t>(
        std::strtoull(hit.metadata["chunk_index"].c_str(), nullptr, 10));
    chunk.text = std::move(hit.document);
    chunk.score = hit.score;
    out.push_back(std::move(chunk));
  }
  return out;
}

}  // namespace llmms::rag
