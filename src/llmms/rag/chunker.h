#ifndef LLMMS_RAG_CHUNKER_H_
#define LLMMS_RAG_CHUNKER_H_

#include <string>
#include <string_view>
#include <vector>

namespace llmms::rag {

// A contiguous span of a source document.
struct TextChunk {
  std::string text;
  size_t index = 0;        // position within the document
  size_t start_word = 0;   // word offset of the chunk start
  size_t num_words = 0;
};

// Splits documents into retrieval-sized chunks. Sentences are the atomic
// unit (a chunk never splits a sentence); chunks target `target_words` with
// `overlap_words` of trailing context repeated at the start of the next
// chunk, the standard RAG chunking scheme (§6.2 "segmented into semantically
// coherent chunks").
class Chunker {
 public:
  struct Options {
    size_t target_words = 80;
    size_t max_words = 120;
    size_t overlap_words = 16;
  };

  Chunker() : Chunker(Options{}) {}
  explicit Chunker(const Options& options) : options_(options) {}

  std::vector<TextChunk> Chunk(std::string_view document) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace llmms::rag

#endif  // LLMMS_RAG_CHUNKER_H_
