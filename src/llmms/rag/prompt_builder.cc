#include "llmms/rag/prompt_builder.h"

#include "llmms/common/string_util.h"

namespace llmms::rag {
namespace {

// Keeps at most `max_words` words of `text`, cutting from the end.
std::string ClipWords(const std::string& text, size_t max_words) {
  const auto words = SplitWhitespace(text);
  if (words.size() <= max_words) return Trim(text);
  std::vector<std::string> kept(words.begin(),
                                words.begin() + static_cast<ptrdiff_t>(max_words));
  return Join(kept, " ");
}

}  // namespace

std::string PromptBuilder::Build(const std::string& query,
                                 const std::vector<RetrievedChunk>& context,
                                 const std::string& history) const {
  std::string context_block;
  if (!context.empty()) {
    std::string combined;
    for (const auto& chunk : context) {
      if (!combined.empty()) combined += '\n';
      combined += chunk.text;
    }
    context_block = options_.context_header + "\n" +
                    ClipWords(combined, options_.max_context_words);
  }

  std::string history_block;
  if (!history.empty()) {
    history_block = options_.history_header + "\n" +
                    ClipWords(history, options_.max_history_words);
  }

  const std::string question_block = options_.question_header + " " + query;

  std::vector<std::string> blocks;
  if (options_.context_first) {
    if (!context_block.empty()) blocks.push_back(context_block);
    if (!history_block.empty()) blocks.push_back(history_block);
    blocks.push_back(question_block);
  } else {
    if (!history_block.empty()) blocks.push_back(history_block);
    blocks.push_back(question_block);
    if (!context_block.empty()) blocks.push_back(context_block);
  }
  return Join(blocks, "\n\n");
}

}  // namespace llmms::rag
