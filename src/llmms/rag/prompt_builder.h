#ifndef LLMMS_RAG_PROMPT_BUILDER_H_
#define LLMMS_RAG_PROMPT_BUILDER_H_

#include <string>
#include <vector>

#include "llmms/rag/document_store.h"

namespace llmms::rag {

// Assembles the final model prompt from the user query, retrieved context,
// and (optionally) a conversation summary (§6.2, §7.2 step 4). Context and
// history are clipped to a word budget so the prompt respects model context
// windows.
class PromptBuilder {
 public:
  struct Options {
    // Retrieved chunks are prepended ("context first") by default.
    bool context_first = true;
    size_t max_context_words = 400;
    size_t max_history_words = 200;
    std::string context_header = "Use the following context to answer:";
    std::string history_header = "Conversation so far:";
    std::string question_header = "Question:";
  };

  PromptBuilder() : PromptBuilder(Options{}) {}
  explicit PromptBuilder(const Options& options) : options_(options) {}

  // Builds a prompt; any of `context` / `history` may be empty.
  std::string Build(const std::string& query,
                    const std::vector<RetrievedChunk>& context,
                    const std::string& history = "") const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace llmms::rag

#endif  // LLMMS_RAG_PROMPT_BUILDER_H_
