#ifndef LLMMS_RAG_PIPELINE_H_
#define LLMMS_RAG_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/embedding/embedder.h"
#include "llmms/rag/document_store.h"
#include "llmms/rag/prompt_builder.h"
#include "llmms/vectordb/database.h"

namespace llmms {
class ThreadPool;
}  // namespace llmms

namespace llmms::rag {

// End-to-end retrieval-augmented generation pipeline: one per user session.
// Owns a session-scoped collection in the vector database (the paper stores
// session embeddings "temporarily in memory during the session", §1.4),
// ingests uploads, and turns (query, history) into an augmented prompt.
class RagPipeline {
 public:
  struct Options {
    size_t top_k = 3;
    // Chunks scoring below this are not worth injecting.
    double min_score = 0.1;
    // Scale knobs for the session collection (DESIGN.md §15). With
    // vector_shards == 1 and quantization off (the defaults) the pipeline
    // uses a plain Collection — the exact path unchanged. More shards
    // hash-partition the chunks (queries fan out over `query_pool` when
    // set); enabling quantization switches retrieval to the two-stage
    // quantized-scan + rerank path once enough chunks are indexed.
    size_t vector_shards = 1;
    ThreadPool* query_pool = nullptr;
    vectordb::Collection::Quantization quantization;
    Chunker::Options chunker;
    PromptBuilder::Options prompt;
  };

  // Creates (or reuses) the collection `session-<session_id>` in `db`.
  static StatusOr<std::unique_ptr<RagPipeline>> Create(
      std::shared_ptr<vectordb::VectorDatabase> db,
      std::shared_ptr<const embedding::Embedder> embedder,
      const std::string& session_id, const Options& options);
  static StatusOr<std::unique_ptr<RagPipeline>> Create(
      std::shared_ptr<vectordb::VectorDatabase> db,
      std::shared_ptr<const embedding::Embedder> embedder,
      const std::string& session_id) {
    return Create(std::move(db), std::move(embedder), session_id, Options());
  }

  // Ingests an uploaded document; returns the chunk count.
  StatusOr<size_t> Upload(const std::string& document_id,
                          const std::string& text);

  // Retrieves context and builds the model prompt. With no documents (or no
  // relevant chunk) the prompt is the bare query (plus history).
  StatusOr<std::string> BuildPrompt(const std::string& query,
                                    const std::string& history = "") const;

  // Retrieval only (for transparency overlays / tests).
  StatusOr<std::vector<RetrievedChunk>> Retrieve(const std::string& query) const;

  // Drops the session collection (the paper's "discarded immediately after
  // ... session expiration" lifecycle, §6.5).
  Status Expire();

  size_t chunk_count() const { return store_->chunk_count(); }
  const std::string& collection_name() const { return collection_name_; }

 private:
  RagPipeline(std::shared_ptr<vectordb::VectorDatabase> db,
              std::unique_ptr<DocumentStore> store, std::string collection_name,
              const Options& options);

  std::shared_ptr<vectordb::VectorDatabase> db_;
  std::unique_ptr<DocumentStore> store_;
  std::string collection_name_;
  Options options_;
  PromptBuilder prompt_builder_;
};

}  // namespace llmms::rag

#endif  // LLMMS_RAG_PIPELINE_H_
