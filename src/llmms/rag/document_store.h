#ifndef LLMMS_RAG_DOCUMENT_STORE_H_
#define LLMMS_RAG_DOCUMENT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/embedding/embedder.h"
#include "llmms/rag/chunker.h"
#include "llmms/vectordb/collection.h"

namespace llmms::rag {

// A retrieved chunk with provenance.
struct RetrievedChunk {
  std::string document_id;
  size_t chunk_index = 0;
  std::string text;
  double score = 0.0;
};

// Ingestion + retrieval over one vector-database collection: documents are
// chunked, embedded, and upserted; queries are embedded and matched against
// the chunks (§6.2, §7.2 steps 2-3). Works against any CollectionBase —
// plain or sharded — so session stores scale without changing this layer.
class DocumentStore {
 public:
  DocumentStore(std::shared_ptr<vectordb::CollectionBase> collection,
                std::shared_ptr<const embedding::Embedder> embedder,
                Chunker chunker = Chunker());

  // Chunks and indexes `text` under `document_id`; re-adding an id replaces
  // its previous chunks. Returns the number of chunks indexed.
  StatusOr<size_t> AddDocument(const std::string& document_id,
                               const std::string& text);

  // Removes every chunk of a document.
  Status RemoveDocument(const std::string& document_id);

  // Top-k chunks for a query, optionally restricted to one document.
  StatusOr<std::vector<RetrievedChunk>> Retrieve(
      const std::string& query, size_t k,
      const std::string& document_id = "") const;

  size_t chunk_count() const { return collection_->size(); }
  const std::vector<std::string>& document_ids() const {
    return document_ids_;
  }

 private:
  std::shared_ptr<vectordb::CollectionBase> collection_;
  std::shared_ptr<const embedding::Embedder> embedder_;
  Chunker chunker_;
  std::vector<std::string> document_ids_;
};

}  // namespace llmms::rag

#endif  // LLMMS_RAG_DOCUMENT_STORE_H_
