#ifndef LLMMS_EMBEDDING_HASH_EMBEDDER_H_
#define LLMMS_EMBEDDING_HASH_EMBEDDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "llmms/embedding/embedder.h"

namespace llmms::embedding {

// Deterministic feature-hashing embedder: word unigrams, word bigrams, and
// character trigrams are hashed into a fixed-dimension signed vector
// (the "hashing trick"), with sub-linear term-frequency weighting, stopword
// down-weighting, and L2 normalization.
//
// This is the project's substitute for a neural sentence encoder: it has the
// properties the orchestration algorithms rely on — texts that share content
// words embed close under cosine similarity, unrelated texts embed far, and
// the mapping is deterministic — at a tiny fraction of the cost.
class HashEmbedder final : public Embedder {
 public:
  struct Options {
    size_t dimension = 384;
    uint64_t seed = 0x5eedf00dULL;
    // Relative weight of each feature family.
    double unigram_weight = 1.0;
    double bigram_weight = 0.6;
    double char_trigram_weight = 0.3;
    // Multiplier applied to stopword unigrams so content words dominate.
    double stopword_damping = 0.2;
  };

  HashEmbedder() : HashEmbedder(Options{}) {}
  explicit HashEmbedder(const Options& options);

  Vector Embed(std::string_view text) const override;
  size_t dimension() const override { return options_.dimension; }
  std::string name() const override;

 private:
  void AddFeature(std::string_view feature, double weight, uint64_t family_salt,
                  Vector* acc) const;

  Options options_;
};

// In-place L2 normalization; the zero vector is left untouched.
void L2Normalize(Vector* v);

}  // namespace llmms::embedding

#endif  // LLMMS_EMBEDDING_HASH_EMBEDDER_H_
