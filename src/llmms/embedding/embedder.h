#ifndef LLMMS_EMBEDDING_EMBEDDER_H_
#define LLMMS_EMBEDDING_EMBEDDER_H_

#include <string>
#include <string_view>
#include <vector>

namespace llmms::embedding {

using Vector = std::vector<float>;

// Text-to-vector encoder interface (the platform's substitute for the
// mxbai-embed-large / nomic-embed-text Ollama embedders). Implementations
// must be deterministic and thread-safe, and must return unit-norm vectors
// of a fixed dimension so that dot product == cosine similarity.
class Embedder {
 public:
  virtual ~Embedder() = default;

  // Embeds `text` into a unit-norm vector of dimension(). Embedding the
  // empty string returns the zero vector.
  virtual Vector Embed(std::string_view text) const = 0;

  virtual size_t dimension() const = 0;

  // Human-readable identifier (e.g. "hash-embedder-384").
  virtual std::string name() const = 0;
};

}  // namespace llmms::embedding

#endif  // LLMMS_EMBEDDING_EMBEDDER_H_
