#ifndef LLMMS_EMBEDDING_SIMILARITY_H_
#define LLMMS_EMBEDDING_SIMILARITY_H_

#include <vector>

#include "llmms/embedding/embedder.h"

namespace llmms::embedding {

// Dot product of equal-length vectors. Preconditions: a.size() == b.size().
double DotProduct(const Vector& a, const Vector& b);

// Cosine similarity in [-1, 1]; 0 when either vector is zero.
double CosineSimilarity(const Vector& a, const Vector& b);

// Squared Euclidean distance.
double L2DistanceSquared(const Vector& a, const Vector& b);

// Mean cosine similarity of all[self_index] against every other vector in
// `all` (the paper's inter-model agreement / consensus score). Returns 0
// when there are no other vectors or self_index is out of range.
double MeanSimilarityToOthers(const std::vector<Vector>& all,
                              size_t self_index);

}  // namespace llmms::embedding

#endif  // LLMMS_EMBEDDING_SIMILARITY_H_
