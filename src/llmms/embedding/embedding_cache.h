#ifndef LLMMS_EMBEDDING_EMBEDDING_CACHE_H_
#define LLMMS_EMBEDDING_EMBEDDING_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "llmms/embedding/embedder.h"

namespace llmms::embedding {

// Thread-safe LRU cache in front of an Embedder. The orchestrators embed the
// same partial responses repeatedly (once per scoring round); caching keeps
// the scoring overhead the paper calls "manageable" actually manageable.
class EmbeddingCache final : public Embedder {
 public:
  // `inner` must outlive the cache. `capacity` is the max number of cached
  // texts; 0 disables caching.
  EmbeddingCache(std::shared_ptr<const Embedder> inner, size_t capacity);

  Vector Embed(std::string_view text) const override;
  size_t dimension() const override { return inner_->dimension(); }
  std::string name() const override { return inner_->name() + "+lru"; }

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  void Clear();

 private:
  struct Entry {
    std::string key;
    Vector vector;
  };

  std::shared_ptr<const Embedder> inner_;
  size_t capacity_;

  mutable std::mutex mu_;
  mutable std::list<Entry> lru_;  // front = most recent
  mutable std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace llmms::embedding

#endif  // LLMMS_EMBEDDING_EMBEDDING_CACHE_H_
