#include "llmms/embedding/similarity.h"

#include <cmath>

namespace llmms::embedding {

double DotProduct(const Vector& a, const Vector& b) {
  double sum = 0.0;
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

double CosineSimilarity(const Vector& a, const Vector& b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    const double x = a[i];
    const double y = b[i];
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double L2DistanceSquared(const Vector& a, const Vector& b) {
  double sum = 0.0;
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double MeanSimilarityToOthers(const std::vector<Vector>& all,
                              size_t self_index) {
  if (self_index >= all.size()) return 0.0;
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i == self_index) continue;
    sum += CosineSimilarity(all[self_index], all[i]);
    ++count;
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

}  // namespace llmms::embedding
