#include "llmms/embedding/embedding_cache.h"

namespace llmms::embedding {

EmbeddingCache::EmbeddingCache(std::shared_ptr<const Embedder> inner,
                               size_t capacity)
    : inner_(std::move(inner)), capacity_(capacity) {}

Vector EmbeddingCache::Embed(std::string_view text) const {
  if (capacity_ == 0) return inner_->Embed(text);
  const std::string key(text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->vector;
    }
    ++misses_;
  }
  Vector vec = inner_->Embed(text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(key) == index_.end()) {
      lru_.push_front(Entry{key, vec});
      index_[key] = lru_.begin();
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
      }
    }
  }
  return vec;
}

size_t EmbeddingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t EmbeddingCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t EmbeddingCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void EmbeddingCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace llmms::embedding
