#include "llmms/embedding/hash_embedder.h"

#include <cmath>
#include <unordered_map>

#include "llmms/common/rng.h"
#include "llmms/tokenizer/word_tokenizer.h"

namespace llmms::embedding {

HashEmbedder::HashEmbedder(const Options& options) : options_(options) {}

void HashEmbedder::AddFeature(std::string_view feature, double weight,
                              uint64_t family_salt, Vector* acc) const {
  const uint64_t h =
      HashBytes(feature.data(), feature.size(), options_.seed ^ family_salt);
  const size_t index = static_cast<size_t>(h % options_.dimension);
  const double sign = (MixHash64(h) & 1) ? 1.0 : -1.0;
  (*acc)[index] += static_cast<float>(sign * weight);
}

Vector HashEmbedder::Embed(std::string_view text) const {
  Vector v(options_.dimension, 0.0f);
  static const tokenizer::WordTokenizer kTokenizer;
  const std::vector<std::string> words = kTokenizer.Tokenize(text);
  if (words.empty()) return v;

  // Term frequencies for sub-linear weighting.
  std::unordered_map<std::string, int> tf;
  for (const auto& w : words) ++tf[w];

  // Unigrams.
  for (const auto& [word, count] : tf) {
    double w = options_.unigram_weight * (1.0 + std::log(count));
    if (tokenizer::WordTokenizer::IsStopword(word)) {
      w *= options_.stopword_damping;
    }
    AddFeature(word, w, /*family_salt=*/0x11, &v);
  }

  // Bigrams (order-sensitive context signal).
  if (options_.bigram_weight > 0.0) {
    for (size_t i = 0; i + 1 < words.size(); ++i) {
      const std::string bigram = words[i] + "\x1f" + words[i + 1];
      AddFeature(bigram, options_.bigram_weight, /*family_salt=*/0x22, &v);
    }
  }

  // Character trigrams (robustness to morphology/typos).
  if (options_.char_trigram_weight > 0.0) {
    for (const auto& [word, count] : tf) {
      if (word.size() < 3) continue;
      const double w =
          options_.char_trigram_weight * (1.0 + std::log(count)) /
          static_cast<double>(word.size() - 2);
      for (size_t i = 0; i + 3 <= word.size(); ++i) {
        AddFeature(std::string_view(word).substr(i, 3), w,
                   /*family_salt=*/0x33, &v);
      }
    }
  }

  L2Normalize(&v);
  return v;
}

std::string HashEmbedder::name() const {
  return "hash-embedder-" + std::to_string(options_.dimension);
}

void L2Normalize(Vector* v) {
  double norm_sq = 0.0;
  for (float x : *v) norm_sq += static_cast<double>(x) * x;
  if (norm_sq <= 0.0) return;
  const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (float& x : *v) x *= inv;
}

}  // namespace llmms::embedding
