#ifndef LLMMS_LLM_STATE_STORE_H_
#define LLMMS_LLM_STATE_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/common/fs.h"
#include "llmms/common/json.h"
#include "llmms/common/quantile_window.h"
#include "llmms/common/status.h"
#include "llmms/llm/resilient_model.h"

namespace llmms::llm {

class HedgedModel;

// Durable node state (the generalisation of PR 1's BreakerStore): one JSON
// file holding, per model,
//   - the circuit-breaker snapshot, so a model quarantined by a tripped
//     breaker stays quarantined across restarts, and
//   - the per-replica latency-percentile sketches of a hedged group, so a
//     restarted node hedges with real percentiles from its first request
//     instead of re-running the min_samples cold-start ramp (DESIGN.md §11).
//
// File shape:
//   { "breakers": { "<model>": {<CircuitBreaker::Snapshot>} },
//     "sketches": { "<model>": [ {<QuantileWindow::Snapshot>}, ... ] },
//     "<section>": <any JSON> }
// The pre-StateStore flat format (model -> breaker snapshot at top level)
// is still read, so PR 1 state files survive the upgrade. Beyond the two
// built-in sections, higher layers attach named sections with a provider
// callback (AttachSection) — core::AttachRewardFeed persists the reward
// feed's decayed means under "rewards" this way (DESIGN.md §16) without
// llm ever depending on core. Unrecognized sections found in the file are
// carried through saves untouched, so a node downgraded past a section's
// owner does not destroy that state.
//
// Usage:
//   StateStore store("/var/lib/llmms/state.json");
//   store.Load();                        // never fails the boot: a missing
//                                        // OR corrupt file cold-starts (the
//                                        // problem lands in load_warning())
//   store.AttachBreaker("m1", breaker);  // restore + save on transitions
//   store.AttachSketches("m1", hedged);  // restore + included in SaveNow()
//
// Writes are atomic with real durability barriers (temp file + fsync +
// rename + fsync of the parent directory, via common/fs.h AtomicWriteFile),
// so a crash at any point — even between the temp write and the rename —
// leaves the previous snapshot readable. Restores are all-or-nothing: the
// file is parsed completely before any state is committed, so a truncated
// file can never half-restore. All I/O goes through the FileSystem passed
// at construction (FileSystem::Default() when omitted), which is how the
// crash harness in tests/storage_chaos_test.cc drives it.
//
// AttachBreaker() installs a transition listener that rewrites the file on
// every breaker state change (which also persists the current sketches —
// there is no equivalent "transition" for a latency window, so sketches
// ride along with breaker saves and explicit SaveNow() calls; ApiService
// flushes once more at shutdown). The listener runs outside the breaker
// lock (see CircuitBreaker::SetTransitionListener), so saving cannot
// deadlock. The store must outlive every attached breaker (or the
// listeners must be cleared first); ApiService owns both, in that order.
class StateStore {
 public:
  // `fs` must outlive the store; FileSystem::Default() when null.
  explicit StateStore(std::string path, FileSystem* fs = nullptr);

  // Reads the file. A missing or empty file is a clean first run; a
  // malformed one degrades to the same empty store — a node must never
  // refuse to boot over a bad state file — with the parse problem kept in
  // load_warning(). Only I/O-level surprises (e.g. the path is a
  // directory) return an error.
  Status Load();

  // Why the last Load() cold-started despite the file existing; empty when
  // the load was clean.
  const std::string& load_warning() const { return load_warning_; }

  // Restores `model`'s saved breaker snapshot into `breaker` (no-op if the
  // store has none) and subscribes to its transitions so future changes are
  // persisted.
  void AttachBreaker(const std::string& model, CircuitBreaker* breaker);

  // Restores `model`'s saved sketches into `hedged` (no-op if the store has
  // none) and registers the group so SaveNow() persists its live windows.
  // The store keeps a reference: `hedged` stays alive at least as long as
  // the store.
  void AttachSketches(const std::string& model,
                      std::shared_ptr<const HedgedModel> hedged);

  // Registers a named top-level section whose JSON is produced fresh by
  // `provider` at every save. One provider per section; the last
  // registration wins. The provider runs outside the store lock (it may
  // take its owner's own lock) and must outlive the store's save activity.
  void AttachSection(const std::string& name,
                     std::function<Json()> provider);

  // The section's last loaded (or last provided) JSON; a null Json when the
  // store has none. How attached owners restore their state after Load().
  Json LoadedSection(const std::string& name) const;

  // Serializes breakers + the attached groups' current sketches + every
  // attached section to the file (atomically via a temp file + rename).
  Status SaveNow();

  const std::string& path() const { return path_; }

  // True if the store holds saved state for `model` (loaded or recorded).
  bool HasBreaker(const std::string& model) const;
  bool HasSketches(const std::string& model) const;

  // JSON (de)serialization, exposed for tests.
  static Json BreakerToJson(const CircuitBreaker::Snapshot& snapshot);
  static CircuitBreaker::Snapshot BreakerFromJson(const Json& json);
  static Json SketchesToJson(const std::vector<QuantileWindow::Snapshot>& s);
  static std::vector<QuantileWindow::Snapshot> SketchesFromJson(
      const Json& json);

 private:
  void UpdateBreaker(const std::string& model,
                     const CircuitBreaker::Snapshot& snapshot);

  const std::string path_;
  FileSystem* const fs_;
  std::string load_warning_;
  mutable std::mutex mu_;
  std::map<std::string, CircuitBreaker::Snapshot> breakers_;
  // Saved sketches (from Load, or the last snapshot of a detached model)…
  std::map<std::string, std::vector<QuantileWindow::Snapshot>> sketches_;
  // …and the live groups whose windows SaveNow() snapshots fresh.
  std::map<std::string, std::shared_ptr<const HedgedModel>> hedged_;
  // Extra top-level sections: the JSON last loaded from the file (or last
  // produced by a provider), and the providers that refresh them on save.
  std::map<std::string, Json> sections_;
  std::map<std::string, std::function<Json()>> providers_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_STATE_STORE_H_
