#ifndef LLMMS_LLM_HEDGED_MODEL_H_
#define LLMMS_LLM_HEDGED_MODEL_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "llmms/common/quantile_window.h"
#include "llmms/llm/model.h"

namespace llmms::llm {

// Knobs of the hedging layer. All latencies are *simulated* seconds — the
// per-chunk cost the runtime charges (Chunk::extra_seconds plus tokens at
// the replica's nominal speed) — so hedge races are deterministic and free
// of wall-clock flakiness, consistent with the resilience layer.
struct HedgeConfig {
  // A chunk whose simulated wait exceeds this quantile of the serving
  // replica's own recent chunk history launches the backup.
  double percentile = 0.95;

  // Ring-buffer size of the per-replica latency history.
  size_t latency_window = 128;

  // No hedge fires until the serving replica has this many recorded chunk
  // latencies — an empty history has no meaningful percentile.
  size_t min_samples = 8;

  // Floor under the percentile threshold, so ultra-fast models do not hedge
  // on microscopic jitter. 0 disables.
  double min_threshold_seconds = 0.0;

  // Chunk size used while a freshly launched backup regenerates the tokens
  // the loser had already delivered (the catch-up phase of a mid-stream
  // hedge).
  size_t catchup_chunk_tokens = 64;

  // When the serving stream dies (start refused or a mid-stream error), try
  // the remaining backups instead of surfacing the error.
  bool failover_on_error = true;

  // --- Adaptive thresholds (DESIGN.md §11). ---
  // When true, orchestrator-level reward observations (published through
  // core::RewardFeed) move the *effective* percentile inside
  // [min_percentile, max_percentile]: a model the orchestrator favours
  // hedges earlier (lower percentile — its tail latency costs the most
  // budget), a cold or penalised model hedges conservatively. `percentile`
  // above is the static starting point, clamped into the bounds. When
  // false, the percentile never moves (PR 3 behaviour).
  bool adapt = false;
  double min_percentile = 0.50;
  double max_percentile = 0.95;
};

// Hedging decorator: wraps a primary LanguageModel plus one or more backup
// replicas and races them against tail latency. Each replica's per-chunk
// simulated latency feeds a QuantileWindow; once an in-flight chunk's wait
// crosses the configured percentile of the *serving* replica's own history,
// the next unused backup is launched on the same prompt, caught up to the
// tokens already emitted, and raced: whichever stream delivers the next
// chunk first (in simulated time) is adopted, the loser is cancelled.
//
// Accounting rules (DESIGN.md §10):
//   - No hedge fired: chunks pass through byte-identical, zero overhead.
//   - Backup adopted: the delivered chunk's simulated cost is the race
//     winner's delivery time (threshold + backup catch-up + its chunk),
//     encoded into Chunk::extra_seconds against the hedged model's nominal
//     speed. The loser's cancelled work (tokens it generated that were never
//     emitted, and the simulated seconds it ran before cancellation) is
//     never charged to the generation — it is tracked in Stats as the
//     documented hedge overhead.
//   - Chunks that took part in a race carry Chunk::hedge, which the runtime
//     counts per model and orchestrators surface as EventType::kHedge.
//
// Decorator nesting order (see also resilient_model.h): HedgedModel must be
// the OUTERMOST decorator —
//
//   HedgedModel(ResilientModel(FaultyModel(model)),
//               {ResilientModel(backup), ...})
//
// so that each replica keeps its own retry budget, breaker, and health
// counters, and a hedge adoption can never be retried or breaker-counted by
// a resilience layer that does not know two streams were in flight.
//
// Thread-safe at the model level; streams are single-consumer like every
// GenerationStream. Streams must not outlive the model.
class HedgedModel final : public LanguageModel {
 public:
  HedgedModel(std::shared_ptr<LanguageModel> primary,
              std::vector<std::shared_ptr<LanguageModel>> backups,
              const HedgeConfig& config = HedgeConfig());

  const std::string& name() const override { return primary_->name(); }
  uint64_t memory_mb() const override { return primary_->memory_mb(); }
  double tokens_per_second() const override {
    return primary_->tokens_per_second();
  }
  size_t context_window() const override { return primary_->context_window(); }

  // Starts on the primary; if it refuses and failover is enabled, walks the
  // backups in order (a start-time failover, counted in Stats::failovers).
  StatusOr<std::unique_ptr<GenerationStream>> StartGeneration(
      const GenerationRequest& request) const override;

  const HedgeConfig& config() const { return config_; }
  const std::shared_ptr<LanguageModel>& primary() const { return primary_; }
  const std::vector<std::shared_ptr<LanguageModel>>& backups() const {
    return backups_;
  }

  // Hedge activity across all streams, surfaced per model by /api/health.
  struct Stats {
    size_t hedges_launched = 0;  // races started
    size_t hedges_won = 0;       // backup delivered first, adopted
    size_t hedges_lost = 0;      // serving stream delivered first
    size_t failovers = 0;        // error-path adoptions (start or mid-stream)
    // The documented hedge overhead: work the cancelled loser performed.
    size_t wasted_tokens = 0;
    double wasted_seconds = 0.0;
  };
  Stats stats() const;

  // Latency-percentile snapshot per replica (index 0 = primary), for
  // /api/health.
  struct ReplicaLatency {
    std::string model;
    size_t samples = 0;  // lifetime observations
    double p50 = 0.0;
    double p95 = 0.0;
  };
  std::vector<ReplicaLatency> LatencySnapshot() const;

  // --- Adaptive-threshold feedback (config().adapt, DESIGN.md §11). ---
  // Applies a pool-relative reward favour in [0, 1] (0 = cold/worst,
  // 1 = the pool's best model): the effective percentile becomes
  //   max_percentile - favour * (max_percentile - min_percentile)
  // so a favoured model hedges earlier. Returns {old, new} when the
  // effective percentile changed, nullopt when it did not (or adaptation is
  // disabled) — callers emit a trace event only on change. Layering note:
  // this class knows nothing of core::RewardFeed; the feed calls this
  // through a subscriber lambda wired at the core layer.
  std::optional<std::pair<double, double>> ApplyRewardFavour(
      double favour) const;
  // The percentile ThresholdFor() currently uses (== config().percentile
  // when adaptation is off or no reward has arrived yet).
  double effective_percentile() const;
  // How many times the effective percentile moved / the last favour seen,
  // for /api/health.
  size_t adaptations() const;
  double last_favour() const;

  // --- Warm-start sketches (llm::StateStore, DESIGN.md §11). ---
  // The per-replica latency windows as durable snapshots (index 0 =
  // primary), and their restoration into a freshly constructed group so a
  // restarted node hedges with real percentiles from its first request.
  // Restore matches snapshots to replicas by index and ignores extras
  // (replica topology may have changed across the restart).
  std::vector<QuantileWindow::Snapshot> SketchSnapshot() const;
  void RestoreSketches(
      const std::vector<QuantileWindow::Snapshot>& sketches) const;

  // Internal, used by the stream: records one chunk latency of a replica.
  void RecordLatency(size_t replica, double seconds) const;
  // Internal: the current hedge threshold of a replica, or +infinity while
  // its history is shorter than min_samples.
  double ThresholdFor(size_t replica) const;
  // Internal: stream outcomes fold into the shared stats.
  void CountHedge(size_t launched, size_t won, size_t lost, size_t failovers,
                  size_t wasted_tokens, double wasted_seconds) const;

  // Replica `index`: 0 = primary, 1.. = backups.
  const std::shared_ptr<LanguageModel>& replica(size_t index) const {
    return index == 0 ? primary_ : backups_[index - 1];
  }
  size_t replica_count() const { return backups_.size() + 1; }

 private:
  std::shared_ptr<LanguageModel> primary_;
  std::vector<std::shared_ptr<LanguageModel>> backups_;
  HedgeConfig config_;

  mutable std::mutex mu_;
  mutable std::vector<QuantileWindow> windows_;  // one per replica
  mutable Stats stats_;
  mutable double effective_percentile_;  // moves inside [min, max] bounds
  mutable double last_favour_ = 0.0;
  mutable size_t adaptations_ = 0;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_HEDGED_MODEL_H_
