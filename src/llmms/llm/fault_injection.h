#ifndef LLMMS_LLM_FAULT_INJECTION_H_
#define LLMMS_LLM_FAULT_INJECTION_H_

#include <memory>
#include <mutex>
#include <string>

#include "llmms/common/rng.h"
#include "llmms/llm/model.h"

namespace llmms::llm {

// What a FaultyModel injects, and how often. All probabilities are per call
// and drawn from a deterministic stream seeded by `seed`, so a chaos
// scenario replays bit-identically: same seed + same call sequence = same
// faults. Faults compose — a stream can spike latency on one chunk and
// error on the next.
struct FaultConfig {
  uint64_t seed = 0xFA017EDULL;

  // StartGeneration returns an Internal error (a crashed/overloaded backend
  // refusing new work).
  double refuse_start_prob = 0.0;

  // NextChunk returns an Internal error without advancing the stream. The
  // fault is transient: a retry of the same call may succeed.
  double chunk_error_prob = 0.0;

  // Once the stream has emitted >= this many tokens, every further NextChunk
  // fails permanently (a backend dying mid-generation). 0 disables.
  size_t fail_after_tokens = 0;

  // NextChunk returns a zero-token, not-done chunk (a stalled backend that
  // holds the connection but makes no progress).
  double stall_prob = 0.0;

  // NextChunk succeeds but carries `latency_spike_seconds` of extra
  // simulated latency (network hiccup / noisy-neighbor slowdown).
  double latency_spike_prob = 0.0;
  double latency_spike_seconds = 0.0;

  // The stream ends prematurely (done, StopReason::kLength) once it has
  // emitted >= this many tokens (truncated response). 0 disables.
  size_t truncate_after_tokens = 0;
};

// Chaos-testing decorator: wraps any LanguageModel and injects seeded,
// reproducible faults at the StartGeneration and NextChunk boundaries. The
// wrapped model is never told about the faults — an injected chunk error
// leaves the inner stream exactly where it was, which is what makes
// FaultConfig::chunk_error_prob faults retryable by ResilientModel.
//
// Decorator stack (see DESIGN.md "Resilience layer"):
//   SyntheticModel -> FaultyModel -> ResilientModel -> ModelRuntime
class FaultyModel final : public LanguageModel {
 public:
  FaultyModel(std::shared_ptr<LanguageModel> inner, const FaultConfig& config);

  const std::string& name() const override { return inner_->name(); }
  uint64_t memory_mb() const override { return inner_->memory_mb(); }
  double tokens_per_second() const override {
    return inner_->tokens_per_second();
  }
  size_t context_window() const override { return inner_->context_window(); }

  StatusOr<std::unique_ptr<GenerationStream>> StartGeneration(
      const GenerationRequest& request) const override;

  const FaultConfig& config() const { return config_; }

  // Totals across all streams, for assertions in chaos tests.
  struct Counters {
    size_t starts_attempted = 0;
    size_t starts_refused = 0;
    size_t chunk_errors_injected = 0;
    size_t stalls_injected = 0;
    size_t latency_spikes_injected = 0;
    size_t truncations_injected = 0;
  };
  Counters counters() const;

  // Internal: streams report injected faults into the model's counters.
  void CountFault(void (*update)(Counters*)) const;

 private:
  std::shared_ptr<LanguageModel> inner_;
  FaultConfig config_;

  // One deterministic stream for start-time draws and for forking per-stream
  // generators; the mutex keeps draws well-defined under concurrent starts.
  mutable std::mutex mu_;
  mutable Rng rng_;
  mutable Counters counters_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_FAULT_INJECTION_H_
