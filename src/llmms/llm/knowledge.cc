#include "llmms/llm/knowledge.h"

namespace llmms::llm {

KnowledgeBase::KnowledgeBase(
    std::shared_ptr<const embedding::Embedder> embedder)
    : embedder_(std::move(embedder)),
      index_(embedder_->dimension(), vectordb::DistanceMetric::kCosine) {}

Status KnowledgeBase::Add(QaItem item) {
  if (item.question.empty()) {
    return Status::InvalidArgument("QaItem question must not be empty");
  }
  LLMMS_ASSIGN_OR_RETURN(auto slot, index_.Add(embedder_->Embed(item.question)));
  (void)slot;  // slots are assigned densely, matching items_ order
  items_.push_back(std::move(item));
  return Status::OK();
}

Status KnowledgeBase::AddAll(const std::vector<QaItem>& items) {
  for (const auto& item : items) {
    LLMMS_RETURN_NOT_OK(Add(item));
  }
  return Status::OK();
}

const QaItem* KnowledgeBase::Lookup(std::string_view prompt,
                                    double min_similarity) const {
  if (items_.empty()) return nullptr;
  const auto query = embedder_->Embed(prompt);
  auto hits = index_.Search(query, 1);
  if (!hits.ok() || hits->empty()) return nullptr;
  const double similarity = 1.0 - hits->front().distance;
  if (similarity < min_similarity) return nullptr;
  return &items_[hits->front().slot];
}

const QaItem* KnowledgeBase::FindById(std::string_view id) const {
  for (const auto& item : items_) {
    if (item.id == id) return &item;
  }
  return nullptr;
}

}  // namespace llmms::llm
