#ifndef LLMMS_LLM_KNOWLEDGE_H_
#define LLMMS_LLM_KNOWLEDGE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "llmms/common/result.h"
#include "llmms/common/status.h"
#include "llmms/embedding/embedder.h"
#include "llmms/vectordb/flat_index.h"

namespace llmms::llm {

// One question with TruthfulQA-style reference answers: a single golden
// (best) answer, additional acceptable answers, and plausible-but-wrong
// answers. This struct is shared between the synthetic model substrate
// (as its "training data") and the evaluation module (as the benchmark).
struct QaItem {
  std::string id;
  std::string domain;  // e.g. "science", "history", ...
  std::string question;
  std::string golden;
  std::vector<std::string> correct;    // includes paraphrases of golden
  std::vector<std::string> incorrect;  // common misconceptions
};

// The world model the synthetic LLMs "were trained on": an embedding index
// over questions that resolves an arbitrary prompt (which may carry RAG
// context and conversation history around the question) to its QaItem.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(std::shared_ptr<const embedding::Embedder> embedder);

  Status Add(QaItem item);
  Status AddAll(const std::vector<QaItem>& items);

  // Returns the best-matching item for `prompt`, or nullptr when the base is
  // empty or the best match is weaker than `min_similarity`.
  const QaItem* Lookup(std::string_view prompt,
                       double min_similarity = 0.15) const;

  const QaItem* FindById(std::string_view id) const;

  size_t size() const { return items_.size(); }
  const std::vector<QaItem>& items() const { return items_; }

 private:
  std::shared_ptr<const embedding::Embedder> embedder_;
  std::vector<QaItem> items_;
  vectordb::FlatIndex index_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_KNOWLEDGE_H_
