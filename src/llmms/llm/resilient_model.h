#ifndef LLMMS_LLM_RESILIENT_MODEL_H_
#define LLMMS_LLM_RESILIENT_MODEL_H_

#include <memory>
#include <mutex>
#include <string>

#include "llmms/common/rng.h"
#include "llmms/llm/model.h"

namespace llmms::llm {

// Knobs of the resilience layer. Backoff is charged in *simulated* seconds
// (attached to the next successful chunk's `extra_seconds`), consistent with
// ParallelGeneration::SimulatedWallSeconds — retries cost simulated wall
// clock, never real sleep. The jitter is drawn from a deterministic stream
// seeded by `seed`.
struct ResilienceConfig {
  uint64_t seed = 0x5E111E47ULL;

  // Additional attempts after the first failure, per call site.
  size_t max_start_retries = 2;
  size_t max_chunk_retries = 2;

  // attempt k (0-based) waits min(initial * multiplier^k, max) * jitter,
  // with jitter uniform in [1 - backoff_jitter, 1 + backoff_jitter].
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2.0;
  double backoff_jitter = 0.1;

  // A chunk whose simulated cost (injected latency + tokens at the model's
  // nominal speed) exceeds this deadline is converted into a
  // DeadlineExceeded failure. 0 disables.
  double chunk_deadline_seconds = 0.0;

  // This many consecutive zero-token, not-done chunks count as a stalled
  // backend and fail with DeadlineExceeded. 0 disables.
  size_t max_stalled_chunks = 8;

  // Circuit breaker: this many consecutive retry-exhausted failures open the
  // circuit; while open, StartGeneration fails fast. After
  // `breaker_open_calls` fast rejections the breaker goes half-open and
  // admits one probe — success closes it, failure re-opens it. The cooldown
  // is counted in calls rather than wall time so that breaker behaviour is
  // deterministic under simulated time.
  size_t breaker_failure_threshold = 3;
  size_t breaker_open_calls = 4;
};

// Per-model circuit breaker (closed -> open -> half-open -> closed).
// Thread-safe; shared by a ResilientModel and all of its live streams.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(size_t failure_threshold, size_t open_calls)
      : failure_threshold_(failure_threshold), open_calls_(open_calls) {}

  // True if a request may proceed. While open, counts the rejection and
  // flips to half-open once `open_calls` rejections have elapsed; in
  // half-open only one probe is admitted at a time.
  bool AllowRequest();
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  size_t consecutive_failures() const;
  size_t total_failures() const;
  size_t fast_rejections() const;

 private:
  const size_t failure_threshold_;
  const size_t open_calls_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  size_t total_failures_ = 0;
  size_t fast_rejections_ = 0;
  size_t rejections_since_open_ = 0;
  bool probe_in_flight_ = false;
};

const char* CircuitStateToString(CircuitBreaker::State state);

// The deterministic jittered-backoff schedule used by ResilientModel,
// exposed for tests: same config + same rng seed => same sequence.
double JitteredBackoffSeconds(const ResilienceConfig& config, size_t attempt,
                              Rng* rng);

// Resilience decorator: wraps any LanguageModel with retry + exponential
// backoff (simulated time), a per-chunk deadline, stall detection, and a
// per-model circuit breaker whose health counters feed /api/health.
//
// Transient faults (e.g. FaultConfig::chunk_error_prob) are absorbed by
// retries; permanent ones (fail_after_tokens, a dead backend) exhaust the
// retry budget, trip the breaker, and surface to the orchestrator, which
// quarantines the model.
//
// Streams returned by StartGeneration must not outlive the model.
class ResilientModel final : public LanguageModel {
 public:
  ResilientModel(std::shared_ptr<LanguageModel> inner,
                 const ResilienceConfig& config);

  const std::string& name() const override { return inner_->name(); }
  uint64_t memory_mb() const override { return inner_->memory_mb(); }
  double tokens_per_second() const override {
    return inner_->tokens_per_second();
  }
  size_t context_window() const override { return inner_->context_window(); }

  StatusOr<std::unique_ptr<GenerationStream>> StartGeneration(
      const GenerationRequest& request) const override;

  const ResilienceConfig& config() const { return config_; }
  const CircuitBreaker& breaker() const { return breaker_; }

  // Queryable health, surfaced per model by /api/health.
  struct Health {
    CircuitBreaker::State circuit = CircuitBreaker::State::kClosed;
    size_t consecutive_failures = 0;
    size_t total_failures = 0;   // retry-exhausted failures
    size_t fast_rejections = 0;  // starts rejected while the circuit was open
    size_t starts = 0;
    size_t start_retries = 0;
    size_t chunk_retries = 0;
    size_t deadlines_exceeded = 0;
    size_t stalls_detected = 0;
    double backoff_seconds = 0.0;  // total simulated backoff charged
  };
  Health health() const;

  // Internal: streams report retry activity into the model's counters.
  void CountRetry(size_t chunk_retries, double backoff_seconds,
                  size_t deadlines, size_t stalls) const;
  // Internal: streams record chunk outcomes on the shared breaker.
  CircuitBreaker* mutable_breaker() const { return &breaker_; }

 private:
  std::shared_ptr<LanguageModel> inner_;
  ResilienceConfig config_;
  mutable CircuitBreaker breaker_;

  mutable std::mutex mu_;
  mutable Rng rng_;
  mutable Health health_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_RESILIENT_MODEL_H_
