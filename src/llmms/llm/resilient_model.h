#ifndef LLMMS_LLM_RESILIENT_MODEL_H_
#define LLMMS_LLM_RESILIENT_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "llmms/common/rng.h"
#include "llmms/llm/model.h"

namespace llmms::llm {

// Knobs of the resilience layer. Backoff is charged in *simulated* seconds
// (attached to the next successful chunk's `extra_seconds`), consistent with
// ParallelGeneration::SimulatedWallSeconds — retries cost simulated wall
// clock, never real sleep. The jitter is drawn from a deterministic stream
// seeded by `seed`.
struct ResilienceConfig {
  uint64_t seed = 0x5E111E47ULL;

  // Additional attempts after the first failure, per call site.
  size_t max_start_retries = 2;
  size_t max_chunk_retries = 2;

  // attempt k (0-based) waits min(initial * multiplier^k, max) * jitter,
  // with jitter uniform in [1 - backoff_jitter, 1 + backoff_jitter].
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2.0;
  double backoff_jitter = 0.1;

  // A chunk whose simulated cost (injected latency + tokens at the model's
  // nominal speed) exceeds this deadline is converted into a
  // DeadlineExceeded failure. 0 disables.
  double chunk_deadline_seconds = 0.0;

  // This many consecutive zero-token, not-done chunks count as a stalled
  // backend and fail with DeadlineExceeded. 0 disables.
  size_t max_stalled_chunks = 8;

  // Circuit breaker: this many consecutive retry-exhausted failures open the
  // circuit; while open, StartGeneration fails fast. After
  // `breaker_open_calls` fast rejections the breaker goes half-open and
  // admits one probe — success closes it, failure re-opens it. The cooldown
  // is counted in calls rather than wall time so that breaker behaviour is
  // deterministic under simulated time.
  size_t breaker_failure_threshold = 3;
  size_t breaker_open_calls = 4;

  // Probe budget: this many recorded successes while half-open close the
  // circuit; any failure while half-open re-opens it immediately.
  size_t breaker_probe_successes = 1;

  // How many state transitions the breaker remembers (ring buffer),
  // surfaced by /api/health as `circuit_history`.
  size_t breaker_history = 16;
};

// Per-model circuit breaker (closed -> open -> half-open -> closed).
// Thread-safe; shared by a ResilientModel and all of its live streams.
//
// Time is counted on a *call clock* — a counter of breaker operations
// (AllowRequest / RecordSuccess / RecordFailure) — rather than wall time, so
// breaker behaviour is deterministic under simulated time. Half-open admits
// one probe at a time and requires `probe_successes_to_close` recorded
// successes to close; any failure while half-open re-opens the circuit.
// A success recorded while the circuit is OPEN (a stream that was admitted
// before the circuit tripped) resets the consecutive-failure count but does
// NOT close the circuit — only a half-open probe can.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  // One state change, stamped with the call clock at which it happened.
  struct Transition {
    State from = State::kClosed;
    State to = State::kClosed;
    uint64_t at_call = 0;
  };

  // The breaker's full mutable state, used for persistence (BreakerStore)
  // and /api/health. Counters are lifetime totals.
  struct Snapshot {
    State state = State::kClosed;
    size_t consecutive_failures = 0;
    size_t total_failures = 0;
    size_t fast_rejections = 0;
    size_t rejections_since_open = 0;
    size_t probe_successes = 0;
    uint64_t call_clock = 0;
    std::vector<Transition> history;  // oldest first
  };

  // Invoked (outside the breaker lock) after every state transition, with a
  // snapshot taken at the moment of the transition.
  using TransitionListener = std::function<void(const Snapshot&)>;

  CircuitBreaker(size_t failure_threshold, size_t open_calls,
                 size_t probe_successes_to_close = 1,
                 size_t history_capacity = 16)
      : failure_threshold_(failure_threshold),
        open_calls_(open_calls),
        probe_budget_(probe_successes_to_close == 0
                          ? 1
                          : probe_successes_to_close),
        history_capacity_(history_capacity) {}

  // True if a request may proceed. While open, counts the rejection and
  // flips to half-open once `open_calls` rejections have elapsed; in
  // half-open only one probe is admitted at a time.
  bool AllowRequest();
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  size_t consecutive_failures() const;
  size_t total_failures() const;
  size_t fast_rejections() const;
  uint64_t call_clock() const;

  // The last `history_capacity` transitions, oldest first.
  std::vector<Transition> history() const;

  Snapshot snapshot() const;
  // Overwrites the breaker's state with `snapshot` (persistence restore).
  // Does not fire the transition listener.
  void Restore(const Snapshot& snapshot);

  // At most one listener; pass nullptr to clear. The listener runs with the
  // breaker lock released, so it may call back into this breaker (e.g. to
  // snapshot it), but it should be fast — it runs on the request path.
  void SetTransitionListener(TransitionListener listener);

 private:
  // Records the state change in the history ring. Requires mu_ held.
  void TransitionLocked(State to);
  Snapshot SnapshotLocked() const;  // requires mu_ held

  const size_t failure_threshold_;
  const size_t open_calls_;
  const size_t probe_budget_;
  const size_t history_capacity_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  size_t total_failures_ = 0;
  size_t fast_rejections_ = 0;
  size_t rejections_since_open_ = 0;
  size_t probe_successes_ = 0;
  uint64_t call_clock_ = 0;
  bool probe_in_flight_ = false;
  std::vector<Transition> history_;
  TransitionListener listener_;
};

const char* CircuitStateToString(CircuitBreaker::State state);

// The deterministic jittered-backoff schedule used by ResilientModel,
// exposed for tests: same config + same rng seed => same sequence.
double JitteredBackoffSeconds(const ResilienceConfig& config, size_t attempt,
                              Rng* rng);

// Resilience decorator: wraps any LanguageModel with retry + exponential
// backoff (simulated time), a per-chunk deadline, stall detection, and a
// per-model circuit breaker whose health counters feed /api/health.
//
// Transient faults (e.g. FaultConfig::chunk_error_prob) are absorbed by
// retries; permanent ones (fail_after_tokens, a dead backend) exhaust the
// retry budget, trip the breaker, and surface to the orchestrator, which
// quarantines the model.
//
// Decorator nesting order. The canonical stack, innermost to outermost:
//
//   SyntheticModel -> FaultyModel -> ResilientModel -> HedgedModel
//
// ResilientModel must sit OUTSIDE the fault injector (so injected faults are
// retried and breaker-counted) and INSIDE any HedgedModel (so each replica
// keeps its own retry budget, breaker, and Health counters, and a hedge
// adoption is never double-counted: the hedging layer consumes replica
// chunks through this model's streams, so retries/deadlines/stalls are
// counted exactly once here regardless of how many replicas raced). Putting
// ResilientModel outside a HedgedModel would make one replica's death look
// like a failure of the whole hedged group and trip the shared breaker even
// though a backup delivered the answer.
//
// Streams returned by StartGeneration must not outlive the model.
class ResilientModel final : public LanguageModel {
 public:
  ResilientModel(std::shared_ptr<LanguageModel> inner,
                 const ResilienceConfig& config);

  const std::string& name() const override { return inner_->name(); }
  uint64_t memory_mb() const override { return inner_->memory_mb(); }
  double tokens_per_second() const override {
    return inner_->tokens_per_second();
  }
  size_t context_window() const override { return inner_->context_window(); }

  StatusOr<std::unique_ptr<GenerationStream>> StartGeneration(
      const GenerationRequest& request) const override;

  const ResilienceConfig& config() const { return config_; }
  const CircuitBreaker& breaker() const { return breaker_; }

  // Queryable health, surfaced per model by /api/health.
  struct Health {
    CircuitBreaker::State circuit = CircuitBreaker::State::kClosed;
    size_t consecutive_failures = 0;
    size_t total_failures = 0;   // retry-exhausted failures
    size_t fast_rejections = 0;  // starts rejected while the circuit was open
    size_t starts = 0;
    size_t start_retries = 0;
    size_t chunk_retries = 0;
    size_t deadlines_exceeded = 0;
    size_t stalls_detected = 0;
    double backoff_seconds = 0.0;  // total simulated backoff charged
  };
  Health health() const;

  // Internal: streams report retry activity into the model's counters.
  void CountRetry(size_t chunk_retries, double backoff_seconds,
                  size_t deadlines, size_t stalls) const;
  // Internal: streams record chunk outcomes on the shared breaker.
  CircuitBreaker* mutable_breaker() const { return &breaker_; }

 private:
  std::shared_ptr<LanguageModel> inner_;
  ResilienceConfig config_;
  mutable CircuitBreaker breaker_;

  mutable std::mutex mu_;
  mutable Rng rng_;
  mutable Health health_;
};

}  // namespace llmms::llm

#endif  // LLMMS_LLM_RESILIENT_MODEL_H_
