#include "llmms/llm/model.h"

#include <algorithm>

namespace llmms::llm {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kLength:
      return "length";
    case StopReason::kStop:
      return "stop";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* HedgeOutcomeToString(HedgeOutcome outcome) {
  switch (outcome) {
    case HedgeOutcome::kNone:
      return "none";
    case HedgeOutcome::kPrimaryWon:
      return "primary-won";
    case HedgeOutcome::kBackupWon:
      return "backup-won";
    case HedgeOutcome::kFailover:
      return "failover";
  }
  return "unknown";
}

StatusOr<GenerationResult> LanguageModel::Generate(
    const GenerationRequest& request) const {
  LLMMS_ASSIGN_OR_RETURN(auto stream, StartGeneration(request));
  constexpr size_t kChunkTokens = 64;
  GenerationResult result;
  while (!stream->finished()) {
    size_t ask = kChunkTokens;
    if (request.max_tokens > 0) {
      const size_t remaining = request.max_tokens - result.num_tokens;
      if (remaining == 0) break;
      ask = std::min(ask, remaining);
    }
    LLMMS_ASSIGN_OR_RETURN(Chunk chunk, stream->NextChunk(ask));
    result.num_tokens += chunk.num_tokens;
    if (chunk.done) break;
  }
  result.text = stream->text();
  result.stop_reason =
      stream->finished() ? stream->stop_reason() : StopReason::kLength;
  return result;
}

}  // namespace llmms::llm
