#include "llmms/llm/runtime.h"

#include <algorithm>
#include <future>

#include "llmms/llm/hedged_model.h"

namespace llmms::llm {

ParallelGeneration::~ParallelGeneration() {
  // Abandoned streams (client gone, orchestrator unwound) must release
  // their admissions or the scheduler's fairness state leaks them.
  if (scheduler_ == nullptr) return;
  for (auto& [name, entry] : entries_) {
    if (entry.scheduled) scheduler_->Finish(entry.sched_id);
  }
}

// Runs one chunk of `entry`, going through the shared scheduler's grant
// cycle when this stream is admitted to one: the chunk executes while
// holding a replica slot, so concurrent queries interleave at chunk
// granularity instead of overlapping on a pretend-infinite model.
StatusOr<Chunk> ParallelGeneration::ScheduledChunk(Entry* entry,
                                                   size_t max_tokens) {
  if (scheduler_ == nullptr || !entry->scheduled || entry->stats.finished ||
      entry->stats.failed) {
    return NextChunkLocked(entry, max_tokens);
  }
  auto chunk_or = scheduler_->ExecuteChunk(
      entry->sched_id, max_tokens,
      [this, entry](size_t tokens) { return NextChunkLocked(entry, tokens); });
  // A stream that finished, failed, or was unwound by its deadline leaves
  // the scheduler immediately so it stops competing for slots.
  if (!chunk_or.ok() || chunk_or->done) {
    scheduler_->Finish(entry->sched_id);
    entry->scheduled = false;
    if (!chunk_or.ok() && !entry->stats.failed) {
      // Typed deadline/cancel unwinding from the scheduler itself: make it
      // sticky exactly like a stream error so further calls stay typed.
      entry->stats.failed = true;
      entry->stats.finished = true;
      entry->stats.error = chunk_or.status().message();
      entry->error = chunk_or.status();
    }
  }
  return chunk_or;
}

StatusOr<Chunk> ParallelGeneration::NextChunkLocked(Entry* entry,
                                                    size_t max_tokens) {
  if (entry->stats.failed) return entry->error;  // sticky failure
  if (entry->stats.finished) {
    Chunk chunk;
    chunk.done = true;
    chunk.stop_reason = entry->stats.stop_reason;
    return chunk;
  }
  if (entry->device != nullptr) entry->device->BeginJob();
  auto chunk_or = entry->stream->NextChunk(max_tokens);
  if (entry->device != nullptr) entry->device->EndJob();
  if (!chunk_or.ok()) {
    // Quarantine the stream: no further tokens, error kept for StatsOf.
    entry->stats.failed = true;
    entry->stats.finished = true;
    entry->stats.error = chunk_or.status().message();
    entry->error = chunk_or.status();
    return chunk_or.status();
  }
  Chunk chunk = std::move(chunk_or).value();
  entry->stats.tokens += chunk.num_tokens;
  if (chunk.hedge != HedgeOutcome::kNone) ++entry->stats.hedges;
  entry->stats.simulated_seconds += chunk.extra_seconds;
  if (entry->effective_tps > 0.0) {
    entry->stats.simulated_seconds +=
        static_cast<double>(chunk.num_tokens) / entry->effective_tps;
  }
  if (chunk.done) {
    entry->stats.finished = true;
    entry->stats.stop_reason = chunk.stop_reason;
  }
  return chunk;
}

StatusOr<Chunk> ParallelGeneration::NextChunk(const std::string& model,
                                              size_t max_tokens) {
  std::lock_guard<std::mutex> lock(mu_);
  if (context_ != nullptr) LLMMS_RETURN_NOT_OK(context_->Check());
  auto it = entries_.find(model);
  if (it == entries_.end()) {
    return Status::NotFound("model '" + model +
                            "' is not part of this generation");
  }
  const double before = it->second.stats.simulated_seconds;
  auto chunk = ScheduledChunk(&it->second, max_tokens);
  if (chunk.ok()) {
    simulated_wall_seconds_ += it->second.stats.simulated_seconds - before;
  }
  return chunk;
}

StatusOr<ParallelGeneration::ChunkBatch> ParallelGeneration::NextChunks(
    const std::vector<std::pair<std::string, size_t>>& requests) {
  std::lock_guard<std::mutex> lock(mu_);
  // An expired or cancelled request fails the whole round with the typed
  // status: nobody's tokens are worth generating once the caller is gone.
  if (context_ != nullptr) LLMMS_RETURN_NOT_OK(context_->Check());
  // Validate first so misuse fails atomically. A model named twice would
  // hand the same stream to two concurrent pool tasks — a data race the
  // per-entry ownership argument below depends on excluding.
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto& name = requests[i].first;
    if (entries_.find(name) == entries_.end()) {
      return Status::NotFound("model '" + name +
                              "' is not part of this generation");
    }
    for (size_t j = 0; j < i; ++j) {
      if (requests[j].first == name) {
        return Status::InvalidArgument("model '" + name +
                                       "' requested twice in one round");
      }
    }
  }

  // Each stream is touched by exactly one task, so the per-entry work is
  // data-race free; accounting merges after the barrier.
  std::vector<std::future<StatusOr<Chunk>>> futures;
  futures.reserve(requests.size());
  for (const auto& [name, tokens] : requests) {
    Entry* entry = &entries_[name];
    const size_t max_tokens = tokens;
    futures.push_back(pool_->Submit([this, entry, max_tokens]() {
      return ScheduledChunk(entry, max_tokens);
    }));
  }

  // A failing model costs the round its own simulated time so far, not the
  // survivors' chunks: failures land in `errors`, successes in `chunks`.
  ChunkBatch batch;
  double round_max_seconds = 0.0;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto chunk_or = futures[i].get();
    if (!chunk_or.ok()) {
      batch.errors[requests[i].first] = chunk_or.status();
      continue;
    }
    const Entry& entry = entries_[requests[i].first];
    double chunk_seconds = chunk_or->extra_seconds;
    if (entry.effective_tps > 0.0) {
      chunk_seconds += static_cast<double>(chunk_or->num_tokens) /
                       entry.effective_tps;
    }
    round_max_seconds = std::max(round_max_seconds, chunk_seconds);
    batch.chunks[requests[i].first] = std::move(chunk_or).value();
  }
  // Chunks in one round run in parallel: wall time advances by the slowest.
  simulated_wall_seconds_ += round_max_seconds;
  return batch;
}

StatusOr<std::string> ParallelGeneration::TextOf(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(model);
  if (it == entries_.end()) {
    return Status::NotFound("model '" + model +
                            "' is not part of this generation");
  }
  // A model that failed at start has no stream and produced no text.
  if (it->second.stream == nullptr) return std::string();
  return it->second.stream->text();
}

StatusOr<ParallelGeneration::ModelStats> ParallelGeneration::StatsOf(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(model);
  if (it == entries_.end()) {
    return Status::NotFound("model '" + model +
                            "' is not part of this generation");
  }
  return it->second.stats;
}

size_t ParallelGeneration::TotalTokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry.stats.tokens;
  return total;
}

ModelRuntime::ModelRuntime(std::shared_ptr<ModelRegistry> registry,
                           std::shared_ptr<hardware::HardwareManager> hardware,
                           size_t num_threads)
    : registry_(std::move(registry)),
      hardware_(std::move(hardware)),
      pool_(num_threads) {}

Status ModelRuntime::LoadModel(const std::string& name) {
  LLMMS_ASSIGN_OR_RETURN(auto model, registry_->Get(name));
  std::lock_guard<std::mutex> lock(mu_);
  if (loaded_.count(name) > 0) return Status::OK();
  hardware::PlacementRequest request;
  request.memory_mb = model->memory_mb();
  if (auto hedged = std::dynamic_pointer_cast<HedgedModel>(model)) {
    // A hedge race holds the serving replica and one backup resident at the
    // same time; reserve headroom for the largest backup so the race cannot
    // OOM a device that only fits the steady state.
    for (const auto& backup : hedged->backups()) {
      request.hedge_extra_mb =
          std::max(request.hedge_extra_mb, backup->memory_mb());
    }
  }
  LLMMS_ASSIGN_OR_RETURN(auto placement, hardware_->Place(request));
  loaded_[name] = LoadedModel{std::move(model), std::move(placement)};
  return Status::OK();
}

std::vector<ModelRuntime::PlacementInfo> ModelRuntime::PlacementSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlacementInfo> out;
  out.reserve(loaded_.size());
  for (const auto& [name, loaded] : loaded_) {
    PlacementInfo info;
    info.model = name;
    info.device = loaded.placement->device()->spec().name;
    info.memory_mb = loaded.placement->memory_mb();
    info.hedge_extra_mb = loaded.placement->hedge_extra_mb();
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const PlacementInfo& a, const PlacementInfo& b) {
              return a.model < b.model;
            });
  return out;
}

Status ModelRuntime::UnloadModel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (loaded_.erase(name) == 0) {
    return Status::NotFound("model '" + name + "' is not loaded");
  }
  return Status::OK();
}

bool ModelRuntime::IsLoaded(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return loaded_.count(name) > 0;
}

std::vector<std::string> ModelRuntime::LoadedModels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(loaded_.size());
  for (const auto& [name, m] : loaded_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<std::unique_ptr<ParallelGeneration>> ModelRuntime::StartGeneration(
    const std::vector<std::string>& models, const GenerationRequest& request) {
  if (models.empty()) {
    return Status::InvalidArgument("at least one model is required");
  }
  // A request that is already dead on arrival never claims streams.
  if (request.context != nullptr) {
    LLMMS_RETURN_NOT_OK(request.context->Check());
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto generation =
      std::unique_ptr<ParallelGeneration>(new ParallelGeneration(&pool_));
  generation->context_ = request.context;
  // An in-flight generation keeps the scheduler it was admitted to even if
  // the runtime is reconfigured underneath it.
  generation->scheduler_ = scheduler_;
  size_t started = 0;
  Status last_start_error = Status::OK();
  for (const auto& name : models) {
    auto it = loaded_.find(name);
    if (it == loaded_.end()) {
      return Status::FailedPrecondition("model '" + name +
                                        "' is not loaded; call LoadModel");
    }
    if (generation->entries_.count(name) > 0) {
      return Status::InvalidArgument("duplicate model '" + name + "'");
    }
    ParallelGeneration::Entry entry;
    auto stream_or = it->second.model->StartGeneration(request);
    if (stream_or.ok()) {
      ++started;
      entry.stream = std::move(stream_or).value();
      entry.device = it->second.placement->device();
      entry.effective_tps = it->second.model->tokens_per_second() *
                            entry.device->spec().throughput_factor;
      if (generation->scheduler_ != nullptr) {
        BatchScheduler::AdmitOptions admit;
        admit.model = name;
        admit.weight = request.scheduler_weight;
        admit.token_budget =
            request.token_budget > 0 ? request.token_budget : request.max_tokens;
        admit.hedge = request.hedge_priority;
        admit.context = request.context;
        admit.tokens_per_second = entry.effective_tps;
        entry.sched_id = generation->scheduler_->Admit(admit);
        entry.scheduled = true;
      }
    } else {
      // The model refused to start: it joins pre-failed so orchestrators
      // can quarantine it instead of losing the whole query.
      last_start_error = stream_or.status();
      entry.stats.failed = true;
      entry.stats.finished = true;
      entry.stats.error = stream_or.status().message();
      entry.error = stream_or.status();
    }
    generation->entries_[name] = std::move(entry);
    generation->order_.push_back(name);
  }
  if (started == 0) {
    return Status(last_start_error.code(),
                  "no model could start generation; last error: " +
                      last_start_error.message());
  }
  return generation;
}

void ModelRuntime::EnableScheduler(const SchedulerConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  scheduler_ = std::make_shared<BatchScheduler>(config);
}

std::shared_ptr<BatchScheduler> ModelRuntime::scheduler() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scheduler_;
}

StatusOr<GenerationResult> ModelRuntime::Generate(
    const std::string& model, const GenerationRequest& request) {
  LLMMS_ASSIGN_OR_RETURN(auto generation, StartGeneration({model}, request));
  GenerationResult result;
  constexpr size_t kChunkTokens = 64;
  for (;;) {
    LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(model));
    if (stats.finished) break;
    size_t ask = kChunkTokens;
    if (request.max_tokens > 0) {
      const size_t remaining = request.max_tokens - stats.tokens;
      if (remaining == 0) break;
      ask = std::min(ask, remaining);
    }
    LLMMS_ASSIGN_OR_RETURN(auto chunk, generation->NextChunk(model, ask));
    (void)chunk;
  }
  LLMMS_ASSIGN_OR_RETURN(auto stats, generation->StatsOf(model));
  LLMMS_ASSIGN_OR_RETURN(result.text, generation->TextOf(model));
  result.num_tokens = stats.tokens;
  result.stop_reason = stats.stop_reason;
  result.simulated_seconds = stats.simulated_seconds;
  return result;
}

}  // namespace llmms::llm
